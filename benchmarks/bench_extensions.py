"""Extensions — measuring the paper's future-work proposals.

Not a paper artifact: quantifies the two future-work items of Section 7
that change imputation quality.

* *Multi-source candidates*: imputing an excerpt of Restaurant with and
  without an auxiliary snapshot of the same integration pipeline; the
  paper's motivation is "to increase the number of imputed values", so
  the asserted shape is fill-count(with sources) >= fill-count(alone).
* *Data-driven thresholds*: Glass with the fixed global limit vs
  per-attribute quantile caps (`suggest_threshold_limits`); the caps
  should recover recall on small-scale attributes (RI spans hundredths)
  without giving up RENUVER's precision.
"""

from harness import TableWriter, bench_dataset, bench_rfds, rfd_cap
from repro import (
    DiscoveryConfig,
    MultiSourceRenuver,
    Renuver,
    dataset_validator,
    discover_rfds,
    inject_missing,
    load_dataset,
    score_imputation,
)
from repro.extensions import config_with_suggested_limits


def _multi_source():
    full = load_dataset("restaurant", n_tuples=500, seed=1)
    target = full.take(list(range(150)), name="target")
    source = full.take(list(range(150, 500)), name="aux")
    discovery = discover_rfds(
        source,
        DiscoveryConfig(
            threshold_limit=9, max_lhs_size=2, grid_size=3,
            max_per_rhs=rfd_cap(),
        ),
    )
    injection = inject_missing(target, rate=0.05, seed=3)
    alone = Renuver(discovery.all_rfds).impute(injection.relation)
    multi = MultiSourceRenuver(
        discovery.all_rfds, [source]
    ).impute(injection.relation)
    validator = dataset_validator("restaurant")
    return {
        "alone": score_imputation(alone.relation, injection, validator),
        "multi": score_imputation(multi.relation, injection, validator),
    }


def _autothreshold():
    glass = bench_dataset("glass")
    injection = inject_missing(glass, rate=0.03, seed=5)
    validator = dataset_validator("glass")

    fixed_rfds = bench_rfds("glass", 3).all_rfds
    fixed = Renuver(fixed_rfds).impute(injection.relation)

    tuned_config = config_with_suggested_limits(
        glass,
        DiscoveryConfig(
            threshold_limit=3, max_lhs_size=2, grid_size=3,
            max_per_rhs=rfd_cap(),
        ),
        quantile=0.2,
    )
    tuned_rfds = discover_rfds(glass, tuned_config).all_rfds
    tuned = Renuver(tuned_rfds).impute(injection.relation)
    return {
        "fixed-limit": (
            len(fixed_rfds),
            score_imputation(fixed.relation, injection, validator),
        ),
        "auto-limits": (
            len(tuned_rfds),
            score_imputation(tuned.relation, injection, validator),
        ),
    }


def test_extension_multi_source(benchmark):
    table = benchmark.pedantic(_multi_source, rounds=1, iterations=1)
    writer = TableWriter("extensions_multi_source")
    writer.header("Extension: multi-source candidates (Restaurant)")
    writer.row(f"{'setup':<10}{'imputed':>8}{'precision':>10}{'F1':>7}")
    for setup, scores in table.items():
        writer.row(
            f"{setup:<10}{scores.imputed:>8}{scores.precision:>10.3f}"
            f"{scores.f1:>7.3f}"
        )
    writer.close()
    # Future-work claim: sources increase the number of imputed values.
    assert table["multi"].imputed >= table["alone"].imputed


def test_extension_autothreshold(benchmark):
    table = benchmark.pedantic(_autothreshold, rounds=1, iterations=1)
    writer = TableWriter("extensions_autothreshold")
    writer.header("Extension: data-driven threshold caps (Glass)")
    writer.row(
        f"{'setup':<14}{'#RFDs':>7}{'imputed':>8}{'precision':>10}"
        f"{'recall':>8}"
    )
    for setup, (n_rfds, scores) in table.items():
        writer.row(
            f"{setup:<14}{n_rfds:>7}{scores.imputed:>8}"
            f"{scores.precision:>10.3f}{scores.recall:>8.3f}"
        )
    writer.close()
    fixed = table["fixed-limit"][1]
    tuned = table["auto-limits"][1]
    # The caps must not wreck precision; small sample noise tolerated.
    assert tuned.precision >= fixed.precision - 0.2
    assert tuned.imputed > 0
