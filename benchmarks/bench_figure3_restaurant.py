"""Figure 3 (a-c) — RENUVER vs Derand vs HoloClean on Restaurant.

Regenerates the textual-data comparison of Section 6.3: recall,
precision and F1 by missing rate, all approaches on the same injected
variants, RFD-based approaches sharing one RFD set (threshold limit 15,
as in the paper).

Paper shapes asserted:
* RENUVER's precision exceeds Derand's and HoloClean's at every rate,
* RENUVER's F1 is the best overall.
"""

import pytest

from harness import TableWriter, bench_dataset, bench_rfds, variants
from repro import (
    DerandImputer,
    HolocleanLiteImputer,
    MeanModeImputer,
    Renuver,
    build_injection_suite,
    compare_approaches,
    dataset_validator,
    discover_dcs,
)

RATES = [0.01, 0.03, 0.05]
THRESHOLD = 15


def _compare():
    relation = bench_dataset("restaurant")
    validator = dataset_validator("restaurant")
    rfds = bench_rfds("restaurant", THRESHOLD)
    dcs = discover_dcs(relation, max_lhs=1)
    suite = build_injection_suite(
        relation, rates=RATES, variants=variants(), seed=0
    )
    factories = {
        "renuver": lambda: Renuver(rfds.all_rfds),
        "derand": lambda: DerandImputer(rfds.rfds, max_candidates=8),
        "holoclean": lambda: HolocleanLiteImputer(
            dcs, training_cells=150, seed=0
        ),
        "mean-mode": MeanModeImputer,
    }
    outcomes = compare_approaches(factories, suite, validator)
    return {
        approach: {rate: result.mean_scores(rate) for rate in RATES}
        for approach, result in outcomes.items()
    }


def test_figure3_restaurant_comparison(benchmark):
    table = benchmark.pedantic(_compare, rounds=1, iterations=1)

    writer = TableWriter("figure3_restaurant")
    writer.header("Figure 3 (a-c): Restaurant comparison, P/R/F1 by rate")
    writer.row(
        f"{'approach':<12}"
        + " ".join(f"{f'rate {rate:.0%}':^20}" for rate in RATES)
    )
    for approach, scores in table.items():
        writer.row(
            f"{approach:<12}"
            + " ".join(
                f"{scores[rate].precision:5.3f}/{scores[rate].recall:5.3f}"
                f"/{scores[rate].f1:5.3f} "
                for rate in RATES
            )
        )
    from repro.evaluation.ascii_chart import render_metric_charts

    for line in render_metric_charts(table, RATES).splitlines():
        writer.row(line)
    writer.close()

    for rate in RATES:
        renuver = table["renuver"][rate]
        assert renuver.precision >= table["derand"][rate].precision - 1e-9
        assert renuver.precision >= table["holoclean"][rate].precision

    mean_f1 = {
        approach: sum(scores[rate].f1 for rate in RATES) / len(RATES)
        for approach, scores in table.items()
    }
    best = max(mean_f1, key=mean_f1.get)
    assert best == "renuver", mean_f1


@pytest.mark.parametrize("rate", [0.01, 0.05])
def test_renuver_restaurant_speed(benchmark, rate):
    """Kernel timing: one RENUVER run on one injected variant."""
    from repro import inject_missing

    relation = bench_dataset("restaurant")
    rfds = bench_rfds("restaurant", THRESHOLD)
    injection = inject_missing(relation, rate=rate, seed=1)
    engine = Renuver(rfds.all_rfds)
    result = benchmark.pedantic(
        engine.impute, args=(injection.relation,), rounds=1, iterations=1
    )
    assert result.report.missing_count == injection.count
