"""Telemetry overhead benchmark: disabled vs enabled instrumentation.

Times one full RENUVER run per mode on Restaurant with discovered RFDs
and 3% injected missing values:

* ``disabled`` — the default: ``NULL_TELEMETRY``, every
  instrumentation site a no-op method call;
* ``enabled``  — a live :class:`repro.telemetry.Telemetry` (span tracer
  plus metrics registry) attached to the run.

Both modes must produce bit-identical imputation outcomes.  The
contract guarded here is the *disabled* cost: telemetry off must stay
under :data:`DISABLED_TARGET` (2%) of the run.  Because the no-op cost
is far below timer noise for a single run, the bench derives it
analytically — it measures the per-call cost of the no-op spine with a
tight loop, counts the instrumentation sites the run actually crossed
(from the enabled run's own telemetry), and reports

    disabled_overhead = sites * per_call_seconds / disabled_seconds

which upper-bounds the true cost honestly instead of reading noise.
The enabled-mode ratio is reported alongside for reference.  Writes
``BENCH_telemetry.json`` at the repository root.
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path
from typing import Callable, Iterable

from harness import TableWriter, bench_dataset, bench_rfds, scale
from repro import Renuver, Telemetry, inject_missing
from repro.dataset.relation import Relation
from repro.rfd.rfd import RFD
from repro.telemetry import NULL_METRICS, NULL_TRACER

DEFAULT_RESULT_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_telemetry.json"
)
DATASETS = ("restaurant",)
THRESHOLD = 3
RATE = 0.03
SEED = 7
#: The disabled-telemetry overhead contract (docs/OBSERVABILITY.md).
DISABLED_TARGET = 0.02

Loader = Callable[[str], tuple[Relation, list[RFD]]]


def default_loader(name: str) -> tuple[Relation, list[RFD]]:
    """Scale-aware dataset + discovered RFDs from the shared harness."""
    return bench_dataset(name), bench_rfds(name, THRESHOLD).all_rfds


def noop_call_seconds(iterations: int = 200_000) -> float:
    """Measured per-call cost of one disabled instrumentation site.

    One "site" is modelled as the most expensive thing the hot path
    does when telemetry is off: ask the null tracer for a span with
    keyword attributes, enter/exit it, and bump a null counter.
    """
    span = NULL_TRACER.span
    counter = NULL_METRICS.counter("x_total", engine="bench").inc
    start = time.perf_counter()
    for _ in range(iterations):
        with span("bench", row=0, attribute="x"):
            counter()
    return (time.perf_counter() - start) / iterations


def instrumentation_sites(telemetry: Telemetry) -> int:
    """Instrumentation sites one run crosses, counted from its own
    telemetry: spans (creation + enter/exit), span events, per-cell
    metric calls, and the cached kernel-counter bump per seam firing."""
    tracer = telemetry.tracer
    metrics = telemetry.metrics
    spans = len(tracer.spans)
    events = sum(len(span.events) for span in tracer.spans)
    kernel_calls = sum(
        instrument.value
        for family in metrics.families()
        if family.name == "renuver_kernel_calls_total"
        for instrument in family.instruments.values()
    )
    cells = sum(
        instrument.value
        for family in metrics.families()
        if family.name == "renuver_cells_total"
        for instrument in family.instruments.values()
    )
    # 2 tracer touches per span, 3 metric calls per cell, ~20 run-level
    # calls (run counters, gauge, kernel-counter absorption).
    return int(spans * 2 + events + kernel_calls + cells * 3 + 20)


def run_bench(
    datasets: Iterable[str] = DATASETS,
    *,
    result_path: Path = DEFAULT_RESULT_PATH,
    repeats: int = 3,
    loader: Loader = default_loader,
) -> dict:
    """Time disabled vs enabled runs and persist the JSON summary.

    Timings are the minimum over ``repeats`` interleaved runs (one of
    each mode per repeat) so clock drift hits both modes equally.  A
    fresh tracer/registry is attached per enabled run so span lists
    never grow across repeats.
    """
    summary: dict = {
        "bench": "telemetry",
        "scale": scale(),
        "missing_rate": RATE,
        "injection_seed": SEED,
        "repeats": repeats,
        "disabled_target": DISABLED_TARGET,
        "noop_call_seconds": noop_call_seconds(),
        "datasets": {},
    }
    per_call = summary["noop_call_seconds"]
    for name in datasets:
        relation, rfds = loader(name)
        dirty = inject_missing(relation, rate=RATE, seed=SEED).relation

        disabled_engine = Renuver(rfds)

        best_disabled = math.inf
        best_enabled = math.inf
        # Warm both paths outside the clock (lazy imports, caches).
        disabled_engine.impute(dirty)
        Renuver(rfds, telemetry=Telemetry()).impute(dirty)
        enabled = None
        telemetry = None
        for _ in range(repeats):
            start = time.perf_counter()
            disabled = disabled_engine.impute(dirty)
            best_disabled = min(
                best_disabled, time.perf_counter() - start
            )

            telemetry = Telemetry()
            enabled_engine = Renuver(rfds, telemetry=telemetry)
            start = time.perf_counter()
            enabled = enabled_engine.impute(dirty)
            best_enabled = min(
                best_enabled, time.perf_counter() - start
            )

        identical = (
            disabled.report.outcomes == enabled.report.outcomes
            and disabled.relation.equals(enabled.relation)
        )
        sites = instrumentation_sites(telemetry)
        disabled_overhead = sites * per_call / best_disabled
        summary["datasets"][name] = {
            "n_tuples": relation.n_tuples,
            "n_rfds": len(rfds),
            "missing_cells": disabled.report.missing_count,
            "imputed_cells": disabled.report.imputed_count,
            "disabled_seconds": best_disabled,
            "enabled_seconds": best_enabled,
            "enabled_overhead": best_enabled / best_disabled - 1.0,
            "instrumentation_sites": sites,
            "spans": len(telemetry.tracer.spans),
            "disabled_overhead": disabled_overhead,
            "identical_outcomes": identical,
        }
    result_path.write_text(
        json.dumps(summary, indent=2) + "\n", encoding="utf-8"
    )
    return summary


def test_telemetry_overhead():
    summary = run_bench()

    writer = TableWriter("telemetry")
    writer.header("Telemetry overhead: disabled (no-op) vs enabled")
    writer.row(
        f"{'dataset':<12}{'tuples':>8}{'sites':>8}"
        f"{'disabled':>11}{'enabled':>11}{'off-cost':>10}  identical"
    )
    for name, entry in summary["datasets"].items():
        writer.row(
            f"{name:<12}{entry['n_tuples']:>8}"
            f"{entry['instrumentation_sites']:>8}"
            f"{entry['disabled_seconds'] * 1e3:>9.1f}ms"
            f"{entry['enabled_seconds'] * 1e3:>9.1f}ms"
            f"{entry['disabled_overhead']:>9.2%}  "
            f"{entry['identical_outcomes']}"
        )
    writer.close()

    for name, entry in summary["datasets"].items():
        assert entry["identical_outcomes"], name
        assert entry["missing_cells"] > 0, name
        assert entry["spans"] > entry["missing_cells"], name
        if summary["scale"] != "smoke":
            assert entry["disabled_overhead"] < DISABLED_TARGET, (
                f"{name}: {entry['disabled_overhead']:.2%}"
            )
    assert DEFAULT_RESULT_PATH.exists()
