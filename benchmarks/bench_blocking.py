"""Blocking-index benchmark: full-scan vs indexed donor retrieval.

Runs one full RENUVER pass per engine configuration (``blocking="off"``
vs ``blocking="on"``) on synthetic Physician instances of growing size
— the 100k-row phase is where the paper's quadratic donor scan stops
being viable — checks that both configurations produce bit-identical
imputation outcomes, and writes a machine-readable summary to
``BENCH_blocking.json`` at the repository root (timings, speedups,
index counters).  The pytest entry point below runs the same code path,
so the bench cannot rot.

The RFD set is hand-written (discovery at 100k tuples is itself a
benchmark, not a fixture): it mirrors the generator's planted
dependencies — organizational clustering, Zip geography, the
Specialty -> Credential and GradYear <-> YearsExperience pairs — and
mixes exact, banded-Levenshtein and numeric-window constraints so all
three index kinds are exercised.
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path
from typing import Callable, Iterable

from harness import TableWriter, scale
from repro import Renuver, RenuverConfig, inject_missing
from repro.dataset.relation import Relation
from repro.datasets.physician import generate_physician
from repro.rfd import parse_rfd
from repro.rfd.rfd import RFD

DEFAULT_RESULT_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_blocking.json"
)
SEED = 11
BASE_TUPLES = 1000

#: Physician ``scale=`` factors per bench scale (phase = factor * 1000).
_SCALE_FACTORS: dict[str, tuple[int, ...]] = {
    "smoke": (1,),
    "default": (1, 10),
    "full": (1, 100),
}

#: Attributes that receive injected missing values (the RHS side of the
#: planted dependencies, so most cells are recoverable).
INJECT_ATTRIBUTES = (
    "City", "State", "Street", "Zip", "YearsExperience",
)

#: Selective LHS attributes only (Zip / OrgId / Organization / Street
#: pin down a practice of ~25 physicians), so candidate lists stay
#: small and the runtime is dominated by donor *retrieval* — the cost
#: the index removes.  High-cardinality string LHSs (thousands of
#: distinct organizations and street addresses) are exactly where the
#: unblocked scan pays thousands of Levenshtein calls per cell.
RFD_TEXTS = (
    "Zip(<=0) -> City(<=0)",
    "Zip(<=0) -> State(<=0)",
    "OrgId(<=0) -> Street(<=0)",
    "OrgId(<=0) -> Zip(<=0)",
    "Organization(<=1) -> City(<=2)",
    "Street(<=1) -> Zip(<=2)",
    "Street(<=1) -> City(<=2)",
    "OrgId(<=0), GradYear(<=1) -> YearsExperience(<=1)",
)

Loader = Callable[[int], tuple[Relation, list[RFD]]]


def bench_rfds() -> list[RFD]:
    """The hand-written Physician RFD set (see the module docstring)."""
    return [parse_rfd(text) for text in RFD_TEXTS]


def default_loader(factor: int) -> tuple[Relation, list[RFD]]:
    """A ``factor * 1000``-tuple Physician instance plus the RFD set."""
    relation = generate_physician(BASE_TUPLES, seed=0, scale=factor)
    return relation, bench_rfds()


def _missing_count(n_tuples: int) -> int:
    """Injected cells per phase: enough to amortize the one-off index
    builds, bounded so the unblocked 100k baseline stays runnable."""
    return min(700, max(200, n_tuples // 250))


def run_bench(
    factors: Iterable[int] | None = None,
    *,
    result_path: Path = DEFAULT_RESULT_PATH,
    repeats: int = 1,
    loader: Loader = default_loader,
) -> dict:
    """Time both blocking modes per phase and persist the JSON summary.

    Timings are the minimum over ``repeats`` runs of
    :meth:`Renuver.impute` (generation and injection are outside the
    clock); ``identical_outcomes`` compares the full cell outcome lists
    and imputed relations of the two modes.
    """
    if factors is None:
        factors = _SCALE_FACTORS[scale()]
    summary: dict = {
        "bench": "blocking",
        "scale": scale(),
        "injection_seed": SEED,
        "inject_attributes": list(INJECT_ATTRIBUTES),
        "repeats": repeats,
        "phases": {},
    }
    for factor in factors:
        relation, rfds = loader(factor)
        dirty = inject_missing(
            relation,
            count=_missing_count(relation.n_tuples),
            seed=SEED,
            attributes=INJECT_ATTRIBUTES,
        ).relation
        timings: dict[str, float] = {}
        results: dict = {}
        for mode in ("off", "on"):
            renuver = Renuver(rfds, RenuverConfig(blocking=mode))
            best = math.inf
            for _ in range(repeats):
                working = dirty.copy()
                start = time.perf_counter()
                result = renuver.impute(working, inplace=True)
                best = min(best, time.perf_counter() - start)
            timings[mode] = best
            results[mode] = result
        identical = (
            results["off"].report.outcomes == results["on"].report.outcomes
            and results["off"].relation.equals(results["on"].relation)
        )
        counters = results["on"].report.kernel_counters
        summary["phases"][str(relation.n_tuples)] = {
            "n_tuples": relation.n_tuples,
            "n_rfds": len(rfds),
            "missing_cells": results["off"].report.missing_count,
            "imputed_cells": results["off"].report.imputed_count,
            "unblocked_seconds": timings["off"],
            "blocked_seconds": timings["on"],
            "speedup": timings["off"] / timings["on"],
            "identical_outcomes": identical,
            "index_counters": {
                key: value
                for key, value in counters.items()
                if key.startswith("index_")
            },
        }
    result_path.write_text(
        json.dumps(summary, indent=2) + "\n", encoding="utf-8"
    )
    return summary


def test_blocking_engine():
    summary = run_bench()

    writer = TableWriter("blocking")
    writer.header("Blocking index: full-scan vs indexed donor retrieval")
    writer.row(
        f"{'tuples':>8}{'cells':>7}{'unblocked':>12}{'blocked':>10}"
        f"{'speedup':>9}{'pruned':>12}  identical"
    )
    for name, entry in summary["phases"].items():
        pruned = entry["index_counters"].get("index_pruned_pairs", 0)
        writer.row(
            f"{entry['n_tuples']:>8}{entry['missing_cells']:>7}"
            f"{entry['unblocked_seconds'] * 1e3:>10.1f}ms"
            f"{entry['blocked_seconds'] * 1e3:>8.1f}ms"
            f"{entry['speedup']:>8.2f}x{pruned:>12}"
            f"  {entry['identical_outcomes']}"
        )
    writer.close()

    phases = sorted(
        summary["phases"].values(), key=lambda entry: entry["n_tuples"]
    )
    for entry in phases:
        assert entry["identical_outcomes"], entry["n_tuples"]
        assert entry["missing_cells"] > 0, entry["n_tuples"]
        assert entry["index_counters"]["index_served_probes"] > 0
    # The small phase must not regress: fallbacks and probe overhead at
    # 1k tuples stay within noise of the plain vectorized scan.
    assert phases[0]["speedup"] >= 0.5, phases[0]
    if scale() == "full":
        # The headline claim: sub-linear donor retrieval pays off at
        # 100k tuples.
        assert phases[-1]["n_tuples"] >= 100_000
        assert phases[-1]["speedup"] >= 5.0, phases[-1]
    assert DEFAULT_RESULT_PATH.exists()
