"""Imputation-service benchmark: cold vs warm requests, throughput.

Boots the HTTP service in-process (the same server ``python -m repro
serve`` runs) with a fingerprint-keyed artifact cache and measures the
two properties the service exists for:

* **cold vs warm latency** — the first ``POST /v1/impute`` without a
  pinned RFD set pays discovery; every later request for the same
  relation + config hits the artifact cache and must be materially
  faster (and provably discovery-free: the cache-hit counter moves,
  the discovery counters do not);
* **sustained throughput** — concurrent stdlib clients hammering the
  one-shot endpoint with pinned RFDs, reported as requests/second.

Writes ``BENCH_service.json`` at the repository root.
"""

from __future__ import annotations

import json
import tempfile
import threading
import time
import urllib.request
from pathlib import Path
from typing import Callable

from harness import TableWriter, bench_dataset, scale
from repro import inject_missing
from repro.dataset.csv_io import to_csv_text
from repro.dataset.relation import Relation
from repro.service import build_server

DEFAULT_RESULT_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_service.json"
)
DATASET = "restaurant"
RATE = 0.03
SEED = 7
PINNED_RFDS = [
    "Name(<=4) -> Phone(<=1)",
    "Phone(<=1) -> Class(<=0)",
    "Name(<=6), City(<=2) -> Address(<=8)",
]

Loader = Callable[[], Relation]


def default_loader() -> Relation:
    """Scale-aware dataset from the shared harness."""
    return bench_dataset(DATASET)


def _post(base: str, path: str, body: dict) -> dict:
    request = urllib.request.Request(
        base + path,
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request) as response:
        return json.loads(response.read().decode("utf-8"))


def _counter_total(base: str, name: str) -> float:
    with urllib.request.urlopen(base + "/metrics") as response:
        text = response.read().decode("utf-8")
    total = 0.0
    for line in text.splitlines():
        if line.startswith(name) and not line.startswith("#"):
            total += float(line.rsplit(" ", 1)[1])
    return total


def run_bench(
    *,
    result_path: Path = DEFAULT_RESULT_PATH,
    warm_repeats: int = 3,
    clients: int = 4,
    requests_per_client: int = 5,
    loader: Loader = default_loader,
) -> dict:
    """Measure cold/warm latency and throughput; persist the summary."""
    relation = loader()
    dirty = inject_missing(relation, rate=RATE, seed=SEED).relation
    csv_text = to_csv_text(dirty)
    discovery_options = {"limit": 3, "max_lhs": 1, "grid_size": 3,
                         "max_per_rhs": 15}

    cache_dir = tempfile.mkdtemp(prefix="bench-service-")
    server = build_server("127.0.0.1", 0, artifact_dir=cache_dir)
    accept = threading.Thread(target=server.serve_forever, daemon=True)
    accept.start()
    base = f"http://127.0.0.1:{server.port}"
    try:
        # --- cold: discovery runs, artifacts get written ---------------
        start = time.perf_counter()
        cold = _post(base, "/v1/impute", {
            "csv": csv_text, "discovery": discovery_options,
        })
        cold_seconds = time.perf_counter() - start
        assert cold["rfd_source"] == "discovered", cold["rfd_source"]

        # --- warm: every repeat must come from the artifact cache ------
        hits_before = _counter_total(
            base, "renuver_artifact_cache_hits_total"
        )
        warm_seconds = float("inf")
        warm = cold
        for _ in range(warm_repeats):
            start = time.perf_counter()
            warm = _post(base, "/v1/impute", {
                "csv": csv_text, "discovery": discovery_options,
            })
            warm_seconds = min(warm_seconds, time.perf_counter() - start)
            assert warm["rfd_source"] == "cache", warm["rfd_source"]
        cache_hits = _counter_total(
            base, "renuver_artifact_cache_hits_total"
        ) - hits_before

        # --- throughput: concurrent clients, pinned RFDs ---------------
        errors: list[BaseException] = []

        def client() -> None:
            try:
                for _ in range(requests_per_client):
                    out = _post(base, "/v1/impute", {
                        "csv": csv_text, "rfds": PINNED_RFDS,
                    })
                    assert out["rfd_source"] == "provided"
            except BaseException as exc:  # noqa: BLE001 - reported below
                errors.append(exc)

        threads = [
            threading.Thread(target=client) for _ in range(clients)
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start
        if errors:
            raise errors[0]
        total_requests = clients * requests_per_client

        summary = {
            "bench": "service",
            "scale": scale(),
            "dataset": DATASET,
            "n_tuples": dirty.n_tuples,
            "missing_rate": RATE,
            "injection_seed": SEED,
            "cold_seconds": cold_seconds,
            "warm_seconds": warm_seconds,
            "cold_over_warm": cold_seconds / warm_seconds,
            "warm_cache_hits": cache_hits,
            "warm_identical_csv": warm["csv"] == cold["csv"],
            "throughput": {
                "clients": clients,
                "requests": total_requests,
                "elapsed_seconds": elapsed,
                "requests_per_second": total_requests / elapsed,
            },
        }
    finally:
        server.drain()
    result_path.write_text(
        json.dumps(summary, indent=2) + "\n", encoding="utf-8"
    )
    return summary


def test_service_latency_and_throughput():
    summary = run_bench()

    writer = TableWriter("service")
    writer.header("Imputation service: cold vs warm, throughput")
    writer.row(
        f"{'dataset':<12}{'tuples':>8}{'cold':>10}{'warm':>10}"
        f"{'speedup':>9}{'req/s':>9}"
    )
    throughput = summary["throughput"]
    writer.row(
        f"{summary['dataset']:<12}{summary['n_tuples']:>8}"
        f"{summary['cold_seconds'] * 1e3:>8.1f}ms"
        f"{summary['warm_seconds'] * 1e3:>8.1f}ms"
        f"{summary['cold_over_warm']:>8.1f}x"
        f"{throughput['requests_per_second']:>9.1f}"
    )
    writer.close()

    # A warm request answers from the cache with the same bytes.
    assert summary["warm_cache_hits"] >= 1
    assert summary["warm_identical_csv"] is True
    assert throughput["requests_per_second"] > 0
    if summary["scale"] != "smoke":
        # Skipping discovery must be visible in wall-clock terms.
        assert summary["cold_over_warm"] > 1.0, summary["cold_over_warm"]
    assert DEFAULT_RESULT_PATH.exists()
