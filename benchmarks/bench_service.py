"""Imputation-service benchmark: cold vs warm requests, throughput.

Boots the HTTP service in-process (the same server ``python -m repro
serve`` runs) with a fingerprint-keyed artifact cache and measures the
two properties the service exists for:

* **cold vs warm latency** — the first ``POST /v1/impute`` without a
  pinned RFD set pays discovery; every later request for the same
  relation + config hits the artifact cache and must be materially
  faster (and provably discovery-free: the cache-hit counter moves,
  the discovery counters do not);
* **sustained throughput** — concurrent stdlib clients hammering the
  one-shot endpoint with pinned RFDs, reported as requests/second with
  p50/p95/p99 per-request latency;
* **overload shedding** — a second, deliberately tiny server driven at
  2x its admission capacity: the bench records the shed rate (429s with
  ``Retry-After``) and asserts the overload alone produces **zero
  5xx** — refusal is load control, errors are bugs.

Writes ``BENCH_service.json`` at the repository root.
"""

from __future__ import annotations

import json
import tempfile
import threading
import time
import urllib.request
from pathlib import Path
from typing import Callable

import urllib.error

from harness import TableWriter, bench_dataset, scale
from repro import inject_missing
from repro.dataset.csv_io import to_csv_text
from repro.dataset.relation import Relation
from repro.service import ServiceConfig, build_server

DEFAULT_RESULT_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_service.json"
)
DATASET = "restaurant"
RATE = 0.03
SEED = 7
PINNED_RFDS = [
    "Name(<=4) -> Phone(<=1)",
    "Phone(<=1) -> Class(<=0)",
    "Name(<=6), City(<=2) -> Address(<=8)",
]

Loader = Callable[[], Relation]


def default_loader() -> Relation:
    """Scale-aware dataset from the shared harness."""
    return bench_dataset(DATASET)


def _post(base: str, path: str, body: dict) -> dict:
    request = urllib.request.Request(
        base + path,
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request) as response:
        return json.loads(response.read().decode("utf-8"))


def _status_post(base: str, path: str, body: dict) -> int:
    """POST returning the HTTP status, without raising on 4xx/5xx."""
    request = urllib.request.Request(
        base + path,
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request) as response:
            response.read()
            return response.status
    except urllib.error.HTTPError as error:
        error.read()
        return error.code


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      round(q * (len(sorted_values) - 1))))
    return sorted_values[rank]


def _counter_total(base: str, name: str) -> float:
    with urllib.request.urlopen(base + "/metrics") as response:
        text = response.read().decode("utf-8")
    total = 0.0
    for line in text.splitlines():
        if line.startswith(name) and not line.startswith("#"):
            total += float(line.rsplit(" ", 1)[1])
    return total


def _overload_phase(
    csv_text: str,
    *,
    max_inflight: int = 2,
    requests_per_client: int = 6,
) -> dict:
    """Drive a deliberately tiny server at 2x its admission capacity.

    Capacity is ``max_inflight`` with no queue, so running
    ``2 * max_inflight`` open-loop clients is a sustained 2x overload.
    The contract being measured: excess load is *shed* (429 +
    ``Retry-After``), never *errored* (zero 5xx from overload alone).
    """
    config = ServiceConfig(
        max_inflight=max_inflight,
        max_queue_depth=0,
    )
    server = build_server("127.0.0.1", 0, config=config)
    accept = threading.Thread(target=server.serve_forever, daemon=True)
    accept.start()
    base = f"http://127.0.0.1:{server.port}"
    statuses: list[int] = []
    lock = threading.Lock()
    body = {
        "csv": csv_text,
        "rfds": PINNED_RFDS,
    }

    def client() -> None:
        for _ in range(requests_per_client):
            status = _status_post(base, "/v1/impute", body)
            with lock:
                statuses.append(status)

    try:
        threads = [
            threading.Thread(target=client)
            for _ in range(2 * max_inflight)
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start
    finally:
        server.drain()

    ok = sum(1 for status in statuses if status < 400)
    shed = sum(1 for status in statuses if status == 429)
    server_errors = sum(1 for status in statuses if status >= 500)
    return {
        "clients": 2 * max_inflight,
        "max_inflight": max_inflight,
        "requests": len(statuses),
        "elapsed_seconds": elapsed,
        "ok": ok,
        "shed": shed,
        "shed_rate": shed / len(statuses) if statuses else 0.0,
        "server_errors": server_errors,
    }


def run_bench(
    *,
    result_path: Path = DEFAULT_RESULT_PATH,
    warm_repeats: int = 3,
    clients: int = 4,
    requests_per_client: int = 5,
    loader: Loader = default_loader,
) -> dict:
    """Measure cold/warm latency and throughput; persist the summary."""
    relation = loader()
    dirty = inject_missing(relation, rate=RATE, seed=SEED).relation
    csv_text = to_csv_text(dirty)
    discovery_options = {"limit": 3, "max_lhs": 1, "grid_size": 3,
                         "max_per_rhs": 15}

    cache_dir = tempfile.mkdtemp(prefix="bench-service-")
    server = build_server("127.0.0.1", 0, artifact_dir=cache_dir)
    accept = threading.Thread(target=server.serve_forever, daemon=True)
    accept.start()
    base = f"http://127.0.0.1:{server.port}"
    try:
        # --- cold: discovery runs, artifacts get written ---------------
        start = time.perf_counter()
        cold = _post(base, "/v1/impute", {
            "csv": csv_text, "discovery": discovery_options,
        })
        cold_seconds = time.perf_counter() - start
        assert cold["rfd_source"] == "discovered", cold["rfd_source"]

        # --- warm: every repeat must come from the artifact cache ------
        hits_before = _counter_total(
            base, "renuver_artifact_cache_hits_total"
        )
        warm_seconds = float("inf")
        warm = cold
        for _ in range(warm_repeats):
            start = time.perf_counter()
            warm = _post(base, "/v1/impute", {
                "csv": csv_text, "discovery": discovery_options,
            })
            warm_seconds = min(warm_seconds, time.perf_counter() - start)
            assert warm["rfd_source"] == "cache", warm["rfd_source"]
        cache_hits = _counter_total(
            base, "renuver_artifact_cache_hits_total"
        ) - hits_before

        # --- throughput: concurrent clients, pinned RFDs ---------------
        errors: list[BaseException] = []
        latencies: list[float] = []
        latency_lock = threading.Lock()

        def client() -> None:
            try:
                for _ in range(requests_per_client):
                    t0 = time.perf_counter()
                    out = _post(base, "/v1/impute", {
                        "csv": csv_text, "rfds": PINNED_RFDS,
                    })
                    dt = time.perf_counter() - t0
                    assert out["rfd_source"] == "provided"
                    with latency_lock:
                        latencies.append(dt)
            except BaseException as exc:  # noqa: BLE001 - reported below
                errors.append(exc)

        threads = [
            threading.Thread(target=client) for _ in range(clients)
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start
        if errors:
            raise errors[0]
        total_requests = clients * requests_per_client
        latencies.sort()

        overload = _overload_phase(csv_text)

        summary = {
            "bench": "service",
            "scale": scale(),
            "dataset": DATASET,
            "n_tuples": dirty.n_tuples,
            "missing_rate": RATE,
            "injection_seed": SEED,
            "cold_seconds": cold_seconds,
            "warm_seconds": warm_seconds,
            "cold_over_warm": cold_seconds / warm_seconds,
            "warm_cache_hits": cache_hits,
            "warm_identical_csv": warm["csv"] == cold["csv"],
            "throughput": {
                "clients": clients,
                "requests": total_requests,
                "elapsed_seconds": elapsed,
                "requests_per_second": total_requests / elapsed,
                "latency_p50_seconds": _percentile(latencies, 0.50),
                "latency_p95_seconds": _percentile(latencies, 0.95),
                "latency_p99_seconds": _percentile(latencies, 0.99),
            },
            "overload": overload,
        }
    finally:
        server.drain()
    result_path.write_text(
        json.dumps(summary, indent=2) + "\n", encoding="utf-8"
    )
    return summary


def test_service_latency_and_throughput():
    summary = run_bench()

    writer = TableWriter("service")
    writer.header("Imputation service: cold vs warm, throughput")
    writer.row(
        f"{'dataset':<12}{'tuples':>8}{'cold':>10}{'warm':>10}"
        f"{'speedup':>9}{'req/s':>9}{'p95':>10}{'shed':>7}"
    )
    throughput = summary["throughput"]
    writer.row(
        f"{summary['dataset']:<12}{summary['n_tuples']:>8}"
        f"{summary['cold_seconds'] * 1e3:>8.1f}ms"
        f"{summary['warm_seconds'] * 1e3:>8.1f}ms"
        f"{summary['cold_over_warm']:>8.1f}x"
        f"{throughput['requests_per_second']:>9.1f}"
        f"{throughput['latency_p95_seconds'] * 1e3:>8.1f}ms"
        f"{summary['overload']['shed_rate']:>6.0%}"
    )
    writer.close()

    # A warm request answers from the cache with the same bytes.
    assert summary["warm_cache_hits"] >= 1
    assert summary["warm_identical_csv"] is True
    assert throughput["requests_per_second"] > 0
    assert (throughput["latency_p50_seconds"]
            <= throughput["latency_p95_seconds"]
            <= throughput["latency_p99_seconds"])
    # Overload must refuse (429), never error (5xx): load control is
    # not a failure mode.
    overload = summary["overload"]
    assert overload["server_errors"] == 0, overload
    assert overload["ok"] >= 1, overload
    if summary["scale"] != "smoke":
        # Skipping discovery must be visible in wall-clock terms.
        assert summary["cold_over_warm"] > 1.0, summary["cold_over_warm"]
    assert DEFAULT_RESULT_PATH.exists()
