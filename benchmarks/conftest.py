"""Make the shared benchmark harness importable; echo result tables.

pytest captures the tables the benches print, so a terminal-summary
hook re-emits every ``benchmarks/results/*.txt`` written during the
session — the canonical ``pytest benchmarks/ --benchmark-only`` run
then shows the regenerated paper tables without needing ``-s``.
"""

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

_SESSION_START = time.time()


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    results_dir = Path(__file__).parent / "results"
    if not results_dir.is_dir():
        return
    fresh = sorted(
        path for path in results_dir.glob("*.txt")
        if path.stat().st_mtime >= _SESSION_START - 1
    )
    if not fresh:
        return
    writer = terminalreporter
    writer.section("regenerated paper tables (benchmarks/results/)")
    for path in fresh:
        writer.write_line(path.read_text(encoding="utf-8").rstrip())
        writer.write_line("")
