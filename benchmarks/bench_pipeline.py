"""Continuous-ingestion pipeline benchmark: FULL vs 1% INCR append.

The pipeline's reason to exist is that steady-state ingestion should
not pay steady-state FULL costs.  This bench measures exactly that
claim on one shared ingest directory:

* **FULL baseline** — a fresh root runs over the complete dataset
  (base batch + the 1% append together): discovery from scratch plus
  imputation of every missing cell;
* **INCR append** — a root bootstrapped on the base batch ingests the
  same 1% append warm: cached discovery (zero rediscovery, asserted
  via ``RunResult.discovered``), journal-replayed unresolved ledger,
  imputation of only the delta's cells.

At non-smoke scale the INCR run must cost **at most 10%** of the FULL
run's wall time.  Writes ``BENCH_pipeline.json`` at the repository
root.
"""

from __future__ import annotations

import json
import tempfile
import time
from pathlib import Path
from typing import Callable

from harness import TableWriter, bench_dataset, scale
from repro import DiscoveryConfig, inject_missing, write_csv
from repro.dataset.relation import Relation
from repro.pipeline import Pipeline, PipelineConfig

DEFAULT_RESULT_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_pipeline.json"
)
DATASET = "restaurant"
RATE = 0.03
SEED = 7

Loader = Callable[[], Relation]


def default_loader() -> Relation:
    """Scale-aware dataset from the shared harness."""
    return bench_dataset(DATASET)


def _config() -> PipelineConfig:
    return PipelineConfig(discovery=DiscoveryConfig(
        threshold_limit=3, max_lhs_size=1, grid_size=3,
    ))


def _slice(relation: Relation, start: int, stop: int,
           name: str) -> Relation:
    rows = [relation.row_values(index) for index in range(start, stop)]
    return Relation.from_rows(
        list(relation.attributes), rows, name=name
    )


def run_bench(
    *,
    result_path: Path = DEFAULT_RESULT_PATH,
    delta_fraction: float = 0.01,
    incr_repeats: int = 2,
    loader: Loader = default_loader,
) -> dict:
    """Time a FULL run against a warm INCR append; persist the summary."""
    relation = loader()
    dirty = inject_missing(relation, rate=RATE, seed=SEED).relation
    n_delta = max(1, int(dirty.n_tuples * delta_fraction))
    split = dirty.n_tuples - n_delta
    base = _slice(dirty, 0, split, "base-batch")
    delta = _slice(dirty, split, dirty.n_tuples, "delta-batch")

    workdir = Path(tempfile.mkdtemp(prefix="bench-pipeline-"))
    ingest = workdir / "ingest"
    ingest.mkdir()
    write_csv(base, ingest / "b1.csv")

    # Bootstrap the INCR roots on the base batch (untimed: this is the
    # sunk cost a long-running deployment has already paid).  Several
    # identical roots let the append be timed more than once — the runs
    # are short, so the minimum filters scheduler noise.
    incr_roots = [
        workdir / f"incr-root-{index}" for index in range(incr_repeats)
    ]
    for incr_root in incr_roots:
        bootstrap = Pipeline(incr_root, ingest, _config()).run()
        assert bootstrap.mode == "full", bootstrap.mode

    write_csv(delta, ingest / "b2.csv")

    # FULL baseline: a fresh root sees both batches and pays for
    # everything — discovery included.
    full_root = workdir / "full-root"
    start = time.perf_counter()
    full = Pipeline(full_root, ingest, _config()).run()
    full_seconds = time.perf_counter() - start
    assert full.mode == "full", full.mode
    assert full.discovered is True

    # INCR append: each warm root ingests only the 1% delta.
    incr_seconds = float("inf")
    for incr_root in incr_roots:
        start = time.perf_counter()
        incr = Pipeline(incr_root, ingest, _config()).run()
        incr_seconds = min(
            incr_seconds, time.perf_counter() - start
        )
        assert incr.mode == "incr", (incr.mode, incr.degraded_reason)
        assert incr.discovered is False, "warm INCR run re-ran discovery"

    summary = {
        "bench": "pipeline",
        "scale": scale(),
        "dataset": DATASET,
        "n_tuples": dirty.n_tuples,
        "missing_rate": RATE,
        "injection_seed": SEED,
        "delta_rows": n_delta,
        "delta_fraction": n_delta / dirty.n_tuples,
        "full_seconds": full_seconds,
        "incr_seconds": incr_seconds,
        "incr_over_full": incr_seconds / full_seconds,
        "full_cells_imputed": full.cells_imputed,
        "incr_cells_imputed": incr.cells_imputed,
        "incr_rows_ingested": incr.rows_ingested,
        "incr_rediscovered": incr.discovered,
        "store_versions_match": (
            full.store_version == 1 and incr.store_version == 2
        ),
    }
    result_path.write_text(
        json.dumps(summary, indent=2) + "\n", encoding="utf-8"
    )
    return summary


def test_incremental_append_is_cheap():
    summary = run_bench()

    writer = TableWriter("pipeline")
    writer.header("Pipeline: FULL baseline vs warm 1% INCR append")
    writer.row(
        f"{'dataset':<12}{'tuples':>8}{'delta':>7}{'full':>10}"
        f"{'incr':>10}{'ratio':>8}"
    )
    writer.row(
        f"{summary['dataset']:<12}{summary['n_tuples']:>8}"
        f"{summary['delta_rows']:>7}"
        f"{summary['full_seconds'] * 1e3:>8.1f}ms"
        f"{summary['incr_seconds'] * 1e3:>8.1f}ms"
        f"{summary['incr_over_full']:>8.3f}"
    )
    writer.close()

    assert summary["incr_rediscovered"] is False
    assert summary["incr_rows_ingested"] == summary["delta_rows"]
    if summary["scale"] != "smoke":
        # The headline claim: a 1% append costs at most 10% of FULL.
        assert summary["incr_over_full"] <= 0.10, (
            summary["incr_over_full"]
        )
    assert DEFAULT_RESULT_PATH.exists()
