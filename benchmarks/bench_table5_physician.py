"""Table 5 — Physician scaling: tuples vs time/memory.

Regenerates the paper's Table 5: the Physician dataset (18 attributes)
at growing tuple counts with a fixed 1% missing rate; quality, wall time
and peak memory per approach, with budgets standing in for the 48 h /
30 GB limits (the paper's Derand times out from 2072 tuples, HoloClean
exceeds memory at 10359).

Paper shapes asserted:
* RENUVER completes every size within budget and time grows
  monotonically-ish with the instance,
* RENUVER's precision stays the highest among completed approaches.
"""

import os

from harness import TableWriter, rfd_cap, variants
from repro import (
    DerandImputer,
    DiscoveryConfig,
    HolocleanLiteImputer,
    Renuver,
    RenuverConfig,
    build_injection_suite,
    compare_approaches,
    dataset_validator,
    discover_dcs,
    discover_rfds,
    load_dataset,
)
from repro.utils.memory import format_bytes
from repro.utils.timer import format_duration

SIZES = {"smoke": [60, 120], "default": [104, 208, 519],
         "full": [104, 208, 1036, 2072]}
BUDGET_SECONDS = float(os.environ.get("REPRO_BENCH_BUDGET", "120"))

# In-run budget enforcement (see bench_table4_stress).
_BUDGETED = RenuverConfig(time_budget_seconds=BUDGET_SECONDS)


def _budgeted(imputer):
    imputer.time_budget_seconds = BUDGET_SECONDS
    return imputer


def _scaling():
    from harness import scale

    validator = dataset_validator("physician")
    rows = []
    for size in SIZES[scale()]:
        relation = load_dataset("physician", n_tuples=size, seed=0)
        rfds = discover_rfds(
            relation,
            DiscoveryConfig(
                threshold_limit=3,
                max_lhs_size=1,
                grid_size=3,
                max_per_rhs=rfd_cap(),
                max_pairs=200_000,
            ),
        )
        dcs = discover_dcs(relation.head(min(size, 300)), max_lhs=1)
        suite = build_injection_suite(
            relation, rates=[0.01], variants=max(1, variants() - 1),
            seed=0,
        )
        factories = {
            "renuver": lambda: Renuver(rfds.all_rfds, _BUDGETED),
            "derand": lambda: _budgeted(
                DerandImputer(rfds.rfds, max_candidates=6)
            ),
            "holoclean": lambda: _budgeted(
                HolocleanLiteImputer(dcs, training_cells=100, seed=0)
            ),
        }
        outcomes = compare_approaches(
            factories,
            suite,
            validator,
            time_budget_seconds=BUDGET_SECONDS,
            memory_budget_bytes=8 * 1024**3,
            track_memory=True,
        )
        rows.append((size, len(rfds.all_rfds), outcomes))
    return rows


def test_table5_physician_scaling(benchmark):
    rows = benchmark.pedantic(_scaling, rounds=1, iterations=1)

    writer = TableWriter("table5_physician")
    writer.header(
        f"Table 5: Physician scaling (budget {BUDGET_SECONDS:.0f}s/run)"
    )
    writer.row(
        f"{'tuples':>7}{'#RFDs':>7} {'approach':<12}{'recall':>8} "
        f"{'precision':>10} {'time':>9} {'memory':>10}"
    )
    for size, n_rfds, outcomes in rows:
        for approach, result in outcomes.items():
            status = result.status_at(0.01)
            if status != "ok":
                writer.row(
                    f"{size:>7}{n_rfds:>7} {approach:<12}"
                    f"{status:>8} {'-':>10} {'-':>9} {'-':>10}"
                )
                continue
            scores = result.mean_scores(0.01)
            writer.row(
                f"{size:>7}{n_rfds:>7} {approach:<12}"
                f"{scores.recall:>8.3f} {scores.precision:>10.3f} "
                f"{format_duration(result.mean_elapsed(0.01)):>9} "
                f"{format_bytes(result.max_peak_bytes(0.01)):>10}"
            )
    writer.close()

    renuver_times = []
    for size, _, outcomes in rows:
        renuver = outcomes["renuver"]
        assert renuver.status_at(0.01) == "ok", size
        renuver_times.append((size, renuver.mean_elapsed(0.01)))
    # Precision lead is asserted at the largest size only: the smallest
    # instances inject only a dozen cells, where one wrong value swings
    # the metric by ~10 points (the paper's own first Table 5 row rests
    # on 13 injected cells).
    _, _, largest = rows[-1]
    completed_precisions = {
        approach: result.mean_scores(0.01).precision
        for approach, result in largest.items()
        if result.status_at(0.01) == "ok"
    }
    best = max(completed_precisions, key=completed_precisions.get)
    assert completed_precisions["renuver"] >= (
        completed_precisions[best] - 0.1
    )
    # Time grows with the instance (weak monotonicity across extremes).
    assert renuver_times[-1][1] >= renuver_times[0][1] * 0.5
