"""Table 3 — dataset statistics.

Regenerates the two variable columns of the paper's Table 3 for every
dataset: the number of discovered RFDs at threshold limits {3, 6, 9, 12,
15} and the number of injected missing values at rates 1-5%.  The
benchmarked kernel is RFD discovery at limit 3 (the paper's most common
configuration).
"""

import pytest

from harness import TableWriter, bench_dataset, bench_rfds
from repro import DiscoveryConfig, discover_rfds
from repro.evaluation.injection import missing_count_for_rate

DATASETS = ["restaurant", "cars", "glass", "bridges"]
THRESHOLDS = [3, 6, 9, 12, 15]
RATES = [0.01, 0.02, 0.03, 0.04, 0.05]


def test_table3_dataset_statistics(benchmark):
    def build_table():
        writer = TableWriter("table3_datasets")
        writer.header("Table 3: dataset statistics")
        writer.row(
            f"{'dataset':<12}{'tuples':>7}{'attrs':>6} "
            + "".join(f"  #RFD@{t:<3}" for t in THRESHOLDS)
            + "".join(f"  #miss@{r:.0%}" for r in RATES)
        )
        shapes = []
        for name in DATASETS:
            relation = bench_dataset(name)
            rfd_counts = [
                len(bench_rfds(name, limit).rfds)
                for limit in THRESHOLDS
            ]
            missing_counts = [
                missing_count_for_rate(relation, rate) for rate in RATES
            ]
            writer.row(
                f"{name:<12}{relation.n_tuples:>7}"
                f"{relation.n_attributes:>6} "
                + "".join(f"  {count:>7}" for count in rfd_counts)
                + "".join(f"  {count:>7}" for count in missing_counts)
            )
            shapes.append((rfd_counts, missing_counts))
        writer.close()
        return shapes

    shapes = benchmark.pedantic(build_table, rounds=1, iterations=1)
    for rfd_counts, missing_counts in shapes:
        # Paper shape: looser limits admit at least as many (non-key)
        # RFDs end to end.  Small dips are possible here because the
        # quantile grids and dominance pruning are re-derived per limit,
        # so a 20% tolerance is applied; injected-cell counts grow
        # strictly with the rate.
        assert rfd_counts[-1] >= rfd_counts[0] * 0.8
        assert missing_counts == sorted(missing_counts)


@pytest.mark.parametrize("dataset", DATASETS)
def test_discovery_speed(benchmark, dataset):
    """Kernel timing: one discovery pass at threshold limit 3."""
    relation = bench_dataset(dataset)
    config = DiscoveryConfig(
        threshold_limit=3, max_lhs_size=2, grid_size=3, max_per_rhs=40
    )
    result = benchmark.pedantic(
        discover_rfds, args=(relation, config), rounds=1, iterations=1
    )
    assert len(result.all_rfds) > 0
