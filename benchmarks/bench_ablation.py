"""Ablations — the design choices DESIGN.md calls out.

Not a paper artifact: measures the impact of the reproduction's
resolved ambiguities and optimizations on one fixed workload
(Bridges, threshold limit 6, 3% missing):

* cluster order ascending (worked example) vs descending (Algorithm 2's
  literal wording),
* verification on vs off (quality/cost of IS_FAULTLESS),
* paper verification vs extended check_rhs_rfds (Definition 4.3 gap),
* keyness scope "all" vs "complete",
* distance memoization on vs off (pure performance).
"""

import pytest

from harness import TableWriter, bench_dataset, bench_rfds
from repro import (
    Renuver,
    RenuverConfig,
    dataset_validator,
    inject_missing,
    score_imputation,
)

DATASET = "bridges"
THRESHOLD = 6
RATE = 0.03

CONFIGS = {
    "baseline": RenuverConfig(),
    "desc-clusters": RenuverConfig(cluster_order="descending"),
    "no-verify": RenuverConfig(verify=False),
    "verify-rhs": RenuverConfig(check_rhs_rfds=True),
    "keys-complete": RenuverConfig(keyness_scope="complete"),
    "no-cache": RenuverConfig(distance_cache=False),
}


def _run(config: RenuverConfig):
    relation = bench_dataset(DATASET)
    rfds = bench_rfds(DATASET, THRESHOLD).all_rfds
    injection = inject_missing(relation, rate=RATE, seed=21)
    result = Renuver(rfds, config).impute(injection.relation)
    scores = score_imputation(
        result.relation, injection, dataset_validator(DATASET)
    )
    return scores, result.report.elapsed_seconds


def test_ablation_table(benchmark):
    def build():
        return {name: _run(config) for name, config in CONFIGS.items()}

    table = benchmark.pedantic(build, rounds=1, iterations=1)

    writer = TableWriter("ablation")
    writer.header(
        f"Ablations on {DATASET} (thr={THRESHOLD}, rate={RATE:.0%})"
    )
    writer.row(
        f"{'variant':<16}{'precision':>10}{'recall':>8}{'F1':>7}"
        f"{'imputed':>8}{'time(s)':>9}"
    )
    for name, (scores, elapsed) in table.items():
        writer.row(
            f"{name:<16}{scores.precision:>10.3f}{scores.recall:>8.3f}"
            f"{scores.f1:>7.3f}{scores.imputed:>8}{elapsed:>9.2f}"
        )
    writer.close()

    baseline_scores, _ = table["baseline"]
    # Verification can only hold back bad imputations: fill rate without
    # it is at least as high, precision at most as high.
    no_verify_scores, _ = table["no-verify"]
    assert no_verify_scores.imputed >= baseline_scores.imputed
    assert baseline_scores.precision >= no_verify_scores.precision - 0.05
    # The extended RHS check is at least as selective as the paper's.
    verify_rhs_scores, _ = table["verify-rhs"]
    assert verify_rhs_scores.imputed <= no_verify_scores.imputed
    # Caching must not change results, only time.
    cache_scores, _ = table["baseline"]
    no_cache_scores, _ = table["no-cache"]
    assert (cache_scores.imputed, cache_scores.correct) == (
        no_cache_scores.imputed, no_cache_scores.correct
    )


@pytest.mark.parametrize("cached", [True, False])
def test_distance_cache_speed(benchmark, cached):
    """Kernel timing: one imputation run with/without memoization."""
    relation = bench_dataset(DATASET)
    rfds = bench_rfds(DATASET, THRESHOLD).all_rfds
    injection = inject_missing(relation, rate=RATE, seed=21)
    engine = Renuver(rfds, RenuverConfig(distance_cache=cached))
    result = benchmark.pedantic(
        engine.impute, args=(injection.relation,), rounds=1, iterations=1
    )
    assert result.report.missing_count == injection.count
