"""Supervised-runtime benchmark: sequential vs workers=1 vs workers=2.

Times one full RENUVER run per mode on Restaurant with discovered RFDs
and 3% injected missing values:

* ``sequential``  — the default in-process path (``RenuverConfig()``);
* ``workers1``    — ``workers=1``, which by design *is* the sequential
  path (the supervisor only engages at two or more workers), so its
  overhead must stay under the 5% target;
* ``workers2``    — the real supervised runtime: two worker
  subprocesses, batching, round barrier, merge.  Reported for the
  record; on a single-core box the barrier plus process churn makes it
  slower than sequential — the supervisor buys crash isolation, not
  single-node speed.

All three modes must produce bit-identical imputation outcomes.  Writes
``BENCH_supervisor.json`` at the repository root.
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path
from typing import Callable, Iterable

from harness import TableWriter, bench_dataset, bench_rfds, scale
from repro import Renuver, RenuverConfig, inject_missing
from repro.dataset.relation import Relation
from repro.rfd.rfd import RFD

DEFAULT_RESULT_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_supervisor.json"
)
DATASETS = ("restaurant",)
THRESHOLD = 3
RATE = 0.03
SEED = 7
OVERHEAD_TARGET = 0.05

Loader = Callable[[str], tuple[Relation, list[RFD]]]


def default_loader(name: str) -> tuple[Relation, list[RFD]]:
    """Scale-aware dataset + discovered RFDs from the shared harness."""
    return bench_dataset(name), bench_rfds(name, THRESHOLD).all_rfds


def run_bench(
    datasets: Iterable[str] = DATASETS,
    *,
    result_path: Path = DEFAULT_RESULT_PATH,
    repeats: int = 3,
    loader: Loader = default_loader,
) -> dict:
    """Time the three modes and persist the JSON summary.

    Timings are the minimum over ``repeats`` interleaved runs of
    :meth:`Renuver.impute` (one run per mode per repeat, so clock drift
    and thermal effects hit every mode equally).
    """
    summary: dict = {
        "bench": "supervisor",
        "scale": scale(),
        "missing_rate": RATE,
        "injection_seed": SEED,
        "repeats": repeats,
        "overhead_target": OVERHEAD_TARGET,
        "datasets": {},
    }
    for name in datasets:
        relation, rfds = loader(name)
        dirty = inject_missing(relation, rate=RATE, seed=SEED).relation

        engines = {
            "sequential": Renuver(rfds),
            "workers1": Renuver(rfds, RenuverConfig(workers=1)),
            "workers2": Renuver(
                rfds, RenuverConfig(workers=2, worker_batch_size=8)
            ),
        }
        best = {mode: math.inf for mode in engines}
        results = {}
        for engine in engines.values():  # warm caches outside the clock
            engine.impute(dirty)
        for _ in range(repeats):
            for mode, engine in engines.items():
                start = time.perf_counter()
                results[mode] = engine.impute(dirty)
                best[mode] = min(best[mode], time.perf_counter() - start)

        sequential = results["sequential"]
        identical = all(
            sequential.report.cell_outcomes == result.report.cell_outcomes
            and sequential.relation.equals(result.relation)
            for result in results.values()
        )
        summary["datasets"][name] = {
            "n_tuples": relation.n_tuples,
            "n_rfds": len(rfds),
            "missing_cells": sequential.report.missing_count,
            "imputed_cells": sequential.report.imputed_count,
            "sequential_seconds": best["sequential"],
            "workers1_seconds": best["workers1"],
            "workers2_seconds": best["workers2"],
            "workers1_overhead": (
                best["workers1"] / best["sequential"] - 1.0
            ),
            "workers2_rounds": results[
                "workers2"
            ].report.supervisor_rounds,
            "workers2_accepted": results[
                "workers2"
            ].report.worker_cells_accepted,
            "workers2_recomputed": results[
                "workers2"
            ].report.worker_cells_recomputed,
            "identical_outcomes": identical,
        }
    result_path.write_text(
        json.dumps(summary, indent=2) + "\n", encoding="utf-8"
    )
    return summary


def test_supervisor_overhead():
    summary = run_bench()

    writer = TableWriter("supervisor")
    writer.header(
        "Supervised runtime: sequential vs workers=1 vs workers=2"
    )
    writer.row(
        f"{'dataset':<12}{'tuples':>8}{'cells':>7}"
        f"{'seq':>10}{'w=1':>10}{'w=2':>10}{'w1 ovh':>9}  identical"
    )
    for name, entry in summary["datasets"].items():
        writer.row(
            f"{name:<12}{entry['n_tuples']:>8}"
            f"{entry['missing_cells']:>7}"
            f"{entry['sequential_seconds'] * 1e3:>8.1f}ms"
            f"{entry['workers1_seconds'] * 1e3:>8.1f}ms"
            f"{entry['workers2_seconds'] * 1e3:>8.1f}ms"
            f"{entry['workers1_overhead']:>8.1%}  "
            f"{entry['identical_outcomes']}"
        )
    writer.close()

    for name, entry in summary["datasets"].items():
        assert entry["identical_outcomes"], name
        assert entry["missing_cells"] > 0, name
        assert (
            entry["workers2_accepted"] + entry["workers2_recomputed"]
            == entry["missing_cells"]
        ), name
        if summary["scale"] != "smoke":
            assert entry["workers1_overhead"] < OVERHEAD_TARGET, (
                f"{name}: {entry['workers1_overhead']:.1%}"
            )
    assert DEFAULT_RESULT_PATH.exists()
