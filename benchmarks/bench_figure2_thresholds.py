"""Figure 2 — RENUVER quality by RHS threshold limit and missing rate.

Regenerates all twelve panels of the paper's Figure 2: precision, recall
and F1 of RENUVER on Glass, Bridges, Cars and Restaurant, for RFD sets
discovered at different threshold limits, across missing rates.

Paper shapes asserted per dataset:
* recall at the loosest limit >= recall at the tightest (more RFDs can
  impute more cells),
* precision stays high (the paper's headline claim).
"""

import pytest

from harness import TableWriter, bench_dataset, bench_rfds, variants
from repro import (
    Renuver,
    build_injection_suite,
    dataset_validator,
    run_experiment,
)

DATASETS = ["glass", "bridges", "cars", "restaurant"]
THRESHOLDS = [3, 9, 15]
RATES = [0.01, 0.03, 0.05]


def _sweep(dataset: str):
    relation = bench_dataset(dataset)
    validator = dataset_validator(dataset)
    suite = build_injection_suite(
        relation, rates=RATES, variants=variants(), seed=0
    )
    table = {}
    for limit in THRESHOLDS:
        rfds = bench_rfds(dataset, limit).all_rfds
        result = run_experiment(
            f"renuver@{limit}", lambda: Renuver(rfds), suite, validator
        )
        table[limit] = {
            rate: result.mean_scores(rate) for rate in RATES
        }
    return table


@pytest.mark.parametrize("dataset", DATASETS)
def test_figure2_threshold_sweep(benchmark, dataset):
    table = benchmark.pedantic(
        _sweep, args=(dataset,), rounds=1, iterations=1
    )

    writer = TableWriter(f"figure2_{dataset}")
    writer.header(f"Figure 2 ({dataset}): P/R/F1 by threshold limit")
    writer.row(
        f"{'limit':<14}"
        + " ".join(f"{f'rate {rate:.0%}':^20}" for rate in RATES)
    )
    for limit in THRESHOLDS:
        scores = table[limit]
        writer.row(
            f"thr={limit:<10}"
            + " ".join(
                f"{scores[rate].precision:5.3f}/{scores[rate].recall:5.3f}"
                f"/{scores[rate].f1:5.3f} "
                for rate in RATES
            )
        )
    writer.close()

    # Shape assertions (averaged over rates to smooth variant noise).
    def mean_over_rates(limit, metric):
        values = [getattr(table[limit][rate], metric) for rate in RATES]
        return sum(values) / len(values)

    tight, loose = THRESHOLDS[0], THRESHOLDS[-1]
    assert mean_over_rates(loose, "recall") >= (
        mean_over_rates(tight, "recall") - 0.05
    )
    assert any(
        table[limit][rate].imputed > 0
        for limit in THRESHOLDS
        for rate in RATES
    )
