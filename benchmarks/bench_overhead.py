"""Robustness-runtime overhead benchmark: baseline vs guarded run.

Times one full RENUVER run per mode on Restaurant with discovered RFDs
and 3% injected missing values:

* ``baseline`` — PR 1 behavior: no journal, no budgets;
* ``guarded``  — the fault-tolerant runtime engaged: a JSONL journal,
  generous run/cell time budgets (never tripped) and the mean/mode
  fallback armed.

The guarded run must produce bit-identical imputation outcomes and stay
within the overhead target (<5% on the non-smoke scale; smoke runs on
tiny inputs are timing noise, so the pytest entry point only asserts
outcome equality there).  Writes ``BENCH_overhead.json`` at the
repository root.
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path
from typing import Callable, Iterable

from harness import TableWriter, bench_dataset, bench_rfds, scale
from repro import Renuver, RenuverConfig, inject_missing
from repro.dataset.relation import Relation
from repro.rfd.rfd import RFD

DEFAULT_RESULT_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_overhead.json"
)
DATASETS = ("restaurant",)
THRESHOLD = 3
RATE = 0.03
SEED = 7
OVERHEAD_TARGET = 0.05

Loader = Callable[[str], tuple[Relation, list[RFD]]]


def default_loader(name: str) -> tuple[Relation, list[RFD]]:
    """Scale-aware dataset + discovered RFDs from the shared harness."""
    return bench_dataset(name), bench_rfds(name, THRESHOLD).all_rfds


def _guarded_config() -> RenuverConfig:
    # Budgets generous enough to never trip: the bench measures the cost
    # of *checking* them (plus journaling), not of degrading.
    return RenuverConfig(
        time_budget_seconds=3600.0,
        cell_time_budget_seconds=600.0,
        fallback="mean_mode",
    )


def run_bench(
    datasets: Iterable[str] = DATASETS,
    *,
    result_path: Path = DEFAULT_RESULT_PATH,
    repeats: int = 3,
    loader: Loader = default_loader,
) -> dict:
    """Time baseline vs guarded runs and persist the JSON summary.

    Timings are the minimum over ``repeats`` runs of
    :meth:`Renuver.impute`.  Baseline and guarded runs are interleaved
    (one of each per repeat) so clock drift and thermal effects hit both
    modes equally; the journal is re-created per run in a temporary
    directory so append-mode growth can't skew later repeats.
    """
    import tempfile

    summary: dict = {
        "bench": "overhead",
        "scale": scale(),
        "missing_rate": RATE,
        "injection_seed": SEED,
        "repeats": repeats,
        "overhead_target": OVERHEAD_TARGET,
        "datasets": {},
    }
    for name in datasets:
        relation, rfds = loader(name)
        dirty = inject_missing(relation, rate=RATE, seed=SEED).relation

        baseline_engine = Renuver(rfds)
        guarded_engine = Renuver(rfds, _guarded_config())

        best_baseline = math.inf
        best_guarded = math.inf
        with tempfile.TemporaryDirectory() as tmp:
            # Warm both paths outside the clock: the first guarded run
            # pays one-time lazy imports (journal module) and cache fills.
            baseline_engine.impute(dirty)
            guarded_engine.impute(dirty, journal=Path(tmp) / "warmup.jsonl")
            for index in range(repeats):
                start = time.perf_counter()
                baseline = baseline_engine.impute(dirty)
                best_baseline = min(
                    best_baseline, time.perf_counter() - start
                )

                journal = Path(tmp) / f"run-{index}.jsonl"
                start = time.perf_counter()
                guarded = guarded_engine.impute(dirty, journal=journal)
                best_guarded = min(
                    best_guarded, time.perf_counter() - start
                )

        identical = (
            baseline.report.outcomes == guarded.report.outcomes
            and baseline.relation.equals(guarded.relation)
        )
        overhead = best_guarded / best_baseline - 1.0
        summary["datasets"][name] = {
            "n_tuples": relation.n_tuples,
            "n_rfds": len(rfds),
            "missing_cells": baseline.report.missing_count,
            "imputed_cells": baseline.report.imputed_count,
            "baseline_seconds": best_baseline,
            "guarded_seconds": best_guarded,
            "overhead": overhead,
            "identical_outcomes": identical,
            "budget_events": len(guarded.report.budget_events),
            "degradations": len(guarded.report.degradations),
        }
    result_path.write_text(
        json.dumps(summary, indent=2) + "\n", encoding="utf-8"
    )
    return summary


def test_robustness_overhead():
    summary = run_bench()

    writer = TableWriter("overhead")
    writer.header("Fault-tolerant runtime overhead: baseline vs guarded")
    writer.row(
        f"{'dataset':<12}{'tuples':>8}{'cells':>7}"
        f"{'baseline':>11}{'guarded':>11}{'overhead':>10}  identical"
    )
    for name, entry in summary["datasets"].items():
        writer.row(
            f"{name:<12}{entry['n_tuples']:>8}"
            f"{entry['missing_cells']:>7}"
            f"{entry['baseline_seconds'] * 1e3:>9.1f}ms"
            f"{entry['guarded_seconds'] * 1e3:>9.1f}ms"
            f"{entry['overhead']:>9.1%}  {entry['identical_outcomes']}"
        )
    writer.close()

    for name, entry in summary["datasets"].items():
        assert entry["identical_outcomes"], name
        assert entry["missing_cells"] > 0, name
        assert entry["budget_events"] == 0, name  # budgets never tripped
        assert entry["degradations"] == 0, name
        if summary["scale"] != "smoke":
            assert entry["overhead"] < OVERHEAD_TARGET, (
                f"{name}: {entry['overhead']:.1%}"
            )
    assert DEFAULT_RESULT_PATH.exists()
