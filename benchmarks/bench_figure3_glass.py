"""Figure 3 (d-f) — RENUVER vs Derand vs HoloClean vs kNN on Glass.

Regenerates the numeric-data comparison of Section 6.3, where kNN joins
the panel because Glass is all-numeric.  The paper runs both RFD-based
approaches on the threshold-limit-15 RFD set; precision is RENUVER's
strong suit (always above 0.8 in the paper).

Paper shapes asserted:
* RENUVER's precision is the highest of all four approaches,
* every approach imputes something (except possibly Derand, which the
  paper reports as failing on Glass).
"""

from harness import TableWriter, bench_dataset, bench_rfds, variants
from repro import (
    DerandImputer,
    GreyKNNImputer,
    HolocleanLiteImputer,
    Renuver,
    build_injection_suite,
    compare_approaches,
    dataset_validator,
    discover_dcs,
)

RATES = [0.01, 0.03, 0.05]
THRESHOLD = 3  # Glass distances are small decimals; 15 would be vacuous


def _compare():
    relation = bench_dataset("glass")
    validator = dataset_validator("glass")
    rfds = bench_rfds("glass", THRESHOLD)
    dcs = discover_dcs(relation, max_lhs=1)
    suite = build_injection_suite(
        relation, rates=RATES, variants=variants(), seed=0
    )
    factories = {
        "renuver": lambda: Renuver(rfds.all_rfds),
        "derand": lambda: DerandImputer(rfds.rfds, max_candidates=6),
        "holoclean": lambda: HolocleanLiteImputer(
            dcs, training_cells=120, seed=0
        ),
        "knn": lambda: GreyKNNImputer(k=5),
    }
    outcomes = compare_approaches(factories, suite, validator)
    return {
        approach: {rate: result.mean_scores(rate) for rate in RATES}
        for approach, result in outcomes.items()
    }


def test_figure3_glass_comparison(benchmark):
    table = benchmark.pedantic(_compare, rounds=1, iterations=1)

    writer = TableWriter("figure3_glass")
    writer.header("Figure 3 (d-f): Glass comparison, P/R/F1 by rate")
    writer.row(
        f"{'approach':<12}"
        + " ".join(f"{f'rate {rate:.0%}':^20}" for rate in RATES)
    )
    for approach, scores in table.items():
        writer.row(
            f"{approach:<12}"
            + " ".join(
                f"{scores[rate].precision:5.3f}/{scores[rate].recall:5.3f}"
                f"/{scores[rate].f1:5.3f} "
                for rate in RATES
            )
        )
    from repro.evaluation.ascii_chart import render_metric_charts

    for line in render_metric_charts(table, RATES).splitlines():
        writer.row(line)
    writer.close()

    def mean_precision(approach):
        return sum(
            table[approach][rate].precision for rate in RATES
        ) / len(RATES)

    # RENUVER's precision leads; Derand shares its RFD sets here (in the
    # paper Derand's DD discovery produced nothing usable on Glass), so
    # it can tie within noise — hence the small tolerance.
    renuver_precision = mean_precision("renuver")
    for approach in ("derand", "holoclean", "knn"):
        assert renuver_precision >= mean_precision(approach) - 0.05, (
            approach, renuver_precision, mean_precision(approach)
        )
    assert all(
        table["renuver"][rate].imputed > 0 for rate in RATES
    )
