"""Donor-scan engine benchmark: scalar reference vs vectorized kernels.

Times one full RENUVER run per engine on Restaurant and Physician with
discovered RFDs and 3% injected missing values, checks that both engines
produce bit-identical imputation outcomes, and writes a machine-readable
summary to ``BENCH_donor_scan.json`` at the repository root (timings,
speedups, kernel counters).  The pytest entry point below runs the same
code path, so the bench cannot rot.
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path
from typing import Callable, Iterable

from harness import TableWriter, bench_dataset, bench_rfds, scale
from repro import Renuver, RenuverConfig, inject_missing
from repro.dataset.relation import Relation
from repro.rfd.rfd import RFD

DEFAULT_RESULT_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_donor_scan.json"
)
DATASETS = ("restaurant", "physician")
THRESHOLD = 3
RATE = 0.03
SEED = 7

Loader = Callable[[str], tuple[Relation, list[RFD]]]


def default_loader(name: str) -> tuple[Relation, list[RFD]]:
    """Scale-aware dataset + discovered RFDs from the shared harness."""
    return bench_dataset(name), bench_rfds(name, THRESHOLD).all_rfds


def run_bench(
    datasets: Iterable[str] = DATASETS,
    *,
    result_path: Path = DEFAULT_RESULT_PATH,
    repeats: int = 3,
    loader: Loader = default_loader,
) -> dict:
    """Time both engines on each dataset and persist the JSON summary.

    Timings are the minimum over ``repeats`` runs of
    :meth:`Renuver.impute` (discovery and injection are outside the
    clock); ``identical_outcomes`` compares the engines' full cell
    outcome lists and imputed relations.
    """
    summary: dict = {
        "bench": "donor_scan",
        "scale": scale(),
        "missing_rate": RATE,
        "injection_seed": SEED,
        "repeats": repeats,
        "datasets": {},
    }
    for name in datasets:
        relation, rfds = loader(name)
        dirty = inject_missing(relation, rate=RATE, seed=SEED).relation
        timings: dict[str, float] = {}
        results: dict = {}
        for engine in ("scalar", "vectorized"):
            renuver = Renuver(rfds, RenuverConfig(engine=engine))
            best = math.inf
            for _ in range(repeats):
                start = time.perf_counter()
                result = renuver.impute(dirty)
                best = min(best, time.perf_counter() - start)
            timings[engine] = best
            results[engine] = result
        identical = (
            results["scalar"].report.outcomes
            == results["vectorized"].report.outcomes
            and results["scalar"].relation.equals(
                results["vectorized"].relation
            )
        )
        summary["datasets"][name] = {
            "n_tuples": relation.n_tuples,
            "n_rfds": len(rfds),
            "missing_cells": results["scalar"].report.missing_count,
            "imputed_cells": results["scalar"].report.imputed_count,
            "scalar_seconds": timings["scalar"],
            "vectorized_seconds": timings["vectorized"],
            "speedup": timings["scalar"] / timings["vectorized"],
            "identical_outcomes": identical,
            "kernel_counters": results[
                "vectorized"
            ].report.kernel_counters,
        }
    result_path.write_text(
        json.dumps(summary, indent=2) + "\n", encoding="utf-8"
    )
    return summary


def test_donor_scan_engines():
    summary = run_bench()

    writer = TableWriter("donor_scan")
    writer.header("Donor-scan engines: scalar vs vectorized, full run")
    writer.row(
        f"{'dataset':<12}{'tuples':>8}{'rfds':>6}{'cells':>7}"
        f"{'scalar':>10}{'vector':>10}{'speedup':>9}  identical"
    )
    for name, entry in summary["datasets"].items():
        writer.row(
            f"{name:<12}{entry['n_tuples']:>8}{entry['n_rfds']:>6}"
            f"{entry['missing_cells']:>7}"
            f"{entry['scalar_seconds'] * 1e3:>8.1f}ms"
            f"{entry['vectorized_seconds'] * 1e3:>8.1f}ms"
            f"{entry['speedup']:>8.2f}x  {entry['identical_outcomes']}"
        )
    writer.close()

    for name, entry in summary["datasets"].items():
        assert entry["identical_outcomes"], name
        assert entry["missing_cells"] > 0, name
    assert summary["datasets"]["restaurant"]["speedup"] >= 3.0
    assert DEFAULT_RESULT_PATH.exists()
