"""Table 4 — Restaurant stress test at high missing rates.

Regenerates the paper's Table 4: quality plus wall time and peak memory
on the Restaurant dataset as the missing rate climbs to 5/10/20/30/40%,
for RENUVER, Derand and HoloClean.  The paper's 48-hour / 30 GB limits
become configurable per-run budgets here; a run exceeding them is
reported as TL/ML, exactly like the paper's table entries (Derand
exceeds the time limit from 10% missing onwards there).

Paper shapes asserted:
* RENUVER completes every rate within budget,
* RENUVER's F1 beats the other approaches at every completed rate,
* RENUVER's quality degrades gracefully as the rate grows.
"""

import os

from harness import TableWriter, bench_dataset, bench_rfds, variants
from repro import (
    DerandImputer,
    HolocleanLiteImputer,
    Renuver,
    RenuverConfig,
    build_injection_suite,
    compare_approaches,
    dataset_validator,
    discover_dcs,
)
from repro.utils.memory import format_bytes
from repro.utils.timer import format_duration

RATES = [0.05, 0.10, 0.20]
THRESHOLD = 15
BUDGET_SECONDS = float(os.environ.get("REPRO_BENCH_BUDGET", "120"))

# In-run budget enforcement: Renuver takes it via config; the baselines
# take it via the BaseImputer attribute.  Without this, a slow run would
# only be marked TL after it finally returned.
_BUDGETED = RenuverConfig(time_budget_seconds=BUDGET_SECONDS)


def _budgeted(imputer):
    imputer.time_budget_seconds = BUDGET_SECONDS
    return imputer


def _stress():
    relation = bench_dataset("restaurant")
    validator = dataset_validator("restaurant")
    rfds = bench_rfds("restaurant", THRESHOLD)
    dcs = discover_dcs(relation, max_lhs=1)
    suite = build_injection_suite(
        relation, rates=RATES, variants=max(1, variants() - 1), seed=0
    )
    factories = {
        "renuver": lambda: Renuver(rfds.all_rfds, _BUDGETED),
        "derand": lambda: _budgeted(
            DerandImputer(rfds.rfds, max_candidates=8)
        ),
        "holoclean": lambda: _budgeted(
            HolocleanLiteImputer(dcs, training_cells=150, seed=0)
        ),
    }
    return compare_approaches(
        factories,
        suite,
        validator,
        time_budget_seconds=BUDGET_SECONDS,
        memory_budget_bytes=8 * 1024**3,
        track_memory=True,
    )


def test_table4_restaurant_stress(benchmark):
    outcomes = benchmark.pedantic(_stress, rounds=1, iterations=1)

    writer = TableWriter("table4_stress")
    writer.header(
        f"Table 4: Restaurant stress (budget {BUDGET_SECONDS:.0f}s/run)"
    )
    writer.row(
        f"{'approach':<12}{'rate':>6} {'recall':>8} {'precision':>10} "
        f"{'F1':>7} {'time':>9} {'memory':>10}"
    )
    for approach, result in outcomes.items():
        for rate in RATES:
            status = result.status_at(rate)
            if status != "ok":
                writer.row(
                    f"{approach:<12}{rate:>6.0%} "
                    f"{status:>8} {'-':>10} {'-':>7} {'-':>9} {'-':>10}"
                )
                continue
            scores = result.mean_scores(rate)
            writer.row(
                f"{approach:<12}{rate:>6.0%} "
                f"{scores.recall:>8.3f} {scores.precision:>10.3f} "
                f"{scores.f1:>7.3f} "
                f"{format_duration(result.mean_elapsed(rate)):>9} "
                f"{format_bytes(result.max_peak_bytes(rate)):>10}"
            )
    writer.close()

    renuver = outcomes["renuver"]
    assert all(renuver.status_at(rate) == "ok" for rate in RATES)
    for rate in RATES:
        renuver_scores = renuver.mean_scores(rate)
        for approach in ("derand", "holoclean"):
            if outcomes[approach].status_at(rate) != "ok":
                continue  # TL/ML, the paper's Derand behaviour
            assert renuver_scores.f1 >= (
                outcomes[approach].mean_scores(rate).f1 - 1e-9
            ), (approach, rate)
