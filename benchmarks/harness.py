"""Shared infrastructure of the reproduction benchmarks.

Every ``bench_*.py`` file regenerates one table or figure of the paper.
Because the paper's implementation is Java on an iMac Pro and ours is
pure Python, benches run at a *reduced-but-faithful* scale by default;
set ``REPRO_BENCH_SCALE=full`` for paper-sized datasets (slow) or
``=smoke`` for CI-speed sanity runs.

Results are printed to stdout (run pytest with ``-s`` to see them live)
and appended to ``benchmarks/results/<bench>.txt`` so a captured run
still leaves the tables behind.
"""

from __future__ import annotations

import os
from functools import lru_cache
from pathlib import Path

from repro import (
    DiscoveryConfig,
    discover_rfds,
    load_dataset,
)
from repro.dataset.relation import Relation
from repro.discovery.dime import DiscoveryResult

RESULTS_DIR = Path(__file__).parent / "results"

#: Per-scale dataset sizes (None = the paper's size).
_SCALE_SIZES: dict[str, dict[str, int | None]] = {
    "smoke": {"restaurant": 120, "cars": 100, "glass": 80, "bridges": 60,
              "physician": 80},
    "default": {"restaurant": 300, "cars": 250, "glass": 214,
                "bridges": 108, "physician": 400},
    "full": {"restaurant": None, "cars": None, "glass": None,
             "bridges": None, "physician": 2072},
}

#: Variants per missing rate (the paper uses 5).
_SCALE_VARIANTS = {"smoke": 1, "default": 2, "full": 5}

#: Cap on discovered RFDs per RHS attribute (None = uncapped).
_SCALE_RFD_CAP = {"smoke": 10, "default": 40, "full": None}


def scale() -> str:
    """The active benchmark scale (smoke / default / full)."""
    value = os.environ.get("REPRO_BENCH_SCALE", "default")
    if value not in _SCALE_SIZES:
        raise ValueError(
            f"REPRO_BENCH_SCALE must be one of {sorted(_SCALE_SIZES)}, "
            f"got {value!r}"
        )
    return value


def variants() -> int:
    """Injected variants per missing rate at the active scale."""
    return _SCALE_VARIANTS[scale()]


def rfd_cap() -> int | None:
    """Per-RHS RFD cap at the active scale."""
    return _SCALE_RFD_CAP[scale()]


@lru_cache(maxsize=32)
def bench_dataset(name: str) -> Relation:
    """The dataset at the active scale's size (cached per session)."""
    size = _SCALE_SIZES[scale()][name]
    if size is None:
        return load_dataset(name, seed=0)
    return load_dataset(name, seed=0, n_tuples=size)


@lru_cache(maxsize=64)
def bench_rfds(
    name: str,
    threshold_limit: float,
    *,
    max_lhs_size: int = 2,
    grid_size: int = 3,
) -> DiscoveryResult:
    """Discovered RFDs for a bench dataset (cached per session)."""
    relation = bench_dataset(name)
    return discover_rfds(
        relation,
        DiscoveryConfig(
            threshold_limit=threshold_limit,
            max_lhs_size=max_lhs_size,
            grid_size=grid_size,
            max_per_rhs=rfd_cap(),
            max_pairs=300_000,
        ),
    )


class TableWriter:
    """Collects the lines of one bench's output table and persists them.

    Prints through to stdout and, on ``close``, writes the whole table
    to ``benchmarks/results/<name>.txt``.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.lines: list[str] = []

    def row(self, text: str = "") -> None:
        """Add (and echo) one output line."""
        self.lines.append(text)
        print(text)

    def header(self, title: str) -> None:
        """Add a titled separator."""
        self.row("")
        self.row(f"=== {title} (scale={scale()}) ===")

    def close(self) -> None:
        """Persist the collected table."""
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{self.name}.txt"
        path.write_text("\n".join(self.lines) + "\n", encoding="utf-8")


def format_scores_row(label: str, scores_by_key: dict) -> str:
    """One fixed-width row of P/R/F1 triples keyed by column."""
    cells = []
    for key in sorted(scores_by_key):
        scores = scores_by_key[key]
        if scores is None:
            cells.append(f"{'-':^20}")
        else:
            cells.append(
                f"{scores.precision:5.3f}/{scores.recall:5.3f}/"
                f"{scores.f1:5.3f} "
            )
    return f"{label:<14}" + " ".join(cells)
