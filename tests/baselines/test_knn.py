"""Tests for the grey-based kNN imputer."""

import pytest

from repro.baselines import GreyKNNImputer
from repro.dataset import MISSING, Relation
from repro.exceptions import ImputationError


def _numeric_clusters() -> Relation:
    """Two obvious clusters; the missing cell sits in cluster A."""
    rows = [
        [1.0, 10.0, 100.0],
        [1.1, 11.0, 101.0],
        [1.2, 10.5, MISSING],
        [9.0, 90.0, 900.0],
        [9.1, 91.0, 901.0],
    ]
    return Relation.from_rows(["X", "Y", "Z"], rows)


class TestNumericImputation:
    def test_value_from_near_cluster(self):
        result = GreyKNNImputer(k=2).impute(_numeric_clusters())
        value = result.relation.value(2, "Z")
        assert 100.0 <= value <= 101.0

    def test_k1_copies_nearest(self):
        result = GreyKNNImputer(k=1).impute(_numeric_clusters())
        assert result.relation.value(2, "Z") in (100.0, 101.0)

    def test_integer_target_rounded(self):
        relation = Relation.from_rows(
            ["X", "N"], [[1.0, 10], [1.1, 12], [1.05, MISSING]]
        )
        result = GreyKNNImputer(k=2).impute(relation)
        assert isinstance(result.relation.value(2, "N"), int)


class TestCategoricalImputation:
    def test_weighted_mode(self):
        relation = Relation.from_rows(
            ["X", "C"],
            [[1.0, "red"], [1.1, "red"], [9.0, "blue"], [1.05, MISSING]],
        )
        result = GreyKNNImputer(k=2).impute(relation)
        assert result.relation.value(3, "C") == "red"

    def test_string_similarity_drives_neighbours(self):
        relation = Relation.from_rows(
            ["Name", "City"],
            [
                ["granita", "Malibu"],
                ["granitas", MISSING],
                ["completely different", "Boston"],
            ],
        )
        result = GreyKNNImputer(k=1).impute(relation)
        assert result.relation.value(1, "City") == "Malibu"


class TestEdgeCases:
    def test_no_donor_with_value_present(self):
        relation = Relation.from_rows(
            ["X", "Y"], [[1.0, MISSING], [2.0, MISSING]]
        )
        result = GreyKNNImputer().impute(relation)
        assert result.report.imputed_count == 0

    def test_all_context_missing_skips(self):
        relation = Relation.from_rows(
            ["X", "Y"], [[MISSING, MISSING], [1.0, 5.0]]
        )
        result = GreyKNNImputer().impute(relation)
        assert result.relation.value(0, "Y") is MISSING

    def test_imputes_from_snapshot_not_chained(self):
        # Two missing cells: neither uses the other's imputed value.
        relation = Relation.from_rows(
            ["X", "Y"],
            [[1.0, 10.0], [1.0, MISSING], [1.0, MISSING]],
        )
        result = GreyKNNImputer(k=5).impute(relation)
        assert result.relation.value(1, "Y") == 10.0
        assert result.relation.value(2, "Y") == 10.0

    def test_invalid_parameters(self):
        with pytest.raises(ImputationError):
            GreyKNNImputer(k=0)
        with pytest.raises(ImputationError):
            GreyKNNImputer(zeta=0)
        with pytest.raises(ImputationError):
            GreyKNNImputer(zeta=1.5)

    def test_deterministic(self):
        first = GreyKNNImputer(k=2).impute(_numeric_clusters())
        second = GreyKNNImputer(k=2).impute(_numeric_clusters())
        assert first.relation.equals(second.relation)
