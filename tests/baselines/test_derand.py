"""Tests for the Derand baseline."""

import pytest

from repro.baselines import DerandImputer
from repro.core import OutcomeStatus
from repro.dataset import MISSING, Relation
from repro.exceptions import ImputationError
from repro.rfd import make_rfd


@pytest.fixture()
def keyed() -> Relation:
    return Relation.from_rows(
        ["K", "V", "W"],
        [
            ["a", "v1", "w1"],
            ["a", "v1", "w1"],
            ["a", MISSING, "w1"],
            ["b", "v2", "w2"],
            ["b", "v2", MISSING],
        ],
    )


class TestImputation:
    def test_fills_from_dd_matches(self, keyed):
        dds = [
            make_rfd({"K": 0}, ("V", 0)),
            make_rfd({"K": 0}, ("W", 0)),
        ]
        result = DerandImputer(dds).impute(keyed)
        assert result.relation.value(2, "V") == "v1"
        assert result.relation.value(4, "W") == "w2"
        assert result.report.fill_rate == 1.0

    def test_no_dd_for_attribute_skips(self, keyed):
        result = DerandImputer([make_rfd({"K": 0}, ("V", 0))]).impute(keyed)
        assert result.relation.value(4, "W") is MISSING
        outcome = result.report.outcome_for(4, "W")
        assert outcome.status is OutcomeStatus.NO_CANDIDATES

    def test_rejects_definitely_inconsistent_candidates(self):
        # The only candidate for t2[V] would violate V(<=0) -> K(<=0)
        # against t3 (same V donated, different K).
        relation = Relation.from_rows(
            ["K", "V"],
            [
                ["aa", "v1"],
                ["aa", MISSING],
                ["zz", "v1"],
            ],
        )
        relation.set_value(2, "V", "v1")
        dds = [
            make_rfd({"K": 0}, ("V", 0)),
            make_rfd({"V": 0}, ("K", 0)),
        ]
        result = DerandImputer(dds).impute(relation)
        outcome = result.report.outcome_for(1, "V")
        assert outcome.status is OutcomeStatus.ALL_REJECTED

    def test_support_ranking_prefers_frequent_value(self):
        relation = Relation.from_rows(
            ["K", "V"],
            [
                ["a", "common"],
                ["a", "common"],
                ["a", "rare"],
                ["a", MISSING],
            ],
        )
        result = DerandImputer([make_rfd({"K": 0}, ("V", 10))]).impute(
            relation
        )
        assert result.relation.value(3, "V") == "common"

    def test_max_candidates_cap(self):
        relation = Relation.from_rows(
            ["K", "V"],
            [["a", f"v{i}"] for i in range(10)] + [["a", MISSING]],
        )
        imputer = DerandImputer(
            [make_rfd({"K": 0}, ("V", 100))], max_candidates=3
        )
        result = imputer.impute(relation)
        assert result.report.fill_rate == 1.0


class TestValidation:
    def test_needs_dds(self):
        with pytest.raises(ImputationError):
            DerandImputer([])

    def test_invalid_max_candidates(self):
        with pytest.raises(ImputationError):
            DerandImputer([make_rfd({"A": 0}, ("B", 0))], max_candidates=0)

    def test_deterministic(self, keyed):
        dds = [make_rfd({"K": 0}, ("V", 0)), make_rfd({"K": 0}, ("W", 0))]
        first = DerandImputer(dds).impute(keyed)
        second = DerandImputer(dds).impute(keyed)
        assert first.relation.equals(second.relation)

    def test_original_untouched(self, keyed):
        DerandImputer([make_rfd({"K": 0}, ("V", 0))]).impute(keyed)
        assert keyed.count_missing() == 2
