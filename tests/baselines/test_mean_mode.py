"""Tests for the mean/mode baseline."""

from repro.baselines import MeanModeImputer
from repro.dataset import MISSING, AttributeType, Relation


def _relation():
    return Relation.from_rows(
        ["Cat", "Num", "Flt"],
        [
            ["a", 10, 1.0],
            ["b", 20, 2.0],
            ["a", MISSING, MISSING],
            [MISSING, 30, 3.0],
        ],
    )


class TestMeanMode:
    def test_mode_for_categorical(self):
        result = MeanModeImputer().impute(_relation())
        assert result.relation.value(3, "Cat") == "a"

    def test_mean_for_float(self):
        result = MeanModeImputer().impute(_relation())
        assert result.relation.value(2, "Flt") == 2.0

    def test_rounded_mean_for_integer(self):
        result = MeanModeImputer().impute(_relation())
        assert result.relation.value(2, "Num") == 20
        assert result.relation.attribute("Num").type is AttributeType.INTEGER

    def test_everything_imputed(self):
        result = MeanModeImputer().impute(_relation())
        assert result.relation.count_missing() == 0
        assert result.report.fill_rate == 1.0

    def test_mode_tie_breaks_deterministically(self):
        relation = Relation.from_rows(
            ["C"], [["b"], ["a"], [MISSING]]
        )
        result = MeanModeImputer().impute(relation)
        assert result.relation.value(2, "C") == "a"  # smallest by str

    def test_all_missing_column_skipped(self):
        relation = Relation.from_rows(
            ["A", "B"], [[MISSING, 1], [MISSING, 2]]
        )
        result = MeanModeImputer().impute(relation)
        assert result.relation.value(0, "A") is MISSING
        assert result.report.imputed_count == 0

    def test_original_untouched(self):
        relation = _relation()
        MeanModeImputer().impute(relation)
        assert relation.count_missing() == 3

    def test_report_timing_recorded(self):
        result = MeanModeImputer().impute(_relation())
        assert result.report.elapsed_seconds >= 0
