"""Tests for the HoloClean-lite baseline."""

import pytest

from repro.baselines import HolocleanLiteImputer, discover_dcs, fd_as_dc
from repro.dataset import MISSING, Relation
from repro.exceptions import ImputationError


@pytest.fixture()
def cooccurring() -> Relation:
    rows = [["90001", "LA"]] * 6 + [["94101", "SF"]] * 6
    rows.append(["90001", MISSING])
    return Relation.from_rows(["Zip", "City"], rows)


class TestImputation:
    def test_cooccurrence_drives_choice(self, cooccurring):
        result = HolocleanLiteImputer(seed=3).impute(cooccurring)
        assert result.relation.value(12, "City") == "LA"

    def test_always_commits_when_domain_exists(self, cooccurring):
        result = HolocleanLiteImputer(seed=3).impute(cooccurring)
        assert result.report.fill_rate == 1.0

    def test_dc_feature_penalizes_violations(self):
        # Without the DC, "X" and "Y" co-occur equally with the context;
        # the DC (Zip -> City) rules out the value that would clash.
        rows = (
            [["90001", "LA", "ctx"]] * 4
            + [["94101", "SF", "ctx"]] * 4
            + [["90001", MISSING, "ctx"]]
        )
        relation = Relation.from_rows(["Zip", "City", "C"], rows)
        dc = fd_as_dc(["Zip"], "City")
        result = HolocleanLiteImputer([dc], seed=3).impute(relation)
        assert result.relation.value(8, "City") == "LA"

    def test_numeric_quantization(self):
        rows = [[1.01, "low"], [1.02, "low"], [0.99, "low"],
                [9.0, "high"], [9.1, "high"], [1.0, MISSING]]
        relation = Relation.from_rows(["X", "Label"], rows)
        result = HolocleanLiteImputer(seed=1).impute(relation)
        assert result.relation.value(5, "Label") == "low"

    def test_empty_relation_of_missing_column(self):
        relation = Relation.from_rows(
            ["A", "B"], [[MISSING, MISSING], [MISSING, MISSING]]
        )
        result = HolocleanLiteImputer(seed=0).impute(relation)
        assert result.report.imputed_count == 0


class TestLearning:
    def test_deterministic_under_seed(self, cooccurring):
        first = HolocleanLiteImputer(seed=7).impute(cooccurring)
        second = HolocleanLiteImputer(seed=7).impute(cooccurring)
        assert first.relation.equals(second.relation)

    def test_domain_size_respected(self, cooccurring):
        imputer = HolocleanLiteImputer(domain_size=1, seed=0)
        result = imputer.impute(cooccurring)
        assert result.relation.value(12, "City") == "LA"

    def test_works_with_discovered_dcs(self, zip_city_relation):
        zip_city_relation.set_value(0, "City", MISSING)
        dcs = discover_dcs(zip_city_relation, max_lhs=1)
        result = HolocleanLiteImputer(dcs, seed=0).impute(zip_city_relation)
        assert result.relation.value(0, "City") == "Los Angeles"


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"domain_size": 0},
            {"epochs": 0},
            {"learning_rate": 0},
            {"training_cells": 0},
        ],
    )
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ImputationError):
            HolocleanLiteImputer(**kwargs)
