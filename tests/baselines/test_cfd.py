"""Tests for conditional functional dependencies."""

import pytest

from repro.baselines.cfd import (
    WILDCARD,
    discover_constant_cfds,
    make_cfd,
)
from repro.dataset import MISSING, Relation
from repro.exceptions import RFDValidationError


@pytest.fixture()
def phones() -> Relation:
    from repro.dataset import Attribute, AttributeType

    return Relation.from_rows(
        [
            Attribute("City"),
            Attribute("AreaCode", AttributeType.STRING),
            Attribute("Name"),
        ],
        [
            ["LA", "213", "granita"],
            ["LA", "213", "citrus"],
            ["LA", "213", "fenix"],
            ["SF", "415", "zuni"],
            ["SF", "415", "swan"],
            ["NY", "212", "katz"],
        ],
    )


class TestConstantCfd:
    def test_holds(self, phones):
        cfd = make_cfd({"City": "LA"}, ("AreaCode", "213"))
        assert cfd.holds(phones)
        assert cfd.is_constant

    def test_violation_detected(self, phones):
        phones.set_value(1, "AreaCode", "310")
        cfd = make_cfd({"City": "LA"}, ("AreaCode", "213"))
        assert cfd.violations(phones) == [(1,)]

    def test_missing_rhs_not_a_violation(self, phones):
        phones.set_value(1, "AreaCode", MISSING)
        cfd = make_cfd({"City": "LA"}, ("AreaCode", "213"))
        assert cfd.holds(phones)

    def test_non_matching_tuples_ignored(self, phones):
        cfd = make_cfd({"City": "Boston"}, ("AreaCode", "617"))
        assert cfd.holds(phones)  # vacuously

    def test_limit(self, phones):
        phones.set_value(0, "AreaCode", "310")
        phones.set_value(1, "AreaCode", "310")
        cfd = make_cfd({"City": "LA"}, ("AreaCode", "213"))
        assert len(cfd.violations(phones, limit=1)) == 1


class TestVariableCfd:
    def test_plain_fd_semantics(self, phones):
        cfd = make_cfd({"City": WILDCARD}, ("AreaCode", WILDCARD))
        assert cfd.holds(phones)
        phones.set_value(1, "AreaCode", "310")
        assert (0, 1) in cfd.violations(phones)

    def test_mixed_pattern_restricts_scope(self, phones):
        # FD holds only inside City = LA; break it elsewhere.
        phones.set_value(4, "AreaCode", "628")  # SF inconsistency
        scoped = make_cfd({"City": "LA"}, ("AreaCode", WILDCARD))
        assert scoped.holds(phones)
        unscoped = make_cfd({"City": WILDCARD}, ("AreaCode", WILDCARD))
        assert not unscoped.holds(phones)

    def test_missing_lhs_never_matches(self, phones):
        phones.set_value(0, "City", MISSING)
        cfd = make_cfd({"City": WILDCARD}, ("AreaCode", WILDCARD))
        assert cfd.holds(phones)

    def test_str_renderings(self):
        constant = make_cfd({"City": "LA"}, ("AreaCode", "213"))
        variable = make_cfd({"City": WILDCARD}, ("AreaCode", WILDCARD))
        assert "City='LA'" in str(constant)
        assert "AreaCode=_" in str(variable)


class TestValidation:
    def test_rhs_on_lhs_rejected(self):
        with pytest.raises(RFDValidationError):
            make_cfd({"A": WILDCARD}, ("A", WILDCARD))

    def test_empty_lhs_rejected(self):
        with pytest.raises(RFDValidationError):
            make_cfd({}, ("A", WILDCARD))

    def test_duplicate_lhs_rejected(self):
        from repro.baselines.cfd import CFD, PatternTuple

        with pytest.raises(RFDValidationError):
            CFD(PatternTuple((("A", "_"), ("A", "x")), "B", "_"))


class TestDiscovery:
    def test_mines_area_code_rules(self, phones):
        cfds = discover_constant_cfds(phones, min_support=2)
        rendered = {str(cfd) for cfd in cfds}
        assert "([City='LA'] -> [AreaCode='213'])" in rendered
        assert "([AreaCode='213'] -> [City='LA'])" in rendered

    def test_min_support_filters(self, phones):
        cfds = discover_constant_cfds(phones, min_support=3)
        rendered = {str(cfd) for cfd in cfds}
        assert "([City='LA'] -> [AreaCode='213'])" in rendered
        assert "([City='SF'] -> [AreaCode='415'])" not in rendered

    def test_mined_cfds_hold(self, phones):
        for cfd in discover_constant_cfds(phones, min_support=2):
            assert cfd.holds(phones)

    def test_disagreeing_groups_skipped(self, phones):
        phones.set_value(1, "AreaCode", "310")
        cfds = discover_constant_cfds(phones, min_support=2)
        rendered = {str(cfd) for cfd in cfds}
        assert not any("City='LA'] -> [AreaCode" in r for r in rendered)

    def test_invalid_parameters(self, phones):
        with pytest.raises(RFDValidationError):
            discover_constant_cfds(phones, min_support=1)
        with pytest.raises(RFDValidationError):
            discover_constant_cfds(phones, max_lhs=2)
