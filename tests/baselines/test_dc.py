"""Tests for denial constraints and their naive discovery."""

import pytest

from repro.baselines.dc import (
    DenialConstraint,
    Operator,
    Predicate,
    discover_dcs,
    fd_as_dc,
)
from repro.dataset import MISSING, Relation
from repro.exceptions import RFDValidationError


@pytest.fixture()
def relation() -> Relation:
    return Relation.from_rows(
        ["Zip", "City", "Pop"],
        [
            ["90001", "LA", 100],
            ["90001", "LA", 150],
            ["94101", "SF", 120],
            ["94101", "SF", 90],
        ],
    )


class TestOperator:
    def test_eq_neq(self):
        assert Operator.EQ.evaluate(1, 1)
        assert not Operator.EQ.evaluate(1, 2)
        assert Operator.NEQ.evaluate(1, 2)

    def test_lt_gt(self):
        assert Operator.LT.evaluate(1, 2)
        assert Operator.GT.evaluate(2, 1)
        assert not Operator.LT.evaluate(2, 2)

    def test_missing_operand_is_false(self):
        for operator in Operator:
            assert not operator.evaluate(MISSING, 1)
            assert not operator.evaluate(1, None)


class TestDenialConstraint:
    def test_fd_as_dc_holds(self, relation):
        dc = fd_as_dc(["Zip"], "City")
        assert dc.holds(relation)

    def test_violation_detected(self, relation):
        relation.set_value(1, "City", "SF")
        dc = fd_as_dc(["Zip"], "City")
        assert not dc.holds(relation)
        assert (0, 1) in dc.violations(relation)

    def test_violations_with_row(self, relation):
        relation.set_value(1, "City", "SF")
        dc = fd_as_dc(["Zip"], "City")
        assert dc.violations_with_row(relation, 1) == 1
        assert dc.violations_with_row(relation, 2) == 0

    def test_attributes(self):
        dc = fd_as_dc(["A", "B"], "C")
        assert dc.attributes == ("A", "B", "C")

    def test_rejects_empty(self):
        with pytest.raises(RFDValidationError):
            DenialConstraint(())

    def test_rejects_duplicate_predicates(self):
        predicate = Predicate("A", Operator.EQ)
        with pytest.raises(RFDValidationError):
            DenialConstraint((predicate, Predicate("A", Operator.EQ)))

    def test_str(self):
        dc = fd_as_dc(["Zip"], "City")
        assert str(dc) == "not(t1.Zip = t2.Zip and t1.City != t2.City)"

    def test_violations_limit(self, relation):
        relation.set_value(1, "City", "SF")
        relation.set_value(3, "City", "LA")
        dc = fd_as_dc(["Zip"], "City")
        assert len(dc.violations(relation, limit=1)) == 1


class TestDiscoverDcs:
    def test_finds_zip_city_fd(self, relation):
        dcs = discover_dcs(relation, max_lhs=1)
        rendered = {str(dc) for dc in dcs}
        assert "not(t1.Zip = t2.Zip and t1.City != t2.City)" in rendered

    def test_discovered_dcs_hold(self, relation):
        for dc in discover_dcs(relation, max_lhs=2):
            assert dc.holds(relation)

    def test_minimality_skips_supersets(self, relation):
        dcs = discover_dcs(relation, max_lhs=2)
        city_rhs = [
            dc for dc in dcs if dc.predicates[-1].attribute == "City"
        ]
        # Zip -> City holds, so {Zip, Pop} -> City must not be emitted.
        assert all(len(dc.predicates) == 2 for dc in city_rhs)

    def test_min_evidence_filters_vacuous(self):
        relation = Relation.from_rows(
            ["A", "B"], [["x", "1"], ["y", "2"], ["z", "3"]]
        )
        assert discover_dcs(relation, min_evidence=1) == []

    def test_missing_values_tolerated(self):
        relation = Relation.from_rows(
            ["K", "V"],
            [["a", "x"], ["a", "x"], [MISSING, "y"], ["a", MISSING]],
        )
        dcs = discover_dcs(relation, max_lhs=1, min_evidence=1)
        assert all(dc.holds(relation) for dc in dcs)
