"""Contract tests every imputer must satisfy.

Parametrized across RENUVER and all baselines: whatever the strategy,
an imputer must only write missing cells, report exactly the missing
cells, keep the input untouched, and be deterministic.
"""

import pytest

from repro import (
    DerandImputer,
    GreyKNNImputer,
    HolocleanLiteImputer,
    MeanModeImputer,
    Renuver,
    inject_missing,
    make_rfd,
)
from repro.baselines.derand import RandomizedImputer
from repro.dataset import Relation, is_missing


def _relation() -> Relation:
    rows = []
    for i in range(24):
        key = f"k{i % 4}"
        rows.append([key, f"value-{i % 4}", (i % 4) * 10 + 5])
    return Relation.from_rows(["K", "V", "N"], rows, name="contract")


def _rfds():
    return [
        make_rfd({"K": 0}, ("V", 1)),
        make_rfd({"K": 0}, ("N", 2)),
        make_rfd({"V": 1}, ("K", 0)),
    ]


FACTORIES = {
    "renuver": lambda: Renuver(_rfds()),
    "derand": lambda: DerandImputer(_rfds()),
    "derand-randomized": lambda: RandomizedImputer(_rfds(), seed=3),
    "knn": lambda: GreyKNNImputer(k=3),
    "holoclean": lambda: HolocleanLiteImputer(seed=1,
                                              training_cells=40),
    "mean-mode": MeanModeImputer,
}


@pytest.fixture(params=sorted(FACTORIES), ids=sorted(FACTORIES))
def imputer_factory(request):
    return FACTORIES[request.param]


class TestImputerContracts:
    def test_only_missing_cells_written(self, imputer_factory):
        injection = inject_missing(_relation(), count=5, seed=11)
        result = imputer_factory().impute(injection.relation)
        changed = result.relation.diff_cells(injection.relation)
        assert set(changed) <= set(injection.cells)

    def test_report_covers_exactly_missing_cells(self, imputer_factory):
        injection = inject_missing(_relation(), count=5, seed=12)
        result = imputer_factory().impute(injection.relation)
        reported = {(o.row, o.attribute) for o in result.report}
        assert reported == set(injection.cells)

    def test_input_not_mutated(self, imputer_factory):
        injection = inject_missing(_relation(), count=5, seed=13)
        before = injection.relation.copy()
        imputer_factory().impute(injection.relation)
        assert injection.relation.equals(before)

    def test_inplace_mutates_and_returns_same_object(self,
                                                     imputer_factory):
        injection = inject_missing(_relation(), count=5, seed=14)
        target = injection.relation.copy()
        result = imputer_factory().impute(target, inplace=True)
        assert result.relation is target

    def test_deterministic(self, imputer_factory):
        injection = inject_missing(_relation(), count=5, seed=15)
        first = imputer_factory().impute(injection.relation)
        second = imputer_factory().impute(injection.relation)
        assert first.relation.equals(second.relation)

    def test_report_consistent_with_relation(self, imputer_factory):
        injection = inject_missing(_relation(), count=6, seed=16)
        result = imputer_factory().impute(injection.relation)
        for outcome in result.report:
            cell_value = result.relation.value(
                outcome.row, outcome.attribute
            )
            if outcome.imputed:
                assert not is_missing(cell_value)
                assert cell_value == outcome.value
            else:
                assert is_missing(cell_value)

    def test_elapsed_recorded(self, imputer_factory):
        injection = inject_missing(_relation(), count=3, seed=17)
        result = imputer_factory().impute(injection.relation)
        assert result.report.elapsed_seconds >= 0

    def test_clean_relation_is_noop(self, imputer_factory):
        clean = _relation()
        result = imputer_factory().impute(clean)
        assert result.report.missing_count == 0
        assert result.relation.equals(clean)
