"""Tests for the randomized precursor of Derand."""

import pytest

from repro.baselines.derand import DerandImputer, RandomizedImputer
from repro.core import OutcomeStatus
from repro.dataset import MISSING, Relation
from repro.exceptions import ImputationError
from repro.rfd import make_rfd


def _relation() -> Relation:
    return Relation.from_rows(
        ["K", "V"],
        [
            ["a", "v1"],
            ["a", "v1"],
            ["a", MISSING],
            ["b", "v2"],
        ],
    )


class TestRandomized:
    def test_fills_consistent_candidate(self):
        imputer = RandomizedImputer(
            [make_rfd({"K": 0}, ("V", 0))], seed=1
        )
        result = imputer.impute(_relation())
        assert result.relation.value(2, "V") == "v1"

    def test_seeded_determinism(self):
        dds = [make_rfd({"K": 0}, ("V", 10))]
        first = RandomizedImputer(dds, seed=5).impute(_relation())
        second = RandomizedImputer(dds, seed=5).impute(_relation())
        assert first.relation.equals(second.relation)

    def test_different_seeds_may_differ(self):
        relation = Relation.from_rows(
            ["K", "V"],
            [["a", f"v{i}"] for i in range(8)] + [["a", MISSING]],
        )
        dds = [make_rfd({"K": 0}, ("V", 100))]
        values = {
            RandomizedImputer(dds, seed=seed)
            .impute(relation)
            .relation.value(8, "V")
            for seed in range(8)
        }
        assert len(values) > 1  # genuinely randomized

    def test_rejects_definite_violations(self):
        relation = Relation.from_rows(
            ["K", "V"],
            [["aa", "v1"], ["aa", MISSING], ["zz", "v1"]],
        )
        dds = [
            make_rfd({"K": 0}, ("V", 0)),
            make_rfd({"V": 0}, ("K", 0)),
        ]
        result = RandomizedImputer(dds, seed=0, attempts=5).impute(
            relation
        )
        outcome = result.report.outcome_for(1, "V")
        assert outcome.status is OutcomeStatus.ALL_REJECTED

    def test_no_candidates_skipped(self):
        relation = Relation.from_rows(
            ["K", "V"], [["a", MISSING], ["b", "x"]]
        )
        result = RandomizedImputer(
            [make_rfd({"K": 0}, ("V", 0))], seed=0
        ).impute(relation)
        assert result.report.outcome_for(0, "V").status is (
            OutcomeStatus.NO_CANDIDATES
        )

    def test_invalid_attempts(self):
        with pytest.raises(ImputationError):
            RandomizedImputer(
                [make_rfd({"K": 0}, ("V", 0))], attempts=0
            )

    def test_inherits_derand_candidate_generation(self):
        dds = [make_rfd({"K": 0}, ("V", 10))]
        randomized = RandomizedImputer(dds, seed=0)
        derand = DerandImputer(dds)
        # Same domain machinery: both fill the same cell on this input.
        first = randomized.impute(_relation())
        second = derand.impute(_relation())
        assert first.relation.value(2, "V") == (
            second.relation.value(2, "V")
        )
