"""Tests for multi-dataset candidate selection (future work #2)."""

import pytest

from repro import MISSING, Relation, RenuverConfig, make_rfd
from repro.exceptions import ImputationError
from repro.extensions import MultiSourceRenuver


def _target() -> Relation:
    return Relation.from_rows(
        ["Zip", "City"],
        [
            ["90001", "Los Angeles"],
            ["94101", MISSING],   # no local donor knows 94101
            ["90001", MISSING],   # local donor exists
        ],
        name="target",
    )


def _source() -> Relation:
    return Relation.from_rows(
        ["Zip", "City"],
        [
            ["94101", "San Francisco"],
            ["94101", "San Francisco"],
        ],
        name="aux",
    )


@pytest.fixture()
def rfd():
    return make_rfd({"Zip": 0}, ("City", 1))


class TestMultiSource:
    def test_source_supplies_missing_donor(self, rfd):
        engine = MultiSourceRenuver([rfd], [_source()])
        result = engine.impute(_target())
        assert result.relation.value(1, "City") == "San Francisco"
        assert result.relation.value(2, "City") == "Los Angeles"

    def test_without_source_cell_stays_missing(self, rfd):
        from repro import Renuver

        result = Renuver([rfd]).impute(_target())
        assert result.relation.value(1, "City") is MISSING

    def test_result_projected_to_target_rows(self, rfd):
        engine = MultiSourceRenuver([rfd], [_source()])
        result = engine.impute(_target())
        assert result.relation.n_tuples == 3
        assert all(outcome.row < 3 for outcome in result.report)

    def test_source_cells_never_imputed(self, rfd):
        source = _source()
        source.set_value(0, "City", MISSING)
        engine = MultiSourceRenuver([rfd], [source])
        result = engine.impute(_target())
        # The source's own missing cell is not part of the report.
        assert all(outcome.row < 3 for outcome in result.report)

    def test_donor_origin_attribution(self, rfd):
        target = _target()
        engine = MultiSourceRenuver([rfd], [_source()])
        result = engine.impute(target)
        outcome_sf = result.report.outcome_for(1, "City")
        outcome_la = result.report.outcome_for(2, "City")
        assert engine.donor_origin(outcome_sf, target) == "aux"
        assert engine.donor_origin(outcome_la, target) == "target"

    def test_verification_spans_sources(self):
        # The candidate from the target would clash with source
        # evidence under City -> Zip; verification must catch it.
        sigma = [
            make_rfd({"Zip": 2}, ("City", 100)),  # loose generator
            make_rfd({"City": 0}, ("Zip", 0)),     # cross-source verifier
        ]
        target = Relation.from_rows(
            ["Zip", "City"],
            [["90001", "Springfield"], ["90099", MISSING]],
            name="target",
        )
        source = Relation.from_rows(
            ["Zip", "City"],
            [["11111", "Springfield"]],
            name="aux",
        )
        engine = MultiSourceRenuver(
            sigma, [source], RenuverConfig()
        )
        result = engine.impute(target)
        # "Springfield" via the loose RFD would violate City -> Zip
        # against both the target row and the source row.
        assert result.relation.value(1, "City") is MISSING

    def test_schema_mismatch_rejected(self, rfd):
        bad_source = Relation.from_rows(["Zip"], [["1"]])
        engine = MultiSourceRenuver([rfd], [bad_source])
        with pytest.raises(ImputationError):
            engine.impute(_target())

    def test_needs_sources(self, rfd):
        with pytest.raises(ImputationError):
            MultiSourceRenuver([rfd], [])

    def test_multiple_sources_in_order(self, rfd):
        first = Relation.from_rows(
            ["Zip", "City"], [["94101", "SF-a"]], name="first"
        )
        second = Relation.from_rows(
            ["Zip", "City"], [["94101", "SF-b"]], name="second"
        )
        engine = MultiSourceRenuver(
            [rfd], [first, second], RenuverConfig(verify=False)
        )
        target = _target()
        result = engine.impute(target)
        outcome = result.report.outcome_for(1, "City")
        assert engine.donor_origin(outcome, target) in (
            "first", "second"
        )
