"""Tests for incremental imputation sessions (future work #3)."""

import pytest

from repro import MISSING, Relation, make_rfd
from repro.exceptions import ImputationError
from repro.extensions import ImputationSession


def _seed_relation() -> Relation:
    return Relation.from_rows(
        ["K", "V"],
        [["a", "v-a"], ["b", "v-b"]],
        name="stream",
    )


@pytest.fixture()
def rfd():
    return make_rfd({"K": 0}, ("V", 0))


class TestSession:
    def test_appended_missing_cells_become_pending(self, rfd):
        session = ImputationSession(_seed_relation(), [rfd])
        rows = session.append([["a", MISSING], ["c", MISSING]])
        assert rows == [2, 3]
        assert session.pending_cells == [(2, "V"), (3, "V")]

    def test_impute_pending_fills_what_it_can(self, rfd):
        session = ImputationSession(_seed_relation(), [rfd])
        session.append([["a", MISSING], ["c", MISSING]])
        result = session.impute_pending()
        assert session.relation.value(2, "V") == "v-a"
        assert session.relation.value(3, "V") is MISSING  # no donor yet
        assert result.report.imputed_count == 1
        assert session.unimputed_cells() == [(3, "V")]

    def test_late_donor_enables_retry(self, rfd):
        session = ImputationSession(_seed_relation(), [rfd])
        session.append([["c", MISSING]])
        session.impute_pending()
        assert session.relation.value(2, "V") is MISSING
        # The donor for key "c" arrives later.
        session.append([["c", "v-c"]])
        result = session.impute_pending()
        assert session.relation.value(2, "V") == "v-c"
        assert result.report.imputed_count == 1

    def test_no_retry_mode_drops_failures(self, rfd):
        session = ImputationSession(
            _seed_relation(), [rfd], retry_unimputed=False
        )
        session.append([["c", MISSING]])
        session.impute_pending()
        session.append([["c", "v-c"]])
        # Failed cell was dropped; only fresh cells are pending.
        assert (2, "V") not in session.pending_cells
        session.impute_pending()
        assert session.relation.value(2, "V") is MISSING

    def test_imputed_rows_become_donors(self, rfd):
        session = ImputationSession(_seed_relation(), [rfd])
        session.append([["a", MISSING]])
        session.impute_pending()
        # Row 2 now holds "v-a" and can donate within the same round.
        session.append([["a", MISSING]])
        result = session.impute_pending()
        assert result.report.imputed_count == 1
        assert session.relation.value(3, "V") == "v-a"

    def test_round_report_scoped_to_new_cells(self, rfd):
        seed = _seed_relation()
        seed.set_value(0, "V", MISSING)  # pre-existing missing cell
        session = ImputationSession(seed, [rfd])
        first = session.impute_pending()
        assert {(o.row, o.attribute) for o in first.report} == {(0, "V")}
        session.append([["b", MISSING]])
        second = session.impute_pending()
        reported = {(o.row, o.attribute) for o in second.report}
        assert (2, "V") in reported

    def test_empty_round_is_cheap(self, rfd):
        session = ImputationSession(_seed_relation(), [rfd])
        result = session.impute_pending()
        assert len(result.report) == 0
        assert session.rounds == 1

    def test_bad_row_width_rejected(self, rfd):
        session = ImputationSession(_seed_relation(), [rfd])
        with pytest.raises(ImputationError):
            session.append([["only-one-value"]])

    def test_values_coerced_on_append(self, rfd):
        relation = Relation.from_rows(["K", "N"], [["a", 1]])
        session = ImputationSession(
            relation, [make_rfd({"K": 0}, ("N", 0))]
        )
        session.append([["b", "7"]])
        assert session.relation.value(1, "N") == 7

    def test_seed_relation_not_mutated(self, rfd):
        seed = _seed_relation()
        session = ImputationSession(seed, [rfd])
        session.append([["a", MISSING]])
        session.impute_pending()
        assert seed.n_tuples == 2
