"""Tests for data-driven threshold bounds (future work #1)."""

import pytest

from repro import DiscoveryConfig, Relation, discover_rfds
from repro.exceptions import DiscoveryError
from repro.extensions import (
    config_with_suggested_limits,
    suggest_threshold_limits,
)


@pytest.fixture()
def mixed_scales() -> Relation:
    # Weight spans thousands; RI spans hundredths.
    rows = [
        [2000 + 100 * i, 1.51 + 0.001 * i, f"name{i}"] for i in range(12)
    ]
    return Relation.from_rows(["Weight", "RI", "Name"], rows)


class TestSuggestLimits:
    def test_limits_track_attribute_scale(self, mixed_scales):
        limits = suggest_threshold_limits(mixed_scales, quantile=0.25)
        assert limits["Weight"] > 10 * limits["RI"]
        assert limits["RI"] < 0.02

    def test_quantile_monotonicity(self, mixed_scales):
        low = suggest_threshold_limits(mixed_scales, quantile=0.1)
        high = suggest_threshold_limits(mixed_scales, quantile=0.9)
        for name in mixed_scales.attribute_names:
            assert low[name] <= high[name]

    def test_all_missing_attribute_gets_zero(self):
        from repro.dataset import MISSING

        relation = Relation.from_rows(
            ["A", "B"], [[MISSING, 1], [MISSING, 2]]
        )
        limits = suggest_threshold_limits(relation)
        assert limits["A"] == 0.0

    def test_invalid_quantile(self, mixed_scales):
        with pytest.raises(DiscoveryError):
            suggest_threshold_limits(mixed_scales, quantile=0)
        with pytest.raises(DiscoveryError):
            suggest_threshold_limits(mixed_scales, quantile=1)

    def test_deterministic(self, mixed_scales):
        assert suggest_threshold_limits(
            mixed_scales, seed=1
        ) == suggest_threshold_limits(mixed_scales, seed=1)


class TestConfigIntegration:
    def test_config_with_limits_discovers_on_small_scales(self,
                                                          mixed_scales):
        # A global limit of 3 sees RI as "everything equal"; the
        # per-attribute cap keeps RI thresholds in domain scale.
        config = config_with_suggested_limits(
            mixed_scales, DiscoveryConfig(threshold_limit=3, grid_size=3)
        )
        assert config.attribute_limits is not None
        assert config.lhs_limit_for("RI") < 1
        result = discover_rfds(mixed_scales, config)
        ri_rfds = [r for r in result.rfds if "RI" in r.lhs_attributes]
        for rfd in ri_rfds:
            assert rfd.lhs_constraint("RI").threshold <= (
                config.lhs_limit_for("RI")
            )

    def test_per_attribute_limits_respected_in_output(self, mixed_scales):
        config = DiscoveryConfig(
            threshold_limit=100,
            grid_size=3,
            attribute_limits={"Weight": 150.0},
        )
        result = discover_rfds(mixed_scales, config)
        for rfd in result.rfds:
            if rfd.rhs_attribute == "Weight":
                assert rfd.rhs_threshold <= 150.0
            if rfd.has_lhs_attribute("Weight"):
                assert rfd.lhs_constraint("Weight").threshold <= 150.0

    def test_negative_attribute_limit_rejected(self):
        with pytest.raises(DiscoveryError):
            DiscoveryConfig(attribute_limits={"A": -1})

    def test_limit_lookup_falls_back_to_global(self):
        config = DiscoveryConfig(
            threshold_limit=5, attribute_limits={"A": 2}
        )
        assert config.lhs_limit_for("A") == 2
        assert config.lhs_limit_for("B") == 5
        assert config.rhs_limit_for("A") == 2
        assert config.rhs_limit_for("B") == 5
