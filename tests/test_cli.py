"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.dataset import read_csv
from repro.evaluation import save_rule_file
from repro.evaluation.rules import DatasetValidator, DeltaRule

CSV = (
    "Zip,City,Age\n"
    "90001,Los Angeles,34\n"
    "90001,Los Angeles,41\n"
    "94101,San Francisco,29\n"
    "94101,San Francisco,55\n"
    "10001,New York,47\n"
    "10001,New York,38\n"
)

DIRTY_CSV = CSV.replace("94101,San Francisco,55", "94101,,55")


@pytest.fixture()
def clean_csv(tmp_path):
    path = tmp_path / "clean.csv"
    path.write_text(CSV)
    return path


@pytest.fixture()
def dirty_csv(tmp_path):
    path = tmp_path / "dirty.csv"
    path.write_text(DIRTY_CSV)
    return path


class TestDiscover:
    def test_discover_to_stdout(self, clean_csv, capsys):
        assert main(["discover", str(clean_csv), "--limit", "3"]) == 0
        out = capsys.readouterr().out
        assert "->" in out

    def test_discover_to_file(self, clean_csv, tmp_path):
        out = tmp_path / "rfds.txt"
        code = main([
            "discover", str(clean_csv), "--limit", "3",
            "--out", str(out),
        ])
        assert code == 0
        assert "->" in out.read_text()

    def test_max_per_rhs(self, clean_csv, capsys):
        assert main([
            "discover", str(clean_csv), "--limit", "6",
            "--max-per-rhs", "1",
        ]) == 0
        lines = [
            line for line in capsys.readouterr().out.splitlines() if line
        ]
        rhs = [line.rsplit("->", 1)[1].split("(")[0].strip()
               for line in lines]
        assert all(rhs.count(name) <= 2 for name in set(rhs))


class TestImpute:
    def test_impute_round_trip(self, dirty_csv, tmp_path):
        rfds = tmp_path / "rfds.txt"
        rfds.write_text("Zip(<=0) -> City(<=1)\n")
        out = tmp_path / "clean.csv"
        code = main([
            "impute", str(dirty_csv), "--rfds", str(rfds),
            "--out", str(out),
        ])
        assert code == 0
        imputed = read_csv(out)
        assert imputed.value(3, "City") == "San Francisco"
        assert imputed.count_missing() == 0

    def test_impute_to_stdout(self, dirty_csv, tmp_path, capsys):
        rfds = tmp_path / "rfds.txt"
        rfds.write_text("Zip(<=0) -> City(<=1)\n")
        assert main([
            "impute", str(dirty_csv), "--rfds", str(rfds), "--report",
        ]) == 0
        captured = capsys.readouterr()
        assert "San Francisco" in captured.out
        assert "from tuple" in captured.err

    def test_missing_rfd_file(self, dirty_csv):
        assert main([
            "impute", str(dirty_csv), "--rfds", "/nonexistent.txt",
        ]) == 1


class TestEvaluate:
    def test_evaluate_prints_scores(self, clean_csv, capsys):
        code = main([
            "evaluate", str(clean_csv), "--rate", "0.1",
            "--limit", "3", "--seed", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "P=" in out and "R=" in out

    def test_evaluate_with_rules(self, clean_csv, tmp_path, capsys):
        rules = tmp_path / "rules.json"
        save_rule_file(
            DatasetValidator({"Age": [DeltaRule(100)]}), rules
        )
        code = main([
            "evaluate", str(clean_csv), "--rate", "0.1",
            "--rules", str(rules),
        ])
        assert code == 0
        assert "P=" in capsys.readouterr().out


class TestDatasets:
    def test_list(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "restaurant" in out and "physician" in out

    def test_export(self, tmp_path):
        out = tmp_path / "bridges.csv"
        code = main([
            "datasets", "--export", "bridges", "--tuples", "20",
            "--out", str(out),
        ])
        assert code == 0
        assert read_csv(out).n_tuples == 20

    def test_export_unknown(self, capsys):
        # DataError family -> exit 4 under the CLI error contract
        assert main(["datasets", "--export", "nope"]) == 4
        assert "error" in capsys.readouterr().err


class TestTopLevel:
    def test_no_command_prints_help(self, capsys):
        assert main([]) == 2
        out = capsys.readouterr().out
        assert "usage" in out
        assert "serve" in out


class TestServe:
    """Parser-level checks; live-server behavior is covered by
    ``tests/service/`` (including the SIGTERM smoke suite)."""

    def test_help_documents_the_service_flags(self, capsys):
        with pytest.raises(SystemExit) as info:
            main(["serve", "--help"])
        assert info.value.code == 0
        out = capsys.readouterr().out
        for flag in ["--host", "--port", "--artifact-dir",
                     "--max-inflight", "--max-sessions",
                     "--request-budget", "--limit"]:
            assert flag in out, flag

    def test_bad_service_config_exits_8(self, capsys):
        assert main(["serve", "--max-inflight", "0"]) == 8
        err = capsys.readouterr().err
        assert err.startswith("error:")


class TestErrorContract:
    """Distinct exit codes per error family, one-line stderr."""

    def test_exit_code_map(self):
        from repro.cli import exit_code_for
        from repro import exceptions as E

        assert exit_code_for(E.BudgetExceededError("x")) == 3
        assert exit_code_for(E.CSVFormatError("x")) == 4
        assert exit_code_for(E.DataError("x")) == 4
        assert exit_code_for(E.SchemaError("x")) == 4
        assert exit_code_for(E.RFDParseError("x")) == 5
        assert exit_code_for(E.RuleFileError("x")) == 5
        assert exit_code_for(E.JournalError("x")) == 5
        assert exit_code_for(E.ImputationError("x")) == 6
        assert exit_code_for(E.EvaluationError("x")) == 6
        assert exit_code_for(E.ServiceError("x")) == 8
        assert exit_code_for(E.ReproError("x")) == 1

    def test_bad_csv_exits_4_one_line(self, tmp_path, capsys):
        bad = tmp_path / "bad.csv"
        bad.write_text("A,B\n1,2,3\n")
        rfds = tmp_path / "rfds.txt"
        rfds.write_text("A(<=0) -> B(<=0)\n")
        assert main([
            "impute", str(bad), "--rfds", str(rfds),
        ]) == 4
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_bad_rfd_file_exits_5(self, dirty_csv, tmp_path, capsys):
        rfds = tmp_path / "rfds.txt"
        rfds.write_text("this is not an RFD\n")
        assert main([
            "impute", str(dirty_csv), "--rfds", str(rfds),
        ]) == 5
        assert "error:" in capsys.readouterr().err

    def test_debug_reraises(self, tmp_path):
        from repro.exceptions import CSVFormatError

        bad = tmp_path / "bad.csv"
        bad.write_text("A,B\n1,2,3\n")
        rfds = tmp_path / "rfds.txt"
        rfds.write_text("A(<=0) -> B(<=0)\n")
        with pytest.raises(CSVFormatError):
            main(["--debug", "impute", str(bad), "--rfds", str(rfds)])


class TestRobustnessFlags:
    def test_budget_exceeded_exits_3_with_partial(
        self, dirty_csv, tmp_path, capsys
    ):
        rfds = tmp_path / "rfds.txt"
        rfds.write_text("Zip(<=0) -> City(<=1)\n")
        out = tmp_path / "partial.csv"
        code = main([
            "impute", str(dirty_csv), "--rfds", str(rfds),
            "--budget", "1e-9", "--out", str(out),
        ])
        assert code == 3
        err = capsys.readouterr().err
        assert "error:" in err and "budget" in err
        assert out.exists()  # partial result preserved

    def test_on_budget_partial_exits_0(self, dirty_csv, tmp_path):
        rfds = tmp_path / "rfds.txt"
        rfds.write_text("Zip(<=0) -> City(<=1)\n")
        out = tmp_path / "partial.csv"
        code = main([
            "impute", str(dirty_csv), "--rfds", str(rfds),
            "--budget", "1e-9", "--on-budget", "partial",
            "--out", str(out),
        ])
        assert code == 0
        assert out.exists()

    def test_journal_then_resume(self, dirty_csv, tmp_path):
        rfds = tmp_path / "rfds.txt"
        rfds.write_text("Zip(<=0) -> City(<=1)\n")
        journal = tmp_path / "run.jsonl"
        out1 = tmp_path / "out1.csv"
        assert main([
            "impute", str(dirty_csv), "--rfds", str(rfds),
            "--journal", str(journal), "--out", str(out1),
        ]) == 0
        assert journal.exists()
        # Resuming a *finished* journal replays everything and changes
        # nothing — the output stays identical.
        out2 = tmp_path / "out2.csv"
        assert main([
            "impute", str(dirty_csv), "--rfds", str(rfds),
            "--resume", str(journal), "--out", str(out2),
        ]) == 0
        assert out1.read_text() == out2.read_text()

    def test_scalar_engine_flag(self, dirty_csv, tmp_path):
        rfds = tmp_path / "rfds.txt"
        rfds.write_text("Zip(<=0) -> City(<=1)\n")
        out = tmp_path / "clean.csv"
        assert main([
            "impute", str(dirty_csv), "--rfds", str(rfds),
            "--engine", "scalar", "--out", str(out),
        ]) == 0
        assert read_csv(out).count_missing() == 0


class TestTelemetryFlags:
    """--trace / --metrics / --profile and the logging flags."""

    @pytest.fixture()
    def rfds(self, tmp_path):
        path = tmp_path / "rfds.txt"
        path.write_text("Zip(<=0) -> City(<=1)\n")
        return path

    def test_trace_and_metrics_files(self, dirty_csv, rfds, tmp_path):
        trace = tmp_path / "t.jsonl"
        metrics = tmp_path / "m.prom"
        code = main([
            "impute", str(dirty_csv), "--rfds", str(rfds),
            "--out", str(tmp_path / "clean.csv"),
            "--trace", str(trace), "--metrics", str(metrics),
        ])
        assert code == 0
        from repro.telemetry import read_trace

        spans = read_trace(trace)
        assert {s["name"] for s in spans} >= {
            "impute", "preprocess", "cell"
        }
        text = metrics.read_text()
        assert "# TYPE renuver_cell_seconds histogram" in text
        assert 'renuver_runs_total{status="ok"} 1' in text

    def test_profile_prints_phase_table(self, dirty_csv, rfds, capsys):
        code = main([
            "impute", str(dirty_csv), "--rfds", str(rfds), "--profile",
        ])
        assert code == 0
        err = capsys.readouterr().err
        assert "span" in err and "share" in err
        assert "impute" in err and "cell" in err

    def test_evaluate_accepts_telemetry_flags(
        self, clean_csv, tmp_path, capsys
    ):
        trace = tmp_path / "t.jsonl"
        code = main([
            "evaluate", str(clean_csv), "--rate", "0.1",
            "--trace", str(trace), "--profile",
        ])
        assert code == 0
        from repro.telemetry import read_trace

        names = {s["name"] for s in read_trace(trace)}
        assert "discover" in names and "impute" in names

    def test_trace_written_even_on_budget_abort(
        self, dirty_csv, rfds, tmp_path, capsys
    ):
        trace = tmp_path / "t.jsonl"
        code = main([
            "impute", str(dirty_csv), "--rfds", str(rfds),
            "--budget", "1e-9", "--trace", str(trace),
        ])
        assert code == 3  # exit-code contract unchanged
        assert trace.exists()

    def test_no_flags_means_no_files(self, dirty_csv, rfds, tmp_path):
        code = main([
            "impute", str(dirty_csv), "--rfds", str(rfds),
            "--out", str(tmp_path / "clean.csv"),
        ])
        assert code == 0
        assert list(tmp_path.glob("*.jsonl")) == []
        assert list(tmp_path.glob("*.prom")) == []


class TestLoggingFlags:
    @pytest.fixture(autouse=True)
    def _clean_logging(self):
        import logging

        from repro.telemetry import get_logger, reset_logging

        yield
        reset_logging()
        get_logger().setLevel(logging.NOTSET)

    def test_log_level_attaches_a_handler(self, dirty_csv, tmp_path):
        import logging

        from repro.telemetry import get_logger

        rfds = tmp_path / "rfds.txt"
        rfds.write_text("Zip(<=0) -> City(<=1)\n")
        assert main([
            "--log-level", "info", "impute", str(dirty_csv),
            "--rfds", str(rfds), "--out", str(tmp_path / "c.csv"),
        ]) == 0
        logger = get_logger()
        assert logger.level == logging.INFO
        assert any(
            getattr(h, "_repro_managed", False) for h in logger.handlers
        )

    def test_debug_implies_debug_log_level(self, tmp_path):
        import logging

        from repro.telemetry import get_logger

        main(["--debug", "datasets"])
        assert get_logger().level == logging.DEBUG

    def test_explicit_log_level_wins_over_debug(self, tmp_path):
        import logging

        from repro.telemetry import get_logger

        main(["--debug", "--log-level", "error", "datasets"])
        assert get_logger().level == logging.ERROR

    def test_log_json_emits_json_records(
        self, dirty_csv, tmp_path, capsys
    ):
        import json

        rfds = tmp_path / "rfds.txt"
        rfds.write_text("Zip(<=0) -> City(<=1)\n")
        assert main([
            "--log-json", "impute", str(dirty_csv),
            "--rfds", str(rfds), "--out", str(tmp_path / "c.csv"),
        ]) == 0
        err = capsys.readouterr().err
        json_lines = [
            line for line in err.splitlines()
            if line.startswith("{")
        ]
        assert json_lines
        record = json.loads(json_lines[-1])
        assert record["logger"].startswith("repro.")
        assert "message" in record and "timestamp" in record

    def test_exit_codes_unchanged_with_logging_enabled(
        self, tmp_path, capsys
    ):
        bad = tmp_path / "bad.csv"
        bad.write_text("A,B\n1,2,3\n")
        rfds = tmp_path / "rfds.txt"
        rfds.write_text("A(<=0) -> B(<=0)\n")
        assert main([
            "--log-level", "debug", "impute", str(bad),
            "--rfds", str(rfds),
        ]) == 4
