"""Tests for the Levenshtein implementations, incl. metric properties."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distance.levenshtein import (
    levenshtein,
    levenshtein_bounded,
    normalized_levenshtein,
)

short_text = st.text(
    alphabet=st.characters(codec="ascii", categories=("L", "N", "P", "Z")),
    max_size=24,
)


class TestExact:
    @pytest.mark.parametrize(
        ("a", "b", "expected"),
        [
            ("", "", 0),
            ("a", "", 1),
            ("", "abc", 3),
            ("kitten", "sitting", 3),
            ("flaw", "lawn", 2),
            ("Los Angeles", "LA", 9),
            ("213/848-6677", "213-848-6677", 1),
            ("abc", "abc", 0),
            ("abc", "abd", 1),
        ],
    )
    def test_known_distances(self, a, b, expected):
        assert levenshtein(a, b) == expected

    def test_paper_example_name_distance(self):
        # Example 5.5: Name("Fenix", "Fenix Argyle") = 7
        assert levenshtein("Fenix", "Fenix Argyle") == 7


class TestExactProperties:
    @given(short_text, short_text)
    def test_symmetry(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)

    @given(short_text)
    def test_identity(self, a):
        assert levenshtein(a, a) == 0

    @given(short_text, short_text)
    def test_bounds(self, a, b):
        distance = levenshtein(a, b)
        assert abs(len(a) - len(b)) <= distance <= max(len(a), len(b))

    @given(short_text, short_text)
    def test_positivity(self, a, b):
        if a != b:
            assert levenshtein(a, b) >= 1

    @settings(max_examples=50)
    @given(short_text, short_text, short_text)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)

    @given(short_text, short_text)
    def test_single_char_append(self, a, b):
        assert levenshtein(a + "x", a) == 1


class TestBounded:
    @given(short_text, short_text, st.integers(min_value=0, max_value=30))
    def test_agrees_with_exact_up_to_limit(self, a, b, limit):
        exact = levenshtein(a, b)
        bounded = levenshtein_bounded(a, b, limit)
        if exact <= limit:
            assert bounded == exact
        else:
            assert bounded == limit + 1

    def test_zero_limit(self):
        assert levenshtein_bounded("same", "same", 0) == 0
        assert levenshtein_bounded("same", "Same", 0) == 1

    def test_length_gap_short_circuit(self):
        assert levenshtein_bounded("a" * 30, "a", 5) == 6

    def test_negative_limit_raises(self):
        with pytest.raises(ValueError):
            levenshtein_bounded("a", "b", -1)

    def test_empty_strings(self):
        assert levenshtein_bounded("", "", 3) == 0
        assert levenshtein_bounded("", "ab", 3) == 2
        assert levenshtein_bounded("", "abcd", 3) == 4

    @pytest.mark.parametrize("seed", [0, 7, 42])
    def test_clamp_property_randomized(self, seed):
        """levenshtein_bounded(a, b, k) == min(levenshtein(a, b), k + 1)
        on seeded random pairs — the exact contract the donor-scan
        kernels rely on when clamping string vectors at the largest
        threshold in play."""
        rng = random.Random(seed)
        alphabet = "abcXYZ 0189-/"

        def sample() -> str:
            return "".join(
                rng.choice(alphabet) for _ in range(rng.randrange(0, 20))
            )

        pairs = [(sample(), sample()) for _ in range(200)]
        # Force the boundary shapes in every run: empty strings, identical
        # strings, and a length gap larger than any limit tried below.
        pairs += [("", ""), ("", sample()), ("abc", "abc"), ("a" * 25, "a")]
        for a, b in pairs:
            exact = levenshtein(a, b)
            for limit in (0, 1, 2, 3, 8, 30):
                assert levenshtein_bounded(a, b, limit) == min(
                    exact, limit + 1
                ), (a, b, limit)


class TestNormalized:
    def test_identical(self):
        assert normalized_levenshtein("abc", "abc") == 0.0

    def test_empty_pair(self):
        assert normalized_levenshtein("", "") == 0.0

    def test_disjoint(self):
        assert normalized_levenshtein("abc", "xyz") == pytest.approx(
            6 / 9
        )

    @given(short_text, short_text)
    def test_range(self, a, b):
        assert 0.0 <= normalized_levenshtein(a, b) <= 1.0

    @given(short_text, short_text)
    def test_symmetry(self, a, b):
        assert normalized_levenshtein(a, b) == normalized_levenshtein(b, a)
