"""Tests for DistanceFunction and the per-type registry."""

import pytest

from repro.dataset.attribute import AttributeType
from repro.dataset.missing import MISSING
from repro.distance.base import (
    DistanceFunction,
    absolute_difference,
    boolean_equality,
    distance_for_type,
    string_edit_distance,
)
from repro.exceptions import DataError


class TestPrimitives:
    def test_absolute_difference(self):
        assert absolute_difference(3, 7.5) == 4.5
        assert absolute_difference(-2, 2) == 4.0

    def test_boolean_equality(self):
        assert boolean_equality(True, True) == 0.0
        assert boolean_equality(True, False) == 1.0

    def test_string_edit_distance_stringifies(self):
        assert string_edit_distance(123, "123") == 0.0
        assert string_edit_distance("abc", "abd") == 1.0


class TestDistanceFunction:
    def test_rejects_missing_operands(self):
        function = DistanceFunction("d", absolute_difference)
        with pytest.raises(DataError):
            function(MISSING, 3)
        with pytest.raises(DataError):
            function(3, None)

    def test_memoization_counts(self):
        calls = []

        def spy(a, b):
            calls.append((a, b))
            return abs(a - b)

        function = DistanceFunction("spy", spy, cached=True)
        assert function(1, 5) == 4
        assert function(5, 1) == 4  # symmetric key: served from cache
        assert len(calls) == 1
        hits, misses, size = function.cache_info
        assert (hits, misses, size) == (1, 1, 1)

    def test_uncached_calls_every_time(self):
        calls = []

        def spy(a, b):
            calls.append(1)
            return 0.0

        function = DistanceFunction("spy", spy, cached=False)
        function(1, 2)
        function(1, 2)
        assert len(calls) == 2
        assert function.cache_info == (0, 0, 0)

    def test_clear_cache(self):
        function = DistanceFunction("d", absolute_difference, cached=True)
        function(1, 2)
        function.clear_cache()
        assert function.cache_info == (0, 0, 0)

    def test_mixed_type_keys_fall_back_gracefully(self):
        function = DistanceFunction("d", string_edit_distance, cached=True)
        assert function("1", 1) == 0.0
        assert function(1, "1") == 0.0  # cache hit through fallback key
        assert function.cache_info[0] == 1


class TestRegistry:
    def test_numeric_types_get_absolute_difference(self):
        for attr_type in (AttributeType.INTEGER, AttributeType.FLOAT):
            function = distance_for_type(attr_type)
            assert function(10, 4) == 6.0

    def test_numeric_functions_are_uncached(self):
        function = distance_for_type(AttributeType.FLOAT)
        function(1.0, 2.0)
        assert function.cache_info == (0, 0, 0)

    def test_boolean_gets_equality(self):
        function = distance_for_type(AttributeType.BOOLEAN)
        assert function(True, False) == 1.0

    def test_string_gets_edit_distance_cached(self):
        function = distance_for_type(AttributeType.STRING)
        assert function("abc", "abd") == 1.0
        function("abc", "abd")
        assert function.cache_info[0] == 1
