"""Tests for distance patterns (Definition 5.4) and the calculator."""

import pytest

from repro.dataset import MISSING, Relation
from repro.distance.base import DistanceFunction
from repro.distance.pattern import DistancePattern, PatternCalculator
from repro.exceptions import SchemaError


class TestDistancePattern:
    def test_mapping_interface(self):
        pattern = DistancePattern({"A": 2.0, "B": MISSING})
        assert pattern["A"] == 2.0
        assert len(pattern) == 2
        assert set(pattern) == {"A", "B"}

    def test_is_missing_on(self):
        pattern = DistancePattern({"A": 2.0, "B": MISSING})
        assert pattern.is_missing_on("B")
        assert not pattern.is_missing_on("A")

    def test_within(self):
        pattern = DistancePattern({"A": 2.0, "B": MISSING})
        assert pattern.within("A", 2.0)
        assert not pattern.within("A", 1.9)
        assert not pattern.within("B", 100)  # missing never satisfies

    def test_mean_over(self):
        pattern = DistancePattern({"A": 2.0, "B": 4.0})
        assert pattern.mean_over(["A", "B"]) == 3.0
        assert pattern.mean_over(["A"]) == 2.0

    def test_mean_over_missing_raises(self):
        pattern = DistancePattern({"A": MISSING})
        with pytest.raises(ValueError):
            pattern.mean_over(["A"])

    def test_mean_over_empty_raises(self):
        with pytest.raises(ValueError):
            DistancePattern({"A": 1.0}).mean_over([])

    def test_as_vector_paper_form(self):
        pattern = DistancePattern({"Name": 7.0, "City": MISSING,
                                   "Phone": 0.0})
        assert pattern.as_vector(["Name", "City", "Phone"]) == (
            7.0, MISSING, 0.0
        )

    def test_unrequested_attribute_raises(self):
        with pytest.raises(KeyError):
            DistancePattern({"A": 1.0})["B"]


class TestPatternCalculator:
    def test_paper_example_5_5(self, restaurant_sample):
        # Pattern between t5 and t6 is [7, _, 0, _, 0].
        calculator = PatternCalculator(restaurant_sample)
        pattern = calculator.pattern(4, 5)
        assert pattern.as_vector(
            ["Name", "City", "Phone", "Type", "Class"]
        ) == (7.0, MISSING, 0.0, MISSING, 0.0)

    def test_partial_pattern(self, restaurant_sample):
        calculator = PatternCalculator(restaurant_sample)
        pattern = calculator.pattern(0, 1, ["Class"])
        assert pattern["Class"] == 1.0
        with pytest.raises(KeyError):
            pattern["Name"]

    def test_distance_single_attribute(self, restaurant_sample):
        calculator = PatternCalculator(restaurant_sample)
        assert calculator.distance(2, 3, "Name") == 0.0
        assert calculator.distance(2, 3, "Phone") is MISSING

    def test_value_distance(self, restaurant_sample):
        calculator = PatternCalculator(restaurant_sample)
        assert calculator.value_distance("Class", 6, 5) == 1.0
        assert calculator.value_distance("Class", MISSING, 5) is MISSING

    def test_unknown_attribute_raises(self, restaurant_sample):
        calculator = PatternCalculator(restaurant_sample)
        with pytest.raises(SchemaError):
            calculator.distance(0, 1, "Nope")
        with pytest.raises(SchemaError):
            calculator.pattern(0, 1, ["Nope"])

    def test_unknown_override_raises(self, restaurant_sample):
        with pytest.raises(SchemaError):
            PatternCalculator(
                restaurant_sample,
                overrides={"Nope": DistanceFunction("x", lambda a, b: 0.0)},
            )

    def test_override_replaces_default(self, restaurant_sample):
        constant = DistanceFunction("zero", lambda a, b: 0.0, cached=False)
        calculator = PatternCalculator(
            restaurant_sample, overrides={"Name": constant}
        )
        assert calculator.distance(0, 1, "Name") == 0.0

    def test_patterns_are_live_after_mutation(self, restaurant_sample):
        calculator = PatternCalculator(restaurant_sample)
        assert calculator.distance(2, 3, "Phone") is MISSING
        restaurant_sample.set_value(3, "Phone", "213/857-0034")
        assert calculator.distance(2, 3, "Phone") == 0.0

    def test_cache_report_and_clear(self, restaurant_sample):
        calculator = PatternCalculator(restaurant_sample)
        calculator.distance(0, 1, "Name")
        calculator.distance(0, 1, "Name")
        report = calculator.cache_report()
        assert report["Name"][0] >= 1  # at least one hit
        calculator.clear_caches()
        assert calculator.cache_report()["Name"] == (0, 0, 0)

    def test_symmetry(self, restaurant_sample):
        calculator = PatternCalculator(restaurant_sample)
        for name in restaurant_sample.attribute_names:
            assert calculator.distance(0, 1, name) == calculator.distance(
                1, 0, name
            )
