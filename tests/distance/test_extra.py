"""Tests for the additional distance functions."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.distance.extra import (
    jaro_similarity,
    jaro_winkler_distance,
    jaro_winkler_function,
    jaro_winkler_similarity,
    relative_difference,
    relative_difference_function,
    token_jaccard_distance,
    token_jaccard_function,
)

short_text = st.text(
    alphabet=st.characters(codec="ascii", categories=("L", "N", "Z")),
    max_size=16,
)


class TestJaro:
    @pytest.mark.parametrize(
        ("a", "b", "expected"),
        [
            ("MARTHA", "MARHTA", 0.944),
            ("DIXON", "DICKSONX", 0.767),
            ("JELLYFISH", "SMELLYFISH", 0.896),
        ],
    )
    def test_classic_values(self, a, b, expected):
        assert jaro_similarity(a, b) == pytest.approx(expected, abs=1e-3)

    def test_equal_and_empty(self):
        assert jaro_similarity("abc", "abc") == 1.0
        assert jaro_similarity("", "abc") == 0.0
        assert jaro_similarity("abc", "") == 0.0

    def test_disjoint(self):
        assert jaro_similarity("abc", "xyz") == 0.0

    @given(short_text, short_text)
    def test_symmetry_and_range(self, a, b):
        value = jaro_similarity(a, b)
        assert 0.0 <= value <= 1.0
        assert value == pytest.approx(jaro_similarity(b, a))


class TestJaroWinkler:
    def test_prefix_boost(self):
        plain = jaro_similarity("PREFIXES", "PREFIXED")
        boosted = jaro_winkler_similarity("PREFIXES", "PREFIXED")
        assert boosted > plain

    def test_classic_value(self):
        assert jaro_winkler_similarity("MARTHA", "MARHTA") == (
            pytest.approx(0.961, abs=1e-3)
        )

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            jaro_winkler_similarity("a", "b", prefix_scale=0.5)

    @given(short_text, short_text)
    def test_distance_range(self, a, b):
        assert 0.0 <= jaro_winkler_distance(a, b) <= 1.0

    def test_distance_zero_for_equal(self):
        assert jaro_winkler_distance("same", "same") == 0.0


class TestTokenJaccard:
    def test_word_reordering_is_free(self):
        assert token_jaccard_distance(
            "Chinois Main", "Main Chinois"
        ) == 0.0

    def test_case_insensitive(self):
        assert token_jaccard_distance("Los Angeles", "los angeles") == 0.0

    def test_partial_overlap(self):
        assert token_jaccard_distance("a b", "b c") == pytest.approx(
            1 - 1 / 3
        )

    def test_empty_values(self):
        assert token_jaccard_distance("", "") == 0.0
        assert token_jaccard_distance("", "word") == 1.0

    @given(short_text, short_text)
    def test_range_and_symmetry(self, a, b):
        value = token_jaccard_distance(a, b)
        assert 0.0 <= value <= 1.0
        assert value == token_jaccard_distance(b, a)


class TestRelativeDifference:
    def test_scale_free(self):
        assert relative_difference(1000, 900) == pytest.approx(
            relative_difference(0.01, 0.009)
        )

    def test_zero_pair(self):
        assert relative_difference(0, 0) == 0.0

    def test_sign_handling(self):
        assert relative_difference(-5, 5) == pytest.approx(2.0)

    @given(
        st.floats(min_value=-1e6, max_value=1e6,
                  allow_nan=False, allow_infinity=False),
        st.floats(min_value=-1e6, max_value=1e6,
                  allow_nan=False, allow_infinity=False),
    )
    def test_symmetry_and_nonnegative(self, a, b):
        value = relative_difference(a, b)
        assert value >= 0.0
        assert value == pytest.approx(relative_difference(b, a))


class TestFactoriesIntegration:
    def test_overrides_in_pattern_calculator(self, restaurant_sample):
        from repro.distance.pattern import PatternCalculator

        calculator = PatternCalculator(
            restaurant_sample,
            overrides={
                "Name": jaro_winkler_function(),
                "City": token_jaccard_function(),
            },
        )
        pattern = calculator.pattern(2, 3, ("Name", "City"))
        assert pattern["Name"] == 0.0
        assert pattern["City"] == 0.0

    def test_renuver_with_custom_distances(self, restaurant_sample):
        from repro import Renuver, make_rfd

        rfd = make_rfd({"Name": 0.15}, ("Phone", 2))
        engine = Renuver(
            [rfd],
            distance_overrides={"Name": jaro_winkler_function()},
        )
        result = engine.impute(restaurant_sample)
        # t4 ("Citrus") matches t3 exactly under Jaro-Winkler.
        outcome = result.report.outcome_for(3, "Phone")
        assert outcome.imputed
        assert outcome.source_row == 2

    def test_relative_difference_function_uncached(self):
        function = relative_difference_function()
        assert function(10, 5) == 0.5
        assert function.cache_info == (0, 0, 0)
