"""PreparedEngine: RFD preparation, warm starts, request configs."""

import pytest

from repro.dataset.csv_io import read_csv_text, to_csv_text
from repro.discovery import DiscoveryConfig
from repro.exceptions import ImputationError, ServiceError
from repro.rfd import parse_rfd
from repro.service import ArtifactStore, PreparedEngine, ServiceConfig
from repro.telemetry import Telemetry

CSV = (
    "Name,City,Phone\n"
    "ann,rome,111\n"
    "ann,rome,\n"
    "bob,oslo,222\n"
    "bob,oslo,222\n"
    "cat,lima,333\n"
)
DISCOVERY = DiscoveryConfig(threshold_limit=1, max_lhs_size=1)
RFDS = [parse_rfd("Name(<=0),City(<=0) -> Phone(<=0)")]


@pytest.fixture()
def relation():
    return read_csv_text(CSV, name="t")


@pytest.fixture()
def warm_engine(tmp_path):
    telemetry = Telemetry()
    return PreparedEngine(
        ServiceConfig(discovery=DISCOVERY),
        store=ArtifactStore(tmp_path / "cache", telemetry=telemetry),
        telemetry=telemetry,
    )


class TestServiceConfig:
    def test_defaults_are_valid(self):
        config = ServiceConfig()
        assert config.max_inflight == 8

    @pytest.mark.parametrize("kwargs", [
        {"request_budget_seconds": 0.0},
        {"request_budget_seconds": -1.0},
        {"max_inflight": 0},
        {"max_sessions": 0},
        {"max_body_bytes": 10},
    ])
    def test_bad_values_raise_service_error(self, kwargs):
        with pytest.raises(ServiceError):
            ServiceConfig(**kwargs)


class TestPrepareRfds:
    def test_provided_set_is_passed_through(self, relation):
        engine = PreparedEngine()
        result, rfds, source = engine.prepare_rfds(relation, RFDS)
        assert result is None
        assert rfds == RFDS
        assert source == "provided"

    def test_without_store_discovers_every_time(self, relation):
        engine = PreparedEngine(ServiceConfig(discovery=DISCOVERY))
        _, rfds, source = engine.prepare_rfds(relation)
        assert source == "discovered"
        assert rfds
        _, _, source = engine.prepare_rfds(relation)
        assert source == "discovered"

    def test_store_turns_second_call_into_cache_hit(
        self, warm_engine, relation
    ):
        _, cold_rfds, cold_source = warm_engine.prepare_rfds(relation)
        assert cold_source == "discovered"
        _, warm_rfds, warm_source = warm_engine.prepare_rfds(relation)
        assert warm_source == "cache"
        assert [str(r) for r in warm_rfds] == [str(r) for r in cold_rfds]
        assert warm_engine.store.hits >= 1

    def test_warm_call_emits_no_discover_span(self, warm_engine, relation):
        cold = warm_engine.request_telemetry()
        warm_engine.prepare_rfds(relation, telemetry=cold)
        assert any(
            span.name == "discover" for span in cold.tracer.spans
        )
        warm = warm_engine.request_telemetry()
        warm_engine.prepare_rfds(relation, telemetry=warm)
        assert not any(
            span.name == "discover" for span in warm.tracer.spans
        )


class TestImputeOnce:
    def test_cold_and_warm_results_are_bit_identical(
        self, warm_engine, relation
    ):
        cold, cold_source = warm_engine.impute_once(relation)
        rewarmed = read_csv_text(CSV, name="t")
        warm, warm_source = warm_engine.impute_once(rewarmed)
        assert (cold_source, warm_source) == ("discovered", "cache")
        assert to_csv_text(cold.relation) == to_csv_text(warm.relation)

    def test_overrides_patch_the_run_config(self, relation):
        engine = PreparedEngine()
        result, _ = engine.impute_once(
            relation, RFDS, overrides={"engine": "scalar"}
        )
        assert result.report.imputed_count == 1

    def test_unknown_override_raises_imputation_error(self, relation):
        engine = PreparedEngine()
        with pytest.raises(ImputationError):
            engine.impute_once(relation, RFDS, overrides={"bogus": 1})

    def test_budget_degrades_to_partial_instead_of_raising(
        self, relation
    ):
        engine = PreparedEngine()
        # An absurdly small budget must still return a result (partial
        # semantics), never raise.
        result, _ = engine.impute_once(
            relation, RFDS, budget_seconds=1e-9
        )
        assert result.report.missing_count == 1


class TestOpenSession:
    def test_session_from_cache_skips_discovery(
        self, warm_engine, relation
    ):
        warm_engine.prepare_rfds(relation)  # seed the cache
        telemetry = warm_engine.request_telemetry()
        session, maintainer, source, result = warm_engine.open_session(
            read_csv_text(CSV, name="again"), telemetry=telemetry
        )
        assert source == "cache"
        assert maintainer is not None
        assert result is not None
        assert not any(
            span.name == "discover" for span in telemetry.tracer.spans
        )
        session.append([["ann", "rome", None]])
        result = session.impute_pending()
        assert result.report.missing_count >= 1

    def test_pinned_rfds_disable_maintenance(self, relation):
        engine = PreparedEngine()
        _, maintainer, source, result = engine.open_session(relation, RFDS)
        assert source == "provided"
        assert maintainer is None
        assert result is None
