"""Process-level service smoke: real server, real clients, real signals.

Marked ``service`` — CI runs it as its own job.  Boots ``python -m
repro serve`` on a random port, drives it with concurrent stdlib
clients, scrapes ``/metrics``, then sends SIGTERM and asserts a clean
drain (exit 0).  Also holds the exit-8 contract for a server that
cannot start.
"""

import json
import os
import re
import signal
import socket
import subprocess
import sys
import threading
import urllib.request
from pathlib import Path

import pytest

pytestmark = pytest.mark.service

ROOT = Path(__file__).resolve().parents[2]

CSV = (
    "Name,City,Phone\n"
    "ann,rome,111\n"
    "ann,rome,\n"
    "bob,oslo,222\n"
)
RFD_TEXTS = ["Name(<=0),City(<=0) -> Phone(<=0)"]


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src")
    return env


def _start_server(*extra_args):
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         *extra_args],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True, env=_env(), cwd=str(ROOT),
        start_new_session=True,
    )
    banner = process.stderr.readline()
    match = re.search(r"http://[\d.]+:(\d+)", banner)
    if match is None:
        process.kill()
        out, err = process.communicate(timeout=10)
        raise AssertionError(f"no banner: {banner!r} / {err!r}")
    return process, int(match.group(1))


def _post(port, path, body):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, json.loads(response.read())


class TestServeSmoke:
    def test_concurrent_traffic_metrics_and_sigterm_drain(self, tmp_path):
        process, port = _start_server(
            "--artifact-dir", str(tmp_path / "cache"),
            "--max-inflight", "4",
        )
        try:
            # Concurrent one-shot clients, all must agree.
            results = []
            lock = threading.Lock()

            def client():
                status, body = _post(port, "/v1/impute", {
                    "csv": CSV, "rfds": RFD_TEXTS,
                })
                with lock:
                    results.append((status, body["csv"]))

            threads = [
                threading.Thread(target=client) for _ in range(6)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert all(status == 200 for status, _ in results)
            assert len({csv for _, csv in results}) == 1

            # A session round trip against the same process.
            status, session = _post(port, "/v1/sessions", {
                "csv": CSV, "rfds": RFD_TEXTS,
            })
            assert status == 201
            status, _ = _post(
                port, f"/v1/sessions/{session['id']}/impute", {}
            )
            assert status == 200

            # The scrape endpoint reflects the traffic just generated.
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/metrics", timeout=30
            ) as response:
                text = response.read().decode("utf-8")
            assert 'route="/v1/impute"' in text
            assert "renuver_http_request_seconds" in text
        finally:
            process.send_signal(signal.SIGTERM)
            out, err = process.communicate(timeout=30)
        assert process.returncode == 0, err[-2000:]
        assert "drained cleanly" in err

    def test_sigterm_with_inflight_requests_drains_clean(self):
        # A relation big enough that the request is plausibly still in
        # flight when SIGTERM lands (the test stays valid either way:
        # the response must be 200 and the exit must be 0).
        rows = []
        for i in range(300):
            phone = "" if i % 17 == 0 else f"{600 + i % 23}"
            rows.append(f"n{i % 40},c{i % 15},{phone}")
        big_csv = "Name,City,Phone\n" + "\n".join(rows) + "\n"

        process, port = _start_server("--max-inflight", "2")
        results = []

        def inflight():
            results.append(_post(port, "/v1/impute", {
                "csv": big_csv, "rfds": RFD_TEXTS,
            }))

        workers = [threading.Thread(target=inflight) for _ in range(2)]
        try:
            for worker in workers:
                worker.start()
            import time

            time.sleep(0.15)  # let the requests reach the engine
        finally:
            process.send_signal(signal.SIGTERM)
            out, err = process.communicate(timeout=60)
        for worker in workers:
            worker.join(timeout=60)
        # The drain finished every admitted request before exiting.
        assert len(results) == 2
        assert all(status == 200 for status, _ in results)
        assert process.returncode == 0, err[-2000:]
        assert "drained cleanly" in err

    def test_unbindable_port_exits_8(self):
        blocker = socket.socket()
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        port = blocker.getsockname()[1]
        try:
            completed = subprocess.run(
                [sys.executable, "-m", "repro", "serve",
                 "--port", str(port)],
                capture_output=True, text=True, env=_env(),
                cwd=str(ROOT), timeout=60,
            )
        finally:
            blocker.close()
        assert completed.returncode == 8, completed.stderr[-2000:]
        assert "error:" in completed.stderr
