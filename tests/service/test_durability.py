"""Session envelopes: round trip, torn-file recovery, journal replay."""

import json
import threading

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.discovery import DiscoveryConfig
from repro.service import ServiceConfig, SessionStore, build_server
from repro.telemetry import Telemetry

CSV = (
    "Name,City,Phone\n"
    "ann,rome,111\n"
    "ann,rome,\n"
    "bob,oslo,222\n"
    "bob,oslo,222\n"
    "cat,lima,333\n"
)
RFD_TEXTS = ["Name(<=0),City(<=0) -> Phone(<=0)"]
DISCOVERY = DiscoveryConfig(threshold_limit=1, max_lhs_size=1)


# ----------------------------------------------------------------------
# Envelope round trip (hypothesis)
# ----------------------------------------------------------------------
json_scalars = (
    st.none()
    | st.booleans()
    | st.integers(min_value=-(10**9), max_value=10**9)
    | st.floats(allow_nan=False, allow_infinity=False, width=32)
    | st.text(max_size=30)
)

payloads = st.fixed_dictionaries({
    "created": st.dictionaries(
        st.text(
            alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1,
            max_size=12,
        ),
        json_scalars,
        max_size=6,
    ),
    "events": st.lists(
        st.fixed_dictionaries({
            "type": st.sampled_from(["append", "impute"]),
            "rows": st.lists(
                st.lists(json_scalars, max_size=4), max_size=3
            ),
        }),
        max_size=5,
    ),
})


class TestEnvelopeRoundTrip:
    @settings(max_examples=50, deadline=None)
    @given(payload=payloads)
    def test_save_then_load_is_identity(self, payload, tmp_path_factory):
        store = SessionStore(tmp_path_factory.mktemp("envelopes"))
        assert store.save("s000001", payload) is True
        assert store.load("s000001") == payload
        assert store.persist_failures == 0
        assert store.corrupt_envelopes == 0

    def test_envelope_seq_increments_per_save(self, tmp_path):
        store = SessionStore(tmp_path)
        store.save("s000001", {"created": {}, "events": []})
        store.save("s000001", {"created": {}, "events": [1]})
        envelope = json.loads(
            store.path_for("s000001").read_text(encoding="utf-8")
        )
        assert envelope["envelope_seq"] == 2
        assert envelope["session_id"] == "s000001"


class TestTornFileRecovery:
    def test_torn_current_falls_back_to_prev(self, tmp_path):
        store = SessionStore(tmp_path)
        first = {"created": {"a": 1}, "events": []}
        second = {"created": {"a": 1}, "events": [{"type": "impute"}]}
        store.save("s000001", first)
        store.save("s000001", second)
        path = store.path_for("s000001")
        text = path.read_text(encoding="utf-8")
        path.write_text(text[: len(text) // 2], encoding="utf-8")

        reader = SessionStore(tmp_path)
        assert reader.load("s000001") == first
        assert reader.envelope_recoveries == 1
        assert reader.corrupt_envelopes == 0

    def test_both_copies_torn_drops_the_session(self, tmp_path):
        store = SessionStore(tmp_path)
        store.save("s000001", {"created": {}, "events": []})
        store.save("s000001", {"created": {}, "events": [1]})
        path = store.path_for("s000001")
        path.write_text("{torn", encoding="utf-8")
        path.with_name(path.name + ".prev").write_text(
            "also torn", encoding="utf-8"
        )
        reader = SessionStore(tmp_path)
        assert reader.load("s000001") is None
        assert reader.corrupt_envelopes == 1

    def test_checksum_mismatch_counts_as_torn(self, tmp_path):
        store = SessionStore(tmp_path)
        store.save("s000001", {"created": {"a": 1}, "events": []})
        path = store.path_for("s000001")
        envelope = json.loads(path.read_text(encoding="utf-8"))
        envelope["payload"]["created"]["a"] = 2  # checksum now stale
        path.write_text(json.dumps(envelope), encoding="utf-8")
        reader = SessionStore(tmp_path)
        assert reader.load("s000001") is None

    def test_wrong_version_or_id_is_unreadable(self, tmp_path):
        store = SessionStore(tmp_path)
        store.save("s000001", {"created": {}, "events": []})
        path = store.path_for("s000001")
        envelope = json.loads(path.read_text(encoding="utf-8"))
        envelope["session_version"] = 99
        path.write_text(json.dumps(envelope), encoding="utf-8")
        assert SessionStore(tmp_path).load("s000001") is None

    def test_delete_removes_both_copies(self, tmp_path):
        store = SessionStore(tmp_path)
        store.save("s000001", {"created": {}, "events": []})
        store.save("s000001", {"created": {}, "events": [1]})
        store.delete("s000001")
        assert store.path_for("s000001").exists() is False
        assert not list(tmp_path.glob("*.prev"))
        assert store.session_ids() == []

    def test_session_ids_ignores_foreign_files(self, tmp_path):
        store = SessionStore(tmp_path)
        store.save("s000002", {"created": {}, "events": []})
        (tmp_path / "notes.json").write_text("{}", encoding="utf-8")
        (tmp_path / "sXYZ.json").write_text("{}", encoding="utf-8")
        assert store.session_ids() == ["s000002"]


# ----------------------------------------------------------------------
# End-to-end recovery through the HTTP layer (in-process)
# ----------------------------------------------------------------------
def _serve(artifact_dir):
    server = build_server(
        "127.0.0.1", 0,
        config=ServiceConfig(discovery=DISCOVERY),
        artifact_dir=str(artifact_dir),
        telemetry=Telemetry(),
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server


def _call(server, method, path, body=None):
    import urllib.request

    data = json.dumps(body).encode("utf-8") if body is not None else None
    request = urllib.request.Request(
        f"http://127.0.0.1:{server.port}{path}", data=data,
        method=method, headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request) as response:
        return json.loads(response.read())


class TestJournalReplayRecovery:
    def test_recovered_session_answers_bit_identical(self, tmp_path):
        body = {"csv": CSV, "rfds": RFD_TEXTS}
        rows = [["ann", "rome", None], ["dot", "kiev", "444"]]

        # Control: an uninterrupted server runs the whole sequence.
        control = _serve(tmp_path / "a")
        try:
            sid = _call(control, "POST", "/v1/sessions", body)["id"]
            _call(control, "POST", f"/v1/sessions/{sid}/tuples",
                  {"rows": rows})
            expected = _call(
                control, "POST", f"/v1/sessions/{sid}/impute"
            )
        finally:
            control.drain()

        # Crash case: same create+append, then the process "dies" (the
        # server is abandoned without drain) and a new one boots over
        # the same artifact directory.
        crashed = _serve(tmp_path / "b")
        sid = _call(crashed, "POST", "/v1/sessions", body)["id"]
        _call(crashed, "POST", f"/v1/sessions/{sid}/tuples",
              {"rows": rows})
        # Stop without deleting anything: the journal on disk is
        # all the next boot gets (the real SIGKILL run lives in
        # test_chaos_http.py).
        crashed.drain()

        revived = _serve(tmp_path / "b")
        try:
            assert revived.recovery == {"recovered": 1, "dropped": 0}
            snapshot = _call(revived, "GET", f"/v1/sessions/{sid}")
            assert snapshot["durable"] is True
            assert snapshot["appended_tuples"] == len(rows)
            replayed = _call(
                revived, "POST", f"/v1/sessions/{sid}/impute"
            )
            assert replayed["csv"] == expected["csv"]
            assert replayed["outcomes"] == expected["outcomes"]
        finally:
            revived.drain()

    def test_discovery_session_recovers_without_rediscovery(
        self, tmp_path
    ):
        serve_dir = tmp_path / "cache"
        first = _serve(serve_dir)
        sid = _call(first, "POST", "/v1/sessions", {"csv": CSV})["id"]
        _call(first, "POST", f"/v1/sessions/{sid}/tuples",
              {"rows": [["eve", "bern", "555"]]})
        first.drain()

        revived = _serve(serve_dir)
        try:
            assert revived.recovery["recovered"] == 1
            ready = _call(revived, "GET", "/healthz/ready")
            assert ready["recovered_sessions"] == 1
            outcome = _call(
                revived, "POST", f"/v1/sessions/{sid}/impute"
            )
            assert outcome["report"]["missing_cells"] >= 1
        finally:
            revived.drain()

    def test_corrupt_envelope_drops_session_but_boots(self, tmp_path):
        serve_dir = tmp_path / "cache"
        first = _serve(serve_dir)
        sid = _call(
            first, "POST", "/v1/sessions",
            {"csv": CSV, "rfds": RFD_TEXTS},
        )["id"]
        first.drain()

        sessions_dir = serve_dir / "sessions"
        for path in sessions_dir.glob(f"{sid}.json*"):
            path.write_text("garbage", encoding="utf-8")
        revived = _serve(serve_dir)
        try:
            assert revived.recovery == {"recovered": 0, "dropped": 1}
            ready = _call(revived, "GET", "/healthz/ready")
            assert ready["dropped_sessions"] == 1
            # The server still serves new work.
            out = _call(revived, "POST", "/v1/impute",
                        {"csv": CSV, "rfds": RFD_TEXTS})
            assert out["rfd_source"] == "provided"
        finally:
            revived.drain()
