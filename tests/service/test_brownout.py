"""Admission queue and brownout ladder (unit level, injected clocks)."""

import pytest

from repro.service.admission import (
    BROWNOUT_TIERS,
    SERVICE_SCOPE,
    AdmissionQueue,
    BrownoutController,
    ShedRequest,
)


class FakeClock:
    def __init__(self, start: float = 100.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestAdmissionQueue:
    def test_free_permits_admit_even_with_zero_queue_depth(self):
        queue = AdmissionQueue(2, max_queue_depth=0)
        queue.acquire()
        queue.acquire()
        assert queue.admitted == 2
        assert queue.snapshot()["inflight"] == 2
        queue.release(0.1)
        queue.release(0.1)
        assert queue.snapshot()["inflight"] == 0

    def test_full_permits_and_zero_depth_shed_queue_full(self):
        queue = AdmissionQueue(1, max_queue_depth=0)
        queue.acquire()
        with pytest.raises(ShedRequest) as info:
            queue.acquire()
        assert info.value.reason == "queue_full"
        assert queue.shed_counts["queue_full"] == 1
        queue.release()

    def test_expired_deadline_is_shed_before_queueing(self):
        clock = FakeClock()
        queue = AdmissionQueue(1, clock=clock)
        queue.acquire()
        with pytest.raises(ShedRequest) as info:
            queue.acquire(deadline=clock.now - 0.5)
        assert info.value.reason == "deadline"
        queue.release()

    def test_queue_timeout_sheds_after_the_wait_cap(self):
        queue = AdmissionQueue(
            1, max_queue_depth=4, max_queue_wait_seconds=0.05
        )
        queue.acquire()
        with pytest.raises(ShedRequest) as info:
            queue.acquire()
        assert info.value.reason == "queue_timeout"
        queue.release()
        # A freed permit admits the next request immediately.
        queue.acquire()
        queue.release()

    def test_deadline_tighter_than_wait_cap_sheds_as_deadline(self):
        queue = AdmissionQueue(
            1, max_queue_depth=4, max_queue_wait_seconds=5.0
        )
        queue.acquire()
        import time

        with pytest.raises(ShedRequest) as info:
            queue.acquire(deadline=time.perf_counter() + 0.05)
        assert info.value.reason == "deadline"
        queue.release()

    def test_retry_after_is_load_derived(self):
        queue = AdmissionQueue(2, max_queue_depth=4)
        # No observations yet: conservative floor of 1s.
        assert queue.retry_after_seconds() == 1.0
        queue.acquire()
        queue.acquire()
        queue.release(2.0)  # EWMA seeds at 2s per request
        queue.acquire()
        # backlog=2, ewma=2.0, permits=2 -> ~2s estimate.
        assert queue.retry_after_seconds() == 2.0
        queue.release(2.0)
        queue.release(2.0)
        # Idle again: floor.
        assert queue.retry_after_seconds() == 1.0

    def test_retry_after_is_clamped_to_30s(self):
        queue = AdmissionQueue(1, max_queue_depth=64)
        queue.acquire()
        queue.release(120.0)
        queue.acquire()
        assert queue.retry_after_seconds() == 30.0
        queue.release()

    def test_out_of_band_shed_counts_and_raises(self):
        queue = AdmissionQueue(1)
        with pytest.raises(ShedRequest) as info:
            queue.shed("cache_only")
        assert info.value.reason == "cache_only"
        assert info.value.retry_after >= 1.0
        assert queue.shed_counts["cache_only"] == 1

    def test_ewma_blends_observations(self):
        queue = AdmissionQueue(1)
        queue.acquire()
        queue.release(1.0)
        queue.acquire()
        queue.release(2.0)  # 0.8*1.0 + 0.2*2.0 = 1.2
        assert queue._service_ewma == pytest.approx(1.2)


class TestBrownoutController:
    def make(self, clock, **kw):
        kw.setdefault("step_up_sheds", 3)
        kw.setdefault("window_seconds", 5.0)
        kw.setdefault("cooldown_seconds", 10.0)
        return BrownoutController(clock=clock, **kw)

    def test_sustained_sheds_climb_one_rung_at_a_time(self):
        clock = FakeClock()
        controller = self.make(clock)
        for _ in range(2):
            controller.record_shed()
        assert controller.level == 0
        controller.record_shed()
        assert controller.level == 1
        assert controller.tier == "scalar"
        assert controller.overrides() == {"engine": "scalar"}
        assert not controller.cache_only
        for _ in range(3):
            controller.record_shed()
        assert controller.level == 2
        assert controller.tier == "cache_only"
        assert controller.cache_only
        # The ladder tops out.
        for _ in range(6):
            controller.record_shed()
        assert controller.level == 2

    def test_sheds_outside_the_window_do_not_accumulate(self):
        clock = FakeClock()
        controller = self.make(clock)
        controller.record_shed()
        clock.advance(6.0)  # past the 5s window
        controller.record_shed()
        clock.advance(6.0)
        controller.record_shed()
        assert controller.level == 0

    def test_quiet_cooldown_steps_down_one_rung_per_period(self):
        clock = FakeClock()
        controller = self.make(clock)
        for _ in range(6):
            controller.record_shed()
        assert controller.level == 2
        clock.advance(9.0)
        assert controller.observe() == 2  # cooldown not yet elapsed
        clock.advance(2.0)
        assert controller.observe() == 1  # one rung, not a free-fall
        assert controller.observe() == 1
        clock.advance(11.0)
        assert controller.observe() == 0
        assert controller.tier == "normal"

    def test_transitions_are_audited_with_service_scope(self):
        clock = FakeClock()
        controller = self.make(clock)
        for _ in range(3):
            controller.record_shed()
        assert controller.transitions == 1
        record = controller.audit[-1]
        assert (record.row, record.attribute) == SERVICE_SCOPE
        assert record.from_tier == "normal"
        assert record.to_tier == "scalar"
        assert "sheds" in record.reason

    def test_snapshot_shape(self):
        clock = FakeClock()
        controller = self.make(clock)
        for _ in range(3):
            controller.record_shed()
        snapshot = controller.snapshot()
        assert snapshot["level"] == 1
        assert snapshot["tier"] == BROWNOUT_TIERS[1]
        assert snapshot["enabled"] is True
        assert snapshot["transitions"] == 1
        assert snapshot["recent"][-1]["to"] == "scalar"

    def test_disabled_controller_never_moves(self):
        clock = FakeClock()
        controller = self.make(clock, enabled=False)
        for _ in range(20):
            controller.record_shed()
        assert controller.level == 0
        assert controller.observe() == 0
        assert controller.overrides() == {}
