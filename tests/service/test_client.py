"""The hardened service client: retry policy, backoff, idempotency."""

import json
import urllib.error

import pytest

from repro.exceptions import ServiceClientError
from repro.service.client import RETRYABLE_STATUSES, ServiceClient

OK = (200, json.dumps({"ok": True}).encode("utf-8"), None)


def scripted_client(responses, **kw):
    """A client whose wire attempts come from a canned script.

    Each script item is either an exception instance (raised as a
    transport failure) or an ``(status, raw, retry_after)`` tuple.
    Sleeps are recorded, never slept.
    """
    sleeps: list[float] = []
    kw.setdefault("backoff_seconds", 0.1)
    client = ServiceClient(
        "http://test", sleep=sleeps.append, **kw
    )
    script = iter(responses)

    def attempt(method, path, body):
        item = next(script)
        if isinstance(item, BaseException):
            raise item
        return item

    client._attempt = attempt
    return client, sleeps


class TestStatusPolicy:
    def test_429_is_always_retried_even_for_mutations(self):
        client, sleeps = scripted_client([(429, b"{}", None), OK])
        out = client.request("POST", "/v1/sessions", {}, idempotent=False)
        assert out == {"ok": True}
        assert client.retries == 1
        assert len(sleeps) == 1

    def test_retry_after_overrides_the_local_backoff(self):
        client, sleeps = scripted_client([(429, b"{}", 7.0), OK])
        client.request("GET", "/healthz/live", idempotent=True)
        assert sleeps == [7.0]

    def test_503_is_retryable(self):
        assert 503 in RETRYABLE_STATUSES
        client, _ = scripted_client([(503, b"{}", None), OK])
        assert client.request("POST", "/v1/impute", {}, idempotent=True)

    def test_other_4xx_raises_immediately_with_status(self):
        client, sleeps = scripted_client(
            [(400, json.dumps({"error": "bad csv"}).encode(), None)]
        )
        with pytest.raises(ServiceClientError) as info:
            client.request("POST", "/v1/impute", {}, idempotent=True)
        assert info.value.status == 400
        assert "bad csv" in str(info.value)
        assert sleeps == []

    def test_500_is_retried_only_when_idempotent(self):
        client, _ = scripted_client([(500, b"{}", None), OK])
        assert client.request(
            "POST", "/v1/impute", {}, idempotent=True
        ) == {"ok": True}
        client, _ = scripted_client([(500, b"{}", None), OK])
        with pytest.raises(ServiceClientError) as info:
            client.request("POST", "/v1/sessions", {}, idempotent=False)
        assert info.value.status == 500

    def test_retry_budget_exhaustion_reports_last_status(self):
        client, sleeps = scripted_client(
            [(429, b"{}", None)] * 3, max_retries=2
        )
        with pytest.raises(ServiceClientError) as info:
            client.request("POST", "/v1/impute", {}, idempotent=True)
        assert info.value.status == 429
        assert "3 attempts" in str(info.value)
        assert len(sleeps) == 2


class TestTransportPolicy:
    def test_transport_error_retried_for_idempotent(self):
        client, _ = scripted_client([ConnectionResetError("rst"), OK])
        out = client.impute({"csv": "A\n1\n"})
        assert out == {"ok": True}
        assert client.retries == 1

    def test_transport_error_fatal_for_mutations(self):
        client, sleeps = scripted_client([ConnectionResetError("rst"), OK])
        with pytest.raises(ServiceClientError) as info:
            client.append_tuples("s000001", [["x"]])
        assert "not" in str(info.value)
        assert sleeps == []

    def test_urlerror_counts_as_transport(self):
        client, _ = scripted_client(
            [urllib.error.URLError("refused"), OK]
        )
        assert client.session("s000001") == {"ok": True}

    def test_truncated_body_follows_the_same_policy(self):
        # A mid-response kill delivers status 200 with half a body.
        torn = (200, b'{"ok": tr', None)
        client, _ = scripted_client([torn, OK])
        assert client.impute({}) == {"ok": True}
        client, _ = scripted_client([torn, OK])
        with pytest.raises(ServiceClientError):
            client.impute_session("s000001")


class TestBackoff:
    def test_backoff_grows_and_caps(self):
        client, sleeps = scripted_client(
            [(503, b"{}", None)] * 5 + [OK],
            max_retries=5, backoff_seconds=0.1, backoff_cap=0.4,
            seed=3,
        )
        client.request("GET", "/healthz/ready", idempotent=True)
        bases = [0.1, 0.2, 0.4, 0.4, 0.4]  # doubled, then capped
        for pause, base in zip(sleeps, bases):
            assert base <= pause <= base * 1.25  # jitter adds <= 25%

    def test_jitter_is_seed_deterministic(self):
        first, sleeps_a = scripted_client(
            [(503, b"{}", None), OK], seed=11
        )
        second, sleeps_b = scripted_client(
            [(503, b"{}", None), OK], seed=11
        )
        first.request("GET", "/x", idempotent=True)
        second.request("GET", "/x", idempotent=True)
        assert sleeps_a == sleeps_b

    def test_deadline_refuses_to_sleep_past_the_budget(self):
        client, sleeps = scripted_client(
            [(429, b"{}", 60.0), OK], deadline_seconds=0.5
        )
        with pytest.raises(ServiceClientError) as info:
            client.request("POST", "/v1/impute", {}, idempotent=True)
        assert "deadline" in str(info.value)
        assert sleeps == []


class TestMethodIdempotencyMap:
    def test_reads_and_one_shots_are_idempotent(self, monkeypatch):
        seen = {}

        def spy(method, path, body=None, *, idempotent=False):
            seen[path] = idempotent
            return {}

        client = ServiceClient("http://test")
        monkeypatch.setattr(client, "request", spy)
        client.impute({})
        client.session("s1")
        client.delete_session("s1")
        client.health()
        client.readiness()
        client.open_session({})
        client.append_tuples("s1", [])
        client.impute_session("s1")
        assert seen["/v1/impute"] is True
        assert seen["/v1/sessions/s1"] is True
        assert seen["/healthz/live"] is True
        assert seen["/healthz/ready"] is True
        assert seen["/v1/sessions"] is False
        assert seen["/v1/sessions/s1/tuples"] is False
        assert seen["/v1/sessions/s1/impute"] is False
