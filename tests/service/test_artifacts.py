"""The fingerprint-keyed artifact store: round trips, misses, metrics."""

import json

import pytest

from repro.dataset.csv_io import read_csv_text
from repro.discovery import DiscoveryConfig, discover_rfds
from repro.discovery.pattern_matrix import PairDistanceMatrix
from repro.exceptions import ServiceError
from repro.service.artifacts import ARTIFACT_VERSION, ArtifactStore
from repro.telemetry import Telemetry

CSV = (
    "Name,City,Phone\n"
    "ann,rome,111\n"
    "ann,rome,111\n"
    "bob,oslo,222\n"
    "bob,oslo,222\n"
    "cat,lima,333\n"
)


@pytest.fixture()
def relation():
    return read_csv_text(CSV, name="t")


@pytest.fixture()
def store(tmp_path):
    return ArtifactStore(tmp_path / "cache")


CONFIG = DiscoveryConfig(threshold_limit=1, max_lhs_size=1)


class TestDiscoveryArtifacts:
    def test_round_trip(self, store, relation):
        result = discover_rfds(relation, CONFIG)
        store.save_discovery(relation, CONFIG, result)
        loaded = store.load_discovery(relation, CONFIG)
        assert loaded is not None
        assert [str(r) for r in loaded.all_rfds] == [
            str(r) for r in result.all_rfds
        ]
        assert loaded.config == result.config
        assert store.hits == 1 and store.misses == 0

    def test_keyed_by_relation_content_not_name(self, store, relation):
        result = discover_rfds(relation, CONFIG)
        store.save_discovery(relation, CONFIG, result)
        renamed = read_csv_text(CSV, name="other-name")
        assert store.load_discovery(renamed, CONFIG) is not None
        different = read_csv_text(CSV.replace("lima", "oslo"), name="t")
        assert store.load_discovery(different, CONFIG) is None

    def test_keyed_by_full_config(self, store, relation):
        result = discover_rfds(relation, CONFIG)
        store.save_discovery(relation, CONFIG, result)
        other = DiscoveryConfig(threshold_limit=2, max_lhs_size=1)
        assert store.load_discovery(relation, other) is None


class TestMatrixArtifacts:
    def test_round_trip_is_bit_identical(self, store, relation):
        matrix = PairDistanceMatrix(
            relation,
            string_limit=max(
                CONFIG.threshold_limit, CONFIG.effective_lhs_limit
            ),
            max_pairs=CONFIG.max_pairs,
            seed=CONFIG.seed,
        )
        store.save_matrix(relation, CONFIG, matrix)
        loaded = store.load_matrix(relation, CONFIG)
        assert loaded is not None
        assert loaded.pairs.tolist() == matrix.pairs.tolist()
        for attribute in relation.attribute_names:
            original = matrix.distances(attribute).tolist()
            restored = loaded.distances(attribute).tolist()
            assert len(original) == len(restored)
            for a, b in zip(original, restored):
                assert (a != a and b != b) or a == b  # NaN-aware

    def test_discovery_from_cached_matrix_matches_fresh(
        self, store, relation
    ):
        matrix = PairDistanceMatrix(
            relation,
            string_limit=max(
                CONFIG.threshold_limit, CONFIG.effective_lhs_limit
            ),
            max_pairs=CONFIG.max_pairs,
            seed=CONFIG.seed,
        )
        store.save_matrix(relation, CONFIG, matrix)
        loaded = store.load_matrix(relation, CONFIG)
        fresh = discover_rfds(relation, CONFIG)
        reused = discover_rfds(relation, CONFIG, matrix=loaded)
        assert [str(r) for r in reused.all_rfds] == [
            str(r) for r in fresh.all_rfds
        ]


class TestCorruptionTolerance:
    """Every failure mode is a miss, never an exception."""

    def _saved_path(self, store, relation):
        result = discover_rfds(relation, CONFIG)
        return store.save_discovery(relation, CONFIG, result)

    def test_absent_is_a_miss(self, store, relation):
        assert store.load_discovery(relation, CONFIG) is None
        assert store.misses == 1

    def test_truncated_json_is_a_miss(self, store, relation):
        path = self._saved_path(store, relation)
        path.write_text(path.read_text()[:40], encoding="utf-8")
        assert store.load_discovery(relation, CONFIG) is None

    def test_wrong_version_is_a_miss(self, store, relation):
        path = self._saved_path(store, relation)
        envelope = json.loads(path.read_text(encoding="utf-8"))
        envelope["artifact_version"] = ARTIFACT_VERSION + 1
        path.write_text(json.dumps(envelope), encoding="utf-8")
        assert store.load_discovery(relation, CONFIG) is None

    def test_key_mismatch_is_a_miss(self, store, relation):
        path = self._saved_path(store, relation)
        envelope = json.loads(path.read_text(encoding="utf-8"))
        envelope["fingerprint"] = "0" * 64
        path.write_text(json.dumps(envelope), encoding="utf-8")
        assert store.load_discovery(relation, CONFIG) is None

    def test_undeserializable_payload_is_a_miss(self, store, relation):
        path = self._saved_path(store, relation)
        envelope = json.loads(path.read_text(encoding="utf-8"))
        envelope["payload"] = {"rfds": "not-a-list"}
        path.write_text(json.dumps(envelope), encoding="utf-8")
        assert store.load_discovery(relation, CONFIG) is None

    def test_non_object_envelope_is_a_miss(self, store, relation):
        path = self._saved_path(store, relation)
        path.write_text("[1, 2, 3]", encoding="utf-8")
        assert store.load_discovery(relation, CONFIG) is None

    def test_corrupt_artifact_is_recomputed_and_overwritten(
        self, store, relation
    ):
        path = self._saved_path(store, relation)
        path.write_text("garbage", encoding="utf-8")
        assert store.load_discovery(relation, CONFIG) is None
        # The service's contract: recompute, save, and the next load
        # hits again.
        store.save_discovery(
            relation, CONFIG, discover_rfds(relation, CONFIG)
        )
        assert store.load_discovery(relation, CONFIG) is not None


class TestMetrics:
    def test_hits_and_misses_reach_the_registry(self, tmp_path, relation):
        telemetry = Telemetry()
        store = ArtifactStore(tmp_path / "cache", telemetry=telemetry)
        assert store.load_discovery(relation, CONFIG) is None
        store.save_discovery(
            relation, CONFIG, discover_rfds(relation, CONFIG)
        )
        assert store.load_discovery(relation, CONFIG) is not None

        families = {
            family.name: family
            for family in telemetry.metrics.families()
        }
        hits = families["renuver_artifact_cache_hits_total"]
        misses = families["renuver_artifact_cache_misses_total"]
        assert sum(i.value for i in hits.instruments.values()) == 1
        assert sum(i.value for i in misses.instruments.values()) == 1
        labels = [dict(key) for key in misses.instruments]
        assert {"kind": "discovery", "reason": "absent"} in labels


class TestStoreErrors:
    def test_root_must_be_a_directory(self, tmp_path):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("x")
        with pytest.raises(ServiceError):
            ArtifactStore(blocker)

    def test_failed_save_counts_as_miss_not_crash(
        self, tmp_path, relation, monkeypatch
    ):
        # A save that fails at the OS level (full disk, permissions)
        # degrades to a counted miss: the cache is an optimization and
        # must never fail the request warming it.
        store = ArtifactStore(tmp_path / "cache", telemetry=Telemetry())

        def boom(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(
            "repro.service.artifacts.atomic_write_text", boom
        )
        result = discover_rfds(relation, CONFIG)
        assert store.save_discovery(relation, CONFIG, result) is None
        assert store.misses == 1
        misses = {
            family.name: family
            for family in store.telemetry.metrics.families()
        }["renuver_artifact_cache_misses_total"]
        labels = [dict(key) for key in misses.instruments]
        assert {"kind": "discovery", "reason": "write_error"} in labels

    def test_injected_disk_full_counts_as_miss(self, tmp_path, relation):
        # The chaos harness's ENOSPC seam exercises the same contract
        # end to end through repro.utils.atomic.
        from repro.robustness.chaos import ChaosConfig, ChaosInjector

        store = ArtifactStore(tmp_path / "cache")
        result = discover_rfds(relation, CONFIG)
        injector = ChaosInjector(ChaosConfig(disk_full_rate=1.0))
        with injector.disk_faults():
            assert store.save_discovery(relation, CONFIG, result) is None
        assert injector.disk_faults_injected == 1
        assert store.misses == 1
        # With the fault gone the very same save succeeds.
        assert store.save_discovery(relation, CONFIG, result) is not None
        assert store.load_discovery(relation, CONFIG) is not None
