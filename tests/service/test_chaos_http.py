"""Service-level chaos: SIGKILL + replay, 2x overload, HTTP faults.

Marked ``service_chaos`` — CI runs it as its own job.  The suite holds
the PR's acceptance bar:

* a real ``python -m repro serve`` subprocess SIGKILLed mid-session
  comes back (same artifact dir) with the session recovered, and the
  next request answers **bit-identical** to an uninterrupted control
  run;
* a sustained 2x-overload burst engages the brownout ladder, every
  refused request is a counted 429 with ``Retry-After``, and overload
  alone produces **zero 5xx**;
* the hardened :class:`~repro.service.ServiceClient` survives every
  injected HTTP fault kind (reset, slow-loris, mid-response kill,
  handler crash) without surfacing a transport error for idempotent
  work.
"""

import json
import os
import re
import signal
import subprocess
import sys
import threading
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.robustness.chaos import ChaosConfig, ChaosInjector
from repro.service import ServiceClient, ServiceConfig, build_server
from repro.telemetry import Telemetry

pytestmark = pytest.mark.service_chaos

ROOT = Path(__file__).resolve().parents[2]

CSV = (
    "Name,City,Phone\n"
    "ann,rome,111\n"
    "ann,rome,\n"
    "bob,oslo,222\n"
    "bob,oslo,222\n"
    "cat,lima,333\n"
)
RFD_TEXTS = ["Name(<=0),City(<=0) -> Phone(<=0)"]
SESSION_BODY = {"csv": CSV, "rfds": RFD_TEXTS}
APPEND_ROWS = [["ann", "rome", None], ["dot", "kiev", "444"]]


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src")
    return env


def _start_server(*extra_args):
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         *extra_args],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True, env=_env(), cwd=str(ROOT),
        start_new_session=True,
    )
    banner = process.stderr.readline()
    match = re.search(r"http://[\d.]+:(\d+)", banner)
    if match is None:
        process.kill()
        out, err = process.communicate(timeout=10)
        raise AssertionError(f"no banner: {banner!r} / {err!r}")
    return process, int(match.group(1))


def _run_session(port, *, impute=True):
    """Create + append (+ optionally impute) one session; returns
    (session id, impute response or None)."""
    client = ServiceClient(f"http://127.0.0.1:{port}", seed=5)
    sid = client.open_session(SESSION_BODY)["id"]
    client.append_tuples(sid, APPEND_ROWS)
    if not impute:
        return sid, None
    return sid, client.impute_session(sid)


class TestSigkillRecovery:
    def test_killed_server_replays_bit_identical(self, tmp_path):
        # Control: an uninterrupted server runs the whole sequence.
        process, port = _start_server(
            "--artifact-dir", str(tmp_path / "control")
        )
        try:
            _, expected = _run_session(port)
        finally:
            process.send_signal(signal.SIGTERM)
            process.communicate(timeout=30)

        # Chaos run: same create+append, then SIGKILL before the
        # imputation round ever runs.
        chaos_dir = str(tmp_path / "chaos")
        process, port = _start_server("--artifact-dir", chaos_dir)
        try:
            sid, _ = _run_session(port, impute=False)
        finally:
            process.kill()  # SIGKILL: no drain, no atexit, nothing
            process.communicate(timeout=30)

        # Restart over the same artifact dir: recovery replays the
        # journal before the socket binds.
        process, port = _start_server("--artifact-dir", chaos_dir)
        try:
            client = ServiceClient(f"http://127.0.0.1:{port}", seed=5)
            ready = client.readiness()
            assert ready["recovered_sessions"] == 1
            assert ready["dropped_sessions"] == 0
            snapshot = client.session(sid)
            assert snapshot["durable"] is True
            assert snapshot["appended_tuples"] == len(APPEND_ROWS)
            replayed = client.impute_session(sid)
            # The acceptance bar: byte-identical to the control run.
            assert replayed["csv"] == expected["csv"]
            assert replayed["outcomes"] == expected["outcomes"]
            assert replayed["report"] == expected["report"] | {
                "elapsed_seconds": replayed["report"]["elapsed_seconds"],
            }
        finally:
            process.send_signal(signal.SIGTERM)
            out, err = process.communicate(timeout=30)
        assert process.returncode == 0, err[-2000:]

    def test_sigkill_between_rounds_preserves_later_rounds(
        self, tmp_path
    ):
        chaos_dir = str(tmp_path / "chaos")
        process, port = _start_server("--artifact-dir", chaos_dir)
        try:
            sid, first_round = _run_session(port)
        finally:
            process.kill()
            process.communicate(timeout=30)

        process, port = _start_server("--artifact-dir", chaos_dir)
        try:
            client = ServiceClient(f"http://127.0.0.1:{port}", seed=5)
            snapshot = client.session(sid)
            # The imputation round itself was journaled and replayed.
            assert snapshot["rounds"] == 1
            assert snapshot["pending"] == 0
            again = client.impute_session(sid)
            # Round 2 on the recovered state: nothing left to impute,
            # and the relation bytes match round 1's output.
            assert again["csv"] == first_round["csv"]
        finally:
            process.send_signal(signal.SIGTERM)
            process.communicate(timeout=30)


class TestOverloadBrownout:
    def test_2x_overload_sheds_audits_and_never_5xxes(self, tmp_path):
        server = build_server(
            "127.0.0.1", 0,
            config=ServiceConfig(
                max_inflight=1,
                max_queue_depth=0,
                brownout_step_up_sheds=2,
                brownout_window_seconds=30.0,
                brownout_cooldown_seconds=300.0,
            ),
            telemetry=Telemetry(),
        )
        thread = threading.Thread(
            target=server.serve_forever, daemon=True
        )
        thread.start()
        base = f"http://127.0.0.1:{server.port}"
        statuses = []
        lock = threading.Lock()
        # A relation heavy enough that each admitted request holds the
        # single permit for a visible stretch — the 5-row fixture
        # finishes faster than the next connection can arrive, which
        # would make the "overload" accidentally sequential.
        rows = []
        for i in range(400):
            phone = "" if i % 17 == 0 else f"{600 + i % 23}"
            rows.append(f"n{i % 40},c{i % 15},{phone}")
        heavy_csv = "Name,City,Phone\n" + "\n".join(rows) + "\n"
        data = json.dumps(
            {"csv": heavy_csv, "rfds": RFD_TEXTS}
        ).encode("utf-8")

        def hammer():
            for _ in range(8):
                request = urllib.request.Request(
                    base + "/v1/impute", data=data,
                    headers={"Content-Type": "application/json"},
                )
                try:
                    with urllib.request.urlopen(request) as response:
                        response.read()
                        status, retry_after = response.status, None
                except urllib.error.HTTPError as error:
                    error.read()
                    status = error.code
                    retry_after = error.headers.get("Retry-After")
                with lock:
                    statuses.append((status, retry_after))

        try:
            # 4 open-loop clients against 1 permit: sustained overload.
            threads = [
                threading.Thread(target=hammer) for _ in range(4)
            ]
            for worker in threads:
                worker.start()
            for worker in threads:
                worker.join()

            shed = [s for s in statuses if s[0] == 429]
            server_errors = [s for s in statuses if s[0] >= 500]
            assert server_errors == [], server_errors
            assert shed, "2x overload produced no sheds"
            # Every shed carries a Retry-After and was counted.
            assert all(
                ra is not None and int(ra) >= 1 for _, ra in shed
            )
            assert sum(server.admission.shed_counts.values()) >= len(
                shed
            )
            # Sustained saturation climbed the ladder, audited.
            assert server.brownout.level >= 1
            assert server.brownout.transitions >= 1
            record = server.brownout.audit[0]
            assert record.from_tier == "normal"
            # ... and the metrics endpoint exposes the whole story.
            with urllib.request.urlopen(base + "/metrics") as response:
                text = response.read().decode("utf-8")
            assert "renuver_service_shed_total" in text
            assert "renuver_service_brownout_total" in text
            assert "renuver_service_brownout_level" in text
        finally:
            server.drain()

    @staticmethod
    def _force_tier(server, level):
        # Pin the ladder at ``level``: a fresh controller has never
        # shed, so ``observe()`` would otherwise decay the forced
        # level on the very next request.
        server.brownout._level = level
        server.brownout._last_shed = server.brownout._clock()

    def test_brownout_scalar_tier_is_result_identical(self, tmp_path):
        server = build_server(
            "127.0.0.1", 0,
            config=ServiceConfig(
                max_inflight=2,
                brownout_cooldown_seconds=3600.0,
            ),
            telemetry=Telemetry(),
        )
        thread = threading.Thread(
            target=server.serve_forever, daemon=True
        )
        thread.start()
        client = ServiceClient(f"http://127.0.0.1:{server.port}")
        try:
            normal = client.impute(SESSION_BODY)
            assert normal["brownout_tier"] == "normal"
            # Force the scalar tier and repeat: same bytes.
            self._force_tier(server, 1)
            degraded = client.impute(SESSION_BODY)
            assert degraded["brownout_tier"] == "scalar"
            assert degraded["csv"] == normal["csv"]
        finally:
            server.drain()

    def test_cache_only_tier_sheds_fresh_discovery(self, tmp_path):
        server = build_server(
            "127.0.0.1", 0,
            config=ServiceConfig(
                max_inflight=2,
                brownout_cooldown_seconds=3600.0,
            ),
            artifact_dir=str(tmp_path / "cache"),
            telemetry=Telemetry(),
        )
        thread = threading.Thread(
            target=server.serve_forever, daemon=True
        )
        thread.start()
        client = ServiceClient(
            f"http://127.0.0.1:{server.port}", max_retries=0
        )
        try:
            # Warm the artifact cache for this relation, then brown out.
            warm = client.impute({
                "csv": CSV, "discovery": {"limit": 1, "max_lhs": 1},
            })
            assert warm["rfd_source"] == "discovered"
            self._force_tier(server, 2)

            # Pinned RFDs: still served (scalar).
            pinned = client.impute(SESSION_BODY)
            assert pinned["brownout_tier"] == "cache_only"

            # Warm artifact: still served.
            cached = client.impute({
                "csv": CSV, "discovery": {"limit": 1, "max_lhs": 1},
            })
            assert cached["rfd_source"] == "cache"

            # Fresh discovery (different config key): shed, not erred.
            with pytest.raises(Exception) as info:
                client.impute({
                    "csv": CSV,
                    "discovery": {"limit": 2, "max_lhs": 1},
                })
            assert getattr(info.value, "status", None) == 429
            assert server.admission.shed_counts["cache_only"] >= 1
        finally:
            server.drain()


class TestHTTPFaults:
    def _faulty_server(self, rates):
        chaos = ChaosInjector(ChaosConfig(
            seed=42, http_slow_seconds=0.01, **rates
        ))
        server = build_server(
            "127.0.0.1", 0,
            config=ServiceConfig(max_inflight=4),
            telemetry=Telemetry(),
            chaos=chaos,
        )
        thread = threading.Thread(
            target=server.serve_forever, daemon=True
        )
        thread.start()
        return server, chaos

    def test_client_survives_every_fault_kind(self):
        server, chaos = self._faulty_server({
            "http_reset_rate": 0.15,
            "http_slow_read_rate": 0.1,
            "http_mid_kill_rate": 0.15,
            "http_crash_rate": 0.1,
        })
        client = ServiceClient(
            f"http://127.0.0.1:{server.port}",
            max_retries=8, timeout_seconds=10.0, seed=7,
        )
        try:
            expected = None
            for _ in range(20):
                out = client.impute(SESSION_BODY)
                if expected is None:
                    expected = out["csv"]
                # Fault or no fault, every answer is the same bytes.
                assert out["csv"] == expected
            assert chaos.http_faults_injected > 0
            assert client.retries > 0
        finally:
            server.drain()

    def test_crash_fault_is_500_and_the_server_keeps_serving(self):
        server, chaos = self._faulty_server({"http_crash_rate": 1.0})
        base = f"http://127.0.0.1:{server.port}"
        try:
            request = urllib.request.Request(
                base + "/v1/impute",
                data=json.dumps(SESSION_BODY).encode("utf-8"),
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(urllib.error.HTTPError) as info:
                urllib.request.urlopen(request)
            assert info.value.code == 500
            assert "internal error" in json.loads(
                info.value.read()
            )["error"]
            # Stop injecting: the very next request is served normally.
            server.chaos = None
            with urllib.request.urlopen(request) as response:
                assert response.status == 200
            # The faults were counted for the operator.
            with urllib.request.urlopen(base + "/metrics") as response:
                text = response.read().decode("utf-8")
            assert 'renuver_http_chaos_faults_total{kind="crash"}' in text
        finally:
            server.drain()

    def test_fault_plan_is_seed_deterministic(self):
        plans = []
        for _ in range(2):
            chaos = ChaosInjector(ChaosConfig(
                seed=9,
                http_reset_rate=0.25, http_slow_read_rate=0.25,
                http_mid_kill_rate=0.25, http_crash_rate=0.25,
            ))
            plans.append([
                (chaos.http_fault() or {}).get("kind")
                for _ in range(50)
            ])
        assert plans[0] == plans[1]
        # Rates sum to 1: every draw faults, and all kinds appear.
        assert set(plans[0]) == {
            "reset", "slow_read", "mid_kill", "crash"
        }
