"""The HTTP layer: routes, CLI equivalence, errors, backpressure."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.cli import main
from repro.discovery import DiscoveryConfig
from repro.service import ServiceConfig, build_server
from repro.telemetry import Telemetry

CSV = (
    "Name,City,Phone\n"
    "ann,rome,111\n"
    "ann,rome,\n"
    "bob,oslo,222\n"
    "bob,oslo,222\n"
    "cat,lima,333\n"
)
RFD_TEXTS = ["Name(<=0),City(<=0) -> Phone(<=0)"]
DISCOVERY = DiscoveryConfig(threshold_limit=1, max_lhs_size=1)


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    server = build_server(
        "127.0.0.1", 0,
        config=ServiceConfig(discovery=DISCOVERY, max_inflight=4),
        artifact_dir=str(tmp_path_factory.mktemp("cache")),
        telemetry=Telemetry(),
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.drain()


@pytest.fixture()
def base(server):
    return f"http://127.0.0.1:{server.port}"


def call(base, method, path, body=None, raw=None):
    data = raw if raw is not None else (
        json.dumps(body).encode("utf-8") if body is not None else None
    )
    request = urllib.request.Request(
        base + path, data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestOneShot:
    def test_response_is_bit_identical_to_the_cli(
        self, base, tmp_path, capsys
    ):
        csv_path = tmp_path / "dirty.csv"
        csv_path.write_text(CSV, encoding="utf-8")
        rfds_path = tmp_path / "rfds.txt"
        rfds_path.write_text("\n".join(RFD_TEXTS) + "\n", encoding="utf-8")
        out_path = tmp_path / "clean.csv"
        assert main([
            "impute", str(csv_path), "--rfds", str(rfds_path),
            "--out", str(out_path),
        ]) == 0
        capsys.readouterr()

        status, body = call(base, "POST", "/v1/impute", {
            "csv": CSV, "rfds": RFD_TEXTS,
        })
        assert status == 200
        assert body["rfd_source"] == "provided"
        assert body["csv"] == out_path.read_text(encoding="utf-8")

    def test_discovery_cold_then_warm(self, base, server):
        request = {"csv": CSV}
        status, cold = call(base, "POST", "/v1/impute", request)
        assert status == 200
        assert cold["rfd_source"] == "discovered"
        status, warm = call(base, "POST", "/v1/impute", request)
        assert status == 200
        assert warm["rfd_source"] == "cache"
        assert warm["csv"] == cold["csv"]
        assert server.engine.store.hits >= 1

    def test_report_shape(self, base):
        _, body = call(base, "POST", "/v1/impute", {
            "csv": CSV, "rfds": RFD_TEXTS,
        })
        report = body["report"]
        assert report["missing_cells"] == 1
        assert report["imputed_cells"] == 1
        assert report["fill_rate"] == 1.0
        assert report["budget_exhausted"] is False

    def test_budget_overrun_returns_partial_not_500(self, base):
        status, body = call(base, "POST", "/v1/impute", {
            "csv": CSV, "rfds": RFD_TEXTS, "budget_seconds": 1e-9,
        })
        assert status == 200
        assert body["report"]["budget_exhausted"] is True


class TestSessions:
    def test_full_lifecycle(self, base):
        status, session = call(base, "POST", "/v1/sessions", {
            "csv": CSV, "rfds": RFD_TEXTS,
        })
        assert status == 201
        sid = session["id"]
        assert session["pending"] == 1

        status, appended = call(
            base, "POST", f"/v1/sessions/{sid}/tuples",
            {"rows": [["ann", "rome", None]]},
        )
        assert status == 200
        assert appended["pending"] == 2

        status, imputed = call(
            base, "POST", f"/v1/sessions/{sid}/impute"
        )
        assert status == 200
        statuses = {o["status"] for o in imputed["outcomes"]}
        assert "imputed" in statuses

        status, snapshot = call(base, "GET", f"/v1/sessions/{sid}")
        assert status == 200
        assert snapshot["rounds"] == 1

        status, deleted = call(base, "DELETE", f"/v1/sessions/{sid}")
        assert status == 200
        status, _ = call(base, "GET", f"/v1/sessions/{sid}")
        assert status == 404

    def test_session_without_rfds_maintains_discovery(self, base):
        status, session = call(base, "POST", "/v1/sessions", {
            "csv": CSV,
        })
        assert status == 201
        assert session["rfd_source"] in ("cache", "discovered")
        sid = session["id"]
        status, appended = call(
            base, "POST", f"/v1/sessions/{sid}/tuples",
            {"rows": [["dot", "kiev", "444"]]},
        )
        assert status == 200
        assert appended["maintenance"] is not None
        call(base, "DELETE", f"/v1/sessions/{sid}")

    def test_registry_exhaustion_is_429(self, tmp_path):
        server = build_server(
            "127.0.0.1", 0,
            config=ServiceConfig(discovery=DISCOVERY, max_sessions=1),
        )
        thread = threading.Thread(
            target=server.serve_forever, daemon=True
        )
        thread.start()
        local = f"http://127.0.0.1:{server.port}"
        try:
            body = {"csv": CSV, "rfds": RFD_TEXTS}
            status, _ = call(local, "POST", "/v1/sessions", body)
            assert status == 201
            status, refused = call(local, "POST", "/v1/sessions", body)
            assert status == 429
            assert "max_sessions" in refused["error"]
        finally:
            server.drain()


class TestErrorMapping:
    def test_unknown_route_is_404(self, base):
        assert call(base, "GET", "/nope")[0] == 404

    def test_non_json_body_is_400(self, base):
        status, body = call(
            base, "POST", "/v1/impute", raw=b"this is not json"
        )
        assert status == 400
        assert "JSON" in body["error"]

    def test_missing_csv_is_400(self, base):
        assert call(base, "POST", "/v1/impute", {})[0] == 400

    def test_bad_rfd_text_is_400_with_family(self, base):
        status, body = call(base, "POST", "/v1/impute", {
            "csv": CSV, "rfds": ["not an rfd"],
        })
        assert status == 400
        assert body["type"] == "RFDParseError"

    def test_malformed_csv_is_400(self, base):
        status, body = call(base, "POST", "/v1/impute", {
            "csv": "A,B\n1,2,3\n", "rfds": ["A(<=0) -> B(<=0)"],
        })
        assert status == 400

    def test_unknown_config_override_is_400(self, base):
        status, body = call(base, "POST", "/v1/impute", {
            "csv": CSV, "rfds": RFD_TEXTS, "config": {"workers": 4},
        })
        assert status == 400
        assert "workers" in body["error"]

    def test_unknown_discovery_option_is_400(self, base):
        status, body = call(base, "POST", "/v1/impute", {
            "csv": CSV, "discovery": {"bogus": 1},
        })
        assert status == 400

    def test_oversized_body_is_413(self, tmp_path):
        server = build_server(
            "127.0.0.1", 0,
            config=ServiceConfig(
                discovery=DISCOVERY, max_body_bytes=2048
            ),
        )
        thread = threading.Thread(
            target=server.serve_forever, daemon=True
        )
        thread.start()
        local = f"http://127.0.0.1:{server.port}"
        try:
            status, _ = call(local, "POST", "/v1/impute", {
                "csv": "A,B\n" + "x,1\n" * 2000,
            })
            assert status == 413
        finally:
            server.drain()


class TestBackpressure:
    def test_admission_overflow_is_429_with_retry_after(self, tmp_path):
        # A depth-0 queue: permits still admit, but nothing may wait —
        # the first request past ``max_inflight`` is shed immediately.
        server = build_server(
            "127.0.0.1", 0,
            config=ServiceConfig(
                discovery=DISCOVERY, max_inflight=2, max_queue_depth=0,
            ),
        )
        thread = threading.Thread(
            target=server.serve_forever, daemon=True
        )
        thread.start()
        local = f"http://127.0.0.1:{server.port}"
        try:
            # Hold every permit so the next imputation request overflows.
            permits = server.engine.config.max_inflight
            for _ in range(permits):
                server.admission.acquire()
            try:
                request = urllib.request.Request(
                    local + "/v1/impute",
                    data=json.dumps(
                        {"csv": CSV, "rfds": RFD_TEXTS}
                    ).encode("utf-8"),
                    headers={"Content-Type": "application/json"},
                )
                with pytest.raises(urllib.error.HTTPError) as info:
                    urllib.request.urlopen(request)
                assert info.value.code == 429
                assert int(info.value.headers["Retry-After"]) >= 1
                refusal = json.loads(info.value.read())
                assert refusal["reason"] == "queue_full"
                assert server.admission.shed_counts["queue_full"] >= 1
                # Operational endpoints bypass admission entirely.
                assert call(local, "GET", "/healthz")[0] == 200
                assert call(local, "GET", "/healthz/ready")[0] == 200
                with urllib.request.urlopen(
                    local + "/metrics"
                ) as response:
                    assert response.status == 200
            finally:
                for _ in range(permits):
                    server.admission.release()
            # With permits back, the same request is served again.
            status, _ = call(local, "POST", "/v1/impute", {
                "csv": CSV, "rfds": RFD_TEXTS,
            })
            assert status == 200
        finally:
            server.drain()

    def test_server_recovers_after_overflow(self, base):
        status, _ = call(base, "POST", "/v1/impute", {
            "csv": CSV, "rfds": RFD_TEXTS,
        })
        assert status == 200


class TestConcurrency:
    def test_parallel_clients_get_consistent_answers(self, base):
        results: list[tuple[int, str]] = []
        lock = threading.Lock()

        def client():
            status, body = call(base, "POST", "/v1/impute", {
                "csv": CSV, "rfds": RFD_TEXTS,
            })
            with lock:
                results.append((status, body.get("csv", "")))

        threads = [threading.Thread(target=client) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(results) == 8
        assert all(status == 200 for status, _ in results)
        assert len({csv for _, csv in results}) == 1


class TestMetricsEndpoint:
    def test_request_metrics_are_exposed(self, base):
        call(base, "GET", "/healthz")
        with urllib.request.urlopen(base + "/metrics") as response:
            assert response.headers["Content-Type"].startswith(
                "text/plain"
            )
            text = response.read().decode("utf-8")
        assert (
            'renuver_http_requests_total{code="200",route="/healthz"}'
            in text
        )
        assert "renuver_http_request_seconds_bucket" in text

    def test_label_escaping_survives_the_wire(self, server, base):
        # A label value with quotes, backslashes and newlines must reach
        # the scraper escaped exactly as the exposition format demands.
        server.telemetry.metrics.counter(
            "renuver_test_escaping_total",
            "Escaping probe.",
            path='a"b\\c\nd',
        ).inc()
        with urllib.request.urlopen(base + "/metrics") as response:
            text = response.read().decode("utf-8")
        assert (
            'renuver_test_escaping_total{path="a\\"b\\\\c\\nd"} 1'
        ) in text
