"""Rollback discipline of ``Renuver._try_candidate`` (both engines).

Algorithm 4's tentative write must be invisible unless verification
accepts it: a rejected candidate — or a crash anywhere between the
write and the verdict — leaves the relation bit-identical to its
pre-attempt state.
"""

from __future__ import annotations

import pytest

from repro.core import Renuver, RenuverConfig
from repro.core.donor_scan import ScalarEngine, VectorizedEngine
from repro.core.report import OutcomeStatus
from repro.dataset import MISSING, Relation
from repro.dataset.csv_io import to_csv_text
from repro.exceptions import InjectedFaultError
from repro.rfd import make_rfd

ENGINES = ("scalar", "vectorized")


def _zip_city() -> Relation:
    rows = [
        ["alice", "90001", "Los Angeles", 34],
        ["bob", "90001", "Los Angeles", 41],
        ["carol", "94101", "San Francisco", 29],
        ["dave", "94101", "San Francisco", 55],
    ]
    return Relation.from_rows(
        ["Name", "Zip", "City", "Age"], rows, name="zip-city"
    )


def _rejection_setup() -> tuple[Relation, list]:
    """A missing City cell where every candidate fails verification.

    The Age RFD offers every city as a candidate; the crisp
    ``City -> Zip`` dependency rejects them all because row 0's zip
    (77777) matches nobody else's.
    """
    relation = _zip_city()
    relation.set_value(0, "City", MISSING)
    relation.set_value(0, "Zip", "77777")
    sigma = [
        make_rfd({"Age": 100}, ("City", 0)),
        make_rfd({"City": 0}, ("Zip", 0)),
    ]
    return relation, sigma


class TestVerificationRollback:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_all_rejected_leaves_relation_bit_identical(self, engine):
        relation, sigma = _rejection_setup()
        before = to_csv_text(relation)
        result = Renuver(sigma, RenuverConfig(engine=engine)).impute(
            relation
        )
        outcome = result.report.outcome_for(0, "City")
        assert outcome.status is OutcomeStatus.ALL_REJECTED
        assert outcome.candidates_tried > 0
        assert to_csv_text(result.relation) == before
        assert to_csv_text(relation) == before  # input untouched too

    @pytest.mark.parametrize("engine", ENGINES)
    def test_all_rejected_inplace_restores_input(self, engine):
        relation, sigma = _rejection_setup()
        before = to_csv_text(relation)
        Renuver(sigma, RenuverConfig(engine=engine)).impute(
            relation, inplace=True
        )
        assert to_csv_text(relation) == before


class TestCrashRollback:
    """A fault raised *between* the tentative write and the verdict."""

    @pytest.fixture(autouse=True)
    def _faulty_verification(self, monkeypatch):
        def boom(self, *args, **kwargs):
            raise InjectedFaultError("verification crashed mid-candidate")

        monkeypatch.setattr(ScalarEngine, "is_faultless", boom)
        monkeypatch.setattr(VectorizedEngine, "is_faultless", boom)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_skip_fallback_restores_cell(self, engine):
        relation = _zip_city()
        relation.set_value(0, "City", MISSING)
        before = to_csv_text(relation)
        sigma = [make_rfd({"Zip": 0}, ("City", 1))]
        result = Renuver(sigma, RenuverConfig(engine=engine)).impute(
            relation
        )
        outcome = result.report.outcome_for(0, "City")
        assert outcome.status is OutcomeStatus.SKIPPED
        assert to_csv_text(result.relation) == before
        assert result.report.degradations  # downgrade was audited

    @pytest.mark.parametrize("engine", ENGINES)
    def test_raise_fallback_restores_before_propagating(self, engine):
        relation = _zip_city()
        relation.set_value(0, "City", MISSING)
        before = to_csv_text(relation)
        sigma = [make_rfd({"Zip": 0}, ("City", 1))]
        engine_obj = Renuver(
            sigma, RenuverConfig(engine=engine, fallback="raise")
        )
        with pytest.raises(InjectedFaultError):
            engine_obj.impute(relation, inplace=True)
        assert to_csv_text(relation) == before
