"""Scalar-vs-vectorized equivalence on every seed dataset.

The vectorized donor-scan engine claims *bit-identical* imputation
outcomes: same candidates in the same order, same accept/reject
decisions, same key-RFD partitions.  This suite runs both engines over
all five seed generators at smoke scale with discovered RFDs and
injected missing values and compares the full reports cell by cell
(:class:`~repro.core.report.CellOutcome` is a frozen dataclass, so
``==`` covers value, source row, RFD, distance and cluster threshold).
"""

from __future__ import annotations

import pytest

from repro import (
    DiscoveryConfig,
    Renuver,
    RenuverConfig,
    discover_rfds,
    inject_missing,
    load_dataset,
)

SMOKE_SIZES = {
    "restaurant": 120,
    "cars": 100,
    "glass": 80,
    "bridges": 60,
    "physician": 80,
}

DISCOVERY = DiscoveryConfig(
    threshold_limit=3,
    max_lhs_size=2,
    grid_size=2,
    max_per_rhs=8,
    max_pairs=200_000,
)


def run_both(name: str, **config_changes):
    relation = load_dataset(name, n_tuples=SMOKE_SIZES[name], seed=0)
    rfds = discover_rfds(relation, DISCOVERY).all_rfds
    dirty = inject_missing(relation, rate=0.03, seed=7).relation
    results = {}
    for engine in ("scalar", "vectorized"):
        renuver = Renuver(
            rfds, RenuverConfig(engine=engine, **config_changes)
        )
        results[engine] = renuver.impute(dirty)
    return results["scalar"], results["vectorized"]


@pytest.mark.parametrize("name", sorted(SMOKE_SIZES))
def test_identical_outcomes_on_seed_dataset(name):
    scalar, vectorized = run_both(name)
    assert scalar.report.outcomes == vectorized.report.outcomes
    assert scalar.relation.equals(vectorized.relation)
    assert (
        scalar.report.key_rfds_initial
        == vectorized.report.key_rfds_initial
    )
    assert (
        scalar.report.key_rfds_reactivated
        == vectorized.report.key_rfds_reactivated
    )


def test_identical_outcomes_under_complete_scope():
    scalar, vectorized = run_both(
        "restaurant", keyness_scope="complete"
    )
    assert scalar.report.outcomes == vectorized.report.outcomes
    assert scalar.relation.equals(vectorized.relation)


def test_identical_outcomes_with_rhs_checks_and_cap():
    scalar, vectorized = run_both(
        "physician", check_rhs_rfds=True, max_candidates=3
    )
    assert scalar.report.outcomes == vectorized.report.outcomes
    assert scalar.relation.equals(vectorized.relation)
