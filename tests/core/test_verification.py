"""Tests for IS_FAULTLESS (Algorithm 4)."""

from repro.core.verification import first_fault, is_faultless
from repro.distance.pattern import PatternCalculator
from repro.rfd import make_rfd


class TestPaperExample59:
    def test_t3_phone_rejected_for_t7(self, restaurant_sample, paper_rfds):
        # Imputing t7[Phone] with t3's phone violates
        # Phone(<=1) -> Class(<=0) through the pair (t3, t7).  The check
        # runs against Sigma' = phi2..phi7, as in the paper (phi1 is
        # filtered as a key there).
        sigma_prime = paper_rfds[1:]
        restaurant_sample.set_value(6, "Phone", "213/857-0034")
        calculator = PatternCalculator(restaurant_sample)
        assert not is_faultless(calculator, 6, "Phone", sigma_prime)
        fault = first_fault(calculator, 6, "Phone", sigma_prime)
        assert fault is not None
        assert fault.rfd.rhs_attribute == "Class"
        assert (fault.row_a, fault.row_b) == (2, 6)

    def test_t2_phone_accepted_for_t7(self, restaurant_sample, paper_rfds):
        restaurant_sample.set_value(6, "Phone", "310-932-9025")
        calculator = PatternCalculator(restaurant_sample)
        assert is_faultless(calculator, 6, "Phone", paper_rfds[1:])


class TestMechanics:
    def test_only_lhs_rfds_checked_by_default(self, zip_city_relation):
        # Imputed attribute = City; an RFD with City only on the RHS is
        # ignored by the paper's Algorithm 4.
        zip_city_relation.set_value(0, "City", "WRONG")
        rhs_only = make_rfd({"Zip": 0}, ("City", 0))
        calculator = PatternCalculator(zip_city_relation)
        assert is_faultless(calculator, 0, "City", [rhs_only])

    def test_check_rhs_rfds_extension(self, zip_city_relation):
        zip_city_relation.set_value(0, "City", "WRONG")
        rhs_only = make_rfd({"Zip": 0}, ("City", 0))
        calculator = PatternCalculator(zip_city_relation)
        assert not is_faultless(
            calculator, 0, "City", [rhs_only], check_rhs_rfds=True
        )

    def test_lhs_rfd_violation_detected(self, zip_city_relation):
        # City -> Zip: writing t0[City] = t2[City] while keeping t0's
        # zip makes the pair (t0, t2) violate.
        city_zip = make_rfd({"City": 0}, ("Zip", 0))
        zip_city_relation.set_value(0, "City", "San Francisco")
        calculator = PatternCalculator(zip_city_relation)
        fault = first_fault(calculator, 0, "City", [city_zip])
        assert fault is not None
        assert fault.rfd is city_zip

    def test_no_relevant_rfds_is_faultless(self, zip_city_relation):
        calculator = PatternCalculator(zip_city_relation)
        unrelated = make_rfd({"Age": 0}, ("Name", 0))
        assert is_faultless(calculator, 0, "City", [unrelated])

    def test_missing_partner_values_do_not_fault(self, zip_city_relation):
        city_zip = make_rfd({"City": 0}, ("Zip", 0))
        zip_city_relation.set_value(2, "Zip", None)
        zip_city_relation.set_value(0, "City", "San Francisco")
        calculator = PatternCalculator(zip_city_relation)
        # t2's zip is gone; the only other SF tuple is t3.
        fault = first_fault(calculator, 0, "City", [city_zip])
        assert fault is not None
        assert {fault.row_a, fault.row_b} == {0, 3}
