"""Tests for candidate tuple generation (Algorithm 3)."""

import pytest

from repro.core.candidates import Candidate, find_candidate_tuples
from repro.core.selection import cluster_by_rhs_threshold
from repro.distance.pattern import PatternCalculator
from repro.rfd import make_rfd


@pytest.fixture()
def phone_cluster0(paper_rfds):
    """rho_Phone^0 = {phi6: Name(<=6), City(<=9) -> Phone(<=0)}."""
    selected = [r for r in paper_rfds if r.rhs_attribute == "Phone"]
    return cluster_by_rhs_threshold(selected, "Phone")[0]


class TestPaperExample58:
    def test_candidates_for_t7_phone(self, restaurant_sample,
                                     phone_cluster0):
        # Example 5.8: candidates for t7[Phone] via phi6 are t2 (7.5 in
        # the paper's spelling) and t3 (3.0), ordered t3 first.
        calculator = PatternCalculator(restaurant_sample)
        candidates = find_candidate_tuples(
            calculator, 6, "Phone", phone_cluster0
        )
        assert [candidate.row for candidate in candidates] == [2, 1]
        assert candidates[0].distance == 3.0
        assert candidates[0].value == "213/857-0034"
        assert candidates[1].row == 1

    def test_example_4_6_city_candidate(self, restaurant_sample):
        # Example 4.6: the only candidate for t6[City] via
        # Phone(<=0) -> City(<=10) is t5.
        phi0 = make_rfd({"Phone": 0}, ("City", 10))
        cluster = cluster_by_rhs_threshold([phi0], "City")[0]
        calculator = PatternCalculator(restaurant_sample)
        candidates = find_candidate_tuples(calculator, 5, "City", cluster)
        assert [candidate.row for candidate in candidates] == [4]
        assert candidates[0].value == "Hollywood"


class TestMechanics:
    def test_excludes_donors_with_missing_target(self, restaurant_sample,
                                                 phone_cluster0):
        calculator = PatternCalculator(restaurant_sample)
        candidates = find_candidate_tuples(
            calculator, 3, "Phone", phone_cluster0
        )
        donor_rows = {candidate.row for candidate in candidates}
        assert 6 not in donor_rows  # t7[Phone] is missing
        assert 3 not in donor_rows  # never the target itself

    def test_min_distance_across_rfds_in_cluster(self, zip_city_relation):
        # Two RFDs in the same cluster: the candidate keeps the minimum.
        zip_city_relation.set_value(0, "City", None)
        rfds = [
            make_rfd({"Zip": 0}, ("City", 1)),
            make_rfd({"Zip": 0, "Age": 100}, ("City", 1)),
        ]
        cluster = cluster_by_rhs_threshold(rfds, "City")[0]
        calculator = PatternCalculator(zip_city_relation)
        candidates = find_candidate_tuples(calculator, 0, "City", cluster)
        donor = next(c for c in candidates if c.row == 1)
        # Zip-only RFD gives distance 0; the Zip+Age one gives
        # (0 + |34-41|)/2 = 3.5; min wins.
        assert donor.distance == 0.0
        assert donor.rfd.lhs_attributes == ("Zip",)

    def test_sorted_ascending_with_row_tie_break(self, zip_city_relation):
        zip_city_relation.set_value(0, "City", None)
        rfd = make_rfd({"Zip": 1}, ("City", 1))
        cluster = cluster_by_rhs_threshold([rfd], "City")[0]
        calculator = PatternCalculator(zip_city_relation)
        candidates = find_candidate_tuples(calculator, 0, "City", cluster)
        keys = [candidate.sort_key() for candidate in candidates]
        assert keys == sorted(keys)

    def test_max_candidates_truncates(self, zip_city_relation):
        zip_city_relation.set_value(0, "City", None)
        rfd = make_rfd({"Age": 100}, ("City", 100))
        cluster = cluster_by_rhs_threshold([rfd], "City")[0]
        calculator = PatternCalculator(zip_city_relation)
        all_candidates = find_candidate_tuples(
            calculator, 0, "City", cluster
        )
        top2 = find_candidate_tuples(
            calculator, 0, "City", cluster, max_candidates=2
        )
        assert len(all_candidates) == 5
        assert top2 == all_candidates[:2]

    def test_wrong_cluster_attribute_raises(self, restaurant_sample,
                                            phone_cluster0):
        calculator = PatternCalculator(restaurant_sample)
        with pytest.raises(ValueError):
            find_candidate_tuples(calculator, 5, "City", phone_cluster0)

    def test_no_matching_donors(self, restaurant_sample):
        strict = make_rfd({"Name": 0}, ("City", 0))
        cluster = cluster_by_rhs_threshold([strict], "City")[0]
        calculator = PatternCalculator(restaurant_sample)
        assert find_candidate_tuples(calculator, 5, "City", cluster) == []

    def test_pattern_provider_is_used(self, restaurant_sample,
                                      phone_cluster0):
        calculator = PatternCalculator(restaurant_sample)
        calls: list[int] = []

        def provider(row):
            calls.append(row)
            return calculator.pattern(6, row, ("Name", "City"))

        candidates = find_candidate_tuples(
            calculator, 6, "Phone", phone_cluster0, pattern_for=provider
        )
        assert calls  # provider consulted
        assert [candidate.row for candidate in candidates] == [2, 1]


class TestCandidateObject:
    def test_sort_key(self):
        rfd = make_rfd({"A": 1}, ("B", 1))
        assert Candidate(3, "x", 1.5, rfd).sort_key() == (1.5, 3)
