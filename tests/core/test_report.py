"""Tests for imputation reports and cell outcomes."""

from repro.core.report import CellOutcome, ImputationReport, OutcomeStatus
from repro.rfd import make_rfd


def _imputed(row, attribute="A", value="x"):
    return CellOutcome(
        row,
        attribute,
        OutcomeStatus.IMPUTED,
        value=value,
        source_row=0,
        rfd=make_rfd({"Lhs": 1}, (attribute, 1)),
        distance=0.5,
        cluster_threshold=1.0,
        candidates_tried=1,
    )


def _skipped(row, attribute="A", status=OutcomeStatus.NO_CANDIDATES):
    return CellOutcome(row, attribute, status)


class TestCellOutcome:
    def test_imputed_flag(self):
        assert _imputed(1).imputed
        assert not _skipped(1).imputed

    def test_str_imputed(self):
        text = str(_imputed(1))
        assert "from tuple 0" in text and "'x'" in text

    def test_str_skipped(self):
        assert "no_candidates" in str(_skipped(2))


class TestImputationReport:
    def test_counts(self):
        report = ImputationReport()
        report.add(_imputed(0))
        report.add(_imputed(1))
        report.add(_skipped(2))
        assert report.missing_count == 3
        assert report.imputed_count == 2
        assert report.unimputed_count == 1
        assert report.fill_rate == 2 / 3
        assert len(report) == 3

    def test_empty_report(self):
        report = ImputationReport()
        assert report.fill_rate == 0.0
        assert report.imputed_count == 0

    def test_outcome_for(self):
        report = ImputationReport()
        report.add(_imputed(4, "B"))
        assert report.outcome_for(4, "B") is not None
        assert report.outcome_for(4, "C") is None

    def test_imputed_cells_order(self):
        report = ImputationReport()
        report.add(_skipped(0))
        report.add(_imputed(1))
        report.add(_imputed(2))
        assert [outcome.row for outcome in report.imputed_cells()] == [1, 2]

    def test_status_counts(self):
        report = ImputationReport()
        report.add(_imputed(0))
        report.add(_skipped(1))
        report.add(_skipped(2, status=OutcomeStatus.ALL_REJECTED))
        counts = report.status_counts()
        assert counts == {
            "imputed": 1,
            "no_candidates": 1,
            "all_rejected": 1,
        }

    def test_summary_mentions_fill_rate(self):
        report = ImputationReport()
        report.add(_imputed(0))
        assert "fill rate" in report.summary()

    def test_iteration(self):
        report = ImputationReport()
        report.add(_imputed(0))
        assert list(report)[0].row == 0
