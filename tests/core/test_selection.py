"""Tests for RFD selection and RHS-threshold clustering."""

import pytest

from repro.core.selection import (
    Cluster,
    build_cluster_plan,
    cluster_by_rhs_threshold,
    select_rfds_for_attribute,
)
from repro.rfd import make_rfd


class TestSelect:
    def test_selects_by_rhs(self, paper_rfds):
        selected = select_rfds_for_attribute(paper_rfds, "Phone")
        assert {str(rfd) for rfd in selected} == {
            "City(<=2) -> Phone(<=2)",
            "Name(<=4) -> Phone(<=1)",
            "City(<=9), Name(<=6) -> Phone(<=0)",
        }

    def test_no_match_is_empty(self, paper_rfds):
        assert select_rfds_for_attribute(paper_rfds, "Address") == []


class TestCluster:
    def test_paper_phone_clusters(self, paper_rfds):
        # Figure 1: rho_Phone^0 = {phi6}, rho^1 = {phi4}, rho^2 = {phi3}.
        selected = select_rfds_for_attribute(paper_rfds, "Phone")
        clusters = cluster_by_rhs_threshold(selected, "Phone")
        assert [cluster.rhs_threshold for cluster in clusters] == [0, 1, 2]
        assert len(clusters[0]) == 1
        assert clusters[0].rfds[0].lhs_attributes == ("City", "Name")

    def test_descending_order(self, paper_rfds):
        selected = select_rfds_for_attribute(paper_rfds, "Phone")
        clusters = cluster_by_rhs_threshold(
            selected, "Phone", order="descending"
        )
        assert [cluster.rhs_threshold for cluster in clusters] == [2, 1, 0]

    def test_groups_equal_thresholds(self):
        rfds = [
            make_rfd({"A": 1}, ("C", 5)),
            make_rfd({"B": 1}, ("C", 5)),
            make_rfd({"A": 2}, ("C", 3)),
        ]
        clusters = cluster_by_rhs_threshold(rfds, "C")
        assert [len(cluster) for cluster in clusters] == [1, 2]

    def test_invalid_order_raises(self):
        with pytest.raises(ValueError):
            cluster_by_rhs_threshold([], "A", order="sideways")

    def test_wrong_rhs_raises(self):
        with pytest.raises(ValueError):
            cluster_by_rhs_threshold(
                [make_rfd({"A": 1}, ("B", 1))], "C"
            )

    def test_empty_input(self):
        assert cluster_by_rhs_threshold([], "A") == []


class TestClusterObject:
    def test_validates_membership(self):
        rfd = make_rfd({"A": 1}, ("B", 2))
        with pytest.raises(ValueError):
            Cluster("B", 3, (rfd,))  # wrong threshold
        with pytest.raises(ValueError):
            Cluster("C", 2, (rfd,))  # wrong attribute

    def test_str(self):
        rfd = make_rfd({"A": 1}, ("B", 2))
        assert "rho_B^2" in str(Cluster("B", 2, (rfd,)))


class TestPlan:
    def test_plan_covers_requested_attributes(self, paper_rfds):
        plan = build_cluster_plan(paper_rfds, ["Phone", "City", "Address"])
        assert len(plan["Phone"]) == 3
        assert len(plan["City"]) == 1
        assert plan["Address"] == []
