"""Tests for the RENUVER driver (Algorithm 1), incl. the Figure 1 rerun."""

import pytest

from repro.core import OutcomeStatus, Renuver, RenuverConfig
from repro.dataset import MISSING, Relation
from repro.distance.pattern import PatternCalculator
from repro.exceptions import BudgetExceededError, ImputationError
from repro.rfd import holds_all, make_rfd


class TestFigure1:
    """The paper's worked example end to end."""

    def test_all_four_missing_values_imputed(
        self, restaurant_sample, paper_rfds
    ):
        result = Renuver(paper_rfds).impute(restaurant_sample)
        assert result.report.fill_rate == 1.0
        assert result.relation.count_missing() == 0

    def test_t7_phone_from_t2_after_t3_rejection(
        self, restaurant_sample, paper_rfds
    ):
        # Example 5.9: t3's phone violates phi7, so t2's is chosen.
        result = Renuver(paper_rfds).impute(restaurant_sample)
        outcome = result.report.outcome_for(6, "Phone")
        assert outcome.value == "310-932-9025"
        assert outcome.source_row == 1
        # At least the faulty t3 donation precedes t2's (the already
        # imputed t4 also donates t3's rejected phone by then).
        assert outcome.candidates_tried >= 2

    def test_t6_city_is_hollywood(self, restaurant_sample, paper_rfds):
        result = Renuver(paper_rfds).impute(restaurant_sample)
        outcome = result.report.outcome_for(5, "City")
        assert outcome.value == "Hollywood"
        assert outcome.source_row == 4

    def test_t4_phone_from_t3(self, restaurant_sample, paper_rfds):
        result = Renuver(paper_rfds).impute(restaurant_sample)
        outcome = result.report.outcome_for(3, "Phone")
        assert outcome.value == "213/857-0034"
        assert outcome.source_row == 2

    def test_original_not_mutated_by_default(
        self, restaurant_sample, paper_rfds
    ):
        before = restaurant_sample.count_missing()
        Renuver(paper_rfds).impute(restaurant_sample)
        assert restaurant_sample.count_missing() == before

    def test_inplace_mutates(self, restaurant_sample, paper_rfds):
        result = Renuver(paper_rfds).impute(restaurant_sample, inplace=True)
        assert result.relation is restaurant_sample
        assert restaurant_sample.count_missing() == 0


class TestConsistencyInvariant:
    def test_consistent_instance_stays_consistent(self, zip_city_relation):
        # Definition 4.3 on an initially consistent instance: with the
        # full verification (check_rhs_rfds=True) r' |= Sigma.
        sigma = [
            make_rfd({"Zip": 0}, ("City", 1)),
            make_rfd({"City": 1}, ("Zip", 0)),
        ]
        calculator = PatternCalculator(zip_city_relation)
        assert holds_all(sigma, calculator)
        zip_city_relation.set_value(0, "City", MISSING)
        zip_city_relation.set_value(3, "Zip", MISSING)
        result = Renuver(
            sigma, RenuverConfig(check_rhs_rfds=True)
        ).impute(zip_city_relation)
        assert result.report.fill_rate == 1.0
        assert holds_all(sigma, PatternCalculator(result.relation))

    def test_full_verification_adds_no_new_violations(
        self, restaurant_sample, paper_rfds
    ):
        # The paper's 7-row excerpt does not itself satisfy Sigma (phi2
        # and phi6 are violated by the raw data); what full verification
        # guarantees is that imputation introduces no NEW violation.
        from repro.rfd import find_violations

        def violation_set(relation):
            calculator = PatternCalculator(relation)
            return {
                (str(rfd), violation.row_a, violation.row_b)
                for rfd in paper_rfds
                for violation in find_violations(rfd, calculator)
            }

        before = violation_set(restaurant_sample)
        result = Renuver(
            paper_rfds, RenuverConfig(check_rhs_rfds=True)
        ).impute(restaurant_sample)
        after = violation_set(result.relation)
        assert after <= before

    def test_paper_algorithm_4_is_weaker(
        self, restaurant_sample, paper_rfds
    ):
        # With the paper's LHS-only check (the default), RFDs whose RHS
        # is the imputed attribute can acquire fresh violations — a
        # documented gap between Algorithm 4 and Definition 4.3.
        result = Renuver(paper_rfds).impute(restaurant_sample)
        calculator = PatternCalculator(result.relation)
        assert not holds_all(paper_rfds, calculator)

    def test_unverified_runs_can_violate(self, zip_city_relation):
        # Force a wrong donor: without verification the violation lands.
        sigma = [
            make_rfd({"Age": 100}, ("City", 100)),  # generator (loose)
            make_rfd({"City": 0}, ("Zip", 0)),       # would-be verifier
        ]
        zip_city_relation.set_value(0, "City", MISSING)
        verified = Renuver(sigma).impute(zip_city_relation)
        calculator = PatternCalculator(verified.relation)
        assert holds_all(sigma, calculator)
        unverified = Renuver(
            sigma, RenuverConfig(verify=False)
        ).impute(zip_city_relation)
        assert unverified.report.fill_rate == 1.0


class TestOutcomes:
    def test_no_rfds_outcome(self, zip_city_relation):
        zip_city_relation.set_value(0, "Name", MISSING)
        engine = Renuver([make_rfd({"Zip": 0}, ("City", 0))])
        result = engine.impute(zip_city_relation)
        outcome = result.report.outcome_for(0, "Name")
        assert outcome.status is OutcomeStatus.NO_RFDS

    def test_no_candidates_outcome(self, zip_city_relation):
        zip_city_relation.set_value(0, "City", MISSING)
        zip_city_relation.set_value(0, "Zip", "00000")  # matches nobody
        engine = Renuver(
            [make_rfd({"Zip": 0}, ("City", 0))],
            RenuverConfig(recheck_keys=False),
        )
        result = engine.impute(zip_city_relation)
        outcome = result.report.outcome_for(0, "City")
        assert outcome.status is OutcomeStatus.NO_CANDIDATES

    def test_all_rejected_outcome(self, zip_city_relation):
        # Donor exists but every candidate violates City -> Zip.
        zip_city_relation.set_value(0, "City", MISSING)
        sigma = [
            make_rfd({"Age": 100}, ("City", 0)),   # candidates: all cities
            make_rfd({"City": 0}, ("Zip", 0)),     # verifier kills them
        ]
        result = Renuver(sigma).impute(zip_city_relation)
        outcome = result.report.outcome_for(0, "City")
        # "Los Angeles" survives via the t1 donor (same zip), so patch
        # the zip to something unique first to force rejection.
        if outcome.status is OutcomeStatus.IMPUTED:
            zip_city_relation.set_value(0, "Zip", "77777")
            result = Renuver(sigma).impute(zip_city_relation)
            outcome = result.report.outcome_for(0, "City")
        assert outcome.status is OutcomeStatus.ALL_REJECTED
        assert outcome.candidates_tried > 0

    def test_imputed_tuple_becomes_donor(self):
        # Section 4: an imputed tuple can donate to a later one.
        relation = Relation.from_rows(
            ["K", "V"],
            [
                ["a", "v1"],
                ["a", MISSING],
                ["b", MISSING],
            ],
        )
        relation.set_value(2, "K", "a")
        engine = Renuver([make_rfd({"K": 0}, ("V", 0))])
        result = engine.impute(relation)
        assert result.relation.value(1, "V") == "v1"
        assert result.relation.value(2, "V") == "v1"


class TestKeyReactivation:
    def test_example_5_1_reactivation(self, restaurant_sample, paper_rfds):
        # Under keyness_scope="complete", phi1 starts as a key and is
        # reactivated once t4 becomes complete.
        engine = Renuver(
            paper_rfds, RenuverConfig(keyness_scope="complete")
        )
        result = engine.impute(restaurant_sample)
        assert result.report.key_rfds_initial >= 1
        assert result.report.key_rfds_reactivated >= 1

    def test_recheck_disabled(self, restaurant_sample, paper_rfds):
        engine = Renuver(
            paper_rfds,
            RenuverConfig(keyness_scope="complete", recheck_keys=False),
        )
        result = engine.impute(restaurant_sample)
        assert result.report.key_rfds_reactivated == 0


class TestConfig:
    def test_invalid_cluster_order(self):
        with pytest.raises(ImputationError):
            RenuverConfig(cluster_order="sideways")

    def test_invalid_keyness_scope(self):
        with pytest.raises(ImputationError):
            RenuverConfig(keyness_scope="some")

    def test_invalid_max_candidates(self):
        with pytest.raises(ImputationError):
            RenuverConfig(max_candidates=0)

    def test_needs_rfds(self):
        with pytest.raises(ImputationError):
            Renuver([])

    def test_schema_validation(self, zip_city_relation):
        engine = Renuver([make_rfd({"Nope": 0}, ("City", 0))])
        with pytest.raises(ImputationError):
            engine.impute(zip_city_relation)

    def test_with_config_copies(self, paper_rfds):
        engine = Renuver(paper_rfds)
        flipped = engine.with_config(cluster_order="descending")
        assert flipped.config.cluster_order == "descending"
        assert engine.config.cluster_order == "ascending"
        assert flipped.rfds == engine.rfds

    def test_descending_cluster_order_runs(
        self, restaurant_sample, paper_rfds
    ):
        engine = Renuver(
            paper_rfds, RenuverConfig(cluster_order="descending")
        )
        result = engine.impute(restaurant_sample)
        assert result.report.missing_count == 4

    def test_max_candidates_cap(self, restaurant_sample, paper_rfds):
        engine = Renuver(paper_rfds, RenuverConfig(max_candidates=1))
        result = engine.impute(restaurant_sample)
        # t7[Phone]: only t3 is tried (distance 3 < 7), which is faulty,
        # and the next cluster takes over or the cell stays open.
        outcome = result.report.outcome_for(6, "Phone")
        assert outcome.candidates_tried <= 3  # one per cluster at most


class TestBudgets:
    def test_time_budget_raises(self, restaurant_sample, paper_rfds):
        engine = Renuver(
            paper_rfds, RenuverConfig(time_budget_seconds=1e-9)
        )
        with pytest.raises(BudgetExceededError):
            engine.impute(restaurant_sample)

    def test_track_memory_reports_peak(
        self, restaurant_sample, paper_rfds
    ):
        engine = Renuver(paper_rfds, RenuverConfig(track_memory=True))
        result = engine.impute(restaurant_sample)
        assert result.report.peak_bytes > 0


class TestExplain:
    def test_explain_lists_candidates(self, restaurant_sample, paper_rfds):
        engine = Renuver(paper_rfds)
        candidates = engine.explain(restaurant_sample, 6, "Phone")
        assert [candidate.row for candidate in candidates[:2]] == [2, 1]

    def test_explain_rejects_present_cell(
        self, restaurant_sample, paper_rfds
    ):
        engine = Renuver(paper_rfds)
        with pytest.raises(ImputationError):
            engine.explain(restaurant_sample, 0, "Phone")

    def test_explain_does_not_mutate(self, restaurant_sample, paper_rfds):
        engine = Renuver(paper_rfds)
        engine.explain(restaurant_sample, 6, "Phone")
        assert restaurant_sample.is_missing_cell(6, "Phone")
