"""Property-based tests of RENUVER's core invariants.

Random small relations and injections, discovered RFDs, then:

* imputation never crashes and never touches non-missing cells,
* every imputed value is donated (exists in the original column),
* the report covers exactly the missing cells,
* runs are deterministic.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    DiscoveryConfig,
    Renuver,
    RenuverConfig,
    discover_rfds,
    inject_missing,
)
from repro.dataset import Relation, is_missing

_keys = st.sampled_from(["alpha", "beta", "gamma", "delta"])
_values = st.sampled_from(["red", "blue", "green"])
_numbers = st.integers(min_value=0, max_value=9)

relations = st.lists(
    st.tuples(_keys, _values, _numbers), min_size=4, max_size=14
).map(
    lambda rows: Relation.from_rows(["K", "V", "N"], rows, name="prop")
)


def _engine_for(relation: Relation) -> Renuver | None:
    discovery = discover_rfds(
        relation, DiscoveryConfig(threshold_limit=4, grid_size=3)
    )
    if not discovery.all_rfds:
        return None
    return Renuver(discovery.all_rfds)


class TestImputationInvariants:
    @settings(max_examples=25, deadline=None)
    @given(relations, st.integers(min_value=1, max_value=4),
           st.integers(min_value=0, max_value=100))
    def test_only_missing_cells_change(self, relation, count, seed):
        engine = _engine_for(relation)
        if engine is None:
            return
        injection = inject_missing(relation, count=count, seed=seed)
        result = engine.impute(injection.relation)
        changed = result.relation.diff_cells(injection.relation)
        assert set(changed) <= set(injection.cells)

    @settings(max_examples=25, deadline=None)
    @given(relations, st.integers(min_value=1, max_value=4),
           st.integers(min_value=0, max_value=100))
    def test_imputed_values_are_donated(self, relation, count, seed):
        engine = _engine_for(relation)
        if engine is None:
            return
        injection = inject_missing(relation, count=count, seed=seed)
        result = engine.impute(injection.relation)
        for outcome in result.report.imputed_cells():
            column = injection.relation.column(outcome.attribute)
            donations = [v for v in column if not is_missing(v)]
            assert outcome.value in donations

    @settings(max_examples=20, deadline=None)
    @given(relations, st.integers(min_value=1, max_value=4),
           st.integers(min_value=0, max_value=100))
    def test_report_covers_exactly_missing_cells(self, relation, count,
                                                 seed):
        engine = _engine_for(relation)
        if engine is None:
            return
        injection = inject_missing(relation, count=count, seed=seed)
        result = engine.impute(injection.relation)
        reported = {(o.row, o.attribute) for o in result.report}
        assert reported == set(injection.relation.missing_cells())

    @settings(max_examples=10, deadline=None)
    @given(relations, st.integers(min_value=1, max_value=3),
           st.integers(min_value=0, max_value=50))
    def test_deterministic(self, relation, count, seed):
        engine = _engine_for(relation)
        if engine is None:
            return
        injection = inject_missing(relation, count=count, seed=seed)
        first = engine.impute(injection.relation)
        second = engine.impute(injection.relation)
        assert first.relation.equals(second.relation)

    @settings(max_examples=10, deadline=None)
    @given(relations, st.integers(min_value=1, max_value=3),
           st.integers(min_value=0, max_value=50))
    def test_verify_only_reduces_fill(self, relation, count, seed):
        engine = _engine_for(relation)
        if engine is None:
            return
        injection = inject_missing(relation, count=count, seed=seed)
        verified = engine.impute(injection.relation)
        unverified = Renuver(
            engine.rfds, RenuverConfig(verify=False)
        ).impute(injection.relation)
        assert (
            verified.report.imputed_count
            <= unverified.report.imputed_count
        )
