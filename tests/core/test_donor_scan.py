"""Tests for the donor-scan engines and their kernel layer.

Covers the vectorized engine's contract with the scalar reference on the
paper's running example, the dirty-cell hook that keeps kernel vectors
honest across tentative writes, and the length-blocking string kernels.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.donor_scan import (
    ScalarEngine,
    VectorizedEngine,
    string_clamp_limits,
)
from repro.core.renuver import Renuver, RenuverConfig
from repro.core.selection import (
    cluster_by_rhs_threshold,
    select_rfds_for_attribute,
)
from repro.dataset import MISSING
from repro.distance.kernels import DonorScanKernels
from repro.distance.pattern import PatternCalculator
from repro.exceptions import ImputationError
from repro.rfd import parse_rfd


def make_engines(relation, rfds):
    calculator = PatternCalculator(relation)
    return ScalarEngine(calculator), VectorizedEngine(calculator, rfds)


class TestStringClampLimits:
    def test_max_threshold_per_attribute(self, paper_rfds):
        limits = string_clamp_limits(paper_rfds)
        # Name appears with thresholds 8, 4, 8, 6 -> 8; City with 2, 9 -> 9.
        assert limits["Name"] == 8
        assert limits["City"] == 9
        assert limits["Phone"] == 2
        # RHS-only attributes are clamped too (Type <= 0 and <= 5).
        assert limits["Type"] == 5


class TestKernels:
    def test_numeric_vector(self, restaurant_sample):
        kernels = DonorScanKernels(restaurant_sample)
        vector = kernels.vector(0, "Class")
        assert vector.tolist() == [0.0, 1.0, 0.0, 0.0, 1.0, 1.0, 1.0]

    def test_string_vector_nan_for_missing(self, restaurant_sample):
        kernels = DonorScanKernels(restaurant_sample)
        vector = kernels.vector(0, "Phone")
        assert np.isnan(vector[3]) and np.isnan(vector[6])
        assert vector[0] == 0.0

    def test_missing_target_gives_all_nan(self, restaurant_sample):
        kernels = DonorScanKernels(restaurant_sample)
        assert np.isnan(kernels.vector(3, "Phone")).all()

    def test_vector_cache_hits(self, restaurant_sample):
        kernels = DonorScanKernels(restaurant_sample)
        first = kernels.vector(0, "Name")
        again = kernels.vector(0, "Name")
        assert again is first
        assert kernels.counters["vector_cache_hits"] == 1
        assert kernels.counters["vector_builds"] == 1

    def test_length_blocking_skips_dp_and_clamps(self, restaurant_sample):
        kernels = DonorScanKernels(
            restaurant_sample, string_limits={"Name": 2}
        )
        vector = kernels.vector(0, "Name")  # "Granita" (7 chars)
        assert kernels.counters["levenshtein_dp_blocked"] > 0
        # "Chinos Main" is 11 chars: |11 - 7| > 2 -> stored as limit + 1
        # without running the DP.
        assert vector[1] == 3.0
        # Within-limit distances stay exact: "Granita" vs itself.
        assert vector[0] == 0.0

    def test_clamped_distances_never_exceed_limit_plus_one(
        self, restaurant_sample
    ):
        kernels = DonorScanKernels(
            restaurant_sample, string_limits={"Name": 3}
        )
        vector = kernels.vector(2, "Name")
        present = ~np.isnan(vector)
        assert (vector[present] <= 4.0).all()


class TestDirtyCellHook:
    """The tentpole regression: remove the mutation listener and these
    tests fail on stale vectors."""

    def test_write_invalidates_and_rebuilds(self, restaurant_sample):
        kernels = DonorScanKernels(restaurant_sample)
        kernels.attach()
        before = kernels.vector(4, "Phone")
        assert before[2] > 0.0  # t3's phone differs from t5's
        restaurant_sample.set_value(2, "Phone", "213/848-6677")
        after = kernels.vector(4, "Phone")
        assert after is not before
        assert after[2] == 0.0
        assert kernels.counters["invalidations"] == 1
        kernels.close()

    def test_rollback_to_missing_yields_nan(self, restaurant_sample):
        """The driver's tentative write / rollback cycle: after rolling
        the target cell back to MISSING, its vector must be all-NaN."""
        kernels = DonorScanKernels(restaurant_sample)
        kernels.attach()
        restaurant_sample.set_value(3, "Phone", "213/857-0034")
        assert kernels.vector(3, "Phone")[2] == 0.0
        restaurant_sample.set_value(3, "Phone", MISSING)
        assert np.isnan(kernels.vector(3, "Phone")).all()
        kernels.close()

    def test_close_detaches_listener(self, restaurant_sample):
        kernels = DonorScanKernels(restaurant_sample)
        kernels.attach()
        kernels.vector(0, "Phone")
        kernels.close()
        restaurant_sample.set_value(0, "Phone", "000")
        # Detached: no invalidation was recorded for the write.
        assert kernels.counters["invalidations"] == 0

    def test_attach_and_close_are_idempotent(self, restaurant_sample):
        kernels = DonorScanKernels(restaurant_sample)
        kernels.attach()
        kernels.attach()
        kernels.vector(0, "Phone")
        restaurant_sample.set_value(1, "Phone", "111")
        assert kernels.counters["invalidations"] == 1
        kernels.close()
        kernels.close()

    def test_engine_verification_sees_tentative_write(
        self, restaurant_sample, paper_rfds
    ):
        """End-to-end hook check through the engine: a tentative write
        changes the faultlessness verdict, the rollback restores it."""
        calculator = PatternCalculator(restaurant_sample)
        engine = VectorizedEngine(calculator, paper_rfds)
        scalar = ScalarEngine(calculator)
        try:
            for value in ("213/857-0034", "310-932-9025"):
                restaurant_sample.set_value(3, "Phone", value)
                assert engine.is_faultless(
                    3, "Phone", paper_rfds
                ) == scalar.is_faultless(3, "Phone", paper_rfds)
                restaurant_sample.set_value(3, "Phone", MISSING)
        finally:
            engine.close()


class TestEngineEquivalenceOnPaperExample:
    def test_candidates_match(self, restaurant_sample, paper_rfds):
        scalar, vectorized = make_engines(restaurant_sample, paper_rfds)
        try:
            for row, attribute in [
                (3, "Phone"), (4, "Type"), (5, "City"), (6, "Phone"),
            ]:
                clusters = cluster_by_rhs_threshold(
                    select_rfds_for_attribute(paper_rfds, attribute),
                    attribute,
                )
                scalar_scan = scalar.cell_scan(row, attribute, clusters)
                vector_scan = vectorized.cell_scan(row, attribute, clusters)
                for cluster in clusters:
                    assert scalar_scan.candidates(
                        cluster
                    ) == vector_scan.candidates(cluster), (row, attribute)
        finally:
            vectorized.close()

    def test_candidates_respect_max_candidates(
        self, restaurant_sample, paper_rfds
    ):
        scalar, vectorized = make_engines(restaurant_sample, paper_rfds)
        try:
            clusters = cluster_by_rhs_threshold(
                select_rfds_for_attribute(paper_rfds, "Phone"), "Phone"
            )
            scalar_scan = scalar.cell_scan(3, "Phone", clusters)
            vector_scan = vectorized.cell_scan(3, "Phone", clusters)
            for cluster in clusters:
                assert scalar_scan.candidates(
                    cluster, max_candidates=1
                ) == vector_scan.candidates(cluster, max_candidates=1)
        finally:
            vectorized.close()

    def test_first_fault_matches(self, restaurant_sample, paper_rfds):
        scalar, vectorized = make_engines(restaurant_sample, paper_rfds)
        try:
            restaurant_sample.set_value(3, "Phone", "310/456-0488")
            for check_rhs in (False, True):
                assert vectorized.first_fault(
                    3, "Phone", paper_rfds, check_rhs_rfds=check_rhs
                ) == scalar.first_fault(
                    3, "Phone", paper_rfds, check_rhs_rfds=check_rhs
                )
        finally:
            vectorized.close()

    def test_cluster_attribute_mismatch_raises(
        self, restaurant_sample, paper_rfds
    ):
        _, vectorized = make_engines(restaurant_sample, paper_rfds)
        try:
            clusters = cluster_by_rhs_threshold(
                select_rfds_for_attribute(paper_rfds, "Phone"), "Phone"
            )
            scan = vectorized.cell_scan(5, "City", clusters)
            with pytest.raises(ValueError):
                scan.candidates(clusters[0])
        finally:
            vectorized.close()


class TestKeynessEquivalence:
    @pytest.mark.parametrize("scope", ["all", "complete"])
    def test_partition_matches_scalar(
        self, restaurant_sample, paper_rfds, scope
    ):
        scalar, vectorized = make_engines(restaurant_sample, paper_rfds)
        try:
            assert vectorized.partition_key_rfds(
                paper_rfds, scope=scope
            ) == scalar.partition_key_rfds(paper_rfds, scope=scope)
        finally:
            vectorized.close()

    @pytest.mark.parametrize("scope", ["all", "complete"])
    def test_pair_reactivates_matches_scalar(
        self, restaurant_sample, paper_rfds, scope
    ):
        scalar, vectorized = make_engines(restaurant_sample, paper_rfds)
        try:
            for rfd in paper_rfds:
                for row in range(restaurant_sample.n_tuples):
                    assert vectorized.pair_reactivates(
                        rfd, row, scope=scope
                    ) == scalar.pair_reactivates(rfd, row, scope=scope)
        finally:
            vectorized.close()


class TestEngineConfig:
    def test_invalid_engine_rejected(self):
        with pytest.raises(ImputationError):
            RenuverConfig(engine="warp")

    def test_scalar_engine_selectable(self, restaurant_sample, paper_rfds):
        result = Renuver(
            paper_rfds, RenuverConfig(engine="scalar")
        ).impute(restaurant_sample)
        # Unified seam counters: the scalar engine reports per-op kernel
        # call counts through the same code path as the vectorized one.
        counters = result.report.kernel_counters
        assert counters["calls_cell_scan"] > 0
        assert counters["calls_candidates"] > 0
        assert "vector_builds" not in counters  # no vector layer
        assert result.report.imputed_count > 0

    def test_engines_agree_on_paper_example(
        self, restaurant_sample, paper_rfds
    ):
        scalar = Renuver(
            paper_rfds, RenuverConfig(engine="scalar")
        ).impute(restaurant_sample)
        vectorized = Renuver(
            paper_rfds, RenuverConfig(engine="vectorized")
        ).impute(restaurant_sample)
        assert scalar.report.outcomes == vectorized.report.outcomes
        assert scalar.relation.equals(vectorized.relation)

    def test_vectorized_reports_kernel_counters(
        self, restaurant_sample, paper_rfds
    ):
        report = Renuver(paper_rfds).impute(restaurant_sample).report
        counters = report.kernel_counters
        assert counters["vector_builds"] > 0
        assert counters["invalidations"] > 0  # tentative writes happened
        assert "kernels" in report.summary()

    def test_engine_detaches_listener_after_impute(
        self, restaurant_sample, paper_rfds
    ):
        result = Renuver(paper_rfds).impute(restaurant_sample)
        # The returned relation must carry no leftover engine hook:
        # further writes are plain mutations.
        assert not result.relation._listeners  # noqa: SLF001

    def test_explain_matches_engine_candidates(
        self, restaurant_sample, paper_rfds
    ):
        scalar = Renuver(paper_rfds, RenuverConfig(engine="scalar"))
        vectorized = Renuver(paper_rfds, RenuverConfig(engine="vectorized"))
        assert scalar.explain(
            restaurant_sample, 3, "Phone"
        ) == vectorized.explain(restaurant_sample, 3, "Phone")


class TestOverrides:
    def test_override_attribute_uses_generic_codec(
        self, restaurant_sample, paper_rfds
    ):
        from repro.distance import jaro_winkler_function

        overrides = {"Name": jaro_winkler_function()}
        scalar = Renuver(
            paper_rfds,
            RenuverConfig(engine="scalar"),
            distance_overrides=overrides,
        ).impute(restaurant_sample)
        vectorized = Renuver(
            paper_rfds,
            RenuverConfig(engine="vectorized"),
            distance_overrides=overrides,
        ).impute(restaurant_sample)
        assert scalar.report.outcomes == vectorized.report.outcomes
        assert scalar.relation.equals(vectorized.relation)
