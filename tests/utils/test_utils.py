"""Tests for timers, memory tracking and seeded RNG helpers."""

import time

import pytest

from repro.exceptions import BudgetExceededError
from repro.utils.memory import MemoryTracker, format_bytes
from repro.utils.rng import derive_seed, spawn_rng
from repro.utils.timer import Timer, format_duration


class TestTimer:
    def test_context_manager_measures(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.01
        assert not timer.running

    def test_live_elapsed(self):
        timer = Timer()
        timer.start()
        assert timer.running
        assert timer.elapsed >= 0

    def test_stop_before_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_budget_expiry(self):
        timer = Timer(budget_seconds=0.001)
        timer.start()
        time.sleep(0.01)
        assert timer.expired
        with pytest.raises(BudgetExceededError) as excinfo:
            timer.check_budget("unit test")
        assert excinfo.value.elapsed_seconds is not None

    def test_no_budget_never_expires(self):
        timer = Timer()
        timer.start()
        assert not timer.expired
        timer.check_budget()  # no raise

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            Timer(budget_seconds=0)


class TestFormatDuration:
    @pytest.mark.parametrize(
        ("seconds", "expected"),
        [
            (0.47, "470ms"),
            (14, "14s"),
            (89, "1m 29s"),
            (3600 + 600, "1h 10m"),
            (48 * 3600, "48h 0m"),
        ],
    )
    def test_paper_table_style(self, seconds, expected):
        assert format_duration(seconds) == expected

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_duration(-1)


class TestMemoryTracker:
    @pytest.mark.parametrize("method", ["auto", "tracemalloc"])
    def test_tracks_allocations(self, method):
        with MemoryTracker(method=method) as tracker:
            data = [0] * 300_000
        assert tracker.peak_bytes > 100_000
        del data

    def test_nested_tracemalloc_trackers(self):
        with MemoryTracker(method="tracemalloc") as outer:
            with MemoryTracker(method="tracemalloc") as inner:
                payload = [0] * 100_000
            del payload
        assert inner.peak_bytes > 0
        assert outer.peak_bytes >= inner.peak_bytes * 0.5

    def test_budget_check(self):
        with MemoryTracker(budget_bytes=10) as tracker:
            data = [0] * 100_000
            assert tracker.expired
            with pytest.raises(BudgetExceededError):
                tracker.check_budget()
        del data

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            MemoryTracker(budget_bytes=0)

    def test_invalid_method(self):
        with pytest.raises(ValueError):
            MemoryTracker(method="psychic")

    def test_rss_method_when_supported(self):
        from repro.utils.memory import rss_tracking_supported

        if not rss_tracking_supported():
            pytest.skip("no /proc RSS interface on this platform")
        with MemoryTracker(method="rss") as tracker:
            data = [0] * 1_000_000
        # RSS includes the whole interpreter: at least the list itself.
        assert tracker.peak_bytes > 4_000_000
        del data

    def test_live_peak_inside_block(self):
        with MemoryTracker() as tracker:
            data = [0] * 300_000
            assert tracker.peak_bytes > 0
        del data


class TestFormatBytes:
    @pytest.mark.parametrize(
        ("count", "expected"),
        [
            (512, "512 B"),
            (1536, "1.50 KB"),
            (1.38 * 1024**3, "1.38 GB"),
            (30 * 1024**3, "30.00 GB"),
        ],
    )
    def test_paper_table_style(self, count, expected):
        assert format_bytes(count) == expected

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_bytes(-1)


class TestRng:
    def test_derive_seed_stable(self):
        assert derive_seed(7, "a", 1) == derive_seed(7, "a", 1)

    def test_derive_seed_sensitive_to_labels(self):
        assert derive_seed(7, "a") != derive_seed(7, "b")
        assert derive_seed(7, "a") != derive_seed(8, "a")

    def test_spawn_rng_independent_streams(self):
        first = spawn_rng(1, "x")
        second = spawn_rng(1, "y")
        assert [first.random() for _ in range(3)] != [
            second.random() for _ in range(3)
        ]

    def test_spawn_rng_reproducible(self):
        assert spawn_rng(1, "x").random() == spawn_rng(1, "x").random()
