"""The shared fingerprint utilities (journal + artifact cache key)."""

import hashlib

from repro.dataset.csv_io import read_csv_text, to_csv_text
from repro.utils.fingerprint import (
    fingerprint_matches,
    payload_fingerprint,
    relation_fingerprint,
)

CSV = "A,B\nx,1\ny,2\n"


class TestRelationFingerprint:
    def test_stable_across_copies_and_names(self):
        one = read_csv_text(CSV, name="one")
        two = read_csv_text(CSV, name="two")
        assert relation_fingerprint(one) == relation_fingerprint(two)
        assert relation_fingerprint(one) == relation_fingerprint(
            one.copy()
        )

    def test_sensitive_to_any_cell(self):
        base = relation_fingerprint(read_csv_text(CSV, name="t"))
        changed = relation_fingerprint(
            read_csv_text(CSV.replace("y,2", "y,3"), name="t")
        )
        assert base != changed

    def test_is_sha256_of_the_csv_rendering(self):
        relation = read_csv_text(CSV, name="t")
        expected = hashlib.sha256(
            to_csv_text(relation).encode("utf-8")
        ).hexdigest()
        assert relation_fingerprint(relation) == expected


class TestFingerprintMatches:
    def test_matches_current_fingerprint(self):
        relation = read_csv_text(CSV, name="t")
        assert fingerprint_matches(
            relation_fingerprint(relation), relation
        )
        assert not fingerprint_matches("0" * 64, relation)

    def test_legacy_md5_fingerprints_still_verify(self):
        relation = read_csv_text(CSV, name="t")
        legacy = hashlib.md5(
            to_csv_text(relation).encode("utf-8"),
            usedforsecurity=False,
        ).hexdigest()
        assert len(legacy) == 32
        assert fingerprint_matches(legacy, relation)
        assert not fingerprint_matches("f" * 32, relation)

    def test_non_strings_never_match(self):
        relation = read_csv_text(CSV, name="t")
        assert not fingerprint_matches(None, relation)
        assert not fingerprint_matches(123, relation)


class TestJournalReexports:
    """The pre-refactor import path keeps working."""

    def test_journal_still_exports_the_functions(self):
        from repro.robustness import journal

        assert journal.relation_fingerprint is relation_fingerprint
        assert journal.fingerprint_matches is fingerprint_matches

    def test_package_level_reexport(self):
        from repro import robustness

        assert robustness.relation_fingerprint is relation_fingerprint


class TestPayloadFingerprint:
    def test_key_order_does_not_matter(self):
        assert payload_fingerprint({"a": 1, "b": [2, 3]}) == (
            payload_fingerprint({"b": [2, 3], "a": 1})
        )

    def test_values_do_matter(self):
        assert payload_fingerprint({"a": 1}) != payload_fingerprint(
            {"a": 2}
        )
        assert payload_fingerprint({"a": 1}) != payload_fingerprint(
            {"a": "1"}
        )

    def test_unicode_payloads_hash_consistently(self):
        assert payload_fingerprint({"k": "café"}) == payload_fingerprint(
            {"k": "café"}
        )
