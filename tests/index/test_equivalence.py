"""Blocked-vs-unblocked bit-identity on every builtin dataset.

The blocking subsystem's contract (``docs/INDEXING.md``) is that
``blocking="on"`` changes *retrieval*, never *results*: the imputed
relation, the per-cell outcome list and even the diagnostic candidate
sets of :meth:`Renuver.explain` must match the unblocked scan exactly.
This suite enforces that on all five builtin datasets with *discovered*
RFD sets (so the constraint mix is whatever discovery produces, not a
hand-picked friendly one) and on a seeded synthetic Physician instance
whose size scales with ``REPRO_BLOCKING_EQUIV_TUPLES`` — the CI
``blocking-equivalence`` job sets 10000; the tier-1 default stays
small enough for every local run.
"""

from __future__ import annotations

import os

import pytest

from repro import (
    DiscoveryConfig,
    Renuver,
    RenuverConfig,
    discover_rfds,
    inject_missing,
    load_dataset,
)
from repro.datasets.physician import generate_physician
from repro.rfd import parse_rfd

pytestmark = pytest.mark.blocking

#: Small slices of every builtin dataset: discovery stays fast and the
#: forced-on blocked engine still exercises probes on each.
SIZES = {
    "restaurant": 100,
    "cars": 90,
    "glass": 80,
    "bridges": 70,
    "physician": 100,
}

SYNTHETIC_RFDS = (
    "Zip(<=0) -> City(<=0)",
    "Zip(<=0) -> State(<=0)",
    "OrgId(<=0) -> Street(<=0)",
    "OrgId(<=0) -> Zip(<=0)",
    "Organization(<=1) -> City(<=2)",
    "Street(<=1) -> Zip(<=2)",
    "OrgId(<=0), GradYear(<=1) -> YearsExperience(<=1)",
)


def run_both(rfds, dirty):
    off = Renuver(rfds, RenuverConfig(blocking="off")).impute(dirty)
    on = Renuver(rfds, RenuverConfig(blocking="on")).impute(dirty)
    return off, on


def assert_identical(off, on):
    assert off.report.outcomes == on.report.outcomes
    assert off.relation.equals(on.relation)


@pytest.mark.parametrize("name", sorted(SIZES))
def test_builtin_dataset_equivalence(name):
    relation = load_dataset(name, n_tuples=SIZES[name], seed=0)
    rfds = discover_rfds(
        relation,
        DiscoveryConfig(
            threshold_limit=2,
            max_lhs_size=2,
            grid_size=2,
            max_per_rhs=8,
            max_pairs=50_000,
        ),
    ).all_rfds
    assert rfds, name
    dirty = inject_missing(relation, rate=0.05, seed=3).relation
    off, on = run_both(rfds, dirty)
    assert_identical(off, on)
    assert on.report.kernel_counters["index_probes"] > 0, name


@pytest.mark.parametrize("name", ["restaurant", "physician"])
def test_explain_candidate_sets_identical(name):
    relation = load_dataset(name, n_tuples=SIZES[name], seed=0)
    rfds = discover_rfds(
        relation,
        DiscoveryConfig(
            threshold_limit=2,
            max_lhs_size=2,
            grid_size=2,
            max_per_rhs=8,
            max_pairs=50_000,
        ),
    ).all_rfds
    dirty = inject_missing(relation, rate=0.05, seed=3).relation
    unblocked = Renuver(rfds, RenuverConfig(blocking="off"))
    blocked = Renuver(rfds, RenuverConfig(blocking="on"))
    for row, attribute in dirty.missing_cells()[:5]:
        assert unblocked.explain(dirty, row, attribute) == blocked.explain(
            dirty, row, attribute
        ), (name, row, attribute)


def test_synthetic_physician_equivalence():
    n_tuples = int(os.environ.get("REPRO_BLOCKING_EQUIV_TUPLES", "800"))
    relation = generate_physician(n_tuples, seed=0)
    rfds = [parse_rfd(text) for text in SYNTHETIC_RFDS]
    dirty = inject_missing(
        relation,
        count=max(20, n_tuples // 50),
        seed=5,
        attributes=("City", "State", "Street", "Zip", "YearsExperience"),
    ).relation
    off, on = run_both(rfds, dirty)
    assert_identical(off, on)
    counters = on.report.kernel_counters
    assert counters["index_served_probes"] > 0
    assert counters["index_pruned_pairs"] > 0
    assert off.report.imputed_count > 0  # the comparison is non-vacuous


def test_auto_mode_small_instances_stay_unblocked():
    relation = generate_physician(200, seed=0)
    rfds = [parse_rfd(text) for text in SYNTHETIC_RFDS]
    dirty = inject_missing(relation, count=10, seed=5).relation
    auto = Renuver(rfds, RenuverConfig(blocking="auto")).impute(dirty)
    # Below AUTO_BLOCKING_MIN_TUPLES the plain vectorized engine runs:
    # no index counters in the report.
    assert "index_probes" not in auto.report.kernel_counters
    off = Renuver(rfds, RenuverConfig(blocking="off")).impute(dirty)
    assert_identical(off, auto)
