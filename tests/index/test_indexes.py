"""Unit probes for the three blocking-index kinds.

Each index must return a *superset* of the rows whose distance to the
probe value is within threshold (``docs/INDEXING.md``): a brute-force
reference computes the true within-threshold set and the probe result
must contain it.  Declines (``None``) are always legal; these tests pin
down when they are *required* (hot groups, probe-cost caps, unsupported
thresholds) and that results are sorted unique int64 arrays.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataset.missing import MISSING
from repro.distance.levenshtein import levenshtein
from repro.index import (
    EMPTY_ROWS,
    ExactMatchIndex,
    NumericWindowIndex,
    QGramIndex,
)


def assert_probe_shape(rows: np.ndarray) -> None:
    assert rows.dtype == np.int64
    assert list(rows) == sorted(set(rows.tolist()))


class TestNumericWindowIndex:
    def test_superset_of_true_window(self):
        column = [3.0, 1.5, MISSING, 2.25, -4.0, 3.0, 0.0]
        index = NumericWindowIndex(column)
        rows = index.probe(2.0, 1.0)
        assert_probe_shape(rows)
        expected = {
            row
            for row, value in enumerate(column)
            if value is not MISSING and abs(value - 2.0) <= 1.0
        }
        assert expected <= set(rows.tolist())

    def test_missing_probe_value_is_empty(self):
        index = NumericWindowIndex([1.0, 2.0])
        assert index.probe(MISSING, 5.0) is EMPTY_ROWS

    def test_missing_rows_never_match(self):
        index = NumericWindowIndex([MISSING, 1.0, MISSING])
        rows = index.probe(1.0, 100.0)
        assert rows.tolist() == [1]

    def test_exact_zero_threshold(self):
        index = NumericWindowIndex([5.0, 5.0, 6.0])
        assert index.probe(5.0, 0.0).tolist() == [0, 1]

    def test_large_magnitudes_stay_supersets(self):
        # The window edges are widened by ULPs of the operand scale, so
        # catastrophic cancellation at |target| ~ threshold cannot lose
        # a row the engine's |x - v| <= tau test would accept.
        big = 1e16
        column = [big, big + 2.0, big - 2.0]
        index = NumericWindowIndex(column)
        rows = index.probe(big, 2.0)
        assert set(rows.tolist()) == {0, 1, 2}

    def test_hot_group_declines(self):
        index = NumericWindowIndex([1.0] * 10, max_result=4)
        assert index.probe(1.0, 0.0) is None
        assert index.skip_reason == "hot_group"
        assert index.stats.skips["hot_group"] == 1

    def test_boolean_convert(self):
        index = NumericWindowIndex(
            [True, False, True], convert=lambda v: float(bool(v))
        )
        assert index.probe(True, 0.0).tolist() == [0, 2]


class TestExactMatchIndex:
    def test_equal_rows_only(self):
        column = ["ROME", "PARIS", MISSING, "ROME"]
        index = ExactMatchIndex(column)
        rows = index.probe("ROME", 0.0)
        assert_probe_shape(rows)
        assert rows.tolist() == [0, 3]

    def test_unknown_value_is_empty(self):
        index = ExactMatchIndex(["A"])
        assert index.probe("B", 0.0) is EMPTY_ROWS

    def test_sub_one_threshold_still_means_equal(self):
        # Edit distance is integral: tau in [0, 1) admits only equality.
        index = ExactMatchIndex(["A", "B"])
        assert index.probe("A", 0.9).tolist() == [0]

    def test_loose_threshold_unsupported(self):
        index = ExactMatchIndex(["A", "B"])
        assert index.probe("A", 1.0) is None
        assert index.skip_reason == "unsupported"

    def test_hot_group_declines(self):
        index = ExactMatchIndex(["X"] * 5, max_result=3)
        assert index.probe("X", 0.0) is None
        assert index.skip_reason == "hot_group"


class TestQGramIndex:
    VALUES = [
        "MAPLE STREET", "MAPLE STREE", "OAK AVENUE", MISSING,
        "MAPLE STREET", "", "OAK AVE", "ELM", "日本語テキスト",
    ]

    @pytest.mark.parametrize("threshold", [0.0, 1.0, 2.0, 5.0])
    @pytest.mark.parametrize(
        "target", ["MAPLE STREET", "OAK AVE", "", "E", "日本語テスト"]
    )
    def test_superset_of_true_matches(self, target, threshold):
        index = QGramIndex(self.VALUES)
        rows = index.probe(target, threshold)
        assert rows is not None
        assert_probe_shape(rows)
        expected = {
            row
            for row, value in enumerate(self.VALUES)
            if value is not MISSING
            and levenshtein(str(value), target) <= threshold
        }
        assert expected <= set(rows.tolist())

    def test_missing_probe_value_is_empty(self):
        index = QGramIndex(self.VALUES)
        assert index.probe(MISSING, 2.0) is EMPTY_ROWS

    def test_length_filter_prunes(self):
        index = QGramIndex(["AB", "ABCDEFGH"])
        rows = index.probe("AB", 1.0)
        assert rows.tolist() == [0]

    def test_hot_group_declines(self):
        index = QGramIndex(["SAME VALUE"] * 6, max_result=4)
        assert index.probe("SAME VALUE", 1.0) is None
        assert index.skip_reason == "hot_group"

    def test_probe_cost_declines(self):
        values = [f"PREFIX {i:04d}" for i in range(50)]
        index = QGramIndex(values, max_probe_cost=10)
        assert index.probe("PREFIX 0000", 2.0) is None
        assert index.skip_reason == "probe_cost"
        assert index.stats.skips["probe_cost"] == 1

    def test_non_string_values_render(self):
        index = QGramIndex([1234, 1235, 99])
        rows = index.probe(1234, 1.0)
        assert 0 in rows.tolist() and 1 in rows.tolist()
