"""Incremental-maintenance round-trips for the blocking indexes.

Property: an index built on a column and then fed a random
``update(row, value)`` sequence answers every probe exactly like a
fresh index built on the final column — including appends past the
original length, values becoming ``MISSING`` (NULL), empty strings and
non-ASCII text.  ``max_result`` stays ``None`` here: the numeric
index's conservative pre-cap may *decline* differently between a dirty
overlay and a fresh build (declines are never wrong, just slower), so
capped equality is a plan-level property, not an index-level one.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataset.missing import MISSING
from repro.index import ExactMatchIndex, NumericWindowIndex, QGramIndex

texts = st.one_of(
    st.just(""),
    st.sampled_from(["ROME", "ROM", "日本語", "a b", "N/Ax"]),
    st.text(
        alphabet=st.characters(codec="utf-8", categories=("L", "N", "Zs")),
        max_size=8,
    ),
)
string_values = st.one_of(st.just(MISSING), texts)
numeric_values = st.one_of(
    st.just(MISSING),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.integers(min_value=-100, max_value=100),
)


def string_updates(max_row: int):
    return st.lists(
        st.tuples(st.integers(min_value=0, max_value=max_row), string_values),
        max_size=30,
    )


def numeric_updates(max_row: int):
    return st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=max_row), numeric_values
        ),
        max_size=30,
    )


def final_column(column, updates):
    values = list(column)
    for row, value in updates:
        if row >= len(values):
            values.extend([MISSING] * (row + 1 - len(values)))
        values[row] = value
    return values


def assert_same_probes(maintained, fresh, probes, thresholds):
    for value in probes:
        for threshold in thresholds:
            lhs = maintained.probe(value, threshold)
            rhs = fresh.probe(value, threshold)
            assert (lhs is None) == (rhs is None), (value, threshold)
            if lhs is not None:
                assert lhs.tolist() == rhs.tolist(), (value, threshold)


@settings(max_examples=60, deadline=None)
@given(
    column=st.lists(string_values, max_size=12),
    updates=string_updates(max_row=18),
)
def test_qgram_roundtrip(column, updates):
    maintained = QGramIndex(column)
    for row, value in updates:
        maintained.update(row, value)
    final = final_column(column, updates)
    fresh = QGramIndex(final)
    probes = [v for v in final if v is not MISSING][:8] + ["", "ROME", "xy"]
    assert_same_probes(maintained, fresh, probes, [0.0, 1.0, 2.0])


@settings(max_examples=60, deadline=None)
@given(
    column=st.lists(string_values, max_size=12),
    updates=string_updates(max_row=18),
)
def test_exact_roundtrip(column, updates):
    maintained = ExactMatchIndex(column)
    for row, value in updates:
        maintained.update(row, value)
    final = final_column(column, updates)
    fresh = ExactMatchIndex(final)
    probes = [v for v in final if v is not MISSING][:8] + ["", "ROME"]
    assert_same_probes(maintained, fresh, probes, [0.0, 0.5])


@settings(max_examples=60, deadline=None)
@given(
    column=st.lists(numeric_values, max_size=12),
    updates=numeric_updates(max_row=18),
)
def test_numeric_roundtrip(column, updates):
    maintained = NumericWindowIndex(column)
    for row, value in updates:
        maintained.update(row, value)
    final = final_column(column, updates)
    fresh = NumericWindowIndex(final)
    probes = [v for v in final if v is not MISSING][:8] + [0.0, 1.5, -3.0]
    assert_same_probes(maintained, fresh, probes, [0.0, 1.0, 10.0])


def test_numeric_rebuild_threshold_crossing():
    # Push past the dirty-overlay limit so the round-trip covers the
    # automatic rebuild, not just the overlay path.
    column = [float(i) for i in range(10)]
    maintained = NumericWindowIndex(column)
    for row in range(80):
        maintained.update(row, float(row % 7))
    final = [float(i % 7) for i in range(80)]
    fresh = NumericWindowIndex(final)
    assert_same_probes(
        maintained, fresh, [0.0, 3.0, 6.5], [0.0, 1.0, 100.0]
    )


def test_updates_count_in_stats():
    index = ExactMatchIndex(["A"])
    index.update(0, "B")
    index.update(5, MISSING)
    assert index.stats.updates == 2
