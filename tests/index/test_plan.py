"""IndexPlan composition: kinds, intersection, fallbacks, maintenance."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataset.attribute import Attribute, AttributeType
from repro.dataset.missing import MISSING
from repro.dataset.relation import Relation
from repro.index import EMPTY_ROWS, IndexPlan
from repro.rfd import parse_rfd


def make_relation() -> Relation:
    attributes = (
        Attribute("City", AttributeType.STRING),
        Attribute("Zip", AttributeType.STRING),
        Attribute("Pop", AttributeType.INTEGER),
        Attribute("Urban", AttributeType.BOOLEAN),
    )
    columns = {
        "City": ["ROME", "ROMA", "PARIS", MISSING, "ROME", "LYON"],
        "Zip": ["00100", "00100", "75000", "75000", "00100", "69000"],
        "Pop": [2800, 2800, 2100, 2100, MISSING, 500],
        "Urban": [True, True, True, True, True, False],
    }
    return Relation(attributes, columns, name="cities")


RFDS = [
    parse_rfd("Zip(<=0) -> City(<=1)"),
    parse_rfd("City(<=1) -> Zip(<=0)"),
    parse_rfd("Pop(<=100), Urban(<=0) -> City(<=2)"),
]


def test_kind_selection():
    plan = IndexPlan(make_relation(), RFDS)
    assert plan._kinds == {
        "Zip": "exact",        # only probed at tau = 0
        "City": "qgram",       # loose threshold
        "Pop": "numeric_window",
        "Urban": "numeric_window",
    }


def test_override_names_never_indexed():
    plan = IndexPlan(make_relation(), RFDS, override_names=("City",))
    assert plan._kinds["City"] is None
    rfd = RFDS[1]
    assert plan.candidate_rows(0, rfd.lhs) is None
    assert plan.fallbacks >= 1


def test_candidate_rows_superset_and_target_excluded():
    plan = IndexPlan(make_relation(), RFDS)
    rows = plan.candidate_rows(0, RFDS[0].lhs)  # Zip(<=0) of row 0
    assert rows is not None
    assert 0 not in rows.tolist()
    # Rows 1 and 4 share Zip 00100 with row 0.
    assert set(rows.tolist()) == {1, 4}


def test_missing_target_value_yields_empty():
    plan = IndexPlan(make_relation(), RFDS)
    rows = plan.candidate_rows(3, RFDS[1].lhs)  # City of row 3 is MISSING
    assert rows is not None and rows.size == 0
    assert rows is EMPTY_ROWS


def test_composite_intersection():
    plan = IndexPlan(make_relation(), RFDS)
    rows = plan.candidate_rows(0, RFDS[2].lhs)  # Pop within 100 & Urban
    assert rows is not None
    assert set(rows.tolist()) == {1}  # row 1: Pop 2800, Urban True


def test_hot_group_falls_back_not_wrong():
    plan = IndexPlan(make_relation(), RFDS, max_group_size=1)
    rows = plan.candidate_rows(0, RFDS[0].lhs)  # Zip group has 3 rows
    assert rows is None
    assert plan.counters["index_fallbacks"] >= 1


def test_mutation_listener_keeps_probes_fresh():
    relation = make_relation()
    plan = IndexPlan(relation, RFDS)
    plan.attach()
    try:
        before = plan.candidate_rows(0, RFDS[0].lhs)
        assert set(before.tolist()) == {1, 4}
        relation.set_value(5, "Zip", "00100")  # LYON moves to Rome's zip
        after = plan.candidate_rows(0, RFDS[0].lhs)
        assert set(after.tolist()) == {1, 4, 5}
        assert plan.counters["index_updates"] >= 1
    finally:
        plan.close()


def test_update_rfds_drops_changed_kinds():
    plan = IndexPlan(make_relation(), RFDS)
    plan.candidate_rows(0, RFDS[0].lhs)  # builds the exact Zip index
    assert plan._indexes["Zip"].kind == "exact"
    plan.update_rfds([parse_rfd("Zip(<=2) -> City(<=1)")])
    assert "Zip" not in plan._indexes  # dropped, rebuilt lazily
    rows = plan.candidate_rows(
        0, parse_rfd("Zip(<=2) -> City(<=1)").lhs
    )
    assert plan._indexes["Zip"].kind == "qgram"
    assert rows is not None and 1 in rows.tolist()


def test_counters_shape():
    plan = IndexPlan(make_relation(), RFDS)
    plan.candidate_rows(0, RFDS[0].lhs)
    counters = plan.counters
    assert counters["index_probes"] >= 1
    assert counters["index_served_probes"] >= 1
    assert counters["index_builds"] >= 1
    assert counters["index_pruned_pairs"] >= 1
    assert set(counters) == {
        "index_probes", "index_served_probes", "index_pruned_pairs",
        "index_fallbacks", "index_builds", "index_updates",
    }


def test_max_group_size_validation():
    with pytest.raises(ValueError):
        IndexPlan(make_relation(), RFDS, max_group_size=0)
