"""Shared fixtures: the paper's running example and small relations."""

from __future__ import annotations

import pytest

from repro.dataset import MISSING, Relation
from repro.rfd import RFD, parse_rfd


@pytest.fixture()
def restaurant_sample() -> Relation:
    """Table 2 of the paper (with Figure 1's spellings for t2)."""
    rows = [
        ["Granita", "Malibu", "310/456-0488", "Californian", 6],
        ["Chinos Main", "LA", "310-932-9025", "French", 5],
        ["Citrus", "Los Angeles", "213/857-0034", "Californian", 6],
        ["Citrus", "Los Angeles", MISSING, "Californian", 6],
        ["Fenix", "Hollywood", "213/848-6677", MISSING, 5],
        ["Fenix Argyle", MISSING, "213/848-6677", "French (new)", 5],
        ["C. Main", "Los Angeles", MISSING, "French", 5],
    ]
    return Relation.from_rows(
        ["Name", "City", "Phone", "Type", "Class"],
        rows,
        name="restaurant-sample",
    )


@pytest.fixture()
def paper_rfds() -> list[RFD]:
    """The RFD set of Figure 1 (phi_1 .. phi_7)."""
    return [
        parse_rfd(text)
        for text in [
            "Name(<=8), Phone(<=0), Class(<=1) -> Type(<=0)",  # phi1 (key)
            "Class(<=0) -> Type(<=5)",                          # phi2
            "City(<=2) -> Phone(<=2)",                          # phi3
            "Name(<=4) -> Phone(<=1)",                          # phi4
            "Name(<=8), Phone(<=0) -> City(<=9)",               # phi5
            "Name(<=6), City(<=9) -> Phone(<=0)",               # phi6
            "Phone(<=1) -> Class(<=0)",                         # phi7
        ]
    ]


@pytest.fixture()
def zip_city_relation() -> Relation:
    """A tiny relation with a crisp Zip -> City dependency."""
    rows = [
        ["alice", "90001", "Los Angeles", 34],
        ["bob", "90001", "Los Angeles", 41],
        ["carol", "94101", "San Francisco", 29],
        ["dave", "94101", "San Francisco", 55],
        ["erin", "10001", "New York", 47],
        ["frank", "10001", "New York", 38],
    ]
    return Relation.from_rows(
        ["Name", "Zip", "City", "Age"], rows, name="zip-city"
    )
