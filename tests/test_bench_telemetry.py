"""Tier-1 smoke test for the telemetry-overhead benchmark.

Runs ``benchmarks/bench_telemetry.py``'s ``run_bench`` with a tiny
loader (40 Restaurant tuples, a hand-written RFD set, one repeat) so the
bench's code path — disabled vs enabled timing, the analytic no-op cost
model, the outcome-equality check, JSON artifact — is exercised on every
test run without the cost of RFD discovery.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

from repro import load_dataset
from repro.rfd import parse_rfd

BENCHMARKS_DIR = Path(__file__).resolve().parent.parent / "benchmarks"


@pytest.fixture()
def bench_module(monkeypatch):
    monkeypatch.syspath_prepend(str(BENCHMARKS_DIR))
    sys.modules.pop("bench_telemetry", None)
    import bench_telemetry

    yield bench_telemetry
    sys.modules.pop("bench_telemetry", None)


def tiny_loader(name):
    assert name == "restaurant"
    relation = load_dataset("restaurant", n_tuples=40, seed=0)
    rfds = [
        parse_rfd(text)
        for text in [
            "Name(<=4) -> Phone(<=1)",
            "Address(<=3), City(<=2) -> Phone(<=2)",
            "Phone(<=1) -> Class(<=0)",
            "Class(<=0) -> Type(<=5)",
            "Name(<=6), City(<=2) -> Address(<=8)",
            "Phone(<=2) -> City(<=2)",
            "City(<=0), Type(<=3) -> Name(<=12)",
        ]
    ]
    return relation, rfds


def test_run_bench_smoke(bench_module, tmp_path):
    result_path = tmp_path / "BENCH_telemetry.json"
    summary = bench_module.run_bench(
        ("restaurant",),
        result_path=result_path,
        repeats=1,
        loader=tiny_loader,
    )

    assert result_path.exists()
    assert json.loads(result_path.read_text(encoding="utf-8")) == summary

    assert summary["noop_call_seconds"] > 0
    entry = summary["datasets"]["restaurant"]
    assert entry["n_tuples"] == 40
    assert entry["missing_cells"] > 0
    # Attaching telemetry must not change a run's outcomes.
    assert entry["identical_outcomes"] is True
    # Root span + one span per missing cell, at least.
    assert entry["spans"] > entry["missing_cells"]
    assert entry["instrumentation_sites"] > entry["spans"]
    assert entry["disabled_seconds"] > 0
    assert entry["enabled_seconds"] > 0
    assert entry["disabled_overhead"] == pytest.approx(
        entry["instrumentation_sites"]
        * summary["noop_call_seconds"]
        / entry["disabled_seconds"]
    )


def test_noop_call_cost_is_sub_microsecond(bench_module):
    # The disabled spine is a handful of attribute lookups; if a single
    # no-op site ever costs more than 5µs something regressed badly.
    assert bench_module.noop_call_seconds(20_000) < 5e-6
