"""Cross-module integration tests: the full paper pipeline at small scale.

These run discover -> inject -> impute -> score end to end on scaled-down
versions of the bundled datasets and assert the qualitative properties the
paper reports (high precision, verification never hurting precision,
threshold limits trading recall for precision).
"""

import pytest

from repro import (
    DiscoveryConfig,
    GreyKNNImputer,
    MeanModeImputer,
    Renuver,
    RenuverConfig,
    build_injection_suite,
    compare_approaches,
    dataset_validator,
    discover_rfds,
    inject_missing,
    load_dataset,
    run_experiment,
    score_imputation,
)


@pytest.fixture(scope="module")
def bridges():
    return load_dataset("bridges", seed=0)


@pytest.fixture(scope="module")
def bridges_rfds(bridges):
    return discover_rfds(
        bridges,
        DiscoveryConfig(threshold_limit=6, grid_size=3, max_per_rhs=25),
    )


class TestFullPipeline:
    def test_renuver_beats_nothing_and_fills_cells(
        self, bridges, bridges_rfds
    ):
        dirty = inject_missing(bridges, rate=0.02, seed=11)
        result = Renuver(bridges_rfds.all_rfds).impute(dirty.relation)
        scores = score_imputation(
            result.relation, dirty, dataset_validator("bridges")
        )
        assert scores.imputed > 0
        assert scores.precision >= 0.5  # the paper's headline property

    def test_imputed_cells_only_at_injected_coordinates(
        self, bridges, bridges_rfds
    ):
        dirty = inject_missing(bridges, rate=0.02, seed=12)
        result = Renuver(bridges_rfds.all_rfds).impute(dirty.relation)
        changed = set(result.relation.diff_cells(dirty.relation))
        assert changed <= set(dirty.cells)

    def test_higher_threshold_limit_fills_at_least_as_much(self, bridges):
        dirty = inject_missing(bridges, rate=0.03, seed=13)
        filled = []
        for limit in (1, 6):
            rfds = discover_rfds(
                bridges,
                DiscoveryConfig(
                    threshold_limit=limit, grid_size=3, max_per_rhs=25
                ),
            ).all_rfds
            result = Renuver(rfds).impute(dirty.relation)
            filled.append(result.report.imputed_count)
        assert filled[0] <= filled[1]

    def test_verification_never_lowers_precision(self, bridges,
                                                 bridges_rfds):
        dirty = inject_missing(bridges, rate=0.03, seed=14)
        validator = dataset_validator("bridges")
        verified = Renuver(bridges_rfds.all_rfds).impute(dirty.relation)
        unverified = Renuver(
            bridges_rfds.all_rfds, RenuverConfig(verify=False)
        ).impute(dirty.relation)
        precision_verified = score_imputation(
            verified.relation, dirty, validator
        ).precision
        precision_unverified = score_imputation(
            unverified.relation, dirty, validator
        ).precision
        assert precision_verified >= precision_unverified - 1e-9


class TestComparativeHarness:
    def test_compare_approaches_on_glass_slice(self):
        glass = load_dataset("glass", seed=0).head(80)
        suite = build_injection_suite(
            glass, rates=[0.02], variants=2, seed=3
        )
        outcomes = compare_approaches(
            {"knn": GreyKNNImputer, "mean": MeanModeImputer},
            suite,
            dataset_validator("glass"),
        )
        for result in outcomes.values():
            assert all(record.ok for record in result.records)
            scores = result.mean_scores(0.02)
            assert 0 <= scores.f1 <= 1

    def test_runner_with_renuver_factory(self, bridges, bridges_rfds):
        suite = build_injection_suite(
            bridges, rates=[0.01], variants=2, seed=5
        )
        result = run_experiment(
            "renuver",
            lambda: Renuver(bridges_rfds.all_rfds),
            suite,
            dataset_validator("bridges"),
        )
        assert result.status_at(0.01) == "ok"
        assert result.mean_scores(0.01).missing == sum(
            injection.count for injection in suite.variants(0.01)
        )


class TestCsvRoundTripPipeline:
    def test_pipeline_from_csv(self, tmp_path, bridges):
        from repro import read_csv, write_csv

        path = tmp_path / "bridges.csv"
        write_csv(bridges, path)
        loaded = read_csv(path)
        assert loaded.n_tuples == bridges.n_tuples
        rfds = discover_rfds(
            loaded, DiscoveryConfig(threshold_limit=3, max_per_rhs=10)
        ).all_rfds
        dirty = inject_missing(loaded, count=5, seed=1)
        result = Renuver(rfds).impute(dirty.relation)
        assert result.report.missing_count == 5
