"""Tests for the metrics registry (repro.telemetry.metrics)."""

import pytest

from repro.exceptions import TelemetryError
from repro.telemetry import (
    DEFAULT_SECONDS_BUCKETS,
    NULL_METRICS,
    MetricsRegistry,
)


class TestCounter:
    def test_get_or_create_returns_the_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("renuver_kernel_calls_total", op="scan")
        b = registry.counter("renuver_kernel_calls_total", op="scan")
        assert a is b
        a.inc()
        b.inc(2)
        assert registry.value(
            "renuver_kernel_calls_total", op="scan"
        ) == 3

    def test_labels_partition_the_family(self):
        registry = MetricsRegistry()
        registry.counter("calls_total", engine="scalar").inc()
        registry.counter("calls_total", engine="vectorized").inc(5)
        assert registry.value("calls_total", engine="scalar") == 1
        assert registry.value("calls_total", engine="vectorized") == 5

    def test_counters_cannot_decrease(self):
        registry = MetricsRegistry()
        with pytest.raises(TelemetryError):
            registry.counter("x_total").inc(-1)

    def test_label_order_is_irrelevant(self):
        registry = MetricsRegistry()
        a = registry.counter("t", a="1", b="2")
        b = registry.counter("t", b="2", a="1")
        assert a is b


class TestGauge:
    def test_set_inc_dec(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("renuver_run_elapsed_seconds")
        gauge.set(10.0)
        gauge.inc(2.5)
        gauge.dec(0.5)
        assert registry.value("renuver_run_elapsed_seconds") == 12.0


class TestHistogram:
    def test_bucketing(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "latency", buckets=(0.1, 1.0, 10.0)
        )
        for value in (0.05, 0.1, 0.5, 5.0, 100.0):
            histogram.observe(value)
        # non-cumulative: (<=0.1)=2, (<=1.0)=1, (<=10.0)=1, +Inf=1
        assert histogram.counts == [2, 1, 1, 1]
        assert histogram.cumulative_counts() == [2, 3, 4, 5]
        assert histogram.count == 5
        assert histogram.sum == pytest.approx(105.65)

    def test_default_buckets_cover_seconds(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("renuver_cell_seconds")
        assert histogram.buckets == DEFAULT_SECONDS_BUCKETS

    def test_buckets_must_increase(self):
        registry = MetricsRegistry()
        with pytest.raises(TelemetryError):
            registry.histogram("bad", buckets=(1.0, 1.0, 2.0))

    def test_redeclared_buckets_must_match(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(TelemetryError):
            registry.histogram("h", buckets=(1.0, 3.0))


class TestRegistry:
    def test_type_clash_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("metric_total")
        with pytest.raises(TelemetryError):
            registry.gauge("metric_total")

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(TelemetryError):
            registry.counter("9starts_with_digit")
        with pytest.raises(TelemetryError):
            registry.counter("ok_name", **{"bad-label": "x"})

    def test_families_sorted_by_name(self):
        registry = MetricsRegistry()
        registry.counter("b_total")
        registry.counter("a_total")
        assert [f.name for f in registry.families()] == [
            "a_total", "b_total"
        ]

    def test_get_and_value_for_missing_metric(self):
        registry = MetricsRegistry()
        assert registry.get("nope") is None
        assert registry.value("nope") is None

    def test_len_counts_instruments(self):
        registry = MetricsRegistry()
        registry.counter("a", x="1")
        registry.counter("a", x="2")
        registry.gauge("b")
        assert len(registry) == 3


class TestNullMetrics:
    def test_shared_noop_instruments(self):
        counter = NULL_METRICS.counter("a_total", status="ok")
        gauge = NULL_METRICS.gauge("b")
        histogram = NULL_METRICS.histogram("c")
        assert counter is gauge is histogram
        counter.inc()
        gauge.set(5)
        gauge.dec()
        histogram.observe(1.0)
        assert counter.value == 0.0
        assert not NULL_METRICS.enabled
        assert len(NULL_METRICS) == 0
        assert list(NULL_METRICS.families()) == []
        assert NULL_METRICS.get("a_total") is None
        assert NULL_METRICS.value("a_total") is None
