"""Tests for structured logging (repro.telemetry.logs)."""

import io
import json
import logging

import pytest

from repro.telemetry import configure_logging, get_logger, reset_logging


@pytest.fixture(autouse=True)
def _clean_logging():
    yield
    reset_logging()
    get_logger().setLevel(logging.NOTSET)


class TestGetLogger:
    def test_names_live_under_the_repro_hierarchy(self):
        assert get_logger().name == "repro"
        assert get_logger("core.renuver").name == "repro.core.renuver"
        assert get_logger("repro.cli").name == "repro.cli"

    def test_root_has_a_null_handler(self):
        assert any(
            isinstance(h, logging.NullHandler)
            for h in get_logger().handlers
        )


class TestConfigureLogging:
    def test_text_format(self):
        stream = io.StringIO()
        configure_logging("info", stream=stream)
        get_logger("core.renuver").info("hello %s", "world")
        line = stream.getvalue().strip()
        assert "INFO" in line
        assert "repro.core.renuver" in line
        assert "hello world" in line

    def test_level_filtering(self):
        stream = io.StringIO()
        configure_logging("warning", stream=stream)
        get_logger("x").info("dropped")
        get_logger("x").warning("kept")
        assert "dropped" not in stream.getvalue()
        assert "kept" in stream.getvalue()

    def test_idempotent_reconfiguration(self):
        stream = io.StringIO()
        configure_logging("info", stream=stream)
        configure_logging("info", stream=stream)
        get_logger("x").info("once")
        assert stream.getvalue().count("once") == 1

    def test_invalid_level_rejected(self):
        with pytest.raises(ValueError):
            configure_logging("verbose")


class TestJsonFormat:
    def test_records_are_json_with_extras(self):
        stream = io.StringIO()
        configure_logging("debug", json_format=True, stream=stream)
        get_logger("core.renuver").info(
            "cell settled", extra={"row": 3, "attribute": "City"}
        )
        record = json.loads(stream.getvalue())
        assert record["level"] == "info"
        assert record["logger"] == "repro.core.renuver"
        assert record["message"] == "cell settled"
        assert record["row"] == 3
        assert record["attribute"] == "City"
        assert "timestamp" in record

    def test_exceptions_render_into_exc_info(self):
        stream = io.StringIO()
        configure_logging("error", json_format=True, stream=stream)
        try:
            raise ValueError("boom")
        except ValueError:
            get_logger("x").exception("failed")
        record = json.loads(stream.getvalue())
        assert record["message"] == "failed"
        assert "ValueError: boom" in record["exc_info"]


class TestResetLogging:
    def test_reset_removes_only_managed_handlers(self):
        stream = io.StringIO()
        foreign = logging.StreamHandler(io.StringIO())
        logger = get_logger()
        logger.addHandler(foreign)
        try:
            configure_logging("info", stream=stream)
            reset_logging()
            managed = [
                h for h in logger.handlers
                if getattr(h, "_repro_managed", False)
            ]
            assert managed == []
            assert foreign in logger.handlers
        finally:
            logger.removeHandler(foreign)
