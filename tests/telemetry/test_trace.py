"""Tests for the span tracer (repro.telemetry.trace)."""

import pytest

from repro.telemetry import NULL_SPAN, NULL_TRACER, Tracer


class FakeClock:
    """Deterministic monotonic clock: advances by ``step`` per call."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


class TestSpanBasics:
    def test_span_times_with_the_tracer_clock(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("impute") as span:
            pass
        assert span.closed
        assert span.duration_seconds == pytest.approx(1.0)
        assert span.duration_ns == 1_000_000_000

    def test_attributes_and_events(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("cell", row=3) as span:
            span.set_attribute("status", "imputed")
            span.event("degradation", reason="kernel fault")
        assert span.attributes == {"row": 3, "status": "imputed"}
        (event,) = span.events
        assert event["name"] == "degradation"
        assert event["attributes"] == {"reason": "kernel fault"}
        assert event["offset_seconds"] == pytest.approx(1.0)

    def test_error_recorded_and_span_closed(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("impute") as span:
                raise ValueError("boom")
        assert span.closed
        assert span.error == "ValueError: boom"
        assert tracer.spans == [span]

    def test_to_dict_is_json_shaped(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("impute", engine="scalar") as span:
            span.event("tick")
        data = span.to_dict()
        assert data["name"] == "impute"
        assert data["parent_id"] is None
        assert data["attributes"] == {"engine": "scalar"}
        assert data["events"][0]["name"] == "tick"
        assert data["error"] is None


class TestNesting:
    def test_parent_ids_reconstruct_the_tree(self):
        tracer = Tracer()
        with tracer.span("impute") as root:
            with tracer.span("cell") as cell:
                with tracer.span("kernel.is_faultless") as kernel:
                    pass
            with tracer.span("cell") as cell2:
                pass
        assert root.parent_id is None
        assert cell.parent_id == root.span_id
        assert kernel.parent_id == cell.span_id
        assert cell2.parent_id == root.span_id

    def test_spans_close_in_child_first_order(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [span.name for span in tracer.spans] == ["outer", "inner"][::-1]

    def test_ordered_spans_sorts_by_start(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [s.name for s in tracer.ordered_spans()] == [
            "outer", "inner"
        ]

    def test_current_tracks_the_innermost_open_span(self):
        tracer = Tracer()
        assert tracer.current is None
        with tracer.span("outer") as outer:
            assert tracer.current is outer
            with tracer.span("inner") as inner:
                assert tracer.current is inner
            assert tracer.current is outer
        assert tracer.current is None

    def test_tracer_event_lands_on_innermost_span(self):
        tracer = Tracer()
        tracer.event("dropped")  # no open span: silently dropped
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                tracer.event("budget_exceeded", scope="run")
        assert outer.events == []
        assert inner.events[0]["name"] == "budget_exceeded"

    def test_out_of_order_close_settles_inner_spans(self):
        tracer = Tracer(clock=FakeClock())
        outer = tracer.span("outer")
        inner = tracer.span("inner")
        outer.__enter__()
        inner.__enter__()
        outer.__exit__(None, None, None)  # skips inner.__exit__
        assert inner.closed and outer.closed
        assert len(tracer.spans) == 2
        assert tracer.current is None


class TestNullTracer:
    def test_null_tracer_hands_out_the_shared_span(self):
        span = NULL_TRACER.span("impute", engine="scalar")
        assert span is NULL_SPAN
        with span as entered:
            entered.set_attribute("k", "v")
            entered.event("tick", n=1)
        assert span.duration_seconds == 0.0
        assert span.duration_ns == 0

    def test_null_tracer_is_empty_and_disabled(self):
        assert not NULL_TRACER.enabled
        assert len(NULL_TRACER) == 0
        assert list(NULL_TRACER) == []
        assert NULL_TRACER.ordered_spans() == []
        assert NULL_TRACER.current is None
        NULL_TRACER.event("dropped")
        NULL_TRACER.clear()
