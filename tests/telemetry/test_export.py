"""Tests for the telemetry exporters (repro.telemetry.export)."""

import json

import pytest

from repro.exceptions import TelemetryError
from repro.telemetry import (
    MetricsRegistry,
    Tracer,
    profile_table,
    prometheus_text,
    read_trace,
    trace_to_jsonl,
    write_metrics,
    write_trace,
)


class FakeClock:
    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


def populated_tracer():
    tracer = Tracer(clock=FakeClock())
    with tracer.span("impute", engine="vectorized") as root:
        with tracer.span("cell", row=0, attribute="City") as cell:
            cell.event("degradation", from_tier="vectorized")
    return tracer


class TestJsonlTrace:
    def test_round_trip_through_a_file(self, tmp_path):
        tracer = populated_tracer()
        path = tmp_path / "trace.jsonl"
        assert write_trace(tracer, path) == 2
        spans = read_trace(path)
        assert [s["name"] for s in spans] == ["impute", "cell"]
        cell = spans[1]
        assert cell["parent_id"] == spans[0]["span_id"]
        assert cell["attributes"] == {"row": 0, "attribute": "City"}
        assert cell["events"][0]["name"] == "degradation"

    def test_jsonl_lines_are_independent_json(self):
        text = trace_to_jsonl(populated_tracer())
        lines = text.strip().splitlines()
        assert len(lines) == 2
        for line in lines:
            assert isinstance(json.loads(line), dict)

    def test_empty_tracer_writes_empty_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        assert write_trace(Tracer(), path) == 0
        assert path.read_text() == ""
        assert read_trace(path) == []

    def test_read_trace_rejects_malformed_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"name": "ok", "span_id": 1}\n{oops\n')
        with pytest.raises(TelemetryError):
            read_trace(path)

    def test_read_trace_rejects_non_span_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('[1, 2, 3]\n')
        with pytest.raises(TelemetryError):
            read_trace(path)


class TestPrometheusText:
    def test_counter_and_gauge_exposition(self):
        registry = MetricsRegistry()
        registry.counter(
            "renuver_kernel_calls_total", "Kernel calls.",
            engine="scalar", op="cell_scan",
        ).inc(7)
        registry.gauge("renuver_run_elapsed_seconds").set(1.5)
        text = prometheus_text(registry)
        assert "# HELP renuver_kernel_calls_total Kernel calls." in text
        assert "# TYPE renuver_kernel_calls_total counter" in text
        assert (
            'renuver_kernel_calls_total'
            '{engine="scalar",op="cell_scan"} 7'
        ) in text
        assert "# TYPE renuver_run_elapsed_seconds gauge" in text
        assert "renuver_run_elapsed_seconds 1.5" in text

    def test_histogram_exposition_is_cumulative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "renuver_cell_seconds", "Cell time.", buckets=(0.1, 1.0)
        )
        for value in (0.05, 0.5, 5.0):
            histogram.observe(value)
        text = prometheus_text(registry)
        assert 'renuver_cell_seconds_bucket{le="0.1"} 1' in text
        assert 'renuver_cell_seconds_bucket{le="1"} 2' in text
        assert 'renuver_cell_seconds_bucket{le="+Inf"} 3' in text
        assert "renuver_cell_seconds_sum 5.55" in text
        assert "renuver_cell_seconds_count 3" in text

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c_total", path='a"b\\c\nd').inc()
        text = prometheus_text(registry)
        assert r'path="a\"b\\c\nd"' in text

    def test_each_escape_class_alone(self):
        # Quotes, backslashes and newlines each escape independently —
        # a scraper must be able to parse every value back.
        registry = MetricsRegistry()
        registry.counter("q_total", v='say "hi"').inc()
        registry.counter("b_total", v="C:\\temp\\x").inc()
        registry.counter("n_total", v="line1\nline2").inc()
        text = prometheus_text(registry)
        assert 'v="say \\"hi\\""' in text
        assert 'v="C:\\\\temp\\\\x"' in text
        assert 'v="line1\\nline2"' in text
        # Exactly one exposition line per sample despite the newline.
        samples = [
            line for line in text.splitlines()
            if line.startswith("n_total")
        ]
        assert len(samples) == 1

    def test_help_text_is_escaped(self):
        registry = MetricsRegistry()
        registry.counter(
            "h_total", "Multi\nline help with back\\slash."
        ).inc()
        text = prometheus_text(registry)
        assert (
            "# HELP h_total Multi\\nline help with back\\\\slash."
            in text
        )

    def test_escaped_exposition_has_no_raw_newlines_inside_lines(self):
        registry = MetricsRegistry()
        registry.counter("c_total", a='x\n"y"\\z').inc(2)
        for line in prometheus_text(registry).splitlines():
            if line.startswith("c_total"):
                assert line.endswith(" 2")

    def test_write_metrics_round_trips(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("a_total").inc(3)
        path = tmp_path / "metrics.prom"
        write_metrics(registry, path)
        assert "a_total 3" in path.read_text()

    def test_empty_registry_renders_empty(self):
        assert prometheus_text(MetricsRegistry()) == ""


class TestProfileTable:
    def test_aggregates_by_span_name(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("impute"):
            with tracer.span("cell"):
                pass
            with tracer.span("cell"):
                pass
        table = profile_table(tracer)
        lines = table.splitlines()
        assert lines[0].split() == [
            "span", "count", "total", "mean", "share"
        ]
        impute_row = next(l for l in lines if l.startswith("impute"))
        cell_row = next(l for l in lines if l.startswith("cell"))
        assert "100.0%" in impute_row
        assert cell_row.split()[1] == "2"

    def test_top_limits_rows(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        table = profile_table(tracer, top=1)
        assert "a" in table and "\nb" not in table

    def test_empty_tracer_has_a_placeholder(self):
        assert "no spans" in profile_table(Tracer())
