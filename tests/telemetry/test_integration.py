"""End-to-end telemetry: a real imputation run under a live spine.

Asserts the acceptance contract of the telemetry layer: every phase of
the run emits a span, every missing cell gets exactly one ``cell`` span
nested under the root, kernel spans nest under their cell, the metrics
registry absorbs the engines' counters, and the run's outcomes are
bit-identical with and without telemetry attached.
"""

import pytest

from repro import Renuver, RenuverConfig, Telemetry, make_rfd
from repro.dataset import read_csv_text
from repro.telemetry import read_trace, write_metrics, write_trace

CSV = (
    "Zip,City,Age\n"
    "90001,Los Angeles,34\n"
    "90001,Los Angeles,41\n"
    "90001,,29\n"
    "94101,San Francisco,55\n"
    "94101,,47\n"
    "10001,New York,38\n"
)

RFDS = [make_rfd({"Zip": 0}, ("City", 1))]


def run_with_telemetry(**config):
    telemetry = Telemetry()
    engine = Renuver(
        RFDS, RenuverConfig(**config), telemetry=telemetry
    )
    result = engine.impute(read_csv_text(CSV, name="toy"))
    return result, telemetry


class TestSpanTree:
    def test_every_phase_and_cell_has_a_span(self):
        result, telemetry = run_with_telemetry()
        spans = telemetry.tracer.ordered_spans()
        names = [span.name for span in spans]
        assert names.count("impute") == 1
        assert names.count("preprocess") == 1
        # one cell span per missing cell
        assert names.count("cell") == result.report.missing_count == 2
        assert any(name.startswith("kernel.") for name in names)

    def test_nesting_reconstructs_phase_cell_kernel(self):
        _, telemetry = run_with_telemetry()
        by_id = {s.span_id: s for s in telemetry.tracer.spans}
        root = next(
            s for s in telemetry.tracer.spans if s.parent_id is None
        )
        assert root.name == "impute"
        for span in telemetry.tracer.spans:
            if span.name in ("preprocess", "cell"):
                assert span.parent_id == root.span_id
            elif span.name in (
                "kernel.candidates", "kernel.is_faultless"
            ):
                assert by_id[span.parent_id].name == "cell"

    def test_root_and_cell_attributes(self):
        result, telemetry = run_with_telemetry()
        root = next(
            s for s in telemetry.tracer.spans if s.parent_id is None
        )
        assert root.attributes["engine"] == "vectorized"
        assert root.attributes["relation"] == "toy"
        assert (
            root.attributes["imputed_cells"]
            == result.report.imputed_count
        )
        for span in telemetry.tracer.spans:
            if span.name == "cell":
                assert span.attributes["attribute"] == "City"
                assert "status" in span.attributes

    @pytest.mark.parametrize("engine", ["vectorized", "scalar"])
    def test_both_engines_emit_kernel_spans(self, engine):
        _, telemetry = run_with_telemetry(engine=engine)
        kernel = {
            s.name for s in telemetry.tracer.spans
            if s.name.startswith("kernel.")
        }
        assert "kernel.candidates" in kernel
        assert "kernel.is_faultless" in kernel


class TestMetrics:
    def test_registry_absorbs_the_run(self):
        result, telemetry = run_with_telemetry()
        metrics = telemetry.metrics
        assert metrics.value("renuver_runs_total", status="ok") == 1
        assert (
            metrics.value("renuver_cells_total", status="imputed")
            == result.report.imputed_count
        )
        histogram = metrics.get("renuver_cell_seconds")
        assert histogram.count == result.report.missing_count
        assert metrics.value(
            "renuver_kernel_calls_total",
            engine="vectorized", op="is_faultless",
        ) > 0
        assert metrics.value(
            "renuver_candidates_generated_total", engine="vectorized"
        ) > 0

    def test_kernel_counters_unify_into_one_family(self):
        result, telemetry = run_with_telemetry()
        for name, value in result.report.kernel_counters.items():
            assert telemetry.metrics.value(
                "renuver_kernel_counter_total",
                engine="vectorized", counter=name,
            ) == value


class TestExportsFromARealRun:
    def test_trace_and_metrics_files(self, tmp_path):
        _, telemetry = run_with_telemetry()
        trace_path = tmp_path / "trace.jsonl"
        metrics_path = tmp_path / "metrics.prom"
        write_trace(telemetry.tracer, trace_path)
        write_metrics(telemetry.metrics, metrics_path)
        spans = read_trace(trace_path)
        assert {s["name"] for s in spans} >= {
            "impute", "preprocess", "cell"
        }
        text = metrics_path.read_text()
        assert "# TYPE renuver_cell_seconds histogram" in text
        assert 'renuver_cell_seconds_bucket{le="+Inf"} 2' in text


class TestOutcomeEquivalence:
    def test_telemetry_does_not_change_outcomes(self):
        plain = Renuver(RFDS).impute(read_csv_text(CSV, name="toy"))
        traced, _ = run_with_telemetry()
        assert [
            (o.row, o.attribute, o.status, o.value)
            for o in plain.report
        ] == [
            (o.row, o.attribute, o.status, o.value)
            for o in traced.report
        ]
        for row in range(plain.relation.n_tuples):
            for name in plain.relation.attribute_names:
                assert plain.relation.value(row, name) == \
                    traced.relation.value(row, name)


class TestRobustnessEvents:
    def test_degradation_becomes_span_event_and_metric(self):
        from repro.robustness import ChaosConfig, ChaosInjector

        telemetry = Telemetry()
        engine = Renuver(
            RFDS,
            RenuverConfig(fallback="skip"),
            telemetry=telemetry,
        )
        chaos = ChaosInjector(ChaosConfig(kernel_fault_rate=0.3, seed=7))
        result = engine.impute(
            read_csv_text(CSV, name="toy"), chaos=chaos
        )
        assert result.report.degradations
        events = [
            event
            for span in telemetry.tracer.spans
            for event in span.events
        ]
        assert any(e["name"] == "degradation" for e in events)
        total = sum(
            instrument.value
            for family in telemetry.metrics.families()
            if family.name == "renuver_degradations_total"
            for instrument in family.instruments.values()
        )
        assert total > 0

    def test_budget_event_recorded_on_cell_deadline(self):
        telemetry = Telemetry()
        engine = Renuver(
            RFDS,
            RenuverConfig(
                cell_time_budget_seconds=1e-9, fallback="skip"
            ),
            telemetry=telemetry,
        )
        result = engine.impute(read_csv_text(CSV, name="toy"))
        assert result.report.budget_events
        assert telemetry.metrics.value(
            "renuver_budget_events_total", scope="cell", kind="time"
        ) >= 1
