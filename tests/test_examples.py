"""The shipped examples stay runnable (quick ones run end to end)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[1] / "examples"

ALL_EXAMPLES = [
    "quickstart.py",
    "restaurant_cleaning.py",
    "compare_imputers.py",
    "discovery_tour.py",
    "physician_scaling.py",
    "incremental_stream.py",
    "service_client.py",
]

# Examples cheap enough for the unit-test suite; the heavyweight ones
# (full comparisons, paper-sized datasets) run as part of the benches.
QUICK_EXAMPLES = ["quickstart.py", "discovery_tour.py",
                  "service_client.py"]


class TestExamplesInventory:
    def test_all_examples_exist(self):
        for name in ALL_EXAMPLES:
            assert (EXAMPLES_DIR / name).exists(), name

    def test_examples_compile(self):
        for name in ALL_EXAMPLES:
            source = (EXAMPLES_DIR / name).read_text(encoding="utf-8")
            compile(source, name, "exec")  # SyntaxError = failure


@pytest.mark.parametrize("name", QUICK_EXAMPLES)
class TestQuickExamplesRun:
    def test_runs_cleanly(self, name):
        completed = subprocess.run(
            [sys.executable, str(EXAMPLES_DIR / name)],
            capture_output=True,
            text=True,
            timeout=180,
        )
        assert completed.returncode == 0, completed.stderr[-2000:]
        assert completed.stdout.strip()


class TestQuickstartOutput:
    def test_reproduces_figure_1(self):
        completed = subprocess.run(
            [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
            capture_output=True,
            text=True,
            timeout=180,
        )
        assert "310-932-9025" in completed.stdout   # t7[Phone] from t2
        assert "Hollywood" in completed.stdout      # t6[City] from t5
        assert "fill rate 100.0%" in completed.stdout
