"""Tier-1 smoke test for the continuous-ingestion pipeline benchmark.

Runs ``benchmarks/bench_pipeline.py``'s ``run_bench`` with a tiny
loader (60 Restaurant tuples) so the bench's whole code path — the
FULL baseline root, the warm INCR append, the zero-rediscovery
assertion, the JSON artifact — is exercised on every test run at
trivial cost.  The ≤10% wall-time claim itself is only asserted at
bench scale, not here.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

from repro import load_dataset

BENCHMARKS_DIR = Path(__file__).resolve().parent.parent / "benchmarks"


@pytest.fixture()
def bench_module(monkeypatch):
    monkeypatch.syspath_prepend(str(BENCHMARKS_DIR))
    sys.modules.pop("bench_pipeline", None)
    import bench_pipeline

    yield bench_pipeline
    sys.modules.pop("bench_pipeline", None)


def tiny_loader():
    return load_dataset("restaurant", n_tuples=60, seed=0)


def test_run_bench_smoke(bench_module, tmp_path):
    result_path = tmp_path / "BENCH_pipeline.json"
    summary = bench_module.run_bench(
        result_path=result_path,
        delta_fraction=0.05,
        loader=tiny_loader,
    )

    assert result_path.exists()
    assert json.loads(result_path.read_text(encoding="utf-8")) == summary

    assert summary["n_tuples"] == 60
    assert summary["delta_rows"] == 3
    assert summary["full_seconds"] > 0
    assert summary["incr_seconds"] > 0
    # The warm append must have skipped discovery entirely and ingested
    # exactly the delta.
    assert summary["incr_rediscovered"] is False
    assert summary["incr_rows_ingested"] == 3
    assert summary["store_versions_match"] is True
