"""JSON serialization of discovery artifacts (the service persists
these); the textual RFD grammar round-trips by property."""

from hypothesis import given
from hypothesis import strategies as st
import pytest

from repro.dataset.csv_io import read_csv_text
from repro.discovery import DiscoveryConfig, discover_rfds
from repro.discovery.dime import DiscoveryResult
from repro.discovery.pattern_matrix import PairDistanceMatrix
from repro.exceptions import DiscoveryError
from repro.rfd.constraint import Constraint
from repro.rfd.parser import parse_rfd
from repro.rfd.rfd import RFD

CSV = (
    "Name,City,Phone\n"
    "ann,rome,111\n"
    "ann,rome,111\n"
    "bob,oslo,222\n"
    "cat,lima,333\n"
)
CONFIG = DiscoveryConfig(threshold_limit=1, max_lhs_size=1)

attribute_names = st.text(
    alphabet=st.characters(codec="ascii", categories=("L", "N")),
    min_size=1, max_size=8,
).filter(lambda name: name[0].isalpha())

# The grammar reads plain decimal notation, so keep generated floats
# on a grid that never renders in scientific notation.
thresholds = st.one_of(
    st.integers(min_value=0, max_value=99),
    st.integers(min_value=0, max_value=396).map(lambda n: n / 4.0),
)


@st.composite
def rfds(draw):
    names = draw(st.lists(
        attribute_names, min_size=2, max_size=4, unique=True
    ))
    lhs = tuple(
        Constraint(name, draw(thresholds)) for name in names[:-1]
    )
    return RFD(lhs, Constraint(names[-1], draw(thresholds)))


class TestRfdTextRoundTrip:
    @given(rfds())
    def test_parse_of_format_is_identity(self, rfd):
        reparsed = parse_rfd(str(rfd))
        assert str(reparsed) == str(rfd)
        assert reparsed.rhs_attribute == rfd.rhs_attribute
        assert reparsed.rhs_threshold == rfd.rhs_threshold
        assert reparsed.lhs_attributes == rfd.lhs_attributes

    @given(rfds())
    def test_double_round_trip_is_stable(self, rfd):
        once = parse_rfd(str(rfd))
        twice = parse_rfd(str(once))
        assert str(once) == str(twice)


class TestDiscoveryResultJson:
    @pytest.fixture()
    def result(self):
        relation = read_csv_text(CSV, name="t")
        return discover_rfds(relation, CONFIG)

    def test_round_trip_preserves_everything(self, result):
        restored = DiscoveryResult.from_json(result.to_json())
        assert [str(r) for r in restored.rfds] == [
            str(r) for r in result.rfds
        ]
        assert [str(r) for r in restored.key_rfds] == [
            str(r) for r in result.key_rfds
        ]
        assert restored.config == result.config
        assert restored.n_pairs == result.n_pairs
        assert restored.exact == result.exact
        assert restored.per_rhs_counts == result.per_rhs_counts

    def test_payload_is_plain_json(self, result):
        import json

        assert json.loads(json.dumps(result.to_json())) == result.to_json()

    def test_rfds_persist_in_the_paper_notation(self, result):
        payload = result.to_json()
        for text in payload["rfds"] + payload["key_rfds"]:
            assert "->" in text
            parse_rfd(text)  # must be readable by the standard parser


class TestMatrixJson:
    @pytest.fixture()
    def relation(self):
        return read_csv_text(CSV, name="t")

    def _matrix(self, relation):
        return PairDistanceMatrix(
            relation, string_limit=2, max_pairs=None, seed=0
        )

    def test_round_trip(self, relation):
        matrix = self._matrix(relation)
        restored = PairDistanceMatrix.from_json(
            matrix.to_json(), relation
        )
        assert restored.pairs.tolist() == matrix.pairs.tolist()
        assert restored.string_limit == matrix.string_limit

    def test_rejects_a_different_relation(self, relation):
        matrix = self._matrix(relation)
        smaller = read_csv_text(
            "Name,City,Phone\nann,rome,111\n", name="t"
        )
        with pytest.raises(DiscoveryError):
            PairDistanceMatrix.from_json(matrix.to_json(), smaller)

    def test_rejects_a_different_schema(self, relation):
        matrix = self._matrix(relation)
        payload = matrix.to_json()
        payload["attributes"] = ["A", "B", "C"]
        with pytest.raises(DiscoveryError):
            PairDistanceMatrix.from_json(payload, relation)


class TestDiscoverWithReusedMatrix:
    def test_reuse_matches_fresh_run(self):
        relation = read_csv_text(CSV, name="t")
        string_limit = max(
            CONFIG.threshold_limit, CONFIG.effective_lhs_limit
        )
        matrix = PairDistanceMatrix(
            relation, string_limit=string_limit,
            max_pairs=CONFIG.max_pairs, seed=CONFIG.seed,
        )
        fresh = discover_rfds(relation, CONFIG)
        reused = discover_rfds(relation, CONFIG, matrix=matrix)
        assert [str(r) for r in reused.all_rfds] == [
            str(r) for r in fresh.all_rfds
        ]

    def test_undersized_matrix_is_rejected(self):
        relation = read_csv_text(CSV, name="t")
        matrix = PairDistanceMatrix(
            relation, string_limit=0, max_pairs=None, seed=0
        )
        config = DiscoveryConfig(threshold_limit=5, max_lhs_size=1)
        with pytest.raises(DiscoveryError):
            discover_rfds(relation, config, matrix=matrix)

    def test_mismatched_relation_is_rejected(self):
        relation = read_csv_text(CSV, name="t")
        other = read_csv_text(
            CSV + "dot,kiev,444\n", name="t"
        )
        matrix = PairDistanceMatrix(
            relation, string_limit=2, max_pairs=None, seed=0
        )
        with pytest.raises(DiscoveryError):
            discover_rfds(other, CONFIG, matrix=matrix)
