"""Tests for the all-pairs distance matrices."""

import numpy as np
import pytest

from repro.dataset import MISSING, Relation
from repro.discovery.pattern_matrix import PairDistanceMatrix
from repro.exceptions import DiscoveryError


@pytest.fixture()
def mixed() -> Relation:
    return Relation.from_rows(
        ["S", "N", "B"],
        [
            ["abc", 1.5, True],
            ["abd", 2.5, False],
            [MISSING, 4.0, True],
        ],
    )


class TestShape:
    def test_pair_enumeration(self, mixed):
        matrix = PairDistanceMatrix(mixed)
        assert matrix.n_pairs == 3
        assert matrix.pairs.tolist() == [[0, 1], [0, 2], [1, 2]]

    def test_single_tuple_has_no_pairs(self):
        relation = Relation.from_rows(["A"], [["x"]])
        matrix = PairDistanceMatrix(relation)
        assert matrix.n_pairs == 0


class TestDistances:
    def test_numeric(self, mixed):
        matrix = PairDistanceMatrix(mixed)
        assert matrix.distances("N").tolist() == [1.0, 2.5, 1.5]

    def test_string_with_missing(self, mixed):
        matrix = PairDistanceMatrix(mixed)
        distances = matrix.distances("S")
        assert distances[0] == 1.0
        assert np.isnan(distances[1]) and np.isnan(distances[2])

    def test_boolean(self, mixed):
        matrix = PairDistanceMatrix(mixed)
        assert matrix.distances("B").tolist() == [1.0, 0.0, 1.0]

    def test_string_clamped_at_limit(self):
        relation = Relation.from_rows(
            ["S"], [["aaaaaaaaaa"], ["zzzzzzzzzz"]]
        )
        matrix = PairDistanceMatrix(relation, string_limit=3)
        assert matrix.distances("S")[0] == 4.0  # limit + 1

    def test_defined_mask(self, mixed):
        matrix = PairDistanceMatrix(mixed)
        assert matrix.defined_mask("S").tolist() == [True, False, False]
        assert matrix.defined_mask("N").all()

    def test_unknown_attribute_raises(self, mixed):
        matrix = PairDistanceMatrix(mixed)
        with pytest.raises(DiscoveryError):
            matrix.distances("Nope")

    def test_negative_limit_raises(self, mixed):
        with pytest.raises(DiscoveryError):
            PairDistanceMatrix(mixed, string_limit=-1)


class TestSampling:
    def test_sampling_caps_pairs(self):
        relation = Relation.from_rows(
            ["A"], [[i] for i in range(30)]
        )
        matrix = PairDistanceMatrix(relation, max_pairs=50, seed=1)
        assert matrix.n_pairs == 50
        assert not matrix.exact

    def test_sampling_deterministic(self):
        relation = Relation.from_rows(["A"], [[i] for i in range(30)])
        first = PairDistanceMatrix(relation, max_pairs=50, seed=1)
        second = PairDistanceMatrix(relation, max_pairs=50, seed=1)
        assert first.pairs.tolist() == second.pairs.tolist()

    def test_no_sampling_when_under_cap(self):
        relation = Relation.from_rows(["A"], [[i] for i in range(5)])
        matrix = PairDistanceMatrix(relation, max_pairs=100)
        assert matrix.exact
        assert matrix.n_pairs == 10
