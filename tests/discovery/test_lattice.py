"""Tests for lattice enumeration."""

from repro.discovery.lattice import count_lhs_sets, iter_lhs_sets


class TestIterLhsSets:
    def test_excludes_rhs(self):
        sets = list(iter_lhs_sets(["A", "B", "C"], "B", 2))
        assert ("B",) not in sets
        assert all("B" not in lhs for lhs in sets)

    def test_size_order_and_sorting(self):
        sets = list(iter_lhs_sets(["C", "A", "B"], "X", 2))
        assert sets == [
            ("A",), ("B",), ("C",),
            ("A", "B"), ("A", "C"), ("B", "C"),
        ]

    def test_max_size_one(self):
        sets = list(iter_lhs_sets(["A", "B", "C"], "C", 1))
        assert sets == [("A",), ("B",)]

    def test_max_size_clamped_to_pool(self):
        sets = list(iter_lhs_sets(["A", "B"], "B", 10))
        assert sets == [("A",)]

    def test_count_matches_enumeration(self):
        names = ["A", "B", "C", "D", "E"]
        for max_size in range(1, 5):
            expected = len(list(iter_lhs_sets(names, "A", max_size)))
            assert count_lhs_sets(len(names), max_size) == expected
