"""Tests for incremental RFD maintenance under insertions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataset import Relation
from repro.discovery import DiscoveryConfig, discover_rfds
from repro.discovery.incremental import IncrementalDiscovery
from repro.distance.pattern import PatternCalculator
from repro.exceptions import DiscoveryError
from repro.rfd import holds


def _base() -> Relation:
    return Relation.from_rows(
        ["Zip", "City"],
        [
            ["90001", "Los Angeles"],
            ["90001", "Los Angeles"],
            ["94101", "San Francisco"],
            ["94101", "San Francisco"],
        ],
        name="inc",
    )


@pytest.fixture()
def tracker() -> IncrementalDiscovery:
    return IncrementalDiscovery(
        _base(), DiscoveryConfig(threshold_limit=3, grid_size=3)
    )


class TestInvariant:
    def test_initial_set_matches_batch(self, tracker):
        batch = discover_rfds(
            _base(), DiscoveryConfig(threshold_limit=3, grid_size=3)
        )
        assert set(tracker.rfds) == set(batch.rfds)

    def test_maintained_rfds_hold_after_inserts(self, tracker):
        tracker.insert([["90001", "Los Angles"]])   # typo, distance 1
        tracker.insert([["10001", "New York"]])
        calculator = PatternCalculator(tracker.relation)
        for rfd in tracker.rfds:
            assert holds(rfd, calculator), str(rfd)

    @settings(max_examples=15, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["90001", "94101", "10001"]),
                st.sampled_from(
                    ["Los Angeles", "San Francisco", "New York", "LA"]
                ),
            ),
            min_size=1,
            max_size=5,
        )
    )
    def test_property_holding_invariant(self, rows):
        tracker = IncrementalDiscovery(
            _base(), DiscoveryConfig(threshold_limit=4, grid_size=3)
        )
        tracker.insert(list(map(list, rows)))
        calculator = PatternCalculator(tracker.relation)
        assert all(holds(rfd, calculator) for rfd in tracker.rfds)


class TestMaintenance:
    def test_clean_insert_keeps_everything(self, tracker):
        before = set(tracker.rfds)
        report = tracker.insert([["90001", "Los Angeles"]])
        assert report.unchanged == len(before)
        assert not report.dropped and not report.loosened

    def test_violating_insert_loosens_within_limit(self, tracker):
        zip_city = [
            rfd for rfd in tracker.rfds
            if rfd.lhs_attributes == ("Zip",)
            and rfd.rhs_attribute == "City"
        ]
        assert zip_city
        tightest = min(rfd.rhs_threshold for rfd in zip_city)
        # A same-zip tuple whose city differs by a small edit distance.
        report = tracker.insert([["90001", "Los Angelas"]])
        loosened_pairs = [
            (old, new) for old, new in report.loosened
            if old.rhs_attribute == "City"
        ]
        if tightest < 1:
            assert loosened_pairs, report.summary()
            for old, new in loosened_pairs:
                assert new.rhs_threshold > old.rhs_threshold

    def test_violating_insert_beyond_limit_drops(self, tracker):
        report = tracker.insert([["90001", "A Completely Different Town"]])
        dropped_city = [
            rfd for rfd in report.dropped if rfd.rhs_attribute == "City"
        ]
        assert dropped_city
        calculator = PatternCalculator(tracker.relation)
        assert all(holds(rfd, calculator) for rfd in tracker.rfds)

    def test_key_becomes_usable(self):
        relation = Relation.from_rows(
            ["K", "V"],
            [["aaaa", "x"], ["zzzz", "y"]],
        )
        tracker = IncrementalDiscovery(
            relation, DiscoveryConfig(threshold_limit=2, grid_size=3)
        )
        keyish = [
            rfd for rfd in tracker.key_rfds
            if rfd.lhs_attributes == ("K",)
        ]
        assert keyish  # K(<=0)-style dependency starts as a key
        report = tracker.insert([["aaaa", "x"]])
        assert report.dekeyed
        calculator = PatternCalculator(tracker.relation)
        assert all(holds(rfd, calculator) for rfd in tracker.rfds)

    def test_report_summary(self, tracker):
        report = tracker.insert([["90001", "Los Angeles"]])
        assert "+1 tuples" in report.summary()

    def test_bad_row_width(self, tracker):
        with pytest.raises(DiscoveryError):
            tracker.insert([["only-one"]])

    def test_original_relation_untouched(self):
        base = _base()
        tracker = IncrementalDiscovery(
            base, DiscoveryConfig(threshold_limit=3)
        )
        tracker.insert([["10001", "New York"]])
        assert base.n_tuples == 4
