"""Tests for RFD discovery: soundness, limits, keys, determinism."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataset import MISSING, Relation
from repro.discovery import DiscoveryConfig, discover_rfds
from repro.distance.pattern import PatternCalculator
from repro.exceptions import DiscoveryError
from repro.rfd import holds


class TestSoundness:
    def test_discovered_rfds_hold(self, zip_city_relation):
        result = discover_rfds(
            zip_city_relation,
            DiscoveryConfig(threshold_limit=3, max_lhs_size=2),
        )
        calculator = PatternCalculator(zip_city_relation)
        for rfd in result.rfds:
            assert holds(rfd, calculator), f"{rfd} does not hold"

    def test_finds_zip_city_dependency(self, zip_city_relation):
        result = discover_rfds(
            zip_city_relation, DiscoveryConfig(threshold_limit=3)
        )
        found = {
            (rfd.lhs_attributes, rfd.rhs_attribute) for rfd in result.rfds
        }
        assert (("Zip",), "City") in found

    @settings(max_examples=15, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["ax", "bx", "cx", "dx"]),
                st.integers(min_value=0, max_value=5),
            ),
            min_size=3,
            max_size=12,
        )
    )
    def test_property_soundness_on_random_relations(self, rows):
        relation = Relation.from_rows(["S", "N"], rows)
        result = discover_rfds(
            relation, DiscoveryConfig(threshold_limit=4, grid_size=3)
        )
        calculator = PatternCalculator(relation)
        assert all(holds(rfd, calculator) for rfd in result.rfds)


class TestLimits:
    def test_rhs_threshold_respects_limit(self, zip_city_relation):
        result = discover_rfds(
            zip_city_relation, DiscoveryConfig(threshold_limit=2)
        )
        assert all(rfd.rhs_threshold <= 2 for rfd in result.rfds)

    def test_lhs_threshold_respects_limit(self, zip_city_relation):
        config = DiscoveryConfig(threshold_limit=5, lhs_threshold_limit=1)
        result = discover_rfds(zip_city_relation, config)
        for rfd in result.rfds:
            for constraint in rfd.lhs:
                assert constraint.threshold <= 1

    def test_max_lhs_size(self, zip_city_relation):
        result = discover_rfds(
            zip_city_relation,
            DiscoveryConfig(threshold_limit=3, max_lhs_size=1),
        )
        assert all(len(rfd.lhs) == 1 for rfd in result.rfds)

    def test_higher_limit_finds_at_least_as_many(self, zip_city_relation):
        counts = []
        for limit in (1, 3, 6):
            result = discover_rfds(
                zip_city_relation,
                DiscoveryConfig(threshold_limit=limit, grid_size=4),
            )
            counts.append(len(result.rfds))
        assert counts == sorted(counts)

    def test_max_per_rhs_cap(self, zip_city_relation):
        capped = discover_rfds(
            zip_city_relation,
            DiscoveryConfig(threshold_limit=6, max_per_rhs=1),
        )
        per_rhs: dict[str, int] = {}
        for rfd in capped.rfds:
            per_rhs[rfd.rhs_attribute] = per_rhs.get(rfd.rhs_attribute, 0) + 1
        assert all(count <= 1 for count in per_rhs.values())


class TestKeys:
    def test_key_rfds_emitted_separately(self):
        # All-distinct strings with tight limits: everything is a key.
        relation = Relation.from_rows(
            ["A", "B"],
            [["aaaaaaaa", "bbbbbbbb"], ["cccccccc", "dddddddd"],
             ["eeeeeeee", "ffffffff"]],
        )
        result = discover_rfds(
            relation, DiscoveryConfig(threshold_limit=1)
        )
        assert result.rfds == []
        assert len(result.key_rfds) > 0
        assert len(result.all_rfds) == len(result.key_rfds)

    def test_include_keys_false(self):
        relation = Relation.from_rows(
            ["A", "B"], [["aaaaaaaa", "bbbbbbbb"], ["cccccccc", "dddddddd"]]
        )
        result = discover_rfds(
            relation,
            DiscoveryConfig(threshold_limit=1, include_keys=False),
        )
        assert result.key_rfds == []


class TestMissingData:
    def test_discovery_tolerates_missing_values(self):
        relation = Relation.from_rows(
            ["K", "V"],
            [["a", "x"], ["a", "x"], [MISSING, "y"], ["b", MISSING]],
        )
        result = discover_rfds(
            relation, DiscoveryConfig(threshold_limit=2)
        )
        calculator = PatternCalculator(relation)
        assert all(holds(rfd, calculator) for rfd in result.rfds)


class TestDeterminismAndStats:
    def test_deterministic(self, zip_city_relation):
        config = DiscoveryConfig(threshold_limit=3)
        first = discover_rfds(zip_city_relation, config)
        second = discover_rfds(zip_city_relation, config)
        assert first.rfds == second.rfds

    def test_sampled_discovery_deterministic(self):
        relation = Relation.from_rows(
            ["A", "B"], [[i % 7, (i * 3) % 5] for i in range(40)]
        )
        config = DiscoveryConfig(threshold_limit=3, max_pairs=100, seed=9)
        first = discover_rfds(relation, config)
        second = discover_rfds(relation, config)
        assert first.rfds == second.rfds
        assert not first.exact

    def test_summary_and_counts(self, zip_city_relation):
        result = discover_rfds(
            zip_city_relation, DiscoveryConfig(threshold_limit=3)
        )
        assert "discovered" in result.summary()
        assert sum(result.per_rhs_counts.values()) == len(result.rfds)
        assert len(result) == len(result.rfds) + len(result.key_rfds)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"threshold_limit": -1},
            {"lhs_threshold_limit": -2},
            {"max_lhs_size": 0},
            {"grid_size": 0},
            {"max_pairs": 0},
            {"min_support_pairs": 0},
            {"max_per_rhs": 0},
        ],
    )
    def test_invalid_configs(self, kwargs):
        with pytest.raises(DiscoveryError):
            DiscoveryConfig(**kwargs)

    def test_effective_lhs_limit(self):
        assert DiscoveryConfig(threshold_limit=5).effective_lhs_limit == 5
        assert (
            DiscoveryConfig(
                threshold_limit=5, lhs_threshold_limit=2
            ).effective_lhs_limit
            == 2
        )
