"""Tests for dominance pruning."""

from repro.discovery.pruning import dominates, remove_dominated
from repro.rfd import make_rfd


class TestDominates:
    def test_looser_lhs_tighter_rhs_dominates(self):
        strong = make_rfd({"A": 5}, ("C", 1))
        weak = make_rfd({"A": 3}, ("C", 2))
        assert dominates(strong, weak)
        assert not dominates(weak, strong)

    def test_subset_lhs_dominates(self):
        small = make_rfd({"A": 3}, ("C", 1))
        big = make_rfd({"A": 3, "B": 2}, ("C", 1))
        assert dominates(small, big)
        assert not dominates(big, small)

    def test_different_rhs_never_dominates(self):
        first = make_rfd({"A": 3}, ("C", 1))
        second = make_rfd({"A": 3}, ("D", 1))
        assert not dominates(first, second)

    def test_incomparable_thresholds(self):
        first = make_rfd({"A": 5, "B": 1}, ("C", 1))
        second = make_rfd({"A": 1, "B": 5}, ("C", 1))
        assert not dominates(first, second)
        assert not dominates(second, first)

    def test_equal_rfds_dominate_each_other(self):
        first = make_rfd({"A": 3}, ("C", 1))
        second = make_rfd({"A": 3}, ("C", 1))
        assert dominates(first, second)
        assert dominates(second, first)

    def test_tighter_rhs_wins_same_lhs(self):
        tight = make_rfd({"A": 3}, ("C", 0))
        loose = make_rfd({"A": 3}, ("C", 2))
        assert dominates(tight, loose)


class TestRemoveDominated:
    def test_drops_dominated(self):
        strong = make_rfd({"A": 5}, ("C", 1))
        weak = make_rfd({"A": 3}, ("C", 2))
        assert remove_dominated([weak, strong]) == [strong]

    def test_keeps_incomparable(self):
        first = make_rfd({"A": 5}, ("C", 1))
        second = make_rfd({"B": 5}, ("C", 1))
        kept = remove_dominated([first, second])
        assert set(map(str, kept)) == {str(first), str(second)}

    def test_dedupes_equal(self):
        rfd = make_rfd({"A": 3}, ("C", 1))
        clone = make_rfd({"A": 3}, ("C", 1))
        assert remove_dominated([rfd, clone]) == [rfd]

    def test_chain_keeps_only_top(self):
        top = make_rfd({"A": 9}, ("C", 0))
        middle = make_rfd({"A": 5}, ("C", 1))
        bottom = make_rfd({"A": 1}, ("C", 2))
        assert remove_dominated([bottom, middle, top]) == [top]

    def test_groups_by_rhs(self):
        c_rfd = make_rfd({"A": 1}, ("C", 2))
        d_rfd = make_rfd({"A": 9}, ("D", 0))
        kept = remove_dominated([c_rfd, d_rfd])
        assert len(kept) == 2

    def test_empty(self):
        assert remove_dominated([]) == []
