"""The public API surface: everything in __all__ resolves and works."""

import repro


class TestPublicApi:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_quickstart_docstring_flow(self):
        # The flow advertised in the package docstring, at tiny scale.
        clean = repro.load_dataset("bridges", seed=0)
        rfds = repro.discover_rfds(
            clean,
            repro.DiscoveryConfig(threshold_limit=3, max_per_rhs=10),
        ).all_rfds
        dirty = repro.inject_missing(clean, rate=0.01, seed=7)
        result = repro.Renuver(rfds).impute(dirty.relation)
        scores = repro.score_imputation(
            result.relation, dirty, repro.dataset_validator("bridges")
        )
        assert 0.0 <= scores.f1 <= 1.0

    def test_exceptions_derive_from_repro_error(self):
        from repro import exceptions

        for name in dir(exceptions):
            obj = getattr(exceptions, name)
            if (
                isinstance(obj, type)
                and issubclass(obj, Exception)
                and obj is not exceptions.ReproError
                and obj.__module__ == "repro.exceptions"
            ):
                assert issubclass(obj, exceptions.ReproError), name
