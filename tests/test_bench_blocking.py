"""Tier-1 smoke test for the blocking benchmark.

Runs ``benchmarks/bench_blocking.py``'s ``run_bench`` with a tiny
loader (300 synthetic Physician tuples, the bench's own RFD set, one
repeat) so the bench's code path — per-mode timing, equivalence check,
JSON artifact, index counters — is exercised on every test run without
the cost of the 100k phase.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

from repro.datasets.physician import generate_physician

BENCHMARKS_DIR = Path(__file__).resolve().parent.parent / "benchmarks"


@pytest.fixture()
def bench_module(monkeypatch):
    monkeypatch.syspath_prepend(str(BENCHMARKS_DIR))
    sys.modules.pop("bench_blocking", None)
    import bench_blocking

    yield bench_blocking
    sys.modules.pop("bench_blocking", None)


def test_run_bench_smoke(bench_module, tmp_path):
    def tiny_loader(factor):
        assert factor == 1
        return generate_physician(300, seed=0), bench_module.bench_rfds()

    result_path = tmp_path / "BENCH_blocking.json"
    summary = bench_module.run_bench(
        (1,), result_path=result_path, repeats=1, loader=tiny_loader
    )

    assert result_path.exists()
    assert json.loads(result_path.read_text(encoding="utf-8")) == summary

    (entry,) = summary["phases"].values()
    assert entry["n_tuples"] == 300
    assert entry["n_rfds"] == len(bench_module.RFD_TEXTS)
    assert entry["missing_cells"] > 0
    assert entry["identical_outcomes"] is True
    assert entry["unblocked_seconds"] > 0
    assert entry["blocked_seconds"] > 0
    assert entry["speedup"] == pytest.approx(
        entry["unblocked_seconds"] / entry["blocked_seconds"]
    )
    assert entry["index_counters"]["index_served_probes"] > 0
    assert entry["index_counters"]["index_builds"] > 0
    assert summary["repeats"] == 1


def test_committed_artifact_is_current(bench_module):
    """The committed BENCH_blocking.json matches the bench's shape and
    records the full-scale headline numbers."""
    committed = json.loads(
        bench_module.DEFAULT_RESULT_PATH.read_text(encoding="utf-8")
    )
    assert committed["bench"] == "blocking"
    assert committed["scale"] == "full"
    phases = sorted(
        committed["phases"].values(), key=lambda entry: entry["n_tuples"]
    )
    assert phases[-1]["n_tuples"] >= 100_000
    assert phases[-1]["speedup"] >= 5.0
    for entry in phases:
        assert entry["identical_outcomes"] is True
