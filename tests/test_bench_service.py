"""Tier-1 smoke test for the imputation-service benchmark.

Runs ``benchmarks/bench_service.py``'s ``run_bench`` with a tiny
loader (40 Restaurant tuples, one warm repeat, two clients) so the
bench's whole code path — in-process server, cold vs warm requests,
the cache-hit assertion, concurrent throughput, JSON artifact — is
exercised on every test run at trivial cost.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

from repro import load_dataset

BENCHMARKS_DIR = Path(__file__).resolve().parent.parent / "benchmarks"


@pytest.fixture()
def bench_module(monkeypatch):
    monkeypatch.syspath_prepend(str(BENCHMARKS_DIR))
    sys.modules.pop("bench_service", None)
    import bench_service

    yield bench_service
    sys.modules.pop("bench_service", None)


def tiny_loader():
    return load_dataset("restaurant", n_tuples=40, seed=0)


def test_run_bench_smoke(bench_module, tmp_path):
    result_path = tmp_path / "BENCH_service.json"
    summary = bench_module.run_bench(
        result_path=result_path,
        warm_repeats=1,
        clients=2,
        requests_per_client=2,
        loader=tiny_loader,
    )

    assert result_path.exists()
    assert json.loads(result_path.read_text(encoding="utf-8")) == summary

    assert summary["n_tuples"] == 40
    assert summary["cold_seconds"] > 0
    assert summary["warm_seconds"] > 0
    # The warm repeat must have come from the artifact cache and must
    # return the very bytes the cold request produced.
    assert summary["warm_cache_hits"] >= 1
    assert summary["warm_identical_csv"] is True
    throughput = summary["throughput"]
    assert throughput["requests"] == 4
    assert throughput["requests_per_second"] > 0
