"""Tests for RFD implication, transitive composition and covers."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distance.pattern import PatternCalculator
from repro.rfd import holds, make_rfd
from repro.rfd.inference import (
    closure,
    implied_by_set,
    implies,
    minimal_cover,
    transitive_consequence,
)


class TestImplies:
    def test_dominance_implication(self):
        strong = make_rfd({"A": 5}, ("C", 1))
        weak = make_rfd({"A": 3}, ("C", 2))
        assert implies(strong, weak)
        assert not implies(weak, strong)

    def test_implied_by_set_excludes_self(self):
        rfd = make_rfd({"A": 3}, ("C", 2))
        assert not implied_by_set([rfd], rfd)

    def test_implied_by_set(self):
        strong = make_rfd({"A": 5}, ("C", 1))
        weak = make_rfd({"A": 3}, ("C", 2))
        unrelated = make_rfd({"B": 1}, ("D", 1))
        assert implied_by_set([strong, unrelated], weak)
        assert not implied_by_set([unrelated], weak)


class TestTransitivity:
    def test_simple_chain(self):
        first = make_rfd({"X": 2}, ("B", 1))
        second = make_rfd({"B": 1}, ("A", 3))
        composed = transitive_consequence(first, second)
        assert composed == make_rfd({"X": 2}, ("A", 3))

    def test_threshold_gap_blocks(self):
        first = make_rfd({"X": 2}, ("B", 5))   # guarantees only <=5
        second = make_rfd({"B": 1}, ("A", 3))  # needs <=1
        assert transitive_consequence(first, second) is None

    def test_extra_lhs_attributes_carried(self):
        first = make_rfd({"X": 2}, ("B", 1))
        second = make_rfd({"B": 2, "Y": 4}, ("A", 3))
        composed = transitive_consequence(first, second)
        assert composed is not None
        assert composed.lhs_attributes == ("X", "Y")
        assert composed.lhs_constraint("Y").threshold == 4

    def test_shared_lhs_attribute_takes_tighter_threshold(self):
        first = make_rfd({"X": 2}, ("B", 1))
        second = make_rfd({"B": 1, "X": 1}, ("A", 3))
        composed = transitive_consequence(first, second)
        assert composed.lhs_constraint("X").threshold == 1

    def test_no_b_on_second_lhs(self):
        first = make_rfd({"X": 2}, ("B", 1))
        second = make_rfd({"Y": 1}, ("A", 3))
        assert transitive_consequence(first, second) is None

    def test_cyclic_conclusion_blocked(self):
        first = make_rfd({"A": 2}, ("B", 1))
        second = make_rfd({"B": 1}, ("A", 3))
        assert transitive_consequence(first, second) is None

    def test_soundness_on_instance(self, zip_city_relation):
        # Zip -> City and City -> Zip hold; compositions must hold too.
        calculator = PatternCalculator(zip_city_relation)
        first = make_rfd({"Zip": 0}, ("City", 0))
        second = make_rfd({"City": 0}, ("Zip", 0))
        assert holds(first, calculator) and holds(second, calculator)
        for premise, conclusion in ((first, second), (second, first)):
            composed = transitive_consequence(premise, conclusion)
            if composed is not None:
                assert holds(composed, calculator), str(composed)


class TestClosure:
    def test_adds_derivable_dependency(self):
        chain = [
            make_rfd({"X": 2}, ("B", 1)),
            make_rfd({"B": 1}, ("A", 3)),
        ]
        closed = closure(chain)
        assert make_rfd({"X": 2}, ("A", 3)) in closed

    def test_idempotent_inputs(self):
        rfds = [make_rfd({"X": 2}, ("B", 1))]
        assert closure(rfds) == rfds

    def test_max_new_bounds_runaway(self):
        chain = [
            make_rfd({"A": 1}, ("B", 1)),
            make_rfd({"B": 1}, ("C", 1)),
            make_rfd({"C": 1}, ("D", 1)),
        ]
        closed = closure(chain, max_new=1)
        assert len(closed) == 4


class TestMinimalCover:
    def test_removes_dominated(self):
        strong = make_rfd({"A": 5}, ("C", 1))
        weak = make_rfd({"A": 3}, ("C", 2))
        assert minimal_cover([weak, strong]) == [strong]

    def test_keeps_incomparable(self):
        first = make_rfd({"A": 5}, ("C", 1))
        second = make_rfd({"B": 5}, ("C", 1))
        cover = minimal_cover([first, second])
        assert len(cover) == 2

    def test_equivalent_duplicates_collapse(self):
        rfd = make_rfd({"A": 3}, ("C", 2))
        clone = make_rfd({"A": 3.0}, ("C", 2.0))
        assert minimal_cover([rfd, clone]) == [rfd]

    def test_cover_implies_everything(self):
        rfds = [
            make_rfd({"A": 5}, ("C", 1)),
            make_rfd({"A": 3}, ("C", 2)),
            make_rfd({"A": 3, "B": 1}, ("C", 3)),
            make_rfd({"B": 5}, ("D", 0)),
        ]
        cover = minimal_cover(rfds)
        for rfd in rfds:
            assert rfd in cover or implied_by_set(cover, rfd)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["A", "B"]),
                st.integers(min_value=0, max_value=5),
                st.integers(min_value=0, max_value=5),
            ),
            min_size=1,
            max_size=8,
        )
    )
    def test_property_cover_is_sound_and_complete(self, specs):
        rfds = [
            make_rfd({lhs: alpha}, ("C", beta))
            for lhs, alpha, beta in specs
        ]
        cover = minimal_cover(rfds)
        assert set(cover) <= set(rfds)
        for rfd in rfds:
            assert rfd in cover or implied_by_set(cover, rfd)
        # No member of the cover is implied by the others.
        for rfd in cover:
            others = [other for other in cover if other != rfd]
            assert not implied_by_set(others, rfd)
