"""Tests for key-RFD detection (Definition 3.4) under both scopes.

The paper's Example 5.2 calls phi_1 a key on Table 2, but the incomplete
pair (t5, t6) satisfies its LHS under the literal definition — see the
module docstring of :mod:`repro.rfd.keyness`.  These tests pin down both
behaviours.
"""

import pytest

from repro.dataset import MISSING, Relation
from repro.distance.pattern import PatternCalculator
from repro.exceptions import RFDValidationError
from repro.rfd import make_rfd
from repro.rfd.keyness import (
    is_key_rfd,
    non_key_rfds,
    pair_reactivates,
    partition_key_rfds,
)


@pytest.fixture()
def phi1():
    return make_rfd({"Name": 8, "Phone": 0, "Class": 1}, ("Type", 0))


class TestScopes:
    def test_phi1_literal_definition(self, restaurant_sample, phi1):
        # Under scope="all" the incomplete pair (t5, t6) satisfies the
        # LHS (Name dist 7 <= 8, equal phones, equal classes).
        calculator = PatternCalculator(restaurant_sample)
        assert not is_key_rfd(phi1, calculator, scope="all")

    def test_phi1_complete_scope_matches_example_5_2(
        self, restaurant_sample, phi1
    ):
        calculator = PatternCalculator(restaurant_sample)
        assert is_key_rfd(phi1, calculator, scope="complete")

    def test_invalid_scope_rejected(self, restaurant_sample, phi1):
        calculator = PatternCalculator(restaurant_sample)
        with pytest.raises(RFDValidationError):
            is_key_rfd(phi1, calculator, scope="partial")


class TestIsKeyRfd:
    def test_tight_thresholds_on_distinct_data_are_key(self):
        relation = Relation.from_rows(
            ["A", "B"], [["aaaa", 1], ["zzzz", 2], ["qqqq", 3]]
        )
        calculator = PatternCalculator(relation)
        assert is_key_rfd(make_rfd({"A": 0}, ("B", 0)), calculator)

    def test_loose_threshold_is_not_key(self, restaurant_sample):
        calculator = PatternCalculator(restaurant_sample)
        loose = make_rfd({"Name": 100}, ("City", 100))
        assert not is_key_rfd(loose, calculator)

    def test_missing_lhs_values_cannot_match(self):
        relation = Relation.from_rows(
            ["A", "B"], [[MISSING, 1], [MISSING, 2]]
        )
        calculator = PatternCalculator(relation)
        assert is_key_rfd(make_rfd({"A": 100}, ("B", 100)), calculator)

    def test_imputation_turns_key_into_non_key_complete_scope(
        self, restaurant_sample, phi1
    ):
        # Example 5.1: imputing t4[Phone] from t3 completes t4; the
        # complete pair (t3, t4) then satisfies phi1's LHS.
        calculator = PatternCalculator(restaurant_sample)
        assert is_key_rfd(phi1, calculator, scope="complete")
        restaurant_sample.set_value(3, "Phone", "213/857-0034")
        assert not is_key_rfd(phi1, calculator, scope="complete")


class TestPairReactivates:
    def test_detects_fresh_pair(self, restaurant_sample, phi1):
        calculator = PatternCalculator(restaurant_sample)
        restaurant_sample.set_value(3, "Phone", "213/857-0034")
        assert pair_reactivates(
            phi1, calculator, 3, scope="complete"
        )

    def test_incomplete_target_never_reactivates_complete_scope(
        self, restaurant_sample, phi1
    ):
        calculator = PatternCalculator(restaurant_sample)
        # t6 (row 5) is missing City even after imputing nothing.
        assert not pair_reactivates(
            phi1, calculator, 5, scope="complete"
        )

    def test_all_scope_sees_incomplete_pairs(self, restaurant_sample, phi1):
        calculator = PatternCalculator(restaurant_sample)
        assert pair_reactivates(phi1, calculator, 5, scope="all")


class TestPartition:
    def test_partition_all_scope(self, restaurant_sample, paper_rfds):
        calculator = PatternCalculator(restaurant_sample)
        keys, non_keys = partition_key_rfds(
            paper_rfds, calculator, scope="all"
        )
        # Under the literal definition even phi1 is non-key here.
        assert keys == []
        assert non_keys == paper_rfds

    def test_partition_complete_scope_contains_phi1(
        self, restaurant_sample, paper_rfds
    ):
        calculator = PatternCalculator(restaurant_sample)
        keys, _ = partition_key_rfds(
            paper_rfds, calculator, scope="complete"
        )
        assert paper_rfds[0] in keys  # phi1

    def test_non_key_rfds_helper(self, restaurant_sample, paper_rfds):
        calculator = PatternCalculator(restaurant_sample)
        assert non_key_rfds(paper_rfds, calculator) == paper_rfds

    def test_empty_input(self, restaurant_sample):
        calculator = PatternCalculator(restaurant_sample)
        assert partition_key_rfds([], calculator) == ([], [])
