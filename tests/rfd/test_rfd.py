"""Tests for the RFD object."""

import pytest

from repro.dataset.missing import MISSING
from repro.distance.pattern import DistancePattern
from repro.exceptions import RFDValidationError
from repro.rfd.constraint import Constraint
from repro.rfd.rfd import RFD, make_rfd


@pytest.fixture()
def phi6() -> RFD:
    """phi6 of the paper: Name(<=6), City(<=9) -> Phone(<=0)."""
    return make_rfd({"Name": 6, "City": 9}, ("Phone", 0))


class TestConstruction:
    def test_lhs_sorted_by_attribute(self):
        rfd = RFD(
            (Constraint("Zed", 1), Constraint("Alpha", 2)),
            Constraint("Target", 0),
        )
        assert rfd.lhs_attributes == ("Alpha", "Zed")

    def test_equality_ignores_declaration_order(self):
        first = make_rfd([("A", 1), ("B", 2)], ("C", 0))
        second = make_rfd([("B", 2), ("A", 1)], ("C", 0))
        assert first == second
        assert hash(first) == hash(second)

    def test_rejects_empty_lhs(self):
        with pytest.raises(RFDValidationError):
            RFD((), Constraint("A", 0))

    def test_rejects_duplicate_lhs_attributes(self):
        with pytest.raises(RFDValidationError):
            RFD(
                (Constraint("A", 1), Constraint("A", 2)),
                Constraint("B", 0),
            )

    def test_rejects_rhs_on_lhs(self):
        with pytest.raises(RFDValidationError):
            make_rfd({"A": 1}, ("A", 0))


class TestAccessors:
    def test_paper_accessors(self, phi6):
        assert phi6.lhs_attributes == ("City", "Name")
        assert phi6.rhs_attribute == "Phone"
        assert phi6.rhs_threshold == 0.0
        assert phi6.attributes == ("City", "Name", "Phone")

    def test_lhs_constraint_lookup(self, phi6):
        assert phi6.lhs_constraint("Name").threshold == 6.0
        with pytest.raises(RFDValidationError):
            phi6.lhs_constraint("Phone")

    def test_has_lhs_attribute(self, phi6):
        assert phi6.has_lhs_attribute("City")
        assert not phi6.has_lhs_attribute("Phone")

    def test_str_rendering(self, phi6):
        assert str(phi6) == "City(<=9), Name(<=6) -> Phone(<=0)"


class TestSatisfaction:
    def test_lhs_satisfied(self, phi6):
        pattern = DistancePattern({"Name": 6.0, "City": 0.0, "Phone": 1.0})
        assert phi6.lhs_satisfied(pattern)

    def test_lhs_boundary_exceeded(self, phi6):
        pattern = DistancePattern({"Name": 6.5, "City": 0.0, "Phone": 0.0})
        assert not phi6.lhs_satisfied(pattern)

    def test_lhs_missing_never_satisfies(self, phi6):
        pattern = DistancePattern(
            {"Name": 1.0, "City": MISSING, "Phone": 0.0}
        )
        assert not phi6.lhs_satisfied(pattern)

    def test_rhs_satisfied_and_comparable(self, phi6):
        pattern = DistancePattern({"Name": 0.0, "City": 0.0, "Phone": 0.0})
        assert phi6.rhs_satisfied(pattern)
        assert phi6.rhs_comparable(pattern)

    def test_rhs_missing_not_comparable(self, phi6):
        pattern = DistancePattern(
            {"Name": 0.0, "City": 0.0, "Phone": MISSING}
        )
        assert not phi6.rhs_comparable(pattern)


class TestViolation:
    def test_violated_when_lhs_holds_rhs_exceeds(self, phi6):
        pattern = DistancePattern({"Name": 1.0, "City": 1.0, "Phone": 3.0})
        assert phi6.violated_by(pattern)

    def test_not_violated_when_lhs_fails(self, phi6):
        pattern = DistancePattern({"Name": 99.0, "City": 1.0, "Phone": 3.0})
        assert not phi6.violated_by(pattern)

    def test_not_violated_when_rhs_missing(self, phi6):
        pattern = DistancePattern(
            {"Name": 1.0, "City": 1.0, "Phone": MISSING}
        )
        assert not phi6.violated_by(pattern)

    def test_not_violated_when_rhs_within(self, phi6):
        pattern = DistancePattern({"Name": 1.0, "City": 1.0, "Phone": 0.0})
        assert not phi6.violated_by(pattern)


class TestMakeRfd:
    def test_from_dict(self):
        rfd = make_rfd({"A": 1}, ("B", 2))
        assert rfd.lhs_constraint("A").threshold == 1.0
        assert rfd.rhs_threshold == 2.0

    def test_from_pairs(self):
        rfd = make_rfd([("A", 1), ("B", 2)], ("C", 3))
        assert rfd.lhs_attributes == ("A", "B")
