"""Tests for instance-level RFD satisfaction and violations."""

from repro.dataset import MISSING, Relation
from repro.distance.pattern import PatternCalculator
from repro.rfd import make_rfd
from repro.rfd.violations import (
    count_violations,
    find_violations,
    holds,
    holds_all,
)


class TestHolds:
    def test_crisp_fd_holds(self, zip_city_relation):
        calculator = PatternCalculator(zip_city_relation)
        assert holds(make_rfd({"Zip": 0}, ("City", 0)), calculator)

    def test_violated_fd(self, zip_city_relation):
        zip_city_relation.set_value(1, "City", "Pasadena")
        calculator = PatternCalculator(zip_city_relation)
        assert not holds(make_rfd({"Zip": 0}, ("City", 0)), calculator)

    def test_relaxed_threshold_tolerates_typos(self, zip_city_relation):
        zip_city_relation.set_value(1, "City", "Los Angles")  # typo, dist 1
        calculator = PatternCalculator(zip_city_relation)
        assert not holds(make_rfd({"Zip": 0}, ("City", 0)), calculator)
        assert holds(make_rfd({"Zip": 0}, ("City", 1)), calculator)

    def test_example_4_4_semantic_inconsistency(self, restaurant_sample):
        # Imputing t7[Phone] with t1[Phone] violates
        # Phone(<=0) -> City(<=10) via the pair (t1, t7).
        restaurant_sample.set_value(6, "Phone", "310/456-0488")
        calculator = PatternCalculator(restaurant_sample)
        phi0 = make_rfd({"Phone": 0}, ("City", 10))
        violations = find_violations(phi0, calculator)
        assert any(v.row_a == 0 and v.row_b == 6 for v in violations)

    def test_missing_rhs_is_not_a_violation(self):
        relation = Relation.from_rows(
            ["A", "B"], [["x", "u"], ["x", MISSING]]
        )
        calculator = PatternCalculator(relation)
        assert holds(make_rfd({"A": 0}, ("B", 0)), calculator)

    def test_missing_lhs_cannot_match(self):
        relation = Relation.from_rows(
            ["A", "B"], [[MISSING, "u"], [MISSING, "completely-different"]]
        )
        calculator = PatternCalculator(relation)
        assert holds(make_rfd({"A": 100}, ("B", 0)), calculator)


class TestFindViolations:
    def test_counts_and_limits(self, zip_city_relation):
        zip_city_relation.set_value(1, "City", "Pasadena")
        zip_city_relation.set_value(3, "City", "Oakland")
        calculator = PatternCalculator(zip_city_relation)
        rfd = make_rfd({"Zip": 0}, ("City", 0))
        assert count_violations(rfd, calculator) == 2
        assert len(find_violations(rfd, calculator, limit=1)) == 1

    def test_violation_str(self, zip_city_relation):
        zip_city_relation.set_value(1, "City", "Pasadena")
        calculator = PatternCalculator(zip_city_relation)
        violation = find_violations(
            make_rfd({"Zip": 0}, ("City", 0)), calculator
        )[0]
        assert "violates" in str(violation)


class TestHoldsAll:
    def test_consistency_definition_4_3(self, zip_city_relation):
        calculator = PatternCalculator(zip_city_relation)
        sigma = [
            make_rfd({"Zip": 0}, ("City", 0)),
            make_rfd({"City": 0}, ("Zip", 0)),
        ]
        assert holds_all(sigma, calculator)
        zip_city_relation.set_value(0, "Zip", "99999")
        assert not holds_all(sigma, calculator)

    def test_empty_sigma_always_holds(self, zip_city_relation):
        calculator = PatternCalculator(zip_city_relation)
        assert holds_all([], calculator)
