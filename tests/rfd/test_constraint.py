"""Tests for per-attribute constraints."""

import pytest

from repro.dataset.missing import MISSING
from repro.exceptions import RFDValidationError
from repro.rfd.constraint import Constraint


class TestConstruction:
    def test_basic(self):
        constraint = Constraint("Name", 4)
        assert constraint.attribute == "Name"
        assert constraint.threshold == 4.0

    def test_threshold_coerced_to_float(self):
        assert isinstance(Constraint("A", 1).threshold, float)

    def test_rejects_empty_attribute(self):
        with pytest.raises(RFDValidationError):
            Constraint("", 1)

    def test_rejects_negative_threshold(self):
        with pytest.raises(RFDValidationError):
            Constraint("A", -0.5)

    def test_rejects_non_numeric_threshold(self):
        with pytest.raises(RFDValidationError):
            Constraint("A", "big")

    def test_zero_threshold_is_equality(self):
        constraint = Constraint("A", 0)
        assert constraint.is_satisfied_by(0.0)
        assert not constraint.is_satisfied_by(0.5)


class TestSatisfaction:
    def test_boundary_inclusive(self):
        constraint = Constraint("A", 2)
        assert constraint.is_satisfied_by(2.0)
        assert not constraint.is_satisfied_by(2.0001)

    def test_missing_never_satisfies(self):
        assert not Constraint("A", 100).is_satisfied_by(MISSING)
        assert not Constraint("A", 100).is_satisfied_by(None)


class TestValueSemantics:
    def test_equality_and_hash(self):
        assert Constraint("A", 2) == Constraint("A", 2.0)
        assert len({Constraint("A", 2), Constraint("A", 2.0)}) == 1

    def test_ordering_by_attribute_then_threshold(self):
        assert Constraint("A", 2) < Constraint("B", 1)
        assert Constraint("A", 1) < Constraint("A", 2)

    def test_str_integral_threshold(self):
        assert str(Constraint("Name", 4)) == "Name(<=4)"

    def test_str_fractional_threshold(self):
        assert str(Constraint("RI", 0.5)) == "RI(<=0.5)"
