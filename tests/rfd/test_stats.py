"""Tests for per-RFD statistics."""

import pytest

from repro.dataset import MISSING, Relation
from repro.distance.pattern import PatternCalculator
from repro.rfd import make_rfd
from repro.rfd.stats import rank_by_support, rfd_statistics


class TestRfdStatistics:
    def test_crisp_fd_full_confidence(self, zip_city_relation):
        calculator = PatternCalculator(zip_city_relation)
        stats = rfd_statistics(
            make_rfd({"Zip": 0}, ("City", 0)), calculator
        )
        # Three zip groups of two tuples each: 3 witness pairs of 15.
        assert stats.total_pairs == 15
        assert stats.lhs_matches == 3
        assert stats.witnesses == 3
        assert stats.violations == 0
        assert stats.support == pytest.approx(3 / 15)
        assert stats.confidence == 1.0
        assert stats.holds
        assert not stats.is_key

    def test_violations_counted(self, zip_city_relation):
        zip_city_relation.set_value(1, "City", "Pasadena")
        calculator = PatternCalculator(zip_city_relation)
        stats = rfd_statistics(
            make_rfd({"Zip": 0}, ("City", 0)), calculator
        )
        assert stats.violations == 1
        assert not stats.holds
        assert stats.confidence == pytest.approx(2 / 3)
        assert stats.rhs_margin < 0

    def test_key_rfd(self, zip_city_relation):
        calculator = PatternCalculator(zip_city_relation)
        stats = rfd_statistics(
            make_rfd({"Name": 0}, ("City", 0)), calculator
        )
        assert stats.is_key
        assert stats.support == 0.0
        assert stats.confidence == 1.0  # vacuous
        assert stats.rhs_margin is None

    def test_missing_rhs_counts_as_match_not_witness(self):
        relation = Relation.from_rows(
            ["K", "V"], [["a", "x"], ["a", MISSING]]
        )
        calculator = PatternCalculator(relation)
        stats = rfd_statistics(make_rfd({"K": 0}, ("V", 0)), calculator)
        assert stats.lhs_matches == 1
        assert stats.witnesses == 0
        assert stats.confidence == 1.0

    def test_rhs_margin_measures_slack(self, zip_city_relation):
        zip_city_relation.set_value(1, "City", "Los Angles")  # dist 1
        calculator = PatternCalculator(zip_city_relation)
        stats = rfd_statistics(
            make_rfd({"Zip": 0}, ("City", 3)), calculator
        )
        assert stats.rhs_margin == pytest.approx(2.0)

    def test_str(self, zip_city_relation):
        calculator = PatternCalculator(zip_city_relation)
        stats = rfd_statistics(
            make_rfd({"Zip": 0}, ("City", 0)), calculator
        )
        assert "support=" in str(stats)


class TestRankBySupport:
    def test_orders_by_evidence(self, zip_city_relation):
        calculator = PatternCalculator(zip_city_relation)
        loose = make_rfd({"Age": 100}, ("City", 100))     # every pair
        tight = make_rfd({"Zip": 0}, ("City", 0))          # 3 pairs
        ranked = rank_by_support([tight, loose], calculator)
        assert ranked[0].rfd is loose
        assert ranked[1].rfd is tight

    def test_holding_only_filter(self, zip_city_relation):
        zip_city_relation.set_value(1, "City", "Pasadena")
        calculator = PatternCalculator(zip_city_relation)
        violated = make_rfd({"Zip": 0}, ("City", 0))
        vacuous = make_rfd({"Name": 0}, ("City", 0))
        ranked = rank_by_support(
            [violated, vacuous], calculator, holding_only=True
        )
        assert [entry.rfd for entry in ranked] == [vacuous]

    def test_discovered_rfds_all_hold(self, zip_city_relation):
        from repro import DiscoveryConfig, discover_rfds

        result = discover_rfds(
            zip_city_relation, DiscoveryConfig(threshold_limit=3)
        )
        calculator = PatternCalculator(zip_city_relation)
        ranked = rank_by_support(result.rfds, calculator)
        assert all(entry.holds for entry in ranked)
        assert all(entry.support > 0 for entry in ranked)
