"""Tests for RFD text (de)serialization."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import RFDParseError
from repro.rfd.constraint import Constraint
from repro.rfd.parser import (
    format_rfd,
    load_rfds,
    parse_constraint,
    parse_rfd,
    save_rfds,
)
from repro.rfd.rfd import RFD, make_rfd

attribute_names = st.text(
    alphabet=st.characters(codec="ascii", categories=("L", "N")),
    min_size=1,
    max_size=10,
)


class TestParseConstraint:
    def test_basic(self):
        assert parse_constraint("Name(<=4)") == Constraint("Name", 4)

    def test_whitespace_tolerant(self):
        assert parse_constraint("  Name ( <= 4.5 ) ") == Constraint(
            "Name", 4.5
        )

    def test_name_with_spaces(self):
        assert parse_constraint("Model Year(<=1)") == Constraint(
            "Model Year", 1
        )

    @pytest.mark.parametrize(
        "bad", ["Name", "Name(<4)", "Name(<=x)", "(<=1)", "Name(<=-1)"]
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(RFDParseError):
            parse_constraint(bad)


class TestParseRfd:
    def test_single_lhs(self):
        rfd = parse_rfd("Class(<=0) -> Type(<=5)")
        assert rfd == make_rfd({"Class": 0}, ("Type", 5))

    def test_multi_lhs(self):
        rfd = parse_rfd("Name(<=8), Phone(<=0) -> City(<=9)")
        assert rfd.lhs_attributes == ("Name", "Phone")
        assert rfd.rhs_threshold == 9.0

    @pytest.mark.parametrize(
        "bad",
        [
            "Name(<=1)",                       # no arrow
            "-> Type(<=1)",                    # empty LHS
            "A(<=1) -> B(<=1) -> C(<=1)",      # two arrows
            "A(<=1) -> B(<=1), C(<=1)",        # two RHS constraints
            "A(<=1 -> B(<=1)",                 # unbalanced parens
        ],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(RFDParseError):
            parse_rfd(bad)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "Class(<=0) -> Type(<=5)",
            "City(<=2), Name(<=4) -> Phone(<=1)",
            "RI(<=0.002) -> Type(<=1)",
        ],
    )
    def test_format_parse_identity(self, text):
        assert format_rfd(parse_rfd(text)) == text

    @given(
        st.lists(
            st.tuples(attribute_names,
                      st.integers(min_value=0, max_value=99)),
            min_size=1,
            max_size=4,
            unique_by=lambda pair: pair[0],
        ),
        attribute_names,
        st.integers(min_value=0, max_value=99),
    )
    def test_property_round_trip(self, lhs_pairs, rhs_name, rhs_threshold):
        if rhs_name in {name for name, _ in lhs_pairs}:
            return  # invalid RFD by construction
        rfd = make_rfd(lhs_pairs, (rhs_name, rhs_threshold))
        assert parse_rfd(format_rfd(rfd)) == rfd


class TestFiles:
    def test_save_and_load(self, tmp_path, paper_rfds):
        path = tmp_path / "rfds.txt"
        save_rfds(paper_rfds, path)
        assert load_rfds(path) == paper_rfds

    def test_load_skips_comments_and_blanks(self, tmp_path):
        path = tmp_path / "rfds.txt"
        path.write_text(
            "# a comment\n\nA(<=1) -> B(<=2)  # trailing comment\n"
        )
        loaded = load_rfds(path)
        assert loaded == [make_rfd({"A": 1}, ("B", 2))]

    def test_load_reports_line_number(self, tmp_path):
        path = tmp_path / "rfds.txt"
        path.write_text("A(<=1) -> B(<=2)\nbroken line\n")
        with pytest.raises(RFDParseError) as excinfo:
            load_rfds(path)
        assert ":2:" in str(excinfo.value)
