"""Tests for missing-value injection (Section 6.1 protocol)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataset import MISSING, Relation
from repro.evaluation.injection import (
    build_injection_suite,
    inject_missing,
    missing_count_for_rate,
)
from repro.exceptions import EvaluationError


def _relation(n=20):
    return Relation.from_rows(
        ["A", "B", "C"],
        [[f"a{i}", i, i * 1.5] for i in range(n)],
        name="inj",
    )


class TestCounts:
    def test_paper_table3_restaurant_count(self):
        # 1% of 864 x 6 cells = 51.84 -> 52, exactly Table 3's value.
        relation = Relation.from_rows(
            [f"A{i}" for i in range(6)],
            [[str(j)] * 6 for j in range(864)],
        )
        assert missing_count_for_rate(relation, 0.01) == 52

    def test_minimum_one(self):
        assert missing_count_for_rate(_relation(1), 0.001) == 1

    def test_invalid_rate(self):
        with pytest.raises(EvaluationError):
            missing_count_for_rate(_relation(), 0.0)
        with pytest.raises(EvaluationError):
            missing_count_for_rate(_relation(), 1.0)


class TestInjectMissing:
    def test_count_blanked(self):
        injection = inject_missing(_relation(), count=7, seed=1)
        assert injection.count == 7
        assert injection.relation.count_missing() == 7

    def test_ground_truth_matches_original(self):
        relation = _relation()
        injection = inject_missing(relation, count=5, seed=2)
        for (row, attribute), value in injection.ground_truth.items():
            assert relation.value(row, attribute) == value
            assert injection.relation.value(row, attribute) is MISSING

    def test_restore_round_trips(self):
        relation = _relation()
        injection = inject_missing(relation, rate=0.1, seed=3)
        assert injection.restore().equals(relation)

    def test_deterministic_per_seed_and_variant(self):
        relation = _relation()
        first = inject_missing(relation, count=5, seed=4, variant=0)
        second = inject_missing(relation, count=5, seed=4, variant=0)
        assert first.cells == second.cells

    def test_variants_differ(self):
        relation = _relation()
        cells = {
            tuple(inject_missing(relation, count=5, seed=4,
                                 variant=v).cells)
            for v in range(5)
        }
        assert len(cells) > 1

    def test_attribute_restriction(self):
        injection = inject_missing(
            _relation(), count=5, seed=0, attributes=["B"]
        )
        assert all(attribute == "B" for _, attribute in injection.cells)

    def test_unknown_attribute_rejected(self):
        with pytest.raises(EvaluationError):
            inject_missing(_relation(), count=1, attributes=["Nope"])

    def test_rate_and_count_mutually_exclusive(self):
        with pytest.raises(EvaluationError):
            inject_missing(_relation(), rate=0.1, count=3)
        with pytest.raises(EvaluationError):
            inject_missing(_relation())

    def test_never_blanks_already_missing(self):
        relation = _relation(4)
        relation.set_value(0, "A", MISSING)
        injection = inject_missing(relation, count=11, seed=0)
        assert (0, "A") not in injection.ground_truth
        assert injection.relation.count_missing() == 12

    def test_too_many_cells_rejected(self):
        with pytest.raises(EvaluationError):
            inject_missing(_relation(2), count=7)

    def test_original_untouched(self):
        relation = _relation()
        inject_missing(relation, count=5, seed=0)
        assert relation.count_missing() == 0

    @settings(max_examples=25, deadline=None)
    @given(
        count=st.integers(min_value=1, max_value=30),
        seed=st.integers(min_value=0, max_value=2**32),
    )
    def test_property_exact_count_and_truth(self, count, seed):
        relation = _relation(10)
        injection = inject_missing(relation, count=count, seed=seed)
        assert injection.relation.count_missing() == count
        assert len(injection.ground_truth) == count
        assert injection.restore().equals(relation)


class TestSuite:
    def test_shape(self):
        suite = build_injection_suite(
            _relation(), rates=[0.01, 0.05], variants=3, seed=1
        )
        assert suite.rates() == [0.01, 0.05]
        assert len(suite.variants(0.01)) == 3
        assert len(list(suite)) == 6

    def test_unknown_rate_raises(self):
        suite = build_injection_suite(_relation(), rates=[0.01])
        with pytest.raises(EvaluationError):
            suite.variants(0.5)

    def test_variants_must_be_positive(self):
        with pytest.raises(EvaluationError):
            build_injection_suite(_relation(), rates=[0.01], variants=0)
