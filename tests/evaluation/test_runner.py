"""Tests for the experiment runner."""

import time

import pytest

from repro.baselines import MeanModeImputer
from repro.core.renuver import ImputationResult
from repro.core.report import ImputationReport
from repro.dataset import Relation
from repro.evaluation.injection import build_injection_suite
from repro.evaluation.runner import compare_approaches, run_experiment
from repro.exceptions import EvaluationError


def _relation():
    return Relation.from_rows(
        ["K", "V"],
        [[f"k{i % 3}", f"v{i % 3}"] for i in range(30)],
        name="runner",
    )


def _suite(variants=2):
    return build_injection_suite(
        _relation(), rates=[0.05, 0.1], variants=variants, seed=0
    )


class _SlowImputer(MeanModeImputer):
    def impute(self, relation, *, inplace=False):
        time.sleep(0.05)
        return super().impute(relation, inplace=inplace)


class _BrokenImputer:
    def impute(self, relation):
        raise RuntimeError("boom")


class _LazyImputer:
    """Imputes nothing — exercises the zero-imputed path."""

    def impute(self, relation):
        return ImputationResult(relation.copy(), ImputationReport())


class TestRunExperiment:
    def test_runs_every_variant(self):
        result = run_experiment("mean", MeanModeImputer, _suite())
        assert len(result.records) == 4
        assert result.rates() == [0.05, 0.1]
        assert all(record.ok for record in result.records)

    def test_mean_scores_aggregates(self):
        result = run_experiment("mean", MeanModeImputer, _suite())
        scores = result.mean_scores(0.05)
        assert scores.missing == sum(
            record.scores.missing for record in result.records_for(0.05)
        )

    def test_time_budget_marks_tl(self):
        result = run_experiment(
            "slow", _SlowImputer, _suite(variants=1),
            time_budget_seconds=0.001,
        )
        assert all(record.status == "TL" for record in result.records)
        assert result.status_at(0.05) == "TL"
        with pytest.raises(EvaluationError):
            result.mean_scores(0.05)

    def test_errors_are_contained(self):
        result = run_experiment("broken", _BrokenImputer, _suite(variants=1))
        assert all(record.status == "error" for record in result.records)
        assert "boom" in result.records[0].error

    def test_zero_imputations_allowed(self):
        result = run_experiment("lazy", _LazyImputer, _suite(variants=1))
        scores = result.mean_scores(0.05)
        assert scores.imputed == 0
        assert scores.recall == 0.0

    def test_track_memory_records_peak(self):
        result = run_experiment(
            "mean", MeanModeImputer, _suite(variants=1), track_memory=True
        )
        assert all(record.peak_bytes > 0 for record in result.records)

    def test_mean_elapsed_and_peak_helpers(self):
        result = run_experiment("mean", MeanModeImputer, _suite())
        assert result.mean_elapsed(0.05) >= 0
        assert result.max_peak_bytes(0.05) == 0  # memory not tracked


class TestCompareApproaches:
    def test_same_suite_for_all(self):
        outcomes = compare_approaches(
            {"mean": MeanModeImputer, "lazy": _LazyImputer}, _suite()
        )
        assert set(outcomes) == {"mean", "lazy"}
        mean_missing = outcomes["mean"].mean_scores(0.05).missing
        # lazy imputes nothing but sees the same injected cells
        lazy_records = outcomes["lazy"].records_for(0.05)
        assert sum(r.scores.missing for r in lazy_records) == mean_missing
