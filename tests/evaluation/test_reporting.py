"""Tests for experiment-result serialization."""

import pytest

from repro.evaluation.metrics import Scores
from repro.evaluation.reporting import (
    load_results,
    markdown_comparison,
    markdown_resource_table,
    result_from_dict,
    result_to_dict,
    save_results,
)
from repro.evaluation.runner import ExperimentResult, RunRecord
from repro.exceptions import EvaluationError


def _result(approach="renuver") -> ExperimentResult:
    result = ExperimentResult(approach=approach)
    result.records.append(
        RunRecord(
            rate=0.01,
            variant=0,
            scores=Scores(missing=10, imputed=8, correct=7),
            elapsed_seconds=1.25,
            peak_bytes=2048,
        )
    )
    result.records.append(
        RunRecord(
            rate=0.05,
            variant=0,
            scores=None,
            elapsed_seconds=60.0,
            peak_bytes=0,
            status="TL",
            error="budget",
        )
    )
    return result


class TestJsonRoundTrip:
    def test_dict_round_trip(self):
        original = _result()
        clone = result_from_dict(result_to_dict(original))
        assert clone.approach == original.approach
        assert len(clone.records) == 2
        assert clone.records[0].scores == original.records[0].scores
        assert clone.records[1].status == "TL"

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "results.json"
        save_results({"renuver": _result()}, path)
        loaded = load_results(path)
        assert set(loaded) == {"renuver"}
        assert loaded["renuver"].mean_scores(0.01).precision == (
            pytest.approx(7 / 8)
        )

    def test_malformed_data_rejected(self):
        with pytest.raises(EvaluationError):
            result_from_dict({"approach": "x"})  # no records

    def test_invalid_json_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json")
        with pytest.raises(EvaluationError):
            load_results(path)

    def test_non_object_top_level(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[]")
        with pytest.raises(EvaluationError):
            load_results(path)


class TestMarkdown:
    def test_comparison_table(self):
        table = markdown_comparison(
            {"renuver": _result()}, rates=[0.01, 0.05]
        )
        lines = table.splitlines()
        assert lines[0].startswith("| approach | P@1% | R@1% | F@1%")
        assert "0.875" in table   # precision at 1%
        assert "TL" in table      # budget-limited rate renders as status

    def test_comparison_needs_results(self):
        with pytest.raises(EvaluationError):
            markdown_comparison({}, rates=[0.01])

    def test_resource_table(self):
        table = markdown_resource_table(
            {"renuver": _result()}, rates=[0.01, 0.05]
        )
        assert "| renuver | 1% |" in table
        assert "2.00 KB" in table
        assert "| renuver | 5% | TL |" in table

    def test_custom_metrics(self):
        table = markdown_comparison(
            {"renuver": _result()}, rates=[0.01], metrics=["f1"]
        )
        assert "F@1%" in table
        assert "P@1%" not in table
