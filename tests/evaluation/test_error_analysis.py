"""Tests for the imputation error analysis."""

import pytest

from repro.dataset import MISSING, Relation
from repro.evaluation.error_analysis import (
    CellVerdict,
    analyze_errors,
)
from repro.evaluation.injection import inject_missing
from repro.evaluation.metrics import score_imputation
from repro.evaluation.rules import DatasetValidator, RegexRule


@pytest.fixture()
def scenario():
    """An injection with one of each verdict, hand-assembled.

    All four injected cells sit on the Phone column (deterministic via
    ``attributes=["Phone"]``), so each verdict can be forced exactly.
    """
    relation = Relation.from_rows(
        ["Phone", "City"],
        [
            ["213-848-6677", "LA"],
            ["310-456-0488", "SF"],
            ["412-624-4141", "NY"],
            ["617-555-0000", "BO"],
        ],
    )
    injection = inject_missing(
        relation, count=4, seed=3, attributes=["Phone"]
    )
    imputed = injection.relation.copy()
    cells = injection.cells
    truths = injection.ground_truth
    # exact / rule-accepted / wrong / leave one blank.
    imputed.set_value(*cells[0], truths[cells[0]])
    imputed.set_value(
        *cells[1], str(truths[cells[1]]).replace("-", "/")
    )
    imputed.set_value(*cells[2], "000-000-0000")
    validator = DatasetValidator(
        {"Phone": [RegexRule(r"(\d{3})\D*(\d{3})\D*(\d{4})")]}
    )
    return imputed, injection, validator, cells


class TestVerdicts:
    def test_all_four_verdicts(self, scenario):
        imputed, injection, validator, cells = scenario
        analysis = analyze_errors(imputed, injection, validator)
        verdicts = {
            (cell.row, cell.attribute): cell.verdict
            for cell in analysis.cells
        }
        assert verdicts[cells[0]] is CellVerdict.EXACT
        assert verdicts[cells[1]] is CellVerdict.RULE
        assert verdicts[cells[2]] is CellVerdict.WRONG
        assert verdicts[cells[3]] is CellVerdict.UNIMPUTED

    def test_counts_and_accessors(self, scenario):
        imputed, injection, validator, _ = scenario
        analysis = analyze_errors(imputed, injection, validator)
        assert len(analysis.cells) == 4
        assert analysis.count(CellVerdict.UNIMPUTED) == 1
        wrong = analysis.cells_with(CellVerdict.WRONG)
        assert all(c.verdict is CellVerdict.WRONG for c in wrong)

    def test_agreement_with_scores(self, scenario):
        imputed, injection, validator, _ = scenario
        analysis = analyze_errors(imputed, injection, validator)
        scores = score_imputation(imputed, injection, validator)
        correct = analysis.count(CellVerdict.EXACT) + analysis.count(
            CellVerdict.RULE
        )
        assert correct == scores.correct
        filled = correct + analysis.count(CellVerdict.WRONG)
        assert filled == scores.imputed

    def test_numeric_exactness_across_types(self):
        relation = Relation.from_rows(["N"], [[5], [7]])
        injection = inject_missing(relation, count=1, seed=0)
        imputed = injection.relation.copy()
        (row, attr), truth = next(iter(injection.ground_truth.items()))
        imputed.set_value(row, attr, float(truth))
        analysis = analyze_errors(imputed, injection)
        assert analysis.cells[0].verdict is CellVerdict.EXACT


class TestBreakdown:
    def test_per_attribute_metrics(self, scenario):
        imputed, injection, validator, _ = scenario
        analysis = analyze_errors(imputed, injection, validator)
        breakdowns = analysis.by_attribute()
        total = sum(b.total for b in breakdowns.values())
        assert total == 4
        for breakdown in breakdowns.values():
            assert 0 <= breakdown.precision <= 1
            assert 0 <= breakdown.recall <= 1
            assert breakdown.correct <= breakdown.total

    def test_summary_renders(self, scenario):
        imputed, injection, validator, _ = scenario
        analysis = analyze_errors(imputed, injection, validator)
        text = analysis.summary()
        assert "attribute" in text
        assert "totals:" in text

    def test_cell_error_str(self, scenario):
        imputed, injection, validator, _ = scenario
        analysis = analyze_errors(imputed, injection, validator)
        assert "imputed=" in str(analysis.cells[0])


class TestEndToEnd:
    def test_renuver_run_analysis(self, zip_city_relation):
        from repro import Renuver, make_rfd

        injection = inject_missing(zip_city_relation, count=3, seed=2)
        result = Renuver(
            [make_rfd({"Zip": 0}, ("City", 0)),
             make_rfd({"City": 0}, ("Zip", 0))]
        ).impute(injection.relation)
        analysis = analyze_errors(result.relation, injection)
        assert len(analysis.cells) == 3
        # Every verdict is one of the four categories.
        assert all(
            cell.verdict in CellVerdict for cell in analysis.cells
        )
