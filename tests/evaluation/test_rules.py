"""Tests for the rule-based validation framework (Section 6.1)."""

import pytest

from repro.dataset import MISSING
from repro.evaluation.rules import (
    DatasetValidator,
    DeltaRule,
    RegexRule,
    ValueSetRule,
    rule_from_spec,
)
from repro.exceptions import RuleFileError


class TestValueSetRule:
    def test_paper_new_york_example(self):
        rule = ValueSetRule([["new york", "new york city", "ny"]])
        assert rule.accepts("NY", "New York")
        assert rule.accepts("new york city", "ny")

    def test_rejects_outside_set(self):
        rule = ValueSetRule([["la", "los angeles"]])
        assert not rule.accepts("la", "san francisco")
        assert not rule.accepts("boston", "la")

    def test_multiple_sets(self):
        rule = ValueSetRule([["la", "los angeles"], ["sf", "san francisco"]])
        assert rule.accepts("sf", "San Francisco")
        assert not rule.accepts("la", "sf")

    def test_needs_two_aliases(self):
        with pytest.raises(RuleFileError):
            ValueSetRule([["only-one"]])
        with pytest.raises(RuleFileError):
            ValueSetRule([])

    def test_spec_round_trip(self):
        rule = ValueSetRule([["a", "b"]])
        assert rule_from_spec(rule.to_spec()).accepts("a", "b")


class TestRegexRule:
    PHONE = r"(\d{3})\D*(\d{3})\D*(\d{4})"

    def test_paper_phone_example(self):
        rule = RegexRule(self.PHONE)
        assert rule.accepts("213/848-6677", "213-848-6677")
        assert rule.accepts("2138486677", "213 848 6677")

    def test_different_digits_rejected(self):
        rule = RegexRule(self.PHONE)
        assert not rule.accepts("213/848-6677", "213/848-6678")

    def test_non_matching_value_rejected(self):
        rule = RegexRule(self.PHONE)
        assert not rule.accepts("call me", "213/848-6677")
        assert not rule.accepts("213/848-6677", "call me")

    def test_requires_capture_group(self):
        with pytest.raises(RuleFileError):
            RegexRule(r"\d+")

    def test_invalid_regex(self):
        with pytest.raises(RuleFileError):
            RegexRule(r"([unclosed")

    def test_spec_round_trip(self):
        rule = RegexRule(self.PHONE)
        clone = rule_from_spec(rule.to_spec())
        assert clone.accepts("213/848-6677", "213.848.6677")


class TestDeltaRule:
    def test_paper_horsepower_example(self):
        rule = DeltaRule(25)
        assert rule.accepts(150, 170)
        assert rule.accepts(170, 150)
        assert not rule.accepts(150, 176)

    def test_boundary_inclusive(self):
        assert DeltaRule(25).accepts(100, 125)

    def test_string_numbers(self):
        assert DeltaRule(1.5).accepts("2.0", "3.4")

    def test_non_numeric_rejected(self):
        assert not DeltaRule(5).accepts("abc", 3)

    def test_negative_delta_rejected(self):
        with pytest.raises(RuleFileError):
            DeltaRule(-1)

    def test_spec_round_trip(self):
        assert rule_from_spec(DeltaRule(2.5).to_spec()).accepts(1, 3)


class TestRuleFromSpec:
    def test_unknown_type(self):
        with pytest.raises(RuleFileError):
            rule_from_spec({"type": "magic"})

    def test_missing_field(self):
        with pytest.raises(RuleFileError):
            rule_from_spec({"type": "delta"})


class TestDatasetValidator:
    def test_exact_match_without_rules(self):
        validator = DatasetValidator()
        assert validator.is_correct("A", "x", "x")
        assert not validator.is_correct("A", "x", "y")

    def test_case_insensitive_fallback(self):
        validator = DatasetValidator()
        assert validator.is_correct("A", "Los Angeles", "los angeles")

    def test_numeric_equality_across_types(self):
        validator = DatasetValidator()
        assert validator.is_correct("A", 5, 5.0)
        assert validator.is_correct("A", "5", 5)

    def test_missing_never_correct(self):
        validator = DatasetValidator()
        assert not validator.is_correct("A", MISSING, "x")
        assert not validator.is_correct("A", "x", MISSING)

    def test_rules_consulted_per_attribute(self):
        validator = DatasetValidator({"HP": [DeltaRule(25)]})
        assert validator.is_correct("HP", 150, 170)
        assert not validator.is_correct("Other", 150, 170)

    def test_add_rule(self):
        validator = DatasetValidator()
        validator.add_rule("City", ValueSetRule([["la", "los angeles"]]))
        assert validator.is_correct("City", "LA", "Los Angeles")
        assert validator.attributes() == ["City"]

    def test_any_rule_suffices(self):
        validator = DatasetValidator(
            {"X": [DeltaRule(0), ValueSetRule([["a", "b"]])]}
        )
        assert validator.is_correct("X", "a", "b")

    def test_rules_for_returns_copy(self):
        validator = DatasetValidator({"X": [DeltaRule(1)]})
        validator.rules_for("X").clear()
        assert len(validator.rules_for("X")) == 1
