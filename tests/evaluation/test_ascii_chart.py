"""Tests for the ASCII chart renderer."""

import pytest

from repro.evaluation.ascii_chart import render_chart, render_metric_charts
from repro.evaluation.metrics import Scores
from repro.exceptions import EvaluationError


class TestRenderChart:
    def test_basic_structure(self):
        chart = render_chart(
            {"renuver": [0.2, 0.8], "derand": [0.5, 0.4]},
            ["1%", "5%"],
            title="recall",
            height=5,
        )
        lines = chart.splitlines()
        assert lines[0] == "recall"
        assert "A=renuver" in lines[-1] and "B=derand" in lines[-1]
        assert any("+" in line for line in lines)
        assert "1%" in chart and "5%" in chart

    def test_extreme_values_on_border_rows(self):
        chart = render_chart(
            {"s": [1.0, 0.0]}, ["lo", "hi"], height=4
        )
        lines = chart.splitlines()
        assert "A" in lines[0]      # y = 1.0 -> top row
        assert "A" in lines[3]      # y = 0.0 -> bottom row

    def test_values_clamped(self):
        chart = render_chart({"s": [2.0, -1.0]}, ["a", "b"], height=4)
        plot_area = "\n".join(chart.splitlines()[:-2])  # drop axis/legend
        assert plot_area.count("A") == 2

    def test_marker_order(self):
        chart = render_chart(
            {"first": [0.5], "second": [0.9]}, ["x"]
        )
        assert "A=first" in chart and "B=second" in chart

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(EvaluationError):
            render_chart({"s": [0.1]}, ["a", "b"])

    def test_empty_series_rejected(self):
        with pytest.raises(EvaluationError):
            render_chart({}, ["a"])

    def test_bad_geometry_rejected(self):
        with pytest.raises(EvaluationError):
            render_chart({"s": [0.5]}, ["a"], height=1)
        with pytest.raises(EvaluationError):
            render_chart({"s": [0.5]}, ["a"], y_min=1, y_max=0)


class TestRenderMetricCharts:
    def test_scores_table(self):
        table = {
            "renuver": {
                0.01: Scores(missing=10, imputed=8, correct=8),
                0.05: Scores(missing=10, imputed=9, correct=7),
            },
            "knn": {
                0.01: Scores(missing=10, imputed=10, correct=6),
                0.05: Scores(missing=10, imputed=10, correct=5),
            },
        }
        output = render_metric_charts(table, [0.01, 0.05])
        assert "precision vs missing rate" in output
        assert "recall vs missing rate" in output
        assert "f1 vs missing rate" in output
        assert "A=renuver" in output
