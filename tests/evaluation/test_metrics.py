"""Tests for precision/recall/F1 scoring."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dataset import MISSING, Relation
from repro.evaluation.injection import inject_missing
from repro.evaluation.metrics import Scores, mean_scores, score_imputation
from repro.evaluation.rules import DatasetValidator, DeltaRule
from repro.exceptions import EvaluationError


class TestScores:
    def test_paper_definitions(self):
        scores = Scores(missing=10, imputed=8, correct=6)
        assert scores.precision == 0.75
        assert scores.recall == 0.6
        assert scores.f1 == pytest.approx(
            2 * 0.75 * 0.6 / (0.75 + 0.6)
        )
        assert scores.fill_rate == 0.8

    def test_zero_imputed(self):
        scores = Scores(missing=5, imputed=0, correct=0)
        assert scores.precision == 0.0
        assert scores.recall == 0.0
        assert scores.f1 == 0.0

    def test_validation(self):
        with pytest.raises(EvaluationError):
            Scores(missing=1, imputed=1, correct=2)
        with pytest.raises(EvaluationError):
            Scores(missing=-1, imputed=0, correct=0)

    @given(
        missing=st.integers(min_value=0, max_value=100),
        imputed=st.integers(min_value=0, max_value=100),
        correct=st.integers(min_value=0, max_value=100),
    )
    def test_property_metric_bounds(self, missing, imputed, correct):
        correct = min(correct, imputed)
        scores = Scores(missing=missing, imputed=imputed, correct=correct)
        assert 0.0 <= scores.precision <= 1.0
        assert scores.recall >= 0.0
        assert scores.f1 <= 1.0 or scores.recall > 1.0
        # F1 is bounded by both components when recall is a true rate.
        if missing >= correct:
            assert scores.f1 <= 1.0

    def test_str(self):
        assert "P=0.750" in str(Scores(missing=10, imputed=8, correct=6))


class TestScoreImputation:
    def test_counts_correct_and_wrong(self):
        relation = Relation.from_rows(
            ["A", "B"], [["x", 1], ["y", 2], ["z", 3]]
        )
        injection = inject_missing(relation, count=3, seed=1)
        imputed = injection.relation.copy()
        cells = injection.cells
        # Fill the first correctly, the second wrongly, leave the third.
        row0, attr0 = cells[0]
        imputed.set_value(row0, attr0, injection.ground_truth[cells[0]])
        row1, attr1 = cells[1]
        wrong = "WRONG" if attr1 == "A" else 999
        imputed.set_value(row1, attr1, wrong)
        scores = score_imputation(imputed, injection)
        assert scores.missing == 3
        assert scores.imputed == 2
        assert scores.correct == 1

    def test_validator_changes_verdict(self):
        relation = Relation.from_rows(["N"], [[100], [200], [300]])
        injection = inject_missing(relation, count=1, seed=0)
        imputed = injection.relation.copy()
        (row, attribute), truth = next(iter(injection.ground_truth.items()))
        imputed.set_value(row, attribute, truth + 20)
        strict = score_imputation(imputed, injection)
        lenient = score_imputation(
            imputed, injection, DatasetValidator({"N": [DeltaRule(25)]})
        )
        assert strict.correct == 0
        assert lenient.correct == 1

    def test_unimputed_cells_not_counted(self):
        relation = Relation.from_rows(["A"], [["x"], ["y"]])
        injection = inject_missing(relation, count=2, seed=0)
        scores = score_imputation(injection.relation, injection)
        assert scores.imputed == 0
        assert scores.missing == 2


class TestMeanScores:
    def test_weighted_aggregation(self):
        combined = mean_scores(
            [
                Scores(missing=10, imputed=10, correct=10),
                Scores(missing=10, imputed=0, correct=0),
            ]
        )
        assert combined.missing == 20
        assert combined.recall == 0.5

    def test_empty_raises(self):
        with pytest.raises(EvaluationError):
            mean_scores([])
