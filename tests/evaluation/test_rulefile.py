"""Tests for rule-file persistence."""

import json

import pytest

from repro.evaluation.rulefile import (
    load_rule_file,
    save_rule_file,
    validator_from_dict,
    validator_to_dict,
)
from repro.evaluation.rules import DatasetValidator, DeltaRule, RegexRule
from repro.exceptions import RuleFileError

SAMPLE = {
    "dataset": "restaurant",
    "attributes": {
        "Phone": {
            "rules": [
                {"type": "regex",
                 "pattern": r"(\d{3})\D*(\d{3})\D*(\d{4})"}
            ]
        },
        "City": {
            "rules": [
                {"type": "value_set", "sets": [["la", "los angeles"]]}
            ]
        },
        "Horsepower": {"rules": [{"type": "delta", "delta": 25}]},
    },
}


class TestFromDict:
    def test_builds_working_validator(self):
        validator = validator_from_dict(SAMPLE)
        assert validator.is_correct("Phone", "213/848-6677", "213-848-6677")
        assert validator.is_correct("City", "LA", "Los Angeles")
        assert validator.is_correct("Horsepower", 150, 170)

    def test_missing_attributes_key(self):
        with pytest.raises(RuleFileError):
            validator_from_dict({})

    def test_bad_section_type(self):
        with pytest.raises(RuleFileError):
            validator_from_dict({"attributes": {"A": ["not-a-mapping"]}})

    def test_bad_rules_type(self):
        with pytest.raises(RuleFileError):
            validator_from_dict({"attributes": {"A": {"rules": "nope"}}})


class TestRoundTrip:
    def test_dict_round_trip(self):
        validator = validator_from_dict(SAMPLE)
        data = validator_to_dict(validator, dataset="restaurant")
        clone = validator_from_dict(data)
        assert clone.is_correct("Phone", "2138486677", "213/848-6677")
        assert data["dataset"] == "restaurant"

    def test_file_round_trip(self, tmp_path):
        validator = DatasetValidator(
            {"HP": [DeltaRule(25)], "Phone": [RegexRule(r"(\d+)")]}
        )
        path = tmp_path / "rules.json"
        save_rule_file(validator, path, dataset="cars")
        loaded = load_rule_file(path)
        assert loaded.is_correct("HP", 100, 120)
        assert loaded.attributes() == ["HP", "Phone"]

    def test_saved_file_is_valid_json(self, tmp_path):
        path = tmp_path / "rules.json"
        save_rule_file(DatasetValidator({"A": [DeltaRule(1)]}), path)
        data = json.loads(path.read_text())
        assert "attributes" in data


class TestLoadErrors:
    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(RuleFileError):
            load_rule_file(path)

    def test_non_object_top_level(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2]")
        with pytest.raises(RuleFileError):
            load_rule_file(path)
