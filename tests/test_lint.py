"""Repo lint: no bare ``print`` calls outside the sanctioned modules.

Library code must log through :mod:`repro.telemetry.logs` so embedders
control verbosity; only the CLI and the evaluation report renderer talk
to stdout/stderr directly.  The check walks the AST (not grep) so
``print`` appearing in docstrings or comments does not trip it.
"""

import ast
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: Modules whose job is writing to the console.
ALLOWED = {
    SRC / "cli.py",
    SRC / "evaluation" / "reporting.py",
}


def bare_print_calls(path):
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    return [
        node.lineno
        for node in ast.walk(tree)
        if isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "print"
    ]


def test_no_bare_prints_outside_cli_and_reporting():
    offenders = {}
    for path in sorted(SRC.rglob("*.py")):
        if path in ALLOWED:
            continue
        lines = bare_print_calls(path)
        if lines:
            offenders[str(path.relative_to(SRC))] = lines
    assert not offenders, (
        f"bare print() calls found (use repro.telemetry.logs instead): "
        f"{offenders}"
    )


def test_the_allowed_modules_exist():
    # Guard the allowlist against renames silently voiding the lint.
    for path in ALLOWED:
        assert path.exists(), f"allowlisted module moved: {path}"
