"""Tests for the synthetic dataset generators and registry."""

import pytest

from repro.dataset import AttributeType, is_missing
from repro.datasets import (
    dataset_info,
    dataset_names,
    dataset_validator,
    generate_bridges,
    generate_cars,
    generate_glass,
    generate_physician,
    generate_restaurant,
    load_dataset,
)
from repro.exceptions import DataError


class TestRegistry:
    def test_names(self):
        assert dataset_names() == [
            "bridges", "cars", "glass", "physician", "restaurant"
        ]

    def test_unknown_dataset(self):
        with pytest.raises(DataError):
            load_dataset("nope")

    def test_paper_dimensions(self):
        # Table 3 / Table 5 of the paper.
        expectations = {
            "restaurant": (864, 6),
            "cars": (406, 9),
            "glass": (214, 11),
            "bridges": (108, 13),
            "physician": (2072, 18),
        }
        for name, (tuples, attributes) in expectations.items():
            info = dataset_info(name)
            assert (info.paper_tuples, info.paper_attributes) == (
                tuples, attributes
            )
            relation = load_dataset(name)
            assert relation.n_tuples == tuples
            assert relation.n_attributes == attributes

    def test_custom_size(self):
        assert load_dataset("physician", n_tuples=104).n_tuples == 104

    def test_validators_exist(self):
        for name in dataset_names():
            validator = dataset_validator(name)
            assert validator.attributes()


class TestDeterminism:
    @pytest.mark.parametrize(
        "name", ["restaurant", "cars", "glass", "bridges", "physician"]
    )
    def test_same_seed_same_data(self, name):
        first = load_dataset(name, seed=5)
        second = load_dataset(name, seed=5)
        assert first.equals(second)

    def test_different_seed_different_data(self):
        assert not load_dataset("cars", seed=1).equals(
            load_dataset("cars", seed=2)
        )


class TestRestaurant:
    def test_no_missing_values(self):
        assert generate_restaurant(200).count_missing() == 0

    def test_phone_area_code_function_of_city(self):
        from repro.datasets.vocab import CITY_ALIASES, CITY_AREA_CODES

        relation = generate_restaurant(300, seed=1)
        alias_to_canonical = {
            alias: canonical
            for canonical, aliases in CITY_ALIASES.items()
            for alias in aliases
        }
        for row in range(relation.n_tuples):
            city = alias_to_canonical[relation.value(row, "City")]
            assert relation.value(row, "Phone").startswith(
                CITY_AREA_CODES[city]
            )

    def test_type_determines_class(self):
        from repro.datasets.vocab import CUISINE_CLASSES

        relation = generate_restaurant(300, seed=2)
        for row in range(relation.n_tuples):
            cuisine = relation.value(row, "Type")
            assert relation.value(row, "Class") == CUISINE_CLASSES[cuisine]

    def test_contains_duplicates(self):
        relation = generate_restaurant(400, seed=0)
        phones = [
            relation.value(row, "Phone").replace("/", "-").replace(" ", "-")
            for row in range(relation.n_tuples)
        ]
        assert len(set(phones)) < len(phones)


class TestCars:
    def test_types(self):
        relation = generate_cars(100)
        assert relation.attribute("Mpg").type is AttributeType.FLOAT
        assert relation.attribute("Origin").type is AttributeType.INTEGER

    def test_brand_determines_origin(self):
        from repro.datasets.vocab import CAR_BRANDS

        relation = generate_cars(200, seed=3)
        for row in range(relation.n_tuples):
            brand = relation.value(row, "Name").split(" ")[0]
            assert relation.value(row, "Origin") == CAR_BRANDS[brand][0]

    def test_physical_plausibility(self):
        relation = generate_cars(200, seed=4)
        for row in range(relation.n_tuples):
            assert 5 < relation.value(row, "Mpg") < 60
            assert relation.value(row, "Weight") > 1000
            assert relation.value(row, "Cylinders") in (3, 4, 5, 6, 8)


class TestGlass:
    def test_id_is_key(self):
        relation = generate_glass()
        ids = relation.column("Id")
        assert len(set(ids)) == len(ids)

    def test_types_in_original_range(self):
        relation = generate_glass()
        assert set(relation.column("Type")) <= {1, 2, 3, 5, 6, 7}

    def test_oxides_non_negative(self):
        relation = generate_glass(seed=2)
        for oxide in ("Na", "Mg", "Al", "Si", "K", "Ca", "Ba", "Fe"):
            assert all(value >= 0 for value in relation.column(oxide))

    def test_ri_near_physical_value(self):
        relation = generate_glass(seed=3)
        assert all(1.50 < value < 1.54 for value in relation.column("RI"))


class TestBridges:
    def test_material_matches_type_vocab(self):
        from repro.datasets.vocab import BRIDGE_TYPES_BY_MATERIAL

        relation = generate_bridges(seed=1)
        for row in range(relation.n_tuples):
            material = relation.value(row, "Material")
            assert relation.value(row, "Type") in (
                BRIDGE_TYPES_BY_MATERIAL[material]
            )

    def test_span_length_consistent(self):
        relation = generate_bridges(seed=2)
        for row in range(relation.n_tuples):
            span = relation.value(row, "Span")
            length = relation.value(row, "Length")
            if span == "SHORT":
                assert length <= 1400
            elif span == "LONG":
                assert length >= 2000

    def test_identifiers_unique(self):
        relation = generate_bridges()
        identifiers = relation.column("Identif")
        assert len(set(identifiers)) == len(identifiers)


class TestPhysician:
    def test_zip_determines_city_and_state(self):
        relation = generate_physician(500, seed=1)
        zip_to_location: dict = {}
        for row in range(relation.n_tuples):
            zip_code = relation.value(row, "Zip")
            location = (
                relation.value(row, "City"), relation.value(row, "State")
            )
            assert zip_to_location.setdefault(zip_code, location) == location

    def test_specialty_determines_credential(self):
        from repro.datasets.vocab import PHYSICIAN_SPECIALTIES

        relation = generate_physician(300, seed=2)
        for row in range(relation.n_tuples):
            specialty = relation.value(row, "Specialty")
            assert relation.value(row, "Credential") == (
                PHYSICIAN_SPECIALTIES[specialty]
            )

    def test_npi_is_key(self):
        relation = generate_physician(300)
        npis = relation.column("Npi")
        assert len(set(npis)) == len(npis)

    def test_boolean_attribute(self):
        relation = generate_physician(100)
        assert relation.attribute("AcceptsMedicare").type is (
            AttributeType.BOOLEAN
        )
        assert not any(
            is_missing(value)
            for value in relation.column("AcceptsMedicare")
        )

    def test_scales_to_paper_sizes(self):
        for size in (104, 208, 1036):
            assert generate_physician(size).n_tuples == size
