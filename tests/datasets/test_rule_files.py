"""The shipped rule files (rules/*.json) stay in sync with the built-in
validators and actually validate the datasets' value variations."""

from pathlib import Path

import pytest

from repro.datasets import dataset_names, dataset_validator
from repro.evaluation import load_rule_file, validator_to_dict

RULES_DIR = Path(__file__).resolve().parents[2] / "rules"


@pytest.mark.parametrize("name", dataset_names())
class TestShippedRuleFiles:
    def test_file_exists_and_loads(self, name):
        path = RULES_DIR / f"{name}.json"
        assert path.exists(), f"missing rule file {path}"
        validator = load_rule_file(path)
        assert validator.attributes()

    def test_matches_builtin_validator(self, name):
        shipped = load_rule_file(RULES_DIR / f"{name}.json")
        builtin = dataset_validator(name)
        assert validator_to_dict(shipped) == validator_to_dict(builtin)


class TestRuleSemantics:
    def test_restaurant_phone_separators(self):
        validator = load_rule_file(RULES_DIR / "restaurant.json")
        assert validator.is_correct(
            "Phone", "310/456-0488", "310-456-0488"
        )
        assert not validator.is_correct(
            "Phone", "310/456-0488", "310-456-0489"
        )

    def test_restaurant_city_aliases(self):
        validator = load_rule_file(RULES_DIR / "restaurant.json")
        assert validator.is_correct("City", "LA", "Los Angeles")
        assert not validator.is_correct("City", "LA", "Malibu")

    def test_cars_horsepower_delta_from_paper(self):
        validator = load_rule_file(RULES_DIR / "cars.json")
        assert validator.is_correct("Horsepower", 150, 170)
        assert not validator.is_correct("Horsepower", 150, 180)

    def test_glass_ri_tight_delta(self):
        validator = load_rule_file(RULES_DIR / "glass.json")
        assert validator.is_correct("RI", 1.5180, 1.5195)
        assert not validator.is_correct("RI", 1.5180, 1.5250)

    def test_physician_phone_regex(self):
        validator = load_rule_file(RULES_DIR / "physician.json")
        assert validator.is_correct(
            "Phone", "412-624-4141", "412.624.4141"
        )
