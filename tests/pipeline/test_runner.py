"""Pipeline runner lifecycle: FULL, INCR, degradation, noop, CLI."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.discovery import DiscoveryConfig
from repro.exceptions import PipelineError
from repro.pipeline import Pipeline, PipelineConfig
from repro.pipeline.ingest import combined_csv_text, scan_ingest

pytestmark = pytest.mark.pipeline

CSV1 = (
    "Name,City,Phone\n"
    "ann,rome,111\n"
    "ann,rome,111\n"
    "bob,oslo,222\n"
    "bob,oslo,\n"
    "cat,lima,333\n"
    "cat,lima,333\n"
)
CSV2 = (
    "Name,City,Phone\n"
    "dan,kiev,444\n"
    "dan,kiev,\n"
    "edd,bonn,\n"
)
CSV3 = (
    "Name,City,Phone\n"
    "fay,oslo,555\n"
    "fay,oslo,\n"
)

CONFIG = PipelineConfig(
    discovery=DiscoveryConfig(threshold_limit=1, max_lhs_size=1)
)


@pytest.fixture()
def ingest(tmp_path):
    directory = tmp_path / "ingest"
    directory.mkdir()
    (directory / "b1.csv").write_text(CSV1)
    return directory


@pytest.fixture()
def root(tmp_path):
    return tmp_path / "root"


def pipeline(root, ingest, config=CONFIG):
    return Pipeline(root, ingest, config)


class TestFullRuns:
    def test_bootstrap_full_run_commits_store(self, root, ingest):
        result = pipeline(root, ingest).run()
        assert result.mode == "full"
        assert result.outcome == "committed"
        assert result.store_version == 1
        assert result.discovered is True
        assert result.degraded_reason is None
        assert result.cells_imputed == 1  # bob's phone from his twin
        store = root / "store" / "imputed-000001.csv"
        assert "bob,oslo,222" in store.read_text()

    def test_run_artifacts_are_complete(self, root, ingest):
        result = pipeline(root, ingest).run()
        rundir = result.run_dir
        for name in (
            "journal.jsonl", "delta.csv", "report.json",
            "trace.jsonl", "metrics.prom", "MANIFEST.json",
        ):
            assert (rundir / name).exists(), name
        report = json.loads((rundir / "report.json").read_text())
        assert report["mode"] == "full"
        assert report["files"] == ["b1.csv"]
        metrics = (rundir / "metrics.prom").read_text()
        assert "renuver_pipeline_runs_total" in metrics
        trace = (rundir / "trace.jsonl").read_text()
        assert "pipeline.run" in trace and "pipeline.stage" in trace

    def test_noop_when_watermark_is_current(self, root, ingest):
        pipeline(root, ingest).run()
        again = pipeline(root, ingest).run()
        assert again.outcome == "noop"
        assert again.run_id is None

    def test_running_run_refuses_a_second_run(self, root, ingest):
        p = pipeline(root, ingest)
        p.run()
        # Fake a crashed in-flight run in the envelope.
        from dataclasses import replace

        state = p.state_store.load()
        crashed = replace(
            state.history[-1], status="running", run_id="000009-full"
        )
        p.state_store.save(replace(state, run=crashed))
        (ingest / "b2.csv").write_text(CSV2)
        with pytest.raises(PipelineError, match="use `pipeline resume`"):
            pipeline(root, ingest).run()


class TestIncrementalRuns:
    def test_second_run_is_incremental_with_zero_rediscovery(
        self, root, ingest
    ):
        pipeline(root, ingest).run()
        (ingest / "b2.csv").write_text(CSV2)
        p = pipeline(root, ingest)
        result = p.run()
        assert result.mode == "incr"
        assert result.discovered is False  # the warm path: no discovery
        assert result.store_version == 2
        assert result.rows_ingested == 3
        assert result.cells_imputed == 1   # dan's phone; edd has no donor
        assert result.cells_unresolved == 1
        store = (root / "store" / "imputed-000002.csv").read_text()
        assert "dan,kiev,444\ndan,kiev,444" in store

    def test_delta_csv_holds_only_new_rows(self, root, ingest):
        pipeline(root, ingest).run()
        (ingest / "b2.csv").write_text(CSV2)
        result = pipeline(root, ingest).run()
        delta = (result.run_dir / "delta.csv").read_text()
        assert delta.count("\n") == 4  # header + the 3 new rows
        assert "ann,rome" not in delta
        assert "dan,kiev,444" in delta

    def test_unresolved_ledger_is_replayed_not_reimputed(
        self, root, ingest
    ):
        pipeline(root, ingest).run()
        (ingest / "b2.csv").write_text(CSV2)
        pipeline(root, ingest).run()
        (ingest / "b3.csv").write_text(CSV3)
        result = pipeline(root, ingest).run()
        report = json.loads(
            (result.run_dir / "report.json").read_text()
        )
        # edd's unresolvable phone came back via journal replay, not a
        # fresh (and pointless) donor scan.
        assert report["replayed"] == 1
        assert result.cells_unresolved == 1

    def test_store_pruning_keeps_configured_versions(self, root, ingest):
        pipeline(root, ingest).run()
        (ingest / "b2.csv").write_text(CSV2)
        pipeline(root, ingest).run()
        (ingest / "b3.csv").write_text(CSV3)
        pipeline(root, ingest).run()
        kept = sorted(
            entry.name for entry in (root / "store").glob("*.csv")
        )
        assert kept == ["imputed-000002.csv", "imputed-000003.csv"]

    def test_watermark_covers_all_files(self, root, ingest):
        pipeline(root, ingest).run()
        (ingest / "b2.csv").write_text(CSV2)
        pipeline(root, ingest).run()
        status = pipeline(root, ingest).status()
        assert status["watermark"]["files"] == ["b1.csv", "b2.csv"]
        assert status["watermark"]["rows"] == 9


class TestDegradation:
    def test_tampered_store_degrades_to_full(self, root, ingest):
        pipeline(root, ingest).run()
        store = root / "store" / "imputed-000001.csv"
        store.write_text(store.read_text().replace("rome", "doom"))
        (ingest / "b2.csv").write_text(CSV2)
        result = pipeline(root, ingest).run()
        assert result.mode == "full"
        assert result.degraded_reason == "store_integrity"
        assert result.outcome == "committed"

    def test_deleted_watermarked_file_degrades_to_full(
        self, root, ingest
    ):
        pipeline(root, ingest).run()
        (ingest / "b2.csv").write_text(CSV2)
        (ingest / "b1.csv").unlink()  # append-only contract broken
        result = pipeline(root, ingest).run()
        assert result.mode == "full"
        assert result.degraded_reason == "watermark_mismatch"
        # The store is rebuilt from what actually exists.
        store = (root / "store" / "imputed-000002.csv").read_text()
        assert "ann,rome" not in store

    def test_evicted_artifact_cache_degrades_to_full(self, root, ingest):
        import shutil

        pipeline(root, ingest).run()
        shutil.rmtree(root / "artifacts")
        (ingest / "b2.csv").write_text(CSV2)
        result = pipeline(root, ingest).run()
        assert result.mode == "full"
        assert result.degraded_reason == "discovery_cache_miss"

    def test_degradations_are_counted(self, root, ingest):
        pipeline(root, ingest).run()
        store = root / "store" / "imputed-000001.csv"
        store.write_text("Name,City,Phone\nx,y,1\n")
        (ingest / "b2.csv").write_text(CSV2)
        p = pipeline(root, ingest)
        p.run()
        families = {
            family.name: family
            for family in p.telemetry.metrics.families()
        }
        counter = families["renuver_pipeline_degradations_total"]
        labels = [dict(key) for key in counter.instruments]
        assert {"reason": "store_integrity"} in labels

    def test_forced_full_mode_is_not_a_degradation(self, root, ingest):
        full_config = PipelineConfig(
            discovery=CONFIG.discovery, mode="full"
        )
        pipeline(root, ingest, full_config).run()
        (ingest / "b2.csv").write_text(CSV2)
        result = pipeline(root, ingest, full_config).run()
        assert result.mode == "full"
        assert result.degraded_reason is None


class TestIngestContract:
    def test_scan_is_sorted_and_csv_only(self, tmp_path):
        directory = tmp_path / "in"
        directory.mkdir()
        (directory / "z.csv").write_text("A\n1\n")
        (directory / "a.csv").write_text("A\n2\n")
        (directory / "notes.txt").write_text("ignored")
        assert scan_ingest(directory) == ["a.csv", "z.csv"]

    def test_header_mismatch_is_located(self, tmp_path):
        directory = tmp_path / "in"
        directory.mkdir()
        (directory / "a.csv").write_text("A,B\n1,2\n")
        (directory / "b.csv").write_text("A,C\n3,4\n")
        with pytest.raises(PipelineError, match="b.csv"):
            combined_csv_text(directory, ["a.csv", "b.csv"])

    def test_missing_ingest_directory_is_located(self, tmp_path):
        with pytest.raises(PipelineError, match="does not exist"):
            scan_ingest(tmp_path / "nope")


class TestCli:
    def _args(self, action, root, ingest):
        return [
            "pipeline", action, "--root", str(root),
            "--ingest", str(ingest), "--limit", "1",
        ]

    def test_run_resume_status_round_trip(
        self, root, ingest, capsys
    ):
        assert main(self._args("run", root, ingest)) == 0
        assert main(self._args("resume", root, ingest)) == 0  # noop
        assert main(self._args("status", root, ingest)) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["runs_started"] == 1
        assert status["in_flight"] is None
        assert status["store"]["version"] == 1

    def test_run_requires_ingest(self, root):
        assert main(["pipeline", "run", "--root", str(root)]) == 2

    def test_pipeline_errors_exit_9(self, root, tmp_path, capsys):
        code = main([
            "pipeline", "run", "--root", str(root),
            "--ingest", str(tmp_path / "missing"),
        ])
        assert code == 9
        assert "error:" in capsys.readouterr().err
