"""Run-state envelopes and the pipeline lease."""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import LeaseError, StateError
from repro.pipeline.state import (
    Lease,
    PipelineState,
    RunRecord,
    RunStateStore,
    StoreVersion,
    Watermark,
)
from repro.telemetry import Telemetry

pytestmark = pytest.mark.pipeline

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


# ----------------------------------------------------------------------
# Envelope round trip (hypothesis)
# ----------------------------------------------------------------------
names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789-._", min_size=1,
    max_size=20,
)

watermarks = st.builds(
    Watermark,
    files=st.lists(names, max_size=5).map(tuple),
    rows=st.integers(min_value=0, max_value=10**9),
)

store_versions = st.builds(
    StoreVersion,
    version=st.integers(min_value=1, max_value=10**6),
    filename=names,
    fingerprint=st.text(
        alphabet="0123456789abcdef", min_size=8, max_size=64
    ),
    rows=st.integers(min_value=0, max_value=10**9),
)

cell_records = st.fixed_dictionaries({
    "type": st.just("cell"),
    "row": st.integers(min_value=0, max_value=10**6),
    "attribute": names,
    "status": st.sampled_from(["no_candidates", "all_rejected", "skipped"]),
    "value": st.none(),
    "candidates_tried": st.integers(min_value=0, max_value=50),
})

run_records = st.builds(
    RunRecord,
    run_id=names,
    mode=st.sampled_from(["full", "incr"]),
    status=st.sampled_from(["running", "committed", "failed"]),
    files=st.lists(names, max_size=5).map(tuple),
    new_files=st.lists(names, max_size=3).map(tuple),
    base_version=st.none() | st.integers(min_value=1, max_value=100),
    requested_mode=st.sampled_from(["auto", "full", "incr"]),
    degraded_reason=st.none() | names,
    started_unix=st.floats(
        min_value=0, max_value=2e9, allow_nan=False
    ),
    finished_unix=st.none() | st.floats(
        min_value=0, max_value=2e9, allow_nan=False
    ),
    rows_ingested=st.integers(min_value=0, max_value=10**6),
    cells_imputed=st.integers(min_value=0, max_value=10**6),
)

pipeline_states = st.builds(
    PipelineState,
    runs_started=st.integers(min_value=0, max_value=10**6),
    watermark=watermarks,
    store=st.none() | store_versions,
    run=st.none() | run_records,
    history=st.lists(run_records, max_size=3).map(tuple),
    unresolved=st.lists(cell_records, max_size=3).map(tuple),
)


class TestEnvelopeRoundTrip:
    @given(state=pipeline_states)
    @settings(max_examples=60, deadline=None)
    def test_payload_round_trip_is_identity(self, state):
        assert PipelineState.from_payload(state.to_payload()) == state

    @given(state=pipeline_states)
    @settings(max_examples=20, deadline=None)
    def test_disk_round_trip_is_identity(self, state, tmp_path_factory):
        root = tmp_path_factory.mktemp("envelope")
        store = RunStateStore(root)
        store.save(state)
        assert RunStateStore(root).load() == state

    def test_payload_is_json_serializable(self):
        state = PipelineState(
            runs_started=2,
            watermark=Watermark(files=("a.csv",), rows=10),
            store=StoreVersion(1, "imputed-000001.csv", "ab" * 32, 10),
        )
        json.dumps(state.to_payload())  # must not raise

    def test_invalid_payloads_raise_state_error(self):
        bad = [
            "not-an-object",
            {"runs_started": -1},
            {"watermark": {"files": "nope"}},
            {"store": {"version": 0}},
            {"run": {"run_id": "x", "mode": "sideways"}},
            {"unresolved": [{"type": "header"}]},
        ]
        for payload in bad:
            with pytest.raises(StateError):
                PipelineState.from_payload(payload)


class TestRunStateStore:
    def test_fresh_root_loads_empty_state(self, tmp_path):
        assert RunStateStore(tmp_path).load() == PipelineState()

    def test_envelope_seq_increases(self, tmp_path):
        store = RunStateStore(tmp_path)
        assert store.save(PipelineState()) == 1
        assert store.save(PipelineState(runs_started=1)) == 2

    def test_truncated_state_recovers_from_prev(self, tmp_path):
        telemetry = Telemetry()
        store = RunStateStore(tmp_path, telemetry=telemetry)
        first = PipelineState(runs_started=1)
        second = PipelineState(runs_started=2)
        store.save(first)
        store.save(second)
        # Tear the current envelope mid-file, as a crash would.
        state_file = tmp_path / "state.json"
        text = state_file.read_text()
        state_file.write_text(text[: len(text) // 2])
        recovered = RunStateStore(tmp_path, telemetry=telemetry).load()
        assert recovered == first  # one committed save's rollback
        families = {
            f.name: f for f in telemetry.metrics.families()
        }
        counter = families["renuver_pipeline_state_recoveries_total"]
        assert sum(i.value for i in counter.instruments.values()) == 1

    def test_checksum_mismatch_is_corruption(self, tmp_path):
        store = RunStateStore(tmp_path)
        store.save(PipelineState(runs_started=1))
        store.save(PipelineState(runs_started=2))
        state_file = tmp_path / "state.json"
        envelope = json.loads(state_file.read_text())
        envelope["payload"]["runs_started"] = 99  # silent bit flip
        state_file.write_text(json.dumps(envelope))
        assert RunStateStore(tmp_path).load().runs_started == 1

    def test_both_envelopes_corrupt_raises(self, tmp_path):
        store = RunStateStore(tmp_path)
        store.save(PipelineState())
        store.save(PipelineState(runs_started=1))
        (tmp_path / "state.json").write_text("{torn")
        (tmp_path / "state.json.prev").write_text("{also torn")
        with pytest.raises(StateError, match="both unreadable"):
            RunStateStore(tmp_path).load()


# ----------------------------------------------------------------------
# The lease
# ----------------------------------------------------------------------
class TestLease:
    def test_acquire_release_cycle(self, tmp_path):
        lock = tmp_path / "pipeline.lock"
        lease = Lease(lock, owner="one")
        lease.acquire()
        assert lock.exists()
        assert lease.peek()["owner"] == "one"
        lease.release()
        assert not lock.exists()

    def test_live_lease_refuses_second_holder(self, tmp_path):
        lock = tmp_path / "pipeline.lock"
        first = Lease(lock, owner="one")
        first.acquire()
        try:
            with pytest.raises(LeaseError, match="held by one"):
                Lease(lock, owner="two").acquire()
        finally:
            first.release()

    def test_dead_pid_lease_is_taken_over(self, tmp_path):
        lock = tmp_path / "pipeline.lock"
        import socket

        lock.write_text(json.dumps({
            "owner": "crashed", "pid": _exited_pid(),
            "host": socket.gethostname(),
            "acquired_unix": time.time(), "ttl_seconds": 3600.0,
            "token": "deadbeef",
        }))
        taker = Lease(lock, owner="two", ttl_seconds=3600.0)
        taker.acquire()
        try:
            assert taker.peek()["owner"] == "two"
        finally:
            taker.release()

    def test_corrupt_lock_file_is_stale(self, tmp_path):
        lock = tmp_path / "pipeline.lock"
        lock.write_text("{torn write")
        lease = Lease(lock, owner="two")
        lease.acquire()
        try:
            assert lease.peek()["owner"] == "two"
        finally:
            lease.release()

    def test_expired_heartbeat_is_stale(self, tmp_path):
        lock = tmp_path / "pipeline.lock"
        holder = Lease(lock, owner="remote", ttl_seconds=0.05)
        holder.acquire()
        time.sleep(0.2)  # let the (unrenewed) heartbeat expire
        # Fake a remote host so pid liveness cannot decide it.
        payload = json.loads(lock.read_text())
        payload["host"] = "elsewhere.example"
        lock.write_text(json.dumps(payload))
        os.utime(lock, (time.time() - 10, time.time() - 10))
        taker = Lease(lock, owner="two", ttl_seconds=0.05)
        taker.acquire()
        try:
            assert taker.peek()["owner"] == "two"
        finally:
            taker.release()

    def test_heartbeat_keeps_short_ttl_lease_alive(self, tmp_path):
        lock = tmp_path / "pipeline.lock"
        holder = Lease(lock, owner="busy", ttl_seconds=0.3)
        with holder.held():
            time.sleep(0.8)  # several TTLs; heartbeat must renew
            with pytest.raises(LeaseError, match="held by busy"):
                Lease(lock, owner="two", ttl_seconds=0.3).acquire()

    def test_release_leaves_taken_over_lock_alone(self, tmp_path):
        lock = tmp_path / "pipeline.lock"
        import socket

        lock.write_text(json.dumps({
            "owner": "crashed", "pid": _exited_pid(),
            "host": socket.gethostname(),
            "acquired_unix": time.time(), "ttl_seconds": 3600.0,
            "token": "deadbeef",
        }))
        loser = Lease(lock, owner="loser")
        loser.acquire()
        winner_payload = loser.peek()
        # Simulate the old holder's belated release: token mismatch
        # means the file stays.
        stale = Lease(lock, owner="crashed")
        stale._held = True
        stale.release()
        assert lock.exists()
        assert loser.peek() == winner_payload
        loser.release()


def _exited_pid() -> int:
    """The pid of a process guaranteed to have exited."""
    probe = subprocess.Popen([sys.executable, "-c", "pass"])
    probe.wait()
    return probe.pid


_CONTENDER = textwrap.dedent("""
    import sys, time
    from pathlib import Path
    from repro.pipeline.state import Lease
    from repro.exceptions import LeaseError

    lock, go = Path(sys.argv[1]), Path(sys.argv[2])
    while not go.exists():          # start gate: maximise the race
        time.sleep(0.001)
    lease = Lease(lock, owner=sys.argv[3], ttl_seconds=3600.0)
    try:
        lease.acquire()
    except LeaseError:
        print("LOST")
    else:
        time.sleep(0.5)             # hold while the other contends
        print("WON")
        lease.release()
""")


@pytest.mark.chaos
class TestLeaseContention:
    def test_two_processes_exactly_one_takeover_winner(self, tmp_path):
        """Two real processes race for one stale lease; the rename-based
        takeover admits exactly one."""
        import socket

        lock = tmp_path / "pipeline.lock"
        go = tmp_path / "go"
        lock.write_text(json.dumps({
            "owner": "crashed", "pid": _exited_pid(),
            "host": socket.gethostname(),
            "acquired_unix": time.time(), "ttl_seconds": 3600.0,
            "token": "deadbeef",
        }))
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
        )
        contenders = [
            subprocess.Popen(
                [sys.executable, "-c", _CONTENDER, str(lock),
                 str(go), f"contender-{index}"],
                env=env, stdout=subprocess.PIPE, text=True,
            )
            for index in range(2)
        ]
        go.write_text("")  # open the gate
        outputs = [
            process.communicate(timeout=60)[0].strip()
            for process in contenders
        ]
        assert sorted(outputs) == ["LOST", "WON"], outputs
