"""Chaos drills for the pipeline: ENOSPC, torn state, SIGKILL.

The contract under test is the crash model of ``docs/PIPELINE.md``:
whatever instant a run dies at — full disk during a stage, a torn
state envelope, a SIGKILL mid-imputation — ``pipeline resume`` (or the
next ``run``) completes the work, and the persistent store ends up
bit-identical to an uninterrupted run's.
"""

from __future__ import annotations

import errno
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro import (
    DiscoveryConfig,
    inject_missing,
    load_dataset,
    write_csv,
)
from repro.exceptions import PipelineError
from repro.pipeline import Pipeline, PipelineConfig
from repro.robustness.chaos import ChaosConfig, ChaosInjector
from repro.utils.atomic import disk_fault_injection

pytestmark = [pytest.mark.pipeline, pytest.mark.chaos]

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")

CSV1 = (
    "Name,City,Phone\n"
    "ann,rome,111\n"
    "ann,rome,111\n"
    "bob,oslo,222\n"
    "bob,oslo,\n"
    "cat,lima,333\n"
    "cat,lima,333\n"
)
CSV2 = (
    "Name,City,Phone\n"
    "dan,kiev,444\n"
    "dan,kiev,\n"
    "edd,bonn,\n"
)

CONFIG = PipelineConfig(
    discovery=DiscoveryConfig(threshold_limit=1, max_lhs_size=1)
)


def _latest_store(root: Path) -> bytes:
    return sorted((root / "store").glob("imputed-*.csv"))[-1].read_bytes()


@pytest.fixture()
def ingest(tmp_path):
    directory = tmp_path / "ingest"
    directory.mkdir()
    (directory / "b1.csv").write_text(CSV1)
    return directory


class TestDiskFull:
    def test_enospc_in_commit_is_located_then_resumable(
        self, tmp_path, ingest
    ):
        control, victim = tmp_path / "control", tmp_path / "victim"
        Pipeline(control, ingest, CONFIG).run()
        Pipeline(victim, ingest, CONFIG).run()
        (ingest / "b2.csv").write_text(CSV2)
        Pipeline(control, ingest, CONFIG).run()

        def store_writes_fail(path: Path) -> None:
            if "store" in path.parts:
                raise OSError(
                    errno.ENOSPC, f"injected disk-full writing {path}"
                )

        with disk_fault_injection(store_writes_fail):
            with pytest.raises(
                PipelineError, match=r"stage 'commit'"
            ) as excinfo:
                Pipeline(victim, ingest, CONFIG).run()
        assert "No space left" in str(excinfo.value) or "disk-full" in (
            str(excinfo.value)
        )
        # The run is parked, not lost.
        status = Pipeline(victim, ingest, CONFIG).status()
        assert status["in_flight"]["status"] == "running"
        # With the disk back, resume completes bit-identically.
        result = Pipeline(victim, ingest, CONFIG).resume()
        assert result.outcome == "committed"
        assert result.resumed is True
        assert _latest_store(victim) == _latest_store(control)

    def test_seeded_enospc_rate_never_crashes_unlocated(
        self, tmp_path, ingest
    ):
        # Whole-run injection at a seeded rate: every failure mode must
        # surface as PipelineError (exit 9), never a raw OSError, and
        # the pipeline must recover once the faults stop.
        root = tmp_path / "root"
        injector = ChaosInjector(
            ChaosConfig(disk_full_rate=0.3, seed=7)
        )
        attempts = 0
        with injector.disk_faults():
            for _ in range(10):
                attempts += 1
                try:
                    if Pipeline(
                        root, ingest, CONFIG
                    ).status()["in_flight"]:
                        Pipeline(root, ingest, CONFIG).resume()
                    else:
                        Pipeline(root, ingest, CONFIG).run()
                    break
                except PipelineError:
                    continue
        assert injector.disk_faults_injected > 0
        # Clean disk: whatever state chaos left, the pipeline finishes.
        if Pipeline(root, ingest, CONFIG).status()["in_flight"]:
            Pipeline(root, ingest, CONFIG).resume()
        else:
            Pipeline(root, ingest, CONFIG).run()
        status = Pipeline(root, ingest, CONFIG).status()
        assert status["store"]["version"] >= 1
        assert status["in_flight"] is None


class TestTornState:
    def test_truncated_state_envelope_self_heals(self, tmp_path, ingest):
        root = tmp_path / "root"
        Pipeline(root, ingest, CONFIG).run()
        (ingest / "b2.csv").write_text(CSV2)
        Pipeline(root, ingest, CONFIG).run()
        committed = _latest_store(root)
        # Tear the current envelope, as a crash during the commit write
        # would.  The pipeline falls back to the previous envelope — the
        # one staged just before the run, which still carries the
        # "running" record — so `run` refuses and `resume` redoes the
        # lost run deterministically from its pinned inputs.
        state_file = root / "state.json"
        text = state_file.read_text()
        state_file.write_text(text[: len(text) // 2])
        with pytest.raises(PipelineError, match="pipeline resume"):
            Pipeline(root, ingest, CONFIG).run()
        result = Pipeline(root, ingest, CONFIG).resume()
        assert result.outcome == "committed"
        assert result.run_id == "000002-incr"
        assert _latest_store(root) == committed

    def test_corrupt_journal_of_crashed_run_is_quarantined(
        self, tmp_path, ingest
    ):
        control, victim = tmp_path / "control", tmp_path / "victim"
        Pipeline(control, ingest, CONFIG).run()
        Pipeline(victim, ingest, CONFIG).run()
        (ingest / "b2.csv").write_text(CSV2)
        Pipeline(control, ingest, CONFIG).run()

        def store_writes_fail(path: Path) -> None:
            if "store" in path.parts:
                raise OSError(errno.ENOSPC, "injected")

        with disk_fault_injection(store_writes_fail):
            with pytest.raises(PipelineError):
                Pipeline(victim, ingest, CONFIG).run()
        run_id = Pipeline(victim, ingest, CONFIG).status()[
            "in_flight"
        ]["run_id"]
        journal = victim / "runs" / run_id / "journal.jsonl"
        # Corrupt the journal *mid-file* — beyond the tolerated torn
        # tail — so replay is impossible and the journal must be
        # quarantined, not trusted.
        lines = journal.read_text().splitlines()
        lines[1] = "{corrupt"
        journal.write_text("\n".join(lines) + "\n")
        result = Pipeline(victim, ingest, CONFIG).resume()
        assert result.outcome == "committed"
        assert _latest_store(victim) == _latest_store(control)
        quarantined = list(
            (victim / "runs" / run_id).glob("journal.*.corrupt")
        )
        assert quarantined, "unusable journal was not quarantined"


class TestSigkill:
    """A real process killed with SIGKILL mid-imputation, then resumed."""

    @pytest.fixture(scope="class")
    def big_ingest(self, tmp_path_factory):
        base = tmp_path_factory.mktemp("sigkill-ingest")
        whole = load_dataset("restaurant", n_tuples=450)
        clean = _slice(whole, 0, 300, "seed-batch")
        tail = _slice(whole, 300, 450, "delta-batch")
        dirty_tail = inject_missing(tail, rate=0.15, seed=11).relation
        write_csv(clean, base / "b1.csv")
        delta_text_path = base / "b2-pending.csv"
        write_csv(dirty_tail, delta_text_path)
        return base, delta_text_path

    def _config(self):
        return PipelineConfig(discovery=DiscoveryConfig(
            threshold_limit=3.0
        ))

    def test_sigkill_mid_impute_then_resume_is_bit_identical(
        self, big_ingest, tmp_path
    ):
        base, pending_delta = big_ingest
        ingest = tmp_path / "ingest"
        ingest.mkdir()
        (ingest / "b1.csv").write_text((base / "b1.csv").read_text())
        control, victim = tmp_path / "control", tmp_path / "victim"
        Pipeline(control, ingest, self._config()).run()
        Pipeline(victim, ingest, self._config()).run()
        (ingest / "b2.csv").write_text(pending_delta.read_text())
        Pipeline(control, ingest, self._config()).run()

        env = dict(os.environ)
        env["PYTHONPATH"] = (
            REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
        )
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "pipeline", "run",
                "--root", str(victim), "--ingest", str(ingest),
            ],
            env=env, stdout=subprocess.PIPE,
            stderr=subprocess.PIPE, text=True,
        )
        journal = victim / "runs" / "000002-incr" / "journal.jsonl"
        try:
            deadline = time.monotonic() + 120.0
            killed = False
            while time.monotonic() < deadline:
                if process.poll() is not None:
                    pytest.fail(
                        "run finished before it could be killed: "
                        + process.stderr.read()
                    )
                if journal.exists() and sum(
                    1 for line in journal.read_text().splitlines()
                    if '"type": "cell"' in line
                ) >= 3:
                    process.send_signal(signal.SIGKILL)
                    killed = True
                    break
                time.sleep(0.01)
            assert killed, "never saw imputation progress to kill"
            process.wait(timeout=60)
        finally:
            if process.poll() is None:  # pragma: no cover - cleanup
                process.kill()
                process.wait()
        assert process.returncode == -signal.SIGKILL

        # The kill left a running record and a stale lease; resume
        # takes both over and completes.
        status = Pipeline(victim, ingest, self._config()).status()
        assert status["in_flight"]["run_id"] == "000002-incr"
        result = Pipeline(victim, ingest, self._config()).resume()
        assert result.outcome == "committed"
        assert result.mode == "incr"
        assert _latest_store(victim) == _latest_store(control)
        # The journal really was replayed, not thrown away.
        report = json.loads(
            (victim / "runs" / "000002-incr" / "report.json").read_text()
        )
        assert report["replayed"] >= 3


def _slice(relation, start, stop, name):
    from repro.dataset.relation import Relation

    rows = [relation.row_values(index) for index in range(start, stop)]
    return Relation.from_rows(list(relation.attributes), rows, name=name)
