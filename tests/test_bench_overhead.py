"""Tier-1 smoke test for the robustness-overhead benchmark.

Runs ``benchmarks/bench_overhead.py``'s ``run_bench`` with a tiny
loader (40 Restaurant tuples, a hand-written RFD set, one repeat) so the
bench's code path — baseline vs guarded timing, outcome-equality check,
JSON artifact — is exercised on every test run without the cost of RFD
discovery.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

from repro import load_dataset
from repro.rfd import parse_rfd

BENCHMARKS_DIR = Path(__file__).resolve().parent.parent / "benchmarks"


@pytest.fixture()
def bench_module(monkeypatch):
    monkeypatch.syspath_prepend(str(BENCHMARKS_DIR))
    sys.modules.pop("bench_overhead", None)
    import bench_overhead

    yield bench_overhead
    sys.modules.pop("bench_overhead", None)


def tiny_loader(name):
    assert name == "restaurant"
    relation = load_dataset("restaurant", n_tuples=40, seed=0)
    rfds = [
        parse_rfd(text)
        for text in [
            "Name(<=4) -> Phone(<=1)",
            "Address(<=3), City(<=2) -> Phone(<=2)",
            "Phone(<=1) -> Class(<=0)",
            "Class(<=0) -> Type(<=5)",
            "Name(<=6), City(<=2) -> Address(<=8)",
            "Phone(<=2) -> City(<=2)",
            "City(<=0), Type(<=3) -> Name(<=12)",
        ]
    ]
    return relation, rfds


def test_run_bench_smoke(bench_module, tmp_path):
    result_path = tmp_path / "BENCH_overhead.json"
    summary = bench_module.run_bench(
        ("restaurant",),
        result_path=result_path,
        repeats=1,
        loader=tiny_loader,
    )

    assert result_path.exists()
    assert json.loads(result_path.read_text(encoding="utf-8")) == summary

    entry = summary["datasets"]["restaurant"]
    assert entry["n_tuples"] == 40
    assert entry["missing_cells"] > 0
    # The guarded runtime must not change a healthy run's outcomes.
    assert entry["identical_outcomes"] is True
    assert entry["budget_events"] == 0
    assert entry["degradations"] == 0
    assert entry["baseline_seconds"] > 0
    assert entry["guarded_seconds"] > 0
    assert entry["overhead"] == pytest.approx(
        entry["guarded_seconds"] / entry["baseline_seconds"] - 1.0
    )
