"""Tests for attributes, types and inference/coercion."""

import pytest

from repro.dataset.attribute import (
    Attribute,
    AttributeType,
    coerce_value,
    infer_type,
)
from repro.dataset.missing import MISSING
from repro.exceptions import DataError, SchemaError


class TestAttribute:
    def test_defaults_to_string(self):
        assert Attribute("Name").type is AttributeType.STRING

    def test_rejects_empty_name(self):
        with pytest.raises(SchemaError):
            Attribute("")

    def test_is_hashable_value_object(self):
        assert Attribute("A") == Attribute("A")
        assert len({Attribute("A"), Attribute("A")}) == 1

    def test_str_is_name(self):
        assert str(Attribute("Phone")) == "Phone"


class TestAttributeType:
    def test_numeric_flags(self):
        assert AttributeType.INTEGER.is_numeric
        assert AttributeType.FLOAT.is_numeric
        assert not AttributeType.STRING.is_numeric
        assert not AttributeType.BOOLEAN.is_numeric


class TestInferType:
    def test_integers(self):
        assert infer_type([1, 2, 3]) is AttributeType.INTEGER

    def test_integer_strings(self):
        assert infer_type(["1", "42", "-7"]) is AttributeType.INTEGER

    def test_floats(self):
        assert infer_type([1.5, 2.0]) is AttributeType.FLOAT

    def test_float_strings(self):
        assert infer_type(["1.5", "2"]) is AttributeType.FLOAT

    def test_mixed_int_float_is_float(self):
        assert infer_type([1, 2.5]) is AttributeType.FLOAT

    def test_strings(self):
        assert infer_type(["a", "b"]) is AttributeType.STRING

    def test_booleans(self):
        assert infer_type([True, False]) is AttributeType.BOOLEAN

    def test_boolean_literals(self):
        assert infer_type(["true", "False", "yes"]) is AttributeType.BOOLEAN

    def test_numeric_01_stays_integer(self):
        # 0/1 columns are integers unless true/false literals appear.
        assert infer_type([0, 1, 1, 0]) is AttributeType.INTEGER

    def test_missing_values_ignored(self):
        assert infer_type([MISSING, 3, None]) is AttributeType.INTEGER

    def test_all_missing_defaults_to_string(self):
        assert infer_type([MISSING, None]) is AttributeType.STRING

    def test_empty_defaults_to_string(self):
        assert infer_type([]) is AttributeType.STRING

    def test_mixed_types_fall_back_to_string(self):
        assert infer_type(["1", "x"]) is AttributeType.STRING

    def test_inf_literals_are_strings(self):
        assert infer_type(["inf", "nan"]) is AttributeType.STRING


class TestCoerceValue:
    def test_missing_passes_through(self):
        assert coerce_value(MISSING, AttributeType.INTEGER) is MISSING

    def test_int_from_string(self):
        assert coerce_value(" 42 ", AttributeType.INTEGER) == 42

    def test_float_from_string(self):
        assert coerce_value("2.5", AttributeType.FLOAT) == 2.5

    def test_string_from_number(self):
        assert coerce_value(7, AttributeType.STRING) == "7"

    @pytest.mark.parametrize(
        ("literal", "expected"),
        [("true", True), ("no", False), ("Y", True), (False, False)],
    )
    def test_boolean_literals(self, literal, expected):
        assert coerce_value(literal, AttributeType.BOOLEAN) is expected

    def test_bad_int_raises(self):
        with pytest.raises(DataError):
            coerce_value("abc", AttributeType.INTEGER)

    def test_bad_boolean_raises(self):
        with pytest.raises(DataError):
            coerce_value("maybe", AttributeType.BOOLEAN)
