"""Property-based tests of Relation invariants and CSV round trips."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataset import (
    MISSING,
    Relation,
    read_csv_text,
    to_csv_text,
)

_cell = st.one_of(
    st.just(MISSING),
    st.integers(min_value=-999, max_value=999),
    st.text(
        alphabet=st.characters(codec="ascii", categories=("L", "N")),
        min_size=1,
        max_size=8,
    ),
)

_rows = st.lists(
    st.tuples(_cell, _cell, _cell), min_size=1, max_size=12
)


class TestRelationProperties:
    @settings(max_examples=40, deadline=None)
    @given(_rows)
    def test_copy_round_trip(self, rows):
        relation = Relation.from_rows(["A", "B", "C"], rows)
        assert relation.copy().equals(relation)

    @settings(max_examples=40, deadline=None)
    @given(_rows)
    def test_missing_accounting(self, rows):
        relation = Relation.from_rows(["A", "B", "C"], rows)
        cells = relation.missing_cells()
        assert len(cells) == relation.count_missing()
        assert {row for row, _ in cells} == set(
            relation.incomplete_rows()
        )
        for row, attribute in cells:
            assert relation.is_missing_cell(row, attribute)

    @settings(max_examples=40, deadline=None)
    @given(_rows)
    def test_completeness_bounds(self, rows):
        relation = Relation.from_rows(["A", "B", "C"], rows)
        assert 0.0 <= relation.completeness() <= 1.0

    @settings(max_examples=30, deadline=None)
    @given(_rows)
    def test_take_then_project_preserves_cells(self, rows):
        relation = Relation.from_rows(["A", "B", "C"], rows)
        indices = list(range(relation.n_tuples))[::-1]
        derived = relation.take(indices).project(["B", "A"])
        for position, original_row in enumerate(indices):
            assert derived.value(position, "A") == relation.value(
                original_row, "A"
            )
            assert derived.value(position, "B") == relation.value(
                original_row, "B"
            )

    @settings(max_examples=30, deadline=None)
    @given(_rows)
    def test_diff_cells_of_identical_is_empty(self, rows):
        relation = Relation.from_rows(["A", "B", "C"], rows)
        assert relation.diff_cells(relation.copy()) == []


class TestCsvRoundTripProperties:
    @settings(max_examples=40, deadline=None)
    @given(_rows)
    def test_text_round_trip(self, rows):
        # Read back with the same single null literal the writer used:
        # under the *default* literals a string cell "NONE" would
        # legitimately come back as MISSING (documented lossiness).
        relation = Relation.from_rows(["A", "B", "C"], rows)
        text = to_csv_text(relation, null_literal="_")
        back = read_csv_text(text, null_literals=["_"])
        assert back.n_tuples == relation.n_tuples
        for row in range(relation.n_tuples):
            for name in relation.attribute_names:
                original = relation.value(row, name)
                restored = back.value(row, name)
                if original is MISSING:
                    assert restored is MISSING
                else:
                    # CSV stringifies; compare canonical renderings.
                    assert str(restored).strip() == str(original).strip()
