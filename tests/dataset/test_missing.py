"""Tests for the MISSING sentinel."""

import math
import pickle

import pytest

from repro.dataset.missing import (
    MISSING,
    MissingType,
    is_missing,
    normalize_missing,
)


class TestMissingSingleton:
    def test_singleton_identity(self):
        assert MissingType() is MISSING

    def test_repr_is_underscore(self):
        assert repr(MISSING) == "_"
        assert str(MISSING) == "_"

    def test_is_falsy(self):
        assert not MISSING

    def test_equality_with_itself(self):
        assert MISSING == MissingType()

    def test_not_equal_to_other_values(self):
        assert MISSING != ""
        assert MISSING != 0
        assert MISSING != None  # noqa: E711 - equality (not identity) on purpose

    def test_hashable_and_stable(self):
        assert hash(MISSING) == hash(MissingType())
        assert len({MISSING, MissingType()}) == 1

    def test_pickle_round_trip_preserves_identity(self):
        clone = pickle.loads(pickle.dumps(MISSING))
        assert clone is MISSING


class TestIsMissing:
    def test_missing_sentinel(self):
        assert is_missing(MISSING)

    def test_none(self):
        assert is_missing(None)

    def test_nan(self):
        assert is_missing(float("nan"))
        assert is_missing(math.nan)

    @pytest.mark.parametrize(
        "value", ["", " ", 0, 0.0, False, "_", "NA", [], float("inf")]
    )
    def test_present_values(self, value):
        assert not is_missing(value)


class TestNormalizeMissing:
    def test_maps_none_to_sentinel(self):
        assert normalize_missing(None) is MISSING

    def test_maps_nan_to_sentinel(self):
        assert normalize_missing(float("nan")) is MISSING

    def test_keeps_present_values(self):
        assert normalize_missing("x") == "x"
        assert normalize_missing(0) == 0
