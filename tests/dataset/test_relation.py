"""Tests for the Relation column store."""

import pytest

from repro.dataset import (
    MISSING,
    Attribute,
    AttributeType,
    Relation,
    is_missing,
)
from repro.exceptions import DataError, SchemaError


@pytest.fixture()
def small() -> Relation:
    return Relation.from_rows(
        ["Name", "Age", "City"],
        [
            ["alice", 34, "LA"],
            ["bob", MISSING, "NY"],
            ["carol", 29, MISSING],
        ],
        name="small",
    )


class TestConstruction:
    def test_from_rows_infers_types(self, small):
        assert small.attribute("Age").type is AttributeType.INTEGER
        assert small.attribute("Name").type is AttributeType.STRING

    def test_from_columns(self):
        relation = Relation.from_columns(
            {"A": [1, 2], "B": ["x", "y"]}, name="cols"
        )
        assert relation.n_tuples == 2
        assert relation.attribute("A").type is AttributeType.INTEGER

    def test_from_columns_type_override(self):
        relation = Relation.from_columns(
            {"A": [1, 2]}, types={"A": AttributeType.STRING}
        )
        assert relation.value(0, "A") == "1"

    def test_explicit_attributes_coerce(self):
        relation = Relation.from_rows(
            [Attribute("A", AttributeType.FLOAT)], [["3"], ["4.5"]]
        )
        assert relation.value(0, "A") == 3.0

    def test_rejects_duplicate_attribute_names(self):
        with pytest.raises(SchemaError):
            Relation.from_rows(["A", "A"], [[1, 2]])

    def test_rejects_no_attributes(self):
        with pytest.raises(SchemaError):
            Relation([], {})

    def test_rejects_ragged_rows(self):
        with pytest.raises(DataError):
            Relation.from_rows(["A", "B"], [[1, 2], [3]])

    def test_rejects_ragged_columns(self):
        with pytest.raises(DataError):
            Relation.from_columns({"A": [1, 2], "B": [1]})

    def test_normalizes_none_and_nan_to_missing(self):
        relation = Relation.from_columns({"A": [None, float("nan"), 1.0]})
        assert relation.value(0, "A") is MISSING
        assert relation.value(1, "A") is MISSING


class TestAccess:
    def test_dimensions(self, small):
        assert small.n_tuples == 3
        assert small.n_attributes == 3
        assert len(small) == 3

    def test_value_and_row_values(self, small):
        assert small.value(0, "Name") == "alice"
        assert small.row_values(1) == ("bob", MISSING, "NY")

    def test_unknown_attribute_raises(self, small):
        with pytest.raises(SchemaError):
            small.value(0, "Nope")

    def test_row_out_of_range_raises(self, small):
        with pytest.raises(DataError):
            small.value(3, "Name")

    def test_column_snapshot_is_immutable_copy(self, small):
        column = small.column("Age")
        assert column == (34, MISSING, 29)
        assert isinstance(column, tuple)

    def test_index_of(self, small):
        assert small.index_of("City") == 2
        with pytest.raises(SchemaError):
            small.index_of("Nope")


class TestMutation:
    def test_set_value_coerces(self, small):
        small.set_value(1, "Age", "40")
        assert small.value(1, "Age") == 40

    def test_set_value_bumps_version(self, small):
        before = small.version
        small.set_value(0, "Name", "alicia")
        assert small.version == before + 1

    def test_clear_value(self, small):
        small.clear_value(0, "Name")
        assert small.is_missing_cell(0, "Name")

    def test_set_value_rejects_bad_type(self, small):
        with pytest.raises(DataError):
            small.set_value(0, "Age", "forty")


class TestMissingHelpers:
    def test_missing_cells(self, small):
        assert small.missing_cells() == [(1, "Age"), (2, "City")]

    def test_incomplete_rows(self, small):
        assert small.incomplete_rows() == [1, 2]

    def test_count_missing_and_completeness(self, small):
        assert small.count_missing() == 2
        assert small.completeness() == pytest.approx(1 - 2 / 9)

    def test_complete_relation(self):
        relation = Relation.from_rows(["A"], [[1], [2]])
        assert relation.missing_cells() == []
        assert relation.completeness() == 1.0


class TestRowView:
    def test_mapping_interface(self, small):
        row = small.row(0)
        assert row["Name"] == "alice"
        assert set(row) == {"Name", "Age", "City"}
        assert len(row) == 3

    def test_missing_attributes(self, small):
        assert small.row(1).missing_attributes() == ("Age",)
        assert small.row(0).missing_attributes() == ()

    def test_is_incomplete(self, small):
        assert small.row(1).is_incomplete()
        assert not small.row(0).is_incomplete()

    def test_views_are_live(self, small):
        row = small.row(1)
        small.set_value(1, "Age", 99)
        assert row["Age"] == 99

    def test_values_tuple(self, small):
        assert small.row(0).values_tuple() == ("alice", 34, "LA")


class TestDerivation:
    def test_copy_is_independent(self, small):
        clone = small.copy()
        clone.set_value(0, "Name", "zed")
        assert small.value(0, "Name") == "alice"
        assert clone.equals(small) is False

    def test_copy_preserves_missing(self, small):
        assert is_missing(small.copy().value(1, "Age"))

    def test_project(self, small):
        projected = small.project(["Name", "City"])
        assert projected.attribute_names == ("Name", "City")
        assert projected.n_tuples == 3

    def test_project_unknown_raises(self, small):
        with pytest.raises(SchemaError):
            small.project(["Nope"])

    def test_take_reorders(self, small):
        taken = small.take([2, 0])
        assert taken.value(0, "Name") == "carol"
        assert taken.value(1, "Name") == "alice"

    def test_head(self, small):
        assert small.head(2).n_tuples == 2
        assert small.head(10).n_tuples == 3


class TestComparison:
    def test_equals_self_copy(self, small):
        assert small.equals(small.copy())

    def test_diff_cells(self, small):
        other = small.copy()
        other.set_value(0, "Name", "alicia")
        other.set_value(2, "Age", 1)
        assert other.diff_cells(small) == [(0, "Name"), (2, "Age")]

    def test_diff_cells_schema_mismatch(self, small):
        with pytest.raises(SchemaError):
            small.diff_cells(small.project(["Name"]))

    def test_to_text_renders_missing_as_underscore(self, small):
        text = small.to_text()
        assert "_" in text
        assert "alice" in text


class TestListenerSafety:
    """``set_value`` must apply the write and run *every* listener
    before surfacing a listener failure (wrapped in DataError)."""

    @pytest.fixture()
    def relation(self):
        return Relation.from_rows(
            ["Name", "Age"], [["alice", 34], ["bob", 41]]
        )

    def test_failing_listener_does_not_corrupt_write(self, relation):
        def bad(row, name, value):
            raise RuntimeError("listener exploded")

        relation.add_mutation_listener(bad)
        before = relation.version
        with pytest.raises(DataError) as excinfo:
            relation.set_value(0, "Name", "alicia")
        assert relation.value(0, "Name") == "alicia"  # write applied
        assert relation.version == before + 1         # caches can react
        assert "(0, 'Name')" in str(excinfo.value)
        assert excinfo.value.__cause__.args == ("listener exploded",)

    def test_later_listeners_still_run(self, relation):
        calls = []

        def bad(row, name, value):
            raise RuntimeError("first fails")

        def invalidator(row, name, value):
            calls.append((row, name, value))

        relation.add_mutation_listener(bad)
        relation.add_mutation_listener(invalidator)
        with pytest.raises(DataError):
            relation.set_value(1, "Age", 50)
        assert calls == [(1, "Age", 50)]

    def test_multiple_failures_are_counted(self, relation):
        def bad(row, name, value):
            raise RuntimeError("boom")

        relation.add_mutation_listener(bad)
        relation.add_mutation_listener(bad)
        with pytest.raises(DataError) as excinfo:
            relation.set_value(0, "Age", 1)
        assert "+1 more listener failure" in str(excinfo.value)

    def test_healthy_listeners_raise_nothing(self, relation):
        seen = []
        relation.add_mutation_listener(
            lambda row, name, value: seen.append(value)
        )
        relation.set_value(0, "Age", 99)
        assert seen == [99]
