"""Tests for CSV import/export."""

import pytest

from repro.dataset import (
    AttributeType,
    MISSING,
    read_csv,
    read_csv_text,
    to_csv_text,
    write_csv,
)
from repro.exceptions import CSVFormatError


class TestReadCsvText:
    def test_basic_parse_and_inference(self):
        relation = read_csv_text("A,B\n1,x\n2,y\n")
        assert relation.n_tuples == 2
        assert relation.attribute("A").type is AttributeType.INTEGER
        assert relation.value(1, "B") == "y"

    def test_empty_cell_is_missing(self):
        relation = read_csv_text("A,B\n1,\n,y\n")
        assert relation.value(0, "B") is MISSING
        assert relation.value(1, "A") is MISSING

    @pytest.mark.parametrize("literal", ["_", "?", "NA", "null", "None"])
    def test_null_literals(self, literal):
        relation = read_csv_text(f"A\n{literal}\n")
        assert relation.value(0, "A") is MISSING

    def test_custom_null_literals(self):
        relation = read_csv_text("A\nmissing\n", null_literals=["missing"])
        assert relation.value(0, "A") is MISSING

    def test_declared_types_override_inference(self):
        relation = read_csv_text(
            "A\n1\n2\n", types={"A": AttributeType.STRING}
        )
        assert relation.value(0, "A") == "1"

    def test_whitespace_stripped(self):
        relation = read_csv_text("A,B\n 1 , x \n")
        assert relation.value(0, "A") == 1
        assert relation.value(0, "B") == "x"

    def test_semicolon_delimiter(self):
        relation = read_csv_text("A;B\n1;2\n", delimiter=";")
        assert relation.value(0, "B") == 2

    def test_empty_input_raises(self):
        with pytest.raises(CSVFormatError):
            read_csv_text("")

    def test_duplicate_header_raises(self):
        with pytest.raises(CSVFormatError):
            read_csv_text("A,A\n1,2\n")

    def test_blank_header_raises(self):
        with pytest.raises(CSVFormatError):
            read_csv_text("A,\n1,2\n")

    def test_field_count_mismatch_raises(self):
        with pytest.raises(CSVFormatError) as excinfo:
            read_csv_text("A,B\n1\n")
        assert "line 2" in str(excinfo.value)


class TestRoundTrip:
    def test_file_round_trip(self, tmp_path):
        relation = read_csv_text("Name,Age\nalice,34\nbob,\n")
        path = tmp_path / "out.csv"
        write_csv(relation, path)
        back = read_csv(path)
        assert back.equals(relation)
        assert back.name == "out"

    def test_to_csv_text_renders_missing(self):
        relation = read_csv_text("A,B\n1,\n")
        text = to_csv_text(relation, null_literal="_")
        assert text == "A,B\n1,_\n"

    def test_read_csv_uses_stem_as_name(self, tmp_path):
        path = tmp_path / "mydata.csv"
        path.write_text("A\n1\n")
        assert read_csv(path).name == "mydata"


class TestIngestHardening:
    """Malformed input fails fast with 1-based row/column locations."""

    def test_ragged_row_reports_location(self):
        with pytest.raises(CSVFormatError) as excinfo:
            read_csv_text("A,B,C\n1,2,3\n4,5\n")
        message = str(excinfo.value)
        assert "line 3" in message
        assert "2" in message and "3" in message  # got vs expected

    def test_duplicate_headers_name_the_columns(self):
        with pytest.raises(CSVFormatError) as excinfo:
            read_csv_text("Id,Name,Id\n1,a,2\n")
        message = str(excinfo.value)
        assert "duplicate" in message
        assert "'Id'" in message
        assert "1" in message and "3" in message  # both column positions

    def test_blank_header_reports_column(self):
        with pytest.raises(CSVFormatError) as excinfo:
            read_csv_text("A,,C\n1,2,3\n")
        message = str(excinfo.value)
        assert "line 1" in message
        assert "column 2" in message

    def test_undecodable_bytes_raise_csv_format_error(self, tmp_path):
        path = tmp_path / "latin.csv"
        path.write_bytes(b"A,B\n1,caf\xe9\n")
        with pytest.raises(CSVFormatError) as excinfo:
            read_csv(path)
        message = str(excinfo.value)
        assert "UTF-8" in message
        assert "byte offset" in message

    def test_write_csv_is_atomic(self, tmp_path, monkeypatch):
        """A crash mid-write must not clobber the existing file."""
        import repro.utils.atomic as atomic_mod

        relation = read_csv_text("A,B\n1,2\n")
        target = tmp_path / "out.csv"
        target.write_text("precious\n")

        real_replace = atomic_mod.os.replace

        def exploding_replace(src, dst):
            raise OSError("disk went away")

        monkeypatch.setattr(atomic_mod.os, "replace", exploding_replace)
        with pytest.raises(OSError):
            write_csv(relation, target)
        monkeypatch.setattr(atomic_mod.os, "replace", real_replace)
        assert target.read_text() == "precious\n"  # untouched
        leftovers = [p for p in tmp_path.iterdir() if p != target]
        assert leftovers == []  # temp file cleaned up

    def test_write_csv_replaces_on_success(self, tmp_path):
        relation = read_csv_text("A,B\n1,2\n")
        target = tmp_path / "out.csv"
        target.write_text("old\n")
        write_csv(relation, target)
        assert read_csv(target).equals(relation)
