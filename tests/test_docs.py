"""Documentation stays consistent with the code base.

These tests keep README.md / DESIGN.md / EXPERIMENTS.md honest: every
bench target and module path they reference must actually exist.
"""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[1]


@pytest.fixture(scope="module")
def design_text() -> str:
    return (ROOT / "DESIGN.md").read_text(encoding="utf-8")


class TestDocumentsExist:
    @pytest.mark.parametrize(
        "name",
        ["README.md", "DESIGN.md", "EXPERIMENTS.md",
         "docs/ALGORITHMS.md", "docs/ROBUSTNESS.md",
         "docs/OBSERVABILITY.md", "docs/SERVICE.md",
         "docs/PIPELINE.md", "docs/INDEXING.md"],
    )
    def test_present_and_nonempty(self, name):
        path = ROOT / name
        assert path.exists(), name
        assert len(path.read_text(encoding="utf-8")) > 500

    def test_design_confirms_paper_identity(self, design_text):
        assert "EDBT 2022" in design_text
        assert "RENUVER" in design_text


class TestDesignReferences:
    def test_bench_targets_exist(self, design_text):
        targets = set(re.findall(r"benchmarks/(bench_\w+\.py)",
                                 design_text))
        assert targets, "DESIGN.md lists no bench targets"
        for target in targets:
            assert (ROOT / "benchmarks" / target).exists(), target

    def test_subpackages_exist(self, design_text):
        for module in re.findall(r"`repro\.([a-z_.]+)`", design_text):
            parts = module.split(".")
            base = ROOT / "src" / "repro"
            candidate_pkg = base.joinpath(*parts)
            candidate_mod = base.joinpath(*parts[:-1],
                                          parts[-1] + ".py")
            assert candidate_pkg.is_dir() or candidate_mod.exists(), (
                f"DESIGN.md references missing module repro.{module}"
            )


class TestExperimentsReferences:
    def test_every_paper_artifact_covered(self):
        text = (ROOT / "EXPERIMENTS.md").read_text(encoding="utf-8")
        for artifact in ["Table 3", "Figure 2", "Figure 3", "Table 4",
                         "Table 5"]:
            assert artifact in text, f"EXPERIMENTS.md misses {artifact}"

    def test_bench_files_cover_every_artifact(self):
        names = {
            path.name for path in (ROOT / "benchmarks").glob("bench_*.py")
        }
        expected = {
            "bench_table3_datasets.py",
            "bench_figure2_thresholds.py",
            "bench_figure3_restaurant.py",
            "bench_figure3_glass.py",
            "bench_table4_stress.py",
            "bench_table5_physician.py",
            "bench_ablation.py",
            "bench_extensions.py",
        }
        assert expected <= names


class TestObservabilityDoc:
    @pytest.fixture(scope="class")
    def text(self) -> str:
        return (ROOT / "docs" / "OBSERVABILITY.md").read_text(
            encoding="utf-8"
        )

    def test_cross_linked_from_the_other_docs(self):
        for name in ["README.md", "docs/ALGORITHMS.md",
                     "docs/ROBUSTNESS.md"]:
            text = (ROOT / name).read_text(encoding="utf-8")
            assert "OBSERVABILITY.md" in text, (
                f"{name} does not link docs/OBSERVABILITY.md"
            )

    def test_documented_metrics_exist_in_the_code(self, text):
        src = ROOT / "src" / "repro"
        code = "\n".join(
            path.read_text(encoding="utf-8")
            for path in src.rglob("*.py")
        )
        for metric in re.findall(r"`(renuver_[a-z_]+)`", text):
            assert metric in code, (
                f"OBSERVABILITY.md documents unknown metric {metric}"
            )

    def test_documented_cli_flags_exist(self, text):
        cli = (ROOT / "src" / "repro" / "cli.py").read_text(
            encoding="utf-8"
        )
        for flag in ["--trace", "--metrics", "--profile",
                     "--log-level", "--log-json"]:
            assert flag in text
            assert f'"{flag}"' in cli, f"cli.py misses {flag}"

    def test_documented_span_names_emitted(self, text):
        src = ROOT / "src" / "repro"
        code = "\n".join(
            path.read_text(encoding="utf-8")
            for path in src.rglob("*.py")
        )
        for span in ["impute", "preprocess", "cell", "discover",
                     "discover_rhs", "kernel."]:
            assert f'"{span}' in code, (
                f"OBSERVABILITY.md documents unemitted span {span!r}"
            )


class TestServiceDoc:
    @pytest.fixture(scope="class")
    def text(self) -> str:
        return (ROOT / "docs" / "SERVICE.md").read_text(
            encoding="utf-8"
        )

    def test_cross_linked_from_the_other_docs(self):
        for name in ["README.md", "docs/ROBUSTNESS.md",
                     "docs/OBSERVABILITY.md"]:
            text = (ROOT / name).read_text(encoding="utf-8")
            assert "SERVICE.md" in text, (
                f"{name} does not link docs/SERVICE.md"
            )

    def test_documented_metrics_exist_in_the_code(self, text):
        src = ROOT / "src" / "repro"
        code = "\n".join(
            path.read_text(encoding="utf-8")
            for path in src.rglob("*.py")
        )
        for metric in re.findall(r"`(renuver_[a-z_]+[a-z])`", text):
            assert metric in code, (
                f"SERVICE.md documents unknown metric {metric}"
            )

    def test_documented_cli_flags_exist(self, text):
        cli = (ROOT / "src" / "repro" / "cli.py").read_text(
            encoding="utf-8"
        )
        for flag in ["--host", "--port", "--artifact-dir",
                     "--max-inflight", "--max-sessions",
                     "--request-budget"]:
            assert flag in text, flag
            assert f'"{flag}"' in cli, f"cli.py misses {flag}"

    def test_documented_routes_exist_in_the_code(self, text):
        http = (
            ROOT / "src" / "repro" / "service" / "http.py"
        ).read_text(encoding="utf-8")
        for route in ["/v1/impute", "/v1/sessions", "/healthz",
                      "/metrics"]:
            assert route in text, route
            assert route in http, f"http.py misses {route}"

    def test_documented_exit_code_8_is_wired(self, text):
        assert "exit code 8" in text.lower() or "code 8" in text
        cli = (ROOT / "src" / "repro" / "cli.py").read_text(
            encoding="utf-8"
        )
        assert "(ServiceError, 8)" in cli


class TestPipelineDoc:
    @pytest.fixture(scope="class")
    def text(self) -> str:
        return (ROOT / "docs" / "PIPELINE.md").read_text(
            encoding="utf-8"
        )

    def test_cross_linked_from_the_other_docs(self):
        for name in ["README.md", "docs/ROBUSTNESS.md",
                     "docs/OBSERVABILITY.md"]:
            text = (ROOT / name).read_text(encoding="utf-8")
            assert "PIPELINE.md" in text, (
                f"{name} does not link docs/PIPELINE.md"
            )

    def test_documented_metrics_exist_in_the_code(self, text):
        src = ROOT / "src" / "repro"
        code = "\n".join(
            path.read_text(encoding="utf-8")
            for path in src.rglob("*.py")
        )
        for metric in re.findall(r"`(renuver_[a-z_]+[a-z])`", text):
            assert metric in code, (
                f"PIPELINE.md documents unknown metric {metric}"
            )

    def test_documented_cli_flags_exist(self, text):
        cli = (ROOT / "src" / "repro" / "cli.py").read_text(
            encoding="utf-8"
        )
        for flag in ["--root", "--ingest", "--mode", "--lease-ttl",
                     "--owner"]:
            assert flag in text, flag
            assert f'"{flag}"' in cli, f"cli.py misses {flag}"

    def test_documented_degradation_reasons_are_real(self, text):
        runner = (
            ROOT / "src" / "repro" / "pipeline" / "runner.py"
        ).read_text(encoding="utf-8")
        for reason in ["watermark_mismatch", "store_integrity",
                       "discovery_cache_miss", "no_store"]:
            assert reason in text, reason
            assert f'"{reason}"' in runner, (
                f"runner.py misses degradation reason {reason}"
            )

    def test_documented_exit_code_9_is_wired(self, text):
        assert "exit code 9" in text.lower() or "code 9" in text
        cli = (ROOT / "src" / "repro" / "cli.py").read_text(
            encoding="utf-8"
        )
        assert "(PipelineError, 9)" in cli


class TestIndexingDoc:
    @pytest.fixture(scope="class")
    def text(self) -> str:
        return (ROOT / "docs" / "INDEXING.md").read_text(
            encoding="utf-8"
        )

    def test_cross_linked_from_the_other_docs(self):
        for name in ["README.md", "docs/ALGORITHMS.md",
                     "docs/SERVICE.md"]:
            text = (ROOT / name).read_text(encoding="utf-8")
            assert "INDEXING.md" in text, (
                f"{name} does not link docs/INDEXING.md"
            )

    def test_documented_metrics_exist_in_the_code(self, text):
        src = ROOT / "src" / "repro"
        code = "\n".join(
            path.read_text(encoding="utf-8")
            for path in src.rglob("*.py")
        )
        for metric in re.findall(r"`(renuver_[a-z_]+[a-z])`", text):
            assert metric in code, (
                f"INDEXING.md documents unknown metric {metric}"
            )

    def test_documented_cli_flags_exist(self, text):
        cli = (ROOT / "src" / "repro" / "cli.py").read_text(
            encoding="utf-8"
        )
        for flag in ["--blocking", "--max-group-size"]:
            assert flag in text, flag
            assert f'"{flag}"' in cli, f"cli.py misses {flag}"

    def test_documented_fallback_reasons_are_real(self, text):
        src = "\n".join(
            path.read_text(encoding="utf-8")
            for path in (ROOT / "src" / "repro" / "index").glob("*.py")
        )
        for reason in ["unindexed", "unsupported", "hot_group",
                       "probe_cost", "full_scan"]:
            assert reason in text, reason
            assert f'"{reason}"' in src, (
                f"repro.index misses fallback reason {reason}"
            )

    def test_bench_artifact_exists(self, text):
        assert "BENCH_blocking.json" in text
        assert (ROOT / "BENCH_blocking.json").exists()


class TestReadmeReferences:
    def test_examples_listed_exist(self):
        text = (ROOT / "README.md").read_text(encoding="utf-8")
        for name in re.findall(r"`(\w+\.py)`", text):
            if (ROOT / "examples" / name).exists():
                continue
            if (ROOT / "src" / "repro" / name).exists():
                continue
            raise AssertionError(f"README references missing {name}")

    def test_rule_files_shipped(self):
        for name in ["restaurant", "cars", "glass", "bridges",
                     "physician"]:
            assert (ROOT / "rules" / f"{name}.json").exists()
