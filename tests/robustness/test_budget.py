"""Budget enforcement: run/cell deadlines, partial results, events."""

from __future__ import annotations

import pytest

from repro.core import Renuver, RenuverConfig
from repro.core.report import OutcomeStatus
from repro.exceptions import BudgetExceededError, ImputationError


class TestRunBudget:
    def test_raise_mode_attaches_partial_result(
        self, restaurant_sample, paper_rfds
    ):
        engine = Renuver(
            paper_rfds, RenuverConfig(time_budget_seconds=1e-9)
        )
        with pytest.raises(BudgetExceededError) as excinfo:
            engine.impute(restaurant_sample)
        exc = excinfo.value
        assert exc.scope == "run"
        assert exc.kind == "time"
        assert exc.partial_result is not None
        assert exc.partial_result.relation.n_tuples == 7

    def test_partial_mode_settles_remaining_as_skipped(
        self, restaurant_sample, paper_rfds
    ):
        engine = Renuver(paper_rfds, RenuverConfig(
            time_budget_seconds=1e-9, on_budget="partial"
        ))
        result = engine.impute(restaurant_sample)
        outcomes = result.report.cell_outcomes
        assert len(outcomes) == 4  # full ledger despite the overrun
        assert all(
            status == OutcomeStatus.SKIPPED.value
            for status in outcomes.values()
        )
        assert any(
            event.scope == "run" and event.kind == "time"
            for event in result.report.budget_events
        )

    def test_generous_budget_changes_nothing(
        self, restaurant_sample, paper_rfds
    ):
        baseline = Renuver(paper_rfds).impute(restaurant_sample)
        budgeted = Renuver(
            paper_rfds, RenuverConfig(time_budget_seconds=3600.0)
        ).impute(restaurant_sample)
        assert budgeted.relation.equals(baseline.relation)
        assert budgeted.report.budget_events == []


class TestCellBudget:
    def test_overrun_degrades_instead_of_aborting(
        self, restaurant_sample, paper_rfds
    ):
        # A clock stuck fast-forwarding trips every cell deadline.
        engine = Renuver(paper_rfds, RenuverConfig(
            cell_time_budget_seconds=1e-9, fallback="mean_mode"
        ))
        result = engine.impute(restaurant_sample)
        outcomes = result.report.cell_outcomes
        assert len(outcomes) == 4
        assert set(outcomes.values()) <= {"degraded", "skipped"}
        assert all(
            event.scope == "cell" for event in result.report.budget_events
        )
        assert result.report.degradations

    def test_skip_fallback_leaves_cells_missing(
        self, restaurant_sample, paper_rfds
    ):
        engine = Renuver(paper_rfds, RenuverConfig(
            cell_time_budget_seconds=1e-9, fallback="skip"
        ))
        result = engine.impute(restaurant_sample)
        assert result.relation.count_missing() == 4
        assert set(result.report.cell_outcomes.values()) == {"skipped"}


class TestConfigValidation:
    def test_bad_fallback_rejected(self):
        with pytest.raises(ImputationError):
            RenuverConfig(fallback="pray")

    def test_bad_on_budget_rejected(self):
        with pytest.raises(ImputationError):
            RenuverConfig(on_budget="hope")

    def test_nonpositive_cell_budget_rejected(self):
        with pytest.raises(ImputationError):
            RenuverConfig(cell_time_budget_seconds=0.0)
