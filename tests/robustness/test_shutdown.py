"""Graceful shutdown of the supervised CLI: SIGINT/SIGTERM → exit 130.

Runs ``python -m repro impute --workers 2`` as a real subprocess in its
own process group, interrupts it mid-run, and checks the contract: exit
code 130, a replayable journal prefix on disk, and no orphaned worker
processes left in the group.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro import (
    DiscoveryConfig,
    discover_rfds,
    inject_missing,
    load_dataset,
    save_rfds,
    write_csv,
)
from repro.robustness import load_journal

pytestmark = pytest.mark.supervisor

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


@pytest.fixture(scope="module")
def cli_inputs(tmp_path_factory):
    """A dirty CSV and RFD file big enough to interrupt mid-run.

    400 tuples keep the supervised run around two seconds, so the
    signal sent after the first journaled cell always lands mid-run
    (at 150 tuples the whole run could finish first and exit 0).
    """
    base = tmp_path_factory.mktemp("shutdown")
    clean = load_dataset("restaurant", n_tuples=400)
    rfds = discover_rfds(
        clean, DiscoveryConfig(threshold_limit=4)
    ).all_rfds
    dirty = inject_missing(clean, rate=0.08, seed=3)
    csv_path = base / "dirty.csv"
    rfd_path = base / "rfds.txt"
    write_csv(dirty.relation, csv_path)
    save_rfds(rfds, rfd_path)
    return csv_path, rfd_path


def _group_is_empty(pgid: int) -> bool:
    try:
        os.killpg(pgid, 0)
    except ProcessLookupError:
        return True
    except PermissionError:
        return False
    return False


@pytest.mark.parametrize("signum", [signal.SIGINT, signal.SIGTERM])
def test_interrupt_flushes_journal_and_reaps_workers(
    cli_inputs, tmp_path, signum
):
    csv_path, rfd_path = cli_inputs
    journal = tmp_path / f"run-{signum}.jsonl"
    out = tmp_path / f"out-{signum}.csv"
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "impute", str(csv_path),
            "--rfds", str(rfd_path), "--workers", "2",
            "--worker-timeout", "30", "--journal", str(journal),
            "--out", str(out),
        ],
        env=env,
        start_new_session=True,  # its own process group, checkable later
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    pgid = os.getpgid(process.pid)
    try:
        # Wait for the run to get going — ideally until the first round
        # has merged a cell into the journal.
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            if process.poll() is not None:
                pytest.fail(
                    "run finished before it could be interrupted: "
                    + process.stderr.read()
                )
            if journal.exists() and any(
                '"type": "cell"' in line
                for line in journal.read_text().splitlines()
            ):
                break
            time.sleep(0.02)
        process.send_signal(signum)
        _, stderr = process.communicate(timeout=60)
    finally:
        if process.poll() is None:  # pragma: no cover - cleanup path
            os.killpg(pgid, signal.SIGKILL)
            process.wait()
    assert process.returncode == 130, stderr
    assert "interrupted" in stderr
    # The journal on disk is a valid, replayable prefix.
    records = load_journal(journal)
    assert records[0]["type"] == "header"
    assert all("type" in record for record in records)
    assert any(record["type"] == "cell" for record in records)
    assert json.loads(journal.read_text().splitlines()[0])
    # No orphaned workers: the whole process group is gone.
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        if _group_is_empty(pgid):
            break
        time.sleep(0.1)
    assert _group_is_empty(pgid), "worker processes were orphaned"
