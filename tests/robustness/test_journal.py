"""The JSONL imputation journal: write, load, replay, resume."""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.core import CellOutcome, Degradation, OutcomeStatus, Renuver
from repro.dataset.csv_io import to_csv_text
from repro.exceptions import JournalError
from repro.robustness import (
    JOURNAL_VERSION,
    JournalWriter,
    fingerprint_matches,
    load_journal,
    read_shard,
    relation_fingerprint,
    replay_journal,
)


class TestJournalWrite:
    def test_full_run_journal_shape(
        self, restaurant_sample, paper_rfds, tmp_path
    ):
        path = tmp_path / "run.jsonl"
        Renuver(paper_rfds).impute(restaurant_sample, journal=path)
        records = load_journal(path)
        types = [record["type"] for record in records]
        assert types[0] == "header"
        assert types[-1] == "end"
        assert types.count("cell") == 4
        header = records[0]
        assert header["version"] == JOURNAL_VERSION
        assert header["missing"] == 4
        assert header["fingerprint"] == relation_fingerprint(
            restaurant_sample
        )

    def test_cell_records_carry_provenance(
        self, restaurant_sample, paper_rfds, tmp_path
    ):
        path = tmp_path / "run.jsonl"
        Renuver(paper_rfds).impute(restaurant_sample, journal=path)
        cells = [
            record for record in load_journal(path)
            if record["type"] == "cell"
        ]
        filled = [c for c in cells if c["status"] == "imputed"]
        assert filled
        for cell in filled:
            assert cell["value"] is not None
            assert cell["rfd"] is not None and "->" in cell["rfd"]
            assert cell["rollbacks"] >= 0


class TestJournalLoad:
    def test_truncated_last_line_tolerated(
        self, restaurant_sample, paper_rfds, tmp_path
    ):
        path = tmp_path / "run.jsonl"
        Renuver(paper_rfds).impute(restaurant_sample, journal=path)
        text = path.read_text()
        path.write_text(text[: len(text) - 20])  # cut into the last record
        records = load_journal(path)
        assert records[0]["type"] == "header"

    def test_midfile_corruption_raises(
        self, restaurant_sample, paper_rfds, tmp_path
    ):
        path = tmp_path / "run.jsonl"
        Renuver(paper_rfds).impute(restaurant_sample, journal=path)
        lines = path.read_text().splitlines()
        lines[1] = "{corrupt"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError, match="line 2"):
            load_journal(path)

    def test_missing_header_raises(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text(json.dumps({"type": "cell"}) + "\n")
        with pytest.raises(JournalError, match="header"):
            load_journal(path)


class TestTornTail:
    """A crash mid-append leaves a torn final record: dropped with a
    counted warning, never silently and never fatally."""

    def _journaled(self, restaurant_sample, paper_rfds, tmp_path):
        path = tmp_path / "run.jsonl"
        Renuver(paper_rfds).impute(restaurant_sample, journal=path)
        return path

    def _torn_counter(self, telemetry):
        families = {
            family.name: family
            for family in telemetry.metrics.families()
        }
        family = families.get("renuver_journal_torn_records_total")
        if family is None:
            return 0
        return sum(i.value for i in family.instruments.values())

    def test_torn_tail_is_counted(
        self, restaurant_sample, paper_rfds, tmp_path
    ):
        from repro.telemetry import Telemetry

        path = self._journaled(restaurant_sample, paper_rfds, tmp_path)
        text = path.read_text()
        path.write_text(text[: len(text) - 15])
        telemetry = Telemetry()
        records = load_journal(path, telemetry=telemetry)
        assert records[0]["type"] == "header"
        assert self._torn_counter(telemetry) == 1

    def test_non_record_final_line_is_torn_tail(
        self, restaurant_sample, paper_rfds, tmp_path
    ):
        # Valid JSON that is not a journal record (e.g. the crash cut
        # the line exactly after a nested value) is torn too.
        from repro.telemetry import Telemetry

        path = self._journaled(restaurant_sample, paper_rfds, tmp_path)
        with path.open("a") as handle:
            handle.write('"just-a-string"\n')
        telemetry = Telemetry()
        records = load_journal(path, telemetry=telemetry)
        assert all("type" in record for record in records)
        assert self._torn_counter(telemetry) == 1

    def test_non_record_midfile_still_raises(
        self, restaurant_sample, paper_rfds, tmp_path
    ):
        path = self._journaled(restaurant_sample, paper_rfds, tmp_path)
        lines = path.read_text().splitlines()
        lines.insert(1, "[1, 2, 3]")
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError, match="not a journal record"):
            load_journal(path)

    def test_resume_over_torn_tail_converges(
        self, restaurant_sample, paper_rfds, tmp_path
    ):
        # End to end: a torn journal still resumes, and the resumed
        # run converges on the uninterrupted result.
        path = tmp_path / "run.jsonl"
        done = Renuver(paper_rfds).impute(
            restaurant_sample.copy(), journal=path
        )
        text = path.read_text()
        path.write_text(text[: len(text) - 15])
        resumed = Renuver(paper_rfds).impute(
            restaurant_sample.copy(), resume_from=path
        )
        assert to_csv_text(resumed.relation) == to_csv_text(done.relation)


class TestReplay:
    def test_replay_restores_filled_values(
        self, restaurant_sample, paper_rfds, tmp_path
    ):
        path = tmp_path / "run.jsonl"
        done = Renuver(paper_rfds).impute(restaurant_sample, journal=path)
        fresh = restaurant_sample.copy()
        outcomes = replay_journal(path, fresh)
        assert len(outcomes) == 4
        assert to_csv_text(fresh) == to_csv_text(done.relation)

    def test_replay_rejects_different_relation(
        self, restaurant_sample, paper_rfds, zip_city_relation, tmp_path
    ):
        path = tmp_path / "run.jsonl"
        Renuver(paper_rfds).impute(restaurant_sample, journal=path)
        # The schema checks run before the fingerprint and locate the
        # first mismatching header field.
        with pytest.raises(JournalError, match="header mismatch"):
            replay_journal(path, zip_city_relation)


class TestResume:
    def test_resume_finished_run_is_pure_replay(
        self, restaurant_sample, paper_rfds, tmp_path
    ):
        path = tmp_path / "run.jsonl"
        engine = Renuver(paper_rfds)
        done = engine.impute(restaurant_sample, journal=path)
        resumed = engine.impute(restaurant_sample, resume_from=path)
        assert resumed.report.replayed_count == 4
        assert to_csv_text(resumed.relation) == to_csv_text(done.relation)


class TestFingerprint:
    def test_fingerprint_is_sha256(self, restaurant_sample):
        digest = relation_fingerprint(restaurant_sample)
        assert len(digest) == 64
        assert set(digest) <= set("0123456789abcdef")

    def test_fingerprint_matches_current(self, restaurant_sample):
        digest = relation_fingerprint(restaurant_sample)
        assert fingerprint_matches(digest, restaurant_sample)
        assert not fingerprint_matches("0" * 64, restaurant_sample)
        assert not fingerprint_matches(None, restaurant_sample)

    def test_legacy_md5_journal_still_replays(
        self, restaurant_sample, paper_rfds, tmp_path
    ):
        path = tmp_path / "run.jsonl"
        done = Renuver(paper_rfds).impute(restaurant_sample, journal=path)
        # Rewrite the header with the digest a pre-SHA-256 journal
        # would have carried (32 hex chars).
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        legacy = hashlib.md5(usedforsecurity=False)
        legacy.update(to_csv_text(restaurant_sample).encode("utf-8"))
        header["fingerprint"] = legacy.hexdigest()
        lines[0] = json.dumps(header)
        path.write_text("\n".join(lines) + "\n")
        fresh = restaurant_sample.copy()
        outcomes = replay_journal(path, fresh)
        assert len(outcomes) == 4
        assert to_csv_text(fresh) == to_csv_text(done.relation)

    def test_wrong_md5_fingerprint_rejected(
        self, restaurant_sample, paper_rfds, tmp_path
    ):
        path = tmp_path / "run.jsonl"
        Renuver(paper_rfds).impute(restaurant_sample, journal=path)
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        header["fingerprint"] = "f" * 32
        lines[0] = json.dumps(header)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError, match="fingerprint"):
            replay_journal(path, restaurant_sample.copy())


class TestResumeEdgeCases:
    def test_resume_from_empty_file_raises(
        self, restaurant_sample, paper_rfds, tmp_path
    ):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(JournalError, match="no header"):
            Renuver(paper_rfds).impute(restaurant_sample, resume_from=path)

    def test_resume_from_end_record_only_raises(
        self, restaurant_sample, paper_rfds, tmp_path
    ):
        path = tmp_path / "end-only.jsonl"
        path.write_text(json.dumps({"type": "end"}) + "\n")
        with pytest.raises(JournalError, match="no header"):
            Renuver(paper_rfds).impute(restaurant_sample, resume_from=path)

    def test_resume_from_header_only_runs_everything(
        self, restaurant_sample, paper_rfds, tmp_path
    ):
        path = tmp_path / "header-only.jsonl"
        writer = JournalWriter(path)
        writer.write_header(restaurant_sample, engine="vectorized")
        writer.close()
        engine = Renuver(paper_rfds)
        baseline = engine.impute(restaurant_sample)
        resumed = engine.impute(restaurant_sample, resume_from=path)
        assert resumed.report.replayed_count == 0
        assert resumed.report.missing_count == 4
        assert to_csv_text(resumed.relation) == to_csv_text(
            baseline.relation
        )

    def test_schema_mismatch_is_located(
        self, restaurant_sample, paper_rfds, tmp_path
    ):
        path = tmp_path / "run.jsonl"
        Renuver(paper_rfds).impute(restaurant_sample, journal=path)
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        header["n_tuples"] = header["n_tuples"] + 3
        lines[0] = json.dumps(header)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(
            JournalError, match="header mismatch: n_tuples"
        ):
            replay_journal(path, restaurant_sample.copy())

    def test_attribute_mismatch_is_located(
        self, restaurant_sample, paper_rfds, tmp_path
    ):
        path = tmp_path / "run.jsonl"
        Renuver(paper_rfds).impute(restaurant_sample, journal=path)
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        header["attributes"] = list(reversed(header["attributes"]))
        lines[0] = json.dumps(header)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(
            JournalError, match="header mismatch: attributes"
        ):
            replay_journal(path, restaurant_sample.copy())


class TestShards:
    def test_read_shard_groups_records_per_cell(self, tmp_path):
        path = tmp_path / "r0.b0.a1.jsonl"
        writer = JournalWriter(path)
        writer.record_degradation(
            Degradation(0, "City", "vectorized", "scalar", "boom")
        )
        writer.record_cell(
            CellOutcome(0, "City", OutcomeStatus.IMPUTED, value="rome")
        )
        writer.record_reactivation(0, "City", ["Zip(0.0) -> City(2.0)"])
        writer.record_cell(
            CellOutcome(2, "Phone", OutcomeStatus.NO_CANDIDATES)
        )
        writer.close()
        results = read_shard(path)
        assert len(results) == 2
        first, second = results
        assert first.outcome.value == "rome"
        assert [d.reason for d in first.degradations] == ["boom"]
        assert first.reactivated == ["Zip(0.0) -> City(2.0)"]
        assert second.outcome.row == 2
        assert not second.degradations and not second.reactivated

    def test_read_shard_tolerates_truncated_tail(self, tmp_path):
        path = tmp_path / "r0.b1.a1.jsonl"
        writer = JournalWriter(path)
        writer.record_cell(
            CellOutcome(1, "Type", OutcomeStatus.IMPUTED, value="bar")
        )
        writer.record_cell(
            CellOutcome(3, "Class", OutcomeStatus.IMPUTED, value="5")
        )
        writer.close()
        text = path.read_text()
        path.write_text(text[: len(text) - 10])  # cut into the tail
        results = read_shard(path)
        assert len(results) == 1
        assert results[0].outcome.row == 1
