"""The JSONL imputation journal: write, load, replay, resume."""

from __future__ import annotations

import json

import pytest

from repro.core import Renuver
from repro.dataset.csv_io import to_csv_text
from repro.exceptions import JournalError
from repro.robustness import (
    JOURNAL_VERSION,
    load_journal,
    relation_fingerprint,
    replay_journal,
)


class TestJournalWrite:
    def test_full_run_journal_shape(
        self, restaurant_sample, paper_rfds, tmp_path
    ):
        path = tmp_path / "run.jsonl"
        Renuver(paper_rfds).impute(restaurant_sample, journal=path)
        records = load_journal(path)
        types = [record["type"] for record in records]
        assert types[0] == "header"
        assert types[-1] == "end"
        assert types.count("cell") == 4
        header = records[0]
        assert header["version"] == JOURNAL_VERSION
        assert header["missing"] == 4
        assert header["fingerprint"] == relation_fingerprint(
            restaurant_sample
        )

    def test_cell_records_carry_provenance(
        self, restaurant_sample, paper_rfds, tmp_path
    ):
        path = tmp_path / "run.jsonl"
        Renuver(paper_rfds).impute(restaurant_sample, journal=path)
        cells = [
            record for record in load_journal(path)
            if record["type"] == "cell"
        ]
        filled = [c for c in cells if c["status"] == "imputed"]
        assert filled
        for cell in filled:
            assert cell["value"] is not None
            assert cell["rfd"] is not None and "->" in cell["rfd"]
            assert cell["rollbacks"] >= 0


class TestJournalLoad:
    def test_truncated_last_line_tolerated(
        self, restaurant_sample, paper_rfds, tmp_path
    ):
        path = tmp_path / "run.jsonl"
        Renuver(paper_rfds).impute(restaurant_sample, journal=path)
        text = path.read_text()
        path.write_text(text[: len(text) - 20])  # cut into the last record
        records = load_journal(path)
        assert records[0]["type"] == "header"

    def test_midfile_corruption_raises(
        self, restaurant_sample, paper_rfds, tmp_path
    ):
        path = tmp_path / "run.jsonl"
        Renuver(paper_rfds).impute(restaurant_sample, journal=path)
        lines = path.read_text().splitlines()
        lines[1] = "{corrupt"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError, match="line 2"):
            load_journal(path)

    def test_missing_header_raises(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text(json.dumps({"type": "cell"}) + "\n")
        with pytest.raises(JournalError, match="header"):
            load_journal(path)


class TestReplay:
    def test_replay_restores_filled_values(
        self, restaurant_sample, paper_rfds, tmp_path
    ):
        path = tmp_path / "run.jsonl"
        done = Renuver(paper_rfds).impute(restaurant_sample, journal=path)
        fresh = restaurant_sample.copy()
        outcomes = replay_journal(path, fresh)
        assert len(outcomes) == 4
        assert to_csv_text(fresh) == to_csv_text(done.relation)

    def test_replay_rejects_different_relation(
        self, restaurant_sample, paper_rfds, zip_city_relation, tmp_path
    ):
        path = tmp_path / "run.jsonl"
        Renuver(paper_rfds).impute(restaurant_sample, journal=path)
        with pytest.raises(JournalError, match="fingerprint"):
            replay_journal(path, zip_city_relation)


class TestResume:
    def test_resume_finished_run_is_pure_replay(
        self, restaurant_sample, paper_rfds, tmp_path
    ):
        path = tmp_path / "run.jsonl"
        engine = Renuver(paper_rfds)
        done = engine.impute(restaurant_sample, journal=path)
        resumed = engine.impute(restaurant_sample, resume_from=path)
        assert resumed.report.replayed_count == 4
        assert to_csv_text(resumed.relation) == to_csv_text(done.relation)
