"""The supervised parallel runtime: determinism, failure containment.

Marked ``supervisor`` (registered in pyproject.toml) so CI can run the
multiprocess suite on its own; everything here is deterministic — the
chaos faults are keyed draws, so kills and hangs land on the same
attempts every run.
"""

from __future__ import annotations

import pytest

from repro import (
    ChaosConfig,
    ChaosInjector,
    ChaosKill,
    DiscoveryConfig,
    Renuver,
    RenuverConfig,
    Telemetry,
    WorkerPoolError,
    discover_rfds,
    inject_missing,
    load_dataset,
)
from repro.cli import exit_code_for
from repro.exceptions import ImputationError
from repro.robustness import Supervisor, load_journal

pytestmark = pytest.mark.supervisor


@pytest.fixture(scope="module")
def town():
    """A 120-tuple restaurant slice with RFDs and a dirty instance."""
    clean = load_dataset("restaurant").head(120)
    rfds = discover_rfds(
        clean, DiscoveryConfig(threshold_limit=4)
    ).all_rfds
    dirty = inject_missing(clean, rate=0.06, seed=11)
    return rfds, dirty.relation


@pytest.fixture(scope="module")
def town_sequential(town):
    rfds, dirty = town
    return Renuver(rfds).impute(dirty)


def _assert_identical(sequential, supervised):
    assert sequential.relation.equals(supervised.relation)
    assert (
        sequential.report.cell_outcomes
        == supervised.report.cell_outcomes
    )


class TestConfig:
    def test_workers_must_be_positive(self):
        with pytest.raises(ImputationError, match="workers"):
            RenuverConfig(workers=0)

    def test_workers_incompatible_with_raise_fallback(self):
        with pytest.raises(ImputationError, match="fallback"):
            RenuverConfig(workers=2, fallback="raise")

    def test_worker_knobs_validated(self):
        with pytest.raises(ImputationError, match="worker_timeout"):
            RenuverConfig(worker_timeout_seconds=0)
        with pytest.raises(ImputationError, match="max_retries"):
            RenuverConfig(max_retries=-1)
        with pytest.raises(ImputationError, match="worker_batch_size"):
            RenuverConfig(worker_batch_size=0)


class TestDeterminism:
    def test_supervised_matches_sequential(
        self, restaurant_sample, paper_rfds
    ):
        sequential = Renuver(paper_rfds).impute(restaurant_sample)
        supervised = Renuver(
            paper_rfds, RenuverConfig(workers=2, worker_batch_size=1)
        ).impute(restaurant_sample)
        _assert_identical(sequential, supervised)
        report = supervised.report
        assert report.supervisor_rounds > 1
        assert (
            report.worker_cells_accepted + report.worker_cells_recomputed
            == report.missing_count
        )

    def test_supervised_matches_sequential_large(
        self, town, town_sequential
    ):
        rfds, dirty = town
        supervised = Renuver(
            rfds, RenuverConfig(workers=4, worker_batch_size=3)
        ).impute(dirty)
        _assert_identical(town_sequential, supervised)

    def test_chaos_kill_hang_slow_still_identical(
        self, town, town_sequential
    ):
        rfds, dirty = town
        chaos = ChaosInjector(ChaosConfig(
            seed=5,
            worker_kill_rate=0.2,
            worker_hang_rate=0.1,
            worker_slow_rate=0.1,
            worker_slow_seconds=0.01,
        ))
        supervised = Renuver(rfds, RenuverConfig(
            workers=4,
            worker_batch_size=3,
            worker_timeout_seconds=2.0,
            worker_backoff_seconds=0.01,
        )).impute(dirty, chaos=chaos)
        assert chaos.worker_faults_planned > 0
        assert supervised.report.worker_crashes > 0
        _assert_identical(town_sequential, supervised)

    def test_slow_workers_are_not_declared_hung(
        self, restaurant_sample, paper_rfds
    ):
        sequential = Renuver(paper_rfds).impute(restaurant_sample)
        chaos = ChaosInjector(ChaosConfig(
            seed=3, worker_slow_rate=1.0, worker_slow_seconds=0.05
        ))
        supervised = Renuver(paper_rfds, RenuverConfig(
            workers=2, worker_batch_size=2, worker_timeout_seconds=5.0
        )).impute(restaurant_sample, chaos=chaos)
        assert supervised.report.worker_crashes == 0
        assert supervised.report.worker_retries == 0
        _assert_identical(sequential, supervised)


class TestFailureContainment:
    def test_retry_exhaustion_degrades_to_scalar(
        self, restaurant_sample, paper_rfds
    ):
        sequential = Renuver(paper_rfds).impute(restaurant_sample)
        # Every attempt of every batch is killed: all batches poison
        # and every cell recomputes in-process on the scalar engine.
        chaos = ChaosInjector(ChaosConfig(
            seed=1, worker_kill_rate=1.0, worker_fault_cells=0
        ))
        supervised = Renuver(paper_rfds, RenuverConfig(
            workers=2,
            worker_batch_size=2,
            max_retries=1,
            worker_backoff_seconds=0.01,
        )).impute(restaurant_sample, chaos=chaos)
        report = supervised.report
        assert report.worker_cells_accepted == 0
        assert report.worker_cells_recomputed == report.missing_count
        poisoned = [
            d for d in report.degradations
            if d.from_tier == "worker" and d.to_tier == "scalar"
        ]
        assert len(poisoned) == report.missing_count
        for outcome in report:
            if outcome.filled:
                assert outcome.engine_tier == "scalar"
        # Statuses and the relation still match the sequential run —
        # the scalar engine is outcome-identical by construction.
        _assert_identical(sequential, supervised)

    def test_spawn_failure_exhaustion_raises_pool_error(
        self, restaurant_sample, paper_rfds, monkeypatch
    ):
        def refuse(self, process):
            raise OSError("fork: resource temporarily unavailable")

        monkeypatch.setattr(Supervisor, "_start_process", refuse)
        engine = Renuver(paper_rfds, RenuverConfig(
            workers=2,
            worker_batch_size=2,
            max_retries=1,
            worker_backoff_seconds=0.0,
        ))
        with pytest.raises(WorkerPoolError, match="cannot start"):
            engine.impute(restaurant_sample)

    def test_pool_error_maps_to_exit_code_7(self):
        assert exit_code_for(WorkerPoolError("pool dead")) == 7


class TestJournalIntegration:
    def test_cell_records_carry_worker_attribution(
        self, town, tmp_path
    ):
        rfds, dirty = town
        path = tmp_path / "supervised.jsonl"
        Renuver(rfds, RenuverConfig(
            workers=3, worker_batch_size=4
        )).impute(dirty, journal=path)
        records = load_journal(path)
        cells = [r for r in records if r["type"] == "cell"]
        workers = {r.get("worker") for r in cells}
        tagged = workers - {None}
        assert tagged, "no cell was attributed to a worker batch"
        for tag in tagged:
            assert tag.startswith("r") and ".b" in tag
        assert not (path.parent / (path.name + ".shards")).exists()

    def test_kill_and_resume_converge_across_round_boundary(
        self, town, town_sequential, tmp_path
    ):
        rfds, dirty = town
        path = tmp_path / "killed.jsonl"
        config = RenuverConfig(workers=3, worker_batch_size=4)
        # One round is 12 cells; kill during the second round's merge.
        chaos = ChaosInjector(ChaosConfig(seed=1, kill_after_cells=14))
        with pytest.raises(ChaosKill):
            Renuver(rfds, config).impute(
                dirty, journal=path, chaos=chaos
            )
        resumed = Renuver(rfds, config).impute(dirty, resume_from=path)
        assert resumed.report.replayed_count == 14
        _assert_identical(town_sequential, resumed)


class TestTelemetry:
    def test_supervisor_spans_and_metrics(
        self, restaurant_sample, paper_rfds
    ):
        telemetry = Telemetry()
        chaos = ChaosInjector(ChaosConfig(
            seed=7, worker_kill_rate=0.5, worker_fault_cells=0
        ))
        result = Renuver(
            paper_rfds,
            RenuverConfig(
                workers=2,
                worker_batch_size=2,
                worker_backoff_seconds=0.01,
            ),
            telemetry=telemetry,
        ).impute(restaurant_sample, chaos=chaos)
        names = {span.name for span in telemetry.tracer.spans}
        assert "supervisor.round" in names
        assert "supervisor.batch" in names
        metrics = telemetry.metrics
        batch_hist = metrics.get("renuver_batch_seconds")
        assert batch_hist is not None and batch_hist.count > 0
        if result.report.worker_retries:
            assert metrics.value(
                "renuver_worker_retries_total", reason="crash"
            ) == result.report.worker_retries
        if result.report.worker_crashes:
            assert metrics.value(
                "renuver_worker_crashes_total"
            ) == result.report.worker_crashes
