"""The chaos suite: seeded fault injection against the full runtime.

Each test drives a complete imputation run with a deterministic
:class:`~repro.robustness.chaos.ChaosInjector` and asserts the two
contracts of the fault-tolerant runtime:

* the run never crashes and its report carries a *full* cell ledger
  (every originally missing cell has a terminal outcome), and
* a run killed mid-flight and resumed from its journal converges on a
  relation bit-identical to an uninterrupted run.
"""

from __future__ import annotations

import pytest

from repro.core import Renuver, RenuverConfig
from repro.dataset.csv_io import to_csv_text
from repro.robustness import ChaosConfig, ChaosInjector, ChaosKill

pytestmark = pytest.mark.chaos

ENGINES = ("scalar", "vectorized")


def _missing_cells(relation):
    return {
        (row, attribute)
        for row in relation.incomplete_rows()
        for attribute in relation.row(row).missing_attributes()
    }


class TestKernelFaults:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_full_ledger_despite_kernel_faults(
        self, restaurant_sample, paper_rfds, engine
    ):
        expected = _missing_cells(restaurant_sample)
        chaos = ChaosInjector(ChaosConfig(seed=7, kernel_fault_rate=0.3))
        result = Renuver(paper_rfds, RenuverConfig(
            engine=engine, fallback="mean_mode"
        )).impute(restaurant_sample, chaos=chaos)
        assert set(result.report.cell_outcomes) == expected
        assert chaos.faults_injected > 0
        assert result.report.degradations  # the ladder was exercised

    def test_deterministic_across_runs(
        self, restaurant_sample, paper_rfds
    ):
        def run():
            chaos = ChaosInjector(ChaosConfig(
                seed=42, kernel_fault_rate=0.25, corrupt_cells=2
            ))
            result = Renuver(paper_rfds, RenuverConfig(
                fallback="mean_mode"
            )).impute(restaurant_sample, chaos=chaos)
            return (
                to_csv_text(result.relation),
                result.report.cell_outcomes,
                chaos.corrupted,
                chaos.faults_injected,
            )

        assert run() == run()


class TestListenerFaults:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_full_ledger_despite_listener_faults(
        self, restaurant_sample, paper_rfds, engine
    ):
        expected = _missing_cells(restaurant_sample)
        chaos = ChaosInjector(ChaosConfig(seed=3, listener_fault_rate=0.5))
        result = Renuver(paper_rfds, RenuverConfig(
            engine=engine, fallback="skip"
        )).impute(restaurant_sample, chaos=chaos)
        assert set(result.report.cell_outcomes) == expected
        assert chaos.faults_injected > 0


class TestClockSkips:
    def test_budgeted_run_survives_clock_skips(
        self, restaurant_sample, paper_rfds
    ):
        chaos = ChaosInjector(ChaosConfig(seed=1, clock_skip_rate=0.2))
        result = Renuver(paper_rfds, RenuverConfig(
            time_budget_seconds=5.0, on_budget="partial"
        )).impute(restaurant_sample, chaos=chaos)
        assert set(result.report.cell_outcomes) == _missing_cells(
            restaurant_sample
        )
        assert chaos.clock_skips > 0
        assert any(
            event.kind == "time" for event in result.report.budget_events
        )


class TestCorruptedDonors:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_scrambled_cells_flow_through(
        self, restaurant_sample, paper_rfds, engine
    ):
        chaos = ChaosInjector(ChaosConfig(seed=11, corrupt_cells=5))
        result = Renuver(paper_rfds, RenuverConfig(
            engine=engine, fallback="mean_mode"
        )).impute(restaurant_sample, chaos=chaos)
        assert len(chaos.corrupted) == 5
        assert set(result.report.cell_outcomes) == _missing_cells(
            restaurant_sample
        )


class TestKillAndResume:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("kill_after", (1, 2, 3))
    def test_resume_is_bit_identical_to_uninterrupted(
        self, restaurant_sample, paper_rfds, engine, kill_after, tmp_path
    ):
        renuver = Renuver(paper_rfds, RenuverConfig(engine=engine))
        uninterrupted = renuver.impute(restaurant_sample)

        journal = tmp_path / f"killed-{engine}-{kill_after}.jsonl"
        chaos = ChaosInjector(ChaosConfig(kill_after_cells=kill_after))
        with pytest.raises(ChaosKill):
            renuver.impute(
                restaurant_sample, journal=journal, chaos=chaos
            )

        resumed = renuver.impute(restaurant_sample, resume_from=journal)
        assert resumed.report.replayed_count == kill_after
        assert to_csv_text(resumed.relation) == to_csv_text(
            uninterrupted.relation
        )
        assert set(resumed.report.cell_outcomes) == _missing_cells(
            restaurant_sample
        )

    def test_kill_switch_is_not_swallowed_by_the_ladder(
        self, restaurant_sample, paper_rfds
    ):
        # ChaosKill derives from BaseException precisely so that the
        # fault-isolation ladder (which catches Exception) can't eat it,
        # even with the most forgiving fallback configured.
        chaos = ChaosInjector(ChaosConfig(kill_after_cells=0))
        with pytest.raises(ChaosKill):
            Renuver(paper_rfds, RenuverConfig(
                fallback="mean_mode"
            )).impute(restaurant_sample, chaos=chaos)
        assert issubclass(ChaosKill, BaseException)
        assert not issubclass(ChaosKill, Exception)
