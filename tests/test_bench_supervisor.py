"""Tier-1 smoke test for the supervised-runtime benchmark.

Runs ``benchmarks/bench_supervisor.py``'s ``run_bench`` with a tiny
loader (40 Restaurant tuples, a hand-written RFD set, one repeat) so the
bench's code path — three-mode timing, outcome-equality check, JSON
artifact — is exercised on every test run without the cost of RFD
discovery.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

from repro import load_dataset
from repro.rfd import parse_rfd

BENCHMARKS_DIR = Path(__file__).resolve().parent.parent / "benchmarks"


@pytest.fixture()
def bench_module(monkeypatch):
    monkeypatch.syspath_prepend(str(BENCHMARKS_DIR))
    sys.modules.pop("bench_supervisor", None)
    import bench_supervisor

    yield bench_supervisor
    sys.modules.pop("bench_supervisor", None)


def tiny_loader(name):
    assert name == "restaurant"
    relation = load_dataset("restaurant", n_tuples=40, seed=0)
    rfds = [
        parse_rfd(text)
        for text in [
            "Name(<=4) -> Phone(<=1)",
            "Address(<=3), City(<=2) -> Phone(<=2)",
            "Phone(<=1) -> Class(<=0)",
            "Class(<=0) -> Type(<=5)",
            "Name(<=6), City(<=2) -> Address(<=8)",
            "Phone(<=2) -> City(<=2)",
            "City(<=0), Type(<=3) -> Name(<=12)",
        ]
    ]
    return relation, rfds


def test_run_bench_smoke(bench_module, tmp_path):
    result_path = tmp_path / "BENCH_supervisor.json"
    summary = bench_module.run_bench(
        ("restaurant",),
        result_path=result_path,
        repeats=1,
        loader=tiny_loader,
    )

    assert result_path.exists()
    assert json.loads(result_path.read_text(encoding="utf-8")) == summary

    entry = summary["datasets"]["restaurant"]
    assert entry["n_tuples"] == 40
    assert entry["missing_cells"] > 0
    # Every mode — sequential, workers=1, workers=2 — must converge on
    # the same relation and per-cell outcomes.
    assert entry["identical_outcomes"] is True
    assert entry["sequential_seconds"] > 0
    assert entry["workers1_seconds"] > 0
    assert entry["workers2_seconds"] > 0
    assert entry["workers2_rounds"] > 0
    assert (
        entry["workers2_accepted"] + entry["workers2_recomputed"]
        == entry["missing_cells"]
    )
    assert entry["workers1_overhead"] == pytest.approx(
        entry["workers1_seconds"] / entry["sequential_seconds"] - 1.0
    )
