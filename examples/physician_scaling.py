"""Physician scaling: time/memory behaviour as the instance grows.

Mirrors the paper's Table 5 stress protocol at laptop scale: the
Physician dataset (18 attributes) at growing tuple counts, a fixed 1%
missing rate, RENUVER with discovered RFDs, wall time and peak memory per
run, with a time budget standing in for the paper's 48-hour limit.  Run
with::

    python examples/physician_scaling.py [budget_seconds]
"""

import sys

from repro import (
    DiscoveryConfig,
    Renuver,
    RenuverConfig,
    dataset_validator,
    discover_rfds,
    inject_missing,
    load_dataset,
    score_imputation,
)
from repro.exceptions import BudgetExceededError
from repro.utils.memory import format_bytes
from repro.utils.timer import format_duration


def main(budget_seconds: float = 120.0) -> None:
    sizes = [104, 208, 519, 1036]
    validator = dataset_validator("physician")
    print(f"{'tuples':>7} {'#RFDs':>6} {'recall':>7} {'precision':>10} "
          f"{'time':>9} {'memory':>10}")
    for size in sizes:
        relation = load_dataset("physician", n_tuples=size)
        discovery = discover_rfds(
            relation,
            DiscoveryConfig(
                threshold_limit=3,
                max_lhs_size=1,
                grid_size=3,
                max_per_rhs=20,
                max_pairs=200_000,
            ),
        )
        injection = inject_missing(relation, rate=0.01, seed=3)
        engine = Renuver(
            discovery.all_rfds,
            RenuverConfig(
                track_memory=True, time_budget_seconds=budget_seconds
            ),
        )
        try:
            result = engine.impute(injection.relation)
        except BudgetExceededError:
            print(f"{size:>7} {len(discovery.rfds):>6} "
                  f"{'TL':>7} {'-':>10} {'-':>9} {'-':>10}")
            break
        scores = score_imputation(result.relation, injection, validator)
        print(
            f"{size:>7} {len(discovery.rfds):>6} "
            f"{scores.recall:>7.3f} {scores.precision:>10.3f} "
            f"{format_duration(result.report.elapsed_seconds):>9} "
            f"{format_bytes(result.report.peak_bytes):>10}"
        )


if __name__ == "__main__":
    budget = float(sys.argv[1]) if len(sys.argv) > 1 else 120.0
    main(budget)
