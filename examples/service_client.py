"""The imputation service driven by the hardened retrying client.

Boots the service in-process on a free port (the same server
``python -m repro serve`` runs), then exercises the full API through
:class:`repro.service.ServiceClient` — the library client with capped
exponential backoff, ``Retry-After`` handling and the idempotency-aware
retry policy the chaos suite validates:

1. a **one-shot** ``POST /v1/impute`` with a pinned RFD set;
2. the same request *without* RFDs, twice — the second hit comes from
   the fingerprint-keyed artifact cache with zero discovery work;
3. a **warm-start session**: open, stream tuples in, impute the queued
   cells, read the per-cell provenance, close;
4. the liveness/readiness split plus a peek at ``GET /metrics``.

Run with::

    python examples/service_client.py

See ``docs/SERVICE.md`` for the API reference and
``repro/service/client.py`` for the retry policy this demo rides on.
"""

import tempfile
import threading

from repro.service import ServiceClient, build_server

CSV = (
    "Name,City,Phone\n"
    "arnie morton's,los angeles,310-246-1501\n"
    "arnie morton's,los angeles,\n"
    "art's deli,studio city,818-762-1221\n"
    "art's deli,studio city,818-762-1221\n"
    "campanile,los angeles,213-938-1447\n"
)


def main() -> None:
    cache_dir = tempfile.mkdtemp(prefix="renuver-cache-")
    server = build_server("127.0.0.1", 0, artifact_dir=cache_dir)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServiceClient(
        f"http://127.0.0.1:{server.port}", deadline_seconds=30.0
    )
    print(f"service up at {client.base_url} (cache: {cache_dir})")

    # --- 1. one-shot imputation with a pinned RFD set -----------------
    out = client.impute({
        "csv": CSV,
        "rfds": ["Name(<=0),City(<=0) -> Phone(<=0)"],
    })
    report = out["report"]
    print(f"\n--- one-shot ({out['rfd_source']} RFDs) ---")
    print(f"imputed {report['imputed_cells']}/{report['missing_cells']} "
          f"cells, fill rate {report['fill_rate']:.0%}")
    print(out["csv"].strip().splitlines()[2])  # the repaired tuple

    # --- 2. discovery, cold then warm ---------------------------------
    print("\n--- discovery path: cold vs warm ---")
    for attempt in ("cold", "warm"):
        out = client.impute({
            "csv": CSV, "discovery": {"limit": 0, "max_lhs": 2},
        })
        print(f"{attempt}: rfd_source={out['rfd_source']}, "
              f"imputed {out['report']['imputed_cells']}")

    # --- 3. a warm-start session --------------------------------------
    print("\n--- session: append and impute ---")
    session = client.open_session({
        "csv": CSV, "rfds": ["Name(<=0),City(<=0) -> Phone(<=0)"],
    })
    sid = session["id"]
    appended = client.append_tuples(sid, [
        ["campanile", "los angeles", None],
        ["spago", "west hollywood", "310-652-4025"],
    ])
    print(f"appended rows {appended['rows']}, "
          f"{appended['pending']} cells pending")
    round_out = client.impute_session(sid)
    for outcome in round_out["outcomes"]:
        print(f"  row {outcome['row']} {outcome['attribute']}: "
              f"{outcome['status']} -> {outcome['value']!r} "
              f"(donor row {outcome['source_row']})")
    client.delete_session(sid)

    # --- 4. liveness, readiness, metrics ------------------------------
    ready = client.readiness()
    print(f"\nlive: {client.health()['status']}, "
          f"ready: {ready['status']} "
          f"(brownout tier {ready['brownout']['tier']}, "
          f"{ready['sessions']} sessions, "
          f"{ready['recovered_sessions']} recovered)")
    interesting = [
        line for line in client.metrics_text().splitlines()
        if line.startswith(("renuver_http_requests_total",
                            "renuver_artifact_cache_hits_total"))
    ]
    print("\n--- /metrics (excerpt) ---")
    print("\n".join(interesting))

    server.drain()
    print(f"\nserver drained cleanly ({client.retries} client retries)")


if __name__ == "__main__":
    main()
