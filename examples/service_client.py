"""The imputation service driven by a pure-stdlib HTTP client.

Boots the service in-process on a free port (the same server
``python -m repro serve`` runs), then exercises the full API with
nothing but :mod:`urllib`:

1. a **one-shot** ``POST /v1/impute`` with a pinned RFD set;
2. the same request *without* RFDs, twice — the second hit comes from
   the fingerprint-keyed artifact cache with zero discovery work;
3. a **warm-start session**: open, stream tuples in, impute the queued
   cells, read the per-cell provenance, close;
4. a peek at ``GET /metrics`` for the cache-hit and request counters.

Run with::

    python examples/service_client.py

See ``docs/SERVICE.md`` for the API reference.
"""

import json
import tempfile
import threading
import urllib.request

from repro.service import build_server

CSV = (
    "Name,City,Phone\n"
    "arnie morton's,los angeles,310-246-1501\n"
    "arnie morton's,los angeles,\n"
    "art's deli,studio city,818-762-1221\n"
    "art's deli,studio city,818-762-1221\n"
    "campanile,los angeles,213-938-1447\n"
)


def call(base: str, method: str, path: str, body: dict | None = None):
    """One JSON request/response round trip via urllib."""
    data = json.dumps(body).encode("utf-8") if body is not None else None
    request = urllib.request.Request(
        base + path, data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request) as response:
        return json.loads(response.read().decode("utf-8"))


def main() -> None:
    cache_dir = tempfile.mkdtemp(prefix="renuver-cache-")
    server = build_server("127.0.0.1", 0, artifact_dir=cache_dir)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{server.port}"
    print(f"service up at {base} (cache: {cache_dir})")

    # --- 1. one-shot imputation with a pinned RFD set -----------------
    out = call(base, "POST", "/v1/impute", {
        "csv": CSV,
        "rfds": ["Name(<=0),City(<=0) -> Phone(<=0)"],
    })
    report = out["report"]
    print(f"\n--- one-shot ({out['rfd_source']} RFDs) ---")
    print(f"imputed {report['imputed_cells']}/{report['missing_cells']} "
          f"cells, fill rate {report['fill_rate']:.0%}")
    print(out["csv"].strip().splitlines()[2])  # the repaired tuple

    # --- 2. discovery, cold then warm ---------------------------------
    print("\n--- discovery path: cold vs warm ---")
    for attempt in ("cold", "warm"):
        out = call(base, "POST", "/v1/impute", {
            "csv": CSV, "discovery": {"limit": 0, "max_lhs": 2},
        })
        print(f"{attempt}: rfd_source={out['rfd_source']}, "
              f"imputed {out['report']['imputed_cells']}")

    # --- 3. a warm-start session --------------------------------------
    print("\n--- session: append and impute ---")
    session = call(base, "POST", "/v1/sessions", {
        "csv": CSV, "rfds": ["Name(<=0),City(<=0) -> Phone(<=0)"],
    })
    sid = session["id"]
    appended = call(base, "POST", f"/v1/sessions/{sid}/tuples", {
        "rows": [
            ["campanile", "los angeles", None],
            ["spago", "west hollywood", "310-652-4025"],
        ],
    })
    print(f"appended rows {appended['rows']}, "
          f"{appended['pending']} cells pending")
    round_out = call(base, "POST", f"/v1/sessions/{sid}/impute")
    for outcome in round_out["outcomes"]:
        print(f"  row {outcome['row']} {outcome['attribute']}: "
              f"{outcome['status']} -> {outcome['value']!r} "
              f"(donor row {outcome['source_row']})")
    call(base, "DELETE", f"/v1/sessions/{sid}")

    # --- 4. the metrics endpoint --------------------------------------
    with urllib.request.urlopen(base + "/metrics") as response:
        exposition = response.read().decode("utf-8")
    interesting = [
        line for line in exposition.splitlines()
        if line.startswith(("renuver_http_requests_total",
                            "renuver_artifact_cache_hits_total"))
    ]
    print("\n--- /metrics (excerpt) ---")
    print("\n".join(interesting))

    server.drain()
    print("\nserver drained cleanly")


if __name__ == "__main__":
    main()
