"""Compare RENUVER against the paper's baselines on the Glass dataset.

Mirrors the comparative evaluation of Section 6.3 (Figure 3d-f): RENUVER,
Derand, HoloClean-lite and grey-kNN run on the same injected variants of
the all-numeric Glass dataset; mean/mode is added as a floor.  Run with::

    python examples/compare_imputers.py
"""

from repro import (
    DerandImputer,
    DiscoveryConfig,
    GreyKNNImputer,
    HolocleanLiteImputer,
    MeanModeImputer,
    Renuver,
    build_injection_suite,
    compare_approaches,
    dataset_validator,
    discover_dcs,
    discover_rfds,
    load_dataset,
)


def main() -> None:
    glass = load_dataset("glass")
    print(f"Glass: {glass.n_tuples} tuples x {glass.n_attributes} attrs")

    print("Discovering metadata ...")
    rfds = discover_rfds(
        glass,
        DiscoveryConfig(
            threshold_limit=3, max_lhs_size=2, grid_size=3, max_per_rhs=25
        ),
    )
    dcs = discover_dcs(glass, max_lhs=1)
    print(f"  {len(rfds.rfds)} RFDs, {len(dcs)} denial constraints")

    suite = build_injection_suite(
        glass, rates=[0.01, 0.03, 0.05], variants=2, seed=1
    )
    validator = dataset_validator("glass")

    factories = {
        "renuver": lambda: Renuver(rfds.all_rfds),
        "derand": lambda: DerandImputer(rfds.rfds, max_candidates=8),
        "holoclean": lambda: HolocleanLiteImputer(
            dcs, training_cells=120, seed=0
        ),
        "knn": lambda: GreyKNNImputer(k=5),
        "mean-mode": MeanModeImputer,
    }

    print("Running all approaches on the same injected variants ...")
    outcomes = compare_approaches(factories, suite, validator)

    header = f"{'approach':<12}" + "".join(
        f"  rate={rate:.0%}: P / R / F1      " for rate in suite.rates()
    )
    print()
    print(header)
    for approach, result in outcomes.items():
        cells = []
        for rate in suite.rates():
            if result.status_at(rate) != "ok":
                cells.append(f"  {result.status_at(rate):^22}")
                continue
            scores = result.mean_scores(rate)
            cells.append(
                f"  {scores.precision:.2f} / {scores.recall:.2f} / "
                f"{scores.f1:.2f}    "
            )
        print(f"{approach:<12}" + "".join(cells))

    print()
    print("Mean wall time per run (seconds):")
    for approach, result in outcomes.items():
        times = " ".join(
            f"{result.mean_elapsed(rate):7.2f}" for rate in suite.rates()
        )
        print(f"  {approach:<12} {times}")


if __name__ == "__main__":
    main()
