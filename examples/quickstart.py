"""Quickstart: impute a small relation with hand-written RFDs.

Reproduces the paper's running example (Table 2 / Figure 1): a sample of
the Restaurant dataset with four missing values, repaired with the seven
RFDs of Figure 1.  Run with::

    python examples/quickstart.py
"""

from repro import MISSING, Relation, Renuver, parse_rfd


def main() -> None:
    relation = Relation.from_rows(
        ["Name", "City", "Phone", "Type", "Class"],
        [
            ["Granita", "Malibu", "310/456-0488", "Californian", 6],
            ["Chinos Main", "LA", "310-932-9025", "French", 5],
            ["Citrus", "Los Angeles", "213/857-0034", "Californian", 6],
            ["Citrus", "Los Angeles", MISSING, "Californian", 6],
            ["Fenix", "Hollywood", "213/848-6677", MISSING, 5],
            ["Fenix Argyle", MISSING, "213/848-6677", "French (new)", 5],
            ["C. Main", "Los Angeles", MISSING, "French", 5],
        ],
        name="restaurant-sample",
    )

    # The RFD set of Figure 1 (phi_1 .. phi_7), in the paper's notation.
    rfds = [
        parse_rfd(text)
        for text in [
            "Name(<=8), Phone(<=0), Class(<=1) -> Type(<=0)",
            "Class(<=0) -> Type(<=5)",
            "City(<=2) -> Phone(<=2)",
            "Name(<=4) -> Phone(<=1)",
            "Name(<=8), Phone(<=0) -> City(<=9)",
            "Name(<=6), City(<=9) -> Phone(<=0)",
            "Phone(<=1) -> Class(<=0)",
        ]
    ]

    print("Before imputation:")
    print(relation.to_text())
    print()

    engine = Renuver(rfds)

    # Peek at the candidates for t7[Phone] (Example 5.8 of the paper):
    candidates = engine.explain(relation, 6, "Phone")
    print("Candidates for t7[Phone], best first:")
    for candidate in candidates:
        print(
            f"  tuple {candidate.row}: {candidate.value!r} "
            f"(distance {candidate.distance:g} via {candidate.rfd})"
        )
    print()

    result = engine.impute(relation)

    print("After imputation:")
    print(result.relation.to_text())
    print()
    print("What happened:")
    for outcome in result.report:
        print(f"  {outcome}")
    print()
    print(result.report.summary())


if __name__ == "__main__":
    main()
