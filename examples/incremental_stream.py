"""Future-work extensions in action: incremental + multi-source.

Demonstrates the two imputation extensions the paper's conclusion
proposes (Section 7):

1. an :class:`~repro.extensions.ImputationSession` receiving physician
   records in batches, imputing only the newly arrived missing cells and
   retrying previously un-imputable ones once a donor appears;
2. a :class:`~repro.extensions.MultiSourceRenuver` borrowing donor
   tuples from a second dataset when the target has none.

Run with::

    python examples/incremental_stream.py
"""

from repro import (
    DiscoveryConfig,
    MISSING,
    MultiSourceRenuver,
    discover_rfds,
    load_dataset,
)
from repro.extensions import ImputationSession


def incremental_demo() -> None:
    print("--- Incremental session (streaming physician records) ---")
    full = load_dataset("physician", n_tuples=240, seed=0)
    head, stream = full.head(120), full
    discovery = discover_rfds(
        head,
        DiscoveryConfig(
            threshold_limit=3, max_lhs_size=1, grid_size=3, max_per_rhs=15
        ),
    )
    print(f"RFDs from the first 120 records: {len(discovery.all_rfds)}")

    session = ImputationSession(head, discovery.all_rfds)
    batch_size = 40
    for start in range(120, stream.n_tuples, batch_size):
        batch = []
        for row in range(start, min(start + batch_size, stream.n_tuples)):
            values = list(stream.row_values(row))
            # Simulate transmission loss: drop the City of every 7th row.
            if row % 7 == 0:
                values[stream.index_of("City")] = MISSING
            batch.append(values)
        session.append(batch)
        result = session.impute_pending()
        print(
            f"batch @{start:>4}: {len(batch)} new tuples, "
            f"{result.report.imputed_count} imputed, "
            f"{len(session.unimputed_cells())} awaiting retry"
        )
    print(f"session relation: {session.relation.n_tuples} tuples, "
          f"{session.relation.count_missing()} still missing")


def multi_source_demo() -> None:
    print()
    print("--- Multi-source candidates (two restaurant snapshots) ---")
    # Two snapshots of the same integration pipeline: the target holds a
    # 150-row excerpt, the auxiliary snapshot the remaining listings.
    full = load_dataset("restaurant", n_tuples=600, seed=1)
    target = full.take(list(range(150)), name="target-snapshot")
    source = full.take(
        list(range(150, full.n_tuples)), name="aux-snapshot"
    )
    discovery = discover_rfds(
        source,
        DiscoveryConfig(
            threshold_limit=6, max_lhs_size=2, grid_size=3, max_per_rhs=20
        ),
    )
    # Blank some cities in the target.
    from repro import inject_missing

    injection = inject_missing(
        target, count=12, seed=5, attributes=["City", "Phone"]
    )

    dirty = injection.relation
    from repro import Renuver

    alone = Renuver(discovery.all_rfds).impute(dirty)
    engine = MultiSourceRenuver(discovery.all_rfds, [source])
    result = engine.impute(dirty)
    from_source = sum(
        1
        for outcome in result.report.imputed_cells()
        if engine.donor_origin(outcome, dirty) == source.name
    )
    print(
        f"target alone : {alone.report.imputed_count}/{injection.count} "
        f"cells imputed"
    )
    print(
        f"with source  : {result.report.imputed_count}/{injection.count} "
        f"cells imputed ({from_source} donors from the auxiliary snapshot)"
    )


if __name__ == "__main__":
    incremental_demo()
    multi_source_demo()
