"""Restaurant cleaning: the full paper pipeline on a realistic dataset.

Discovers RFDs from the (clean) synthetic Restaurant dataset, injects
artificial missing values at a chosen rate, imputes them with RENUVER and
scores the result with the paper's rule-based validator — phone numbers
count as correct regardless of separators, city aliases are
interchangeable.  Run with::

    python examples/restaurant_cleaning.py [missing_rate] [threshold]

e.g. ``python examples/restaurant_cleaning.py 0.02 6``.
"""

import sys

from repro import (
    DiscoveryConfig,
    Renuver,
    dataset_validator,
    discover_rfds,
    inject_missing,
    load_dataset,
    score_imputation,
)


def main(missing_rate: float = 0.02, threshold_limit: float = 6) -> None:
    print(f"Loading restaurant dataset ...")
    clean = load_dataset("restaurant")
    print(f"  {clean.n_tuples} tuples x {clean.n_attributes} attributes")

    print(f"Discovering RFDs (threshold limit {threshold_limit}) ...")
    discovery = discover_rfds(
        clean,
        DiscoveryConfig(
            threshold_limit=threshold_limit,
            max_lhs_size=2,
            grid_size=4,
            max_per_rhs=40,
        ),
    )
    print(f"  {discovery.summary()}")
    print("  sample of discovered RFDs:")
    for rfd in discovery.rfds[:5]:
        print(f"    {rfd}")

    print(f"Injecting {missing_rate:.0%} missing values ...")
    injection = inject_missing(clean, rate=missing_rate, seed=7)
    print(f"  {injection.count} cells blanked")

    print("Imputing with RENUVER ...")
    result = Renuver(discovery.all_rfds).impute(injection.relation)
    print(result.report.summary())

    validator = dataset_validator("restaurant")
    scores = score_imputation(result.relation, injection, validator)
    print()
    print(f"Rule-validated scores: {scores}")

    # Show a few concrete repairs, including rule-accepted variants.
    print()
    print("Sample repairs (imputed vs expected):")
    shown = 0
    for outcome in result.report.imputed_cells():
        expected = injection.ground_truth[(outcome.row, outcome.attribute)]
        verdict = (
            "OK"
            if validator.is_correct(outcome.attribute, outcome.value,
                                    expected)
            else "WRONG"
        )
        print(
            f"  [{verdict:5}] ({outcome.row}, {outcome.attribute}): "
            f"{outcome.value!r} vs expected {expected!r}"
        )
        shown += 1
        if shown >= 10:
            break


if __name__ == "__main__":
    rate = float(sys.argv[1]) if len(sys.argv) > 1 else 0.02
    limit = float(sys.argv[2]) if len(sys.argv) > 2 else 6
    main(rate, limit)
