"""A tour of RFD discovery: thresholds, keys, dominance, persistence.

Walks through the discovery substrate on the Bridges dataset: how the
threshold limit trades RFD count against tightness (the effect behind the
paper's Table 3 RFD columns), what key RFDs look like, and how to save a
discovered set to the textual format RENUVER can reload.  Run with::

    python examples/discovery_tour.py
"""

import tempfile
from pathlib import Path

from repro import (
    DiscoveryConfig,
    discover_rfds,
    load_dataset,
    load_rfds,
    save_rfds,
)


def main() -> None:
    bridges = load_dataset("bridges")
    print(f"Bridges: {bridges.n_tuples} tuples x "
          f"{bridges.n_attributes} attributes")
    print(bridges.to_text(limit=5))
    print()

    # Table-3 style sweep: RFD count per threshold limit.
    print(f"{'threshold limit':>16} {'#RFDs':>7} {'#keys':>7} "
          f"{'elapsed':>9}")
    results = {}
    for limit in (3, 6, 9, 12, 15):
        result = discover_rfds(
            bridges,
            DiscoveryConfig(
                threshold_limit=limit, max_lhs_size=2, grid_size=3
            ),
        )
        results[limit] = result
        print(
            f"{limit:>16} {len(result.rfds):>7} "
            f"{len(result.key_rfds):>7} "
            f"{result.elapsed_seconds:>8.2f}s"
        )

    print()
    chosen = results[6]
    print("Per-RHS breakdown at limit 6:")
    for rhs, count in sorted(chosen.per_rhs_counts.items()):
        print(f"  {rhs:<10} {count}")

    print()
    print("Tightest RFDs at limit 6:")
    tightest = sorted(
        chosen.rfds, key=lambda rfd: (rfd.rhs_threshold, str(rfd))
    )
    for rfd in tightest[:8]:
        print(f"  {rfd}")

    if chosen.key_rfds:
        print()
        print("A key RFD (vacuously holding, filtered by RENUVER):")
        print(f"  {chosen.key_rfds[0]}")

    # Persist and reload.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "bridges_rfds.txt"
        save_rfds(chosen.rfds, path)
        reloaded = load_rfds(path)
        assert reloaded == chosen.rfds
        print()
        print(f"Saved and reloaded {len(reloaded)} RFDs via {path.name}")


if __name__ == "__main__":
    main()
