"""Crash-safe file writes: write to a temp file, then rename.

POSIX ``rename`` within one directory is atomic, so readers of the
target path either see the old complete content or the new complete
content — never a half-written file.  The imputation journal and the
CSV writer use this so a run killed mid-write cannot corrupt outputs it
already produced.

Disk-fault seam
---------------
All writes funnel through :func:`check_disk_fault` before touching the
filesystem.  Production runs pay one ``None`` check; the chaos harness
(:meth:`repro.robustness.chaos.ChaosInjector.disk_faults`) installs a
seeded hook here that raises ``OSError(ENOSPC)`` deterministically, so
every consumer of atomic writes — the artifact cache, the run-state
store, the CSV writer, the checkpoint journal — gets its full-disk
behaviour exercised in tests.
"""

from __future__ import annotations

import os
import tempfile
from contextlib import contextmanager
from pathlib import Path
from typing import Callable, Iterator

#: When set, called with the target path before any disk write; raising
#: ``OSError`` from the hook simulates a full / failing disk.
_fault_hook: Callable[[Path], None] | None = None


def set_fault_hook(
    hook: Callable[[Path], None] | None,
) -> Callable[[Path], None] | None:
    """Install (or clear, with ``None``) the disk-fault hook.

    Returns the previously installed hook so callers can restore it.
    Prefer the :func:`disk_fault_injection` context manager, which
    restores automatically.
    """
    global _fault_hook
    previous = _fault_hook
    _fault_hook = hook
    return previous


@contextmanager
def disk_fault_injection(
    hook: Callable[[Path], None],
) -> Iterator[None]:
    """Scope the disk-fault hook to a ``with`` block (test helper)."""
    previous = set_fault_hook(hook)
    try:
        yield
    finally:
        set_fault_hook(previous)


def check_disk_fault(path: str | Path) -> None:
    """Give the installed fault hook a chance to fail this write.

    Called by :func:`atomic_write_text` and by the journal's append
    path.  A no-op unless the chaos harness installed a hook.
    """
    hook = _fault_hook
    if hook is not None:
        hook(Path(path))


def atomic_write_text(
    path: str | Path, text: str, *, encoding: str = "utf-8"
) -> None:
    """Write ``text`` to ``path`` atomically (temp file + rename).

    The temp file lives in the target's directory so the final
    ``os.replace`` never crosses a filesystem boundary.  On any error
    the temp file is removed and the target is left untouched.
    """
    path = Path(path)
    check_disk_fault(path)
    directory = path.parent if str(path.parent) else Path(".")
    fd, tmp_name = tempfile.mkstemp(
        dir=directory, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding=encoding, newline="") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
