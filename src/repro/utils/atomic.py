"""Crash-safe file writes: write to a temp file, then rename.

POSIX ``rename`` within one directory is atomic, so readers of the
target path either see the old complete content or the new complete
content — never a half-written file.  The imputation journal and the
CSV writer use this so a run killed mid-write cannot corrupt outputs it
already produced.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path


def atomic_write_text(
    path: str | Path, text: str, *, encoding: str = "utf-8"
) -> None:
    """Write ``text`` to ``path`` atomically (temp file + rename).

    The temp file lives in the target's directory so the final
    ``os.replace`` never crosses a filesystem boundary.  On any error
    the temp file is removed and the target is left untouched.
    """
    path = Path(path)
    directory = path.parent if str(path.parent) else Path(".")
    fd, tmp_name = tempfile.mkstemp(
        dir=directory, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding=encoding, newline="") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
