"""Deterministic randomness helpers.

Every stochastic step in the reproduction (dataset synthesis, missing-value
injection, baseline tie-breaking) derives its seed from a root seed plus a
stable string label, so an experiment re-run with the same configuration
produces byte-identical inputs — the property the paper relies on when it
averages five injected variants per missing rate.
"""

from __future__ import annotations

import hashlib
import random

_MASK64 = (1 << 64) - 1


def derive_seed(root_seed: int, *labels: object) -> int:
    """Derive a 64-bit child seed from ``root_seed`` and stable labels.

    The derivation hashes the textual representation of the labels, so
    ``derive_seed(7, "restaurant", 3)`` is stable across processes and
    Python versions (unlike ``hash()``).
    """
    digest = hashlib.sha256()
    digest.update(str(int(root_seed)).encode("utf-8"))
    for label in labels:
        digest.update(b"\x1f")
        digest.update(repr(label).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big") & _MASK64


def spawn_rng(root_seed: int, *labels: object) -> random.Random:
    """Return an independent :class:`random.Random` for a labelled purpose."""
    return random.Random(derive_seed(root_seed, *labels))
