"""Peak-memory tracking for the stress-test benchmarks.

The paper's Tables 4 and 5 report peak memory per run and enforce a
30 GB limit ("ML" entries).  :class:`MemoryTracker` reports a comparable
number with two interchangeable methods:

* ``rss`` — the process' peak resident set (Linux ``VmHWM``), reset at
  block entry via ``/proc/self/clear_refs``.  Near-zero overhead and
  closest to what the paper measured (whole-process memory), but Linux
  only.
* ``tracemalloc`` — Python-heap allocation peaks.  Portable and
  per-block exact, but slows allocation-heavy code several-fold.

The default ``auto`` picks ``rss`` when the proc interface is usable
and falls back to ``tracemalloc`` otherwise.
"""

from __future__ import annotations

import tracemalloc
from pathlib import Path

from repro.exceptions import BudgetExceededError

_UNITS = ["B", "KB", "MB", "GB", "TB"]
_STATUS_PATH = Path("/proc/self/status")
_CLEAR_REFS_PATH = Path("/proc/self/clear_refs")
_METHODS = ("auto", "rss", "tracemalloc")


def _read_vm_hwm_bytes() -> int | None:
    """Current peak resident set in bytes, or ``None`` off-Linux."""
    try:
        for line in _STATUS_PATH.read_text().splitlines():
            if line.startswith("VmHWM:"):
                return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        return None
    return None


def _reset_vm_hwm() -> bool:
    """Reset the kernel's peak-RSS watermark; False when unsupported."""
    try:
        _CLEAR_REFS_PATH.write_text("5")
    except OSError:
        return False
    return True


def rss_tracking_supported() -> bool:
    """Whether the cheap RSS method works on this platform."""
    return _read_vm_hwm_bytes() is not None and _reset_vm_hwm()


class MemoryTracker:
    """Track peak memory inside a ``with`` block.

    Parameters
    ----------
    budget_bytes:
        Optional cap; :meth:`check_budget` raises
        :class:`~repro.exceptions.BudgetExceededError` beyond it.
    method:
        ``"auto"`` (default), ``"rss"`` or ``"tracemalloc"`` — see the
        module docstring.
    """

    def __init__(
        self,
        budget_bytes: int | None = None,
        *,
        method: str = "auto",
    ) -> None:
        if budget_bytes is not None and budget_bytes <= 0:
            raise ValueError("budget_bytes must be positive when given")
        if method not in _METHODS:
            raise ValueError(f"method must be one of {_METHODS}")
        self.budget_bytes = budget_bytes
        if method == "auto":
            method = "rss" if rss_tracking_supported() else "tracemalloc"
        self.method = method
        self._owns_trace = False
        self._baseline = 0
        self._peak: int | None = None

    def __enter__(self) -> "MemoryTracker":
        if self.method == "rss":
            if not _reset_vm_hwm():
                # Interface vanished (e.g. restricted container):
                # degrade to tracemalloc transparently.
                self.method = "tracemalloc"
        if self.method == "tracemalloc":
            if not tracemalloc.is_tracing():
                tracemalloc.start()
                self._owns_trace = True
            tracemalloc.reset_peak()
            self._baseline = tracemalloc.get_traced_memory()[0]
        self._peak = None
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._peak = self._current_peak()
        if self._owns_trace:
            tracemalloc.stop()
            self._owns_trace = False

    def _current_peak(self) -> int:
        if self.method == "rss":
            value = _read_vm_hwm_bytes()
            return value if value is not None else 0
        _, peak = tracemalloc.get_traced_memory()
        return max(0, peak - self._baseline)

    @property
    def peak_bytes(self) -> int:
        """Peak bytes observed (live inside the block, final after)."""
        if self._peak is not None:
            return self._peak
        if self.method == "rss":
            return self._current_peak()
        if tracemalloc.is_tracing():
            return self._current_peak()
        return 0

    @property
    def expired(self) -> bool:
        """Whether the configured memory budget has been exhausted."""
        if self.budget_bytes is None:
            return False
        return self.peak_bytes > self.budget_bytes

    def check_budget(self, context: str = "operation") -> None:
        """Raise :class:`BudgetExceededError` if the budget is exhausted.

        Mirrors :meth:`repro.utils.timer.Timer.check_budget`: the
        message carries both the budget and the measured peak, each
        rendered through :func:`format_bytes`.
        """
        if self.expired:
            peak = self.peak_bytes
            raise BudgetExceededError(
                f"{context} exceeded memory budget of "
                f"{format_bytes(self.budget_bytes or 0)} "
                f"(peak {format_bytes(peak)})",
                peak_bytes=peak,
                scope="run",
                kind="memory",
            )


def format_bytes(num_bytes: float) -> str:
    """Render a byte count the way the paper's tables do (``1.38 GB``)."""
    if num_bytes < 0:
        raise ValueError("byte count must be non-negative")
    value = float(num_bytes)
    for unit in _UNITS:
        if value < 1024 or unit == _UNITS[-1]:
            if unit == "B":
                return f"{int(value)} {unit}"
            return f"{value:.2f} {unit}"
        value /= 1024
    raise AssertionError("unreachable")
