"""Monotonic timing helpers used by the runtime and evaluation harness.

The paper reports execution times per imputation run (Tables 4 and 5) and
enforces a 48-hour budget.  :class:`Timer` provides both: a context manager
that measures elapsed time and an optional budget that marks the run
as expired.

Every reading comes from one clock source — :func:`time.perf_counter`
(monotonic), never the wall clock — so budgets survive system clock
adjustments, and telemetry spans (:mod:`repro.telemetry.trace`, built on
the same clock family) line up with budget bookkeeping.
:attr:`Timer.elapsed_ns` exposes the same measurement as integer
nanoseconds for span arithmetic.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.exceptions import BudgetExceededError

_NS_PER_SECOND = 1_000_000_000


class Timer:
    """Measure elapsed monotonic time, optionally against a budget.

    Usage::

        with Timer() as timer:
            run_imputation()
        print(timer.elapsed)

    A ``budget_seconds`` turns the timer into a watchdog: call
    :meth:`check_budget` from long-running loops to abort once the budget
    is exhausted, mirroring the paper's "TL" (time limit) entries.

    ``scope`` labels the budget's blast radius (``"run"`` or ``"cell"``)
    and is carried on the raised
    :class:`~repro.exceptions.BudgetExceededError` so callers can treat
    a per-cell deadline differently from a whole-run limit.  ``clock``
    replaces :func:`time.perf_counter`; the chaos harness injects skewed
    clocks here to trip deadlines deterministically.
    """

    def __init__(
        self,
        budget_seconds: float | None = None,
        *,
        scope: str = "run",
        clock: Callable[[], float] | None = None,
    ) -> None:
        if budget_seconds is not None and budget_seconds <= 0:
            raise ValueError("budget_seconds must be positive when given")
        self.budget_seconds = budget_seconds
        self.scope = scope
        self._clock = clock or time.perf_counter
        self._start: float | None = None
        self._elapsed: float | None = None

    def __enter__(self) -> "Timer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def start(self) -> None:
        """Start (or restart) the clock."""
        self._start = self._clock()
        self._elapsed = None

    def stop(self) -> float:
        """Stop the clock and return the elapsed seconds."""
        if self._start is None:
            raise RuntimeError("Timer.stop() called before start()")
        self._elapsed = self._clock() - self._start
        return self._elapsed

    @property
    def running(self) -> bool:
        """Whether the timer has been started and not yet stopped."""
        return self._start is not None and self._elapsed is None

    @property
    def elapsed(self) -> float:
        """Elapsed seconds: final if stopped, live if still running."""
        if self._start is None:
            return 0.0
        if self._elapsed is not None:
            return self._elapsed
        return self._clock() - self._start

    @property
    def elapsed_ns(self) -> int:
        """:attr:`elapsed` as integer nanoseconds (same monotonic clock).

        Telemetry spans and budget checks share this one clock source;
        do not mix with wall-clock (:func:`time.time`) readings.
        """
        return int(self.elapsed * _NS_PER_SECOND)

    @property
    def expired(self) -> bool:
        """Whether the configured budget has been exhausted."""
        if self.budget_seconds is None:
            return False
        return self.elapsed > self.budget_seconds

    def check_budget(self, context: str = "operation") -> None:
        """Raise :class:`BudgetExceededError` if the budget is exhausted.

        The message renders both the budget and the measured elapsed
        time through :func:`format_duration`, so run logs and the
        paper-style "TL" entries read consistently.
        """
        if self.expired:
            elapsed = self.elapsed
            raise BudgetExceededError(
                f"{context} exceeded time budget of "
                f"{format_duration(self.budget_seconds or 0.0)} "
                f"(elapsed {format_duration(elapsed)})",
                elapsed_seconds=elapsed,
                scope=self.scope,
                kind="time",
            )


def format_duration(seconds: float) -> str:
    """Render a duration the way the paper's tables do (``1h 10m``, ``14s``).

    Values under one second are shown in milliseconds (``470ms``); larger
    values use the two most significant units.
    """
    if seconds < 0:
        raise ValueError("duration must be non-negative")
    if seconds < 1:
        return f"{seconds * 1000:.0f}ms"
    total = int(round(seconds))
    hours, remainder = divmod(total, 3600)
    minutes, secs = divmod(remainder, 60)
    if hours:
        return f"{hours}h {minutes}m"
    if minutes:
        return f"{minutes}m {secs}s"
    return f"{secs}s"
