"""Small shared utilities: timing, memory, fingerprints and seeded RNG."""

from repro.utils.atomic import atomic_write_text
from repro.utils.fingerprint import (
    fingerprint_matches,
    payload_fingerprint,
    relation_fingerprint,
)
from repro.utils.timer import Timer, format_duration
from repro.utils.memory import MemoryTracker, format_bytes
from repro.utils.rng import derive_seed, spawn_rng

__all__ = [
    "Timer",
    "atomic_write_text",
    "fingerprint_matches",
    "format_duration",
    "MemoryTracker",
    "format_bytes",
    "derive_seed",
    "payload_fingerprint",
    "relation_fingerprint",
    "spawn_rng",
]
