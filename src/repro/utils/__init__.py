"""Small shared utilities: timing, memory tracking and seeded RNG helpers."""

from repro.utils.atomic import atomic_write_text
from repro.utils.timer import Timer, format_duration
from repro.utils.memory import MemoryTracker, format_bytes
from repro.utils.rng import derive_seed, spawn_rng

__all__ = [
    "Timer",
    "atomic_write_text",
    "format_duration",
    "MemoryTracker",
    "format_bytes",
    "derive_seed",
    "spawn_rng",
]
