"""Content fingerprints shared across subsystems.

The SHA-256 *relation fingerprint* identifies one exact dirty instance:
it is computed over the same rendering ``to_csv_text`` produces, so it
is stable across copies, process restarts and machines.  The journal
uses it to refuse resuming onto a different relation; the service's
artifact cache (:mod:`repro.service.artifacts`) uses it as the cache
key that lets a warm engine skip RFD discovery entirely.

Journals written before the SHA-256 switch carry an MD5 fingerprint
(32 hex chars); :func:`fingerprint_matches` still verifies those by
digest length, using ``usedforsecurity=False`` so FIPS-enabled builds
keep working.

:func:`payload_fingerprint` hashes an arbitrary JSON-serializable
payload (canonical form: sorted keys, no whitespace) — the artifact
cache combines it with the relation fingerprint so differently
configured discovery runs never collide.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from repro.dataset.relation import Relation

__all__ = [
    "fingerprint_matches",
    "payload_fingerprint",
    "relation_fingerprint",
]


def relation_fingerprint(relation: Relation) -> str:
    """SHA-256 over schema and cells — identifies the dirty instance.

    Computed over the same rendering `to_csv_text` produces, so the
    fingerprint is stable across copies and process restarts.  Earlier
    journal versions used MD5, which raises under FIPS-enabled Python
    builds; :func:`fingerprint_matches` still verifies those legacy
    journals by digest length.
    """
    from repro.dataset.csv_io import to_csv_text

    digest = hashlib.sha256()
    digest.update(to_csv_text(relation).encode("utf-8"))
    return digest.hexdigest()


def fingerprint_matches(expected: str, relation: Relation) -> bool:
    """Whether ``expected`` (SHA-256, or legacy MD5) matches ``relation``.

    A 32-hex-char fingerprint is from a pre-SHA-256 journal; it is
    re-verified with ``hashlib.md5(usedforsecurity=False)``, which stays
    available under FIPS.  Any other length only matches SHA-256.
    """
    if not isinstance(expected, str):
        return False
    if len(expected) == 32:
        from repro.dataset.csv_io import to_csv_text

        try:
            digest = hashlib.md5(usedforsecurity=False)
        except (TypeError, ValueError):  # pragma: no cover - exotic builds
            return False
        digest.update(to_csv_text(relation).encode("utf-8"))
        return digest.hexdigest() == expected
    return expected == relation_fingerprint(relation)


def payload_fingerprint(payload: Any) -> str:
    """SHA-256 of a JSON-serializable payload in canonical form.

    Canonical form sorts object keys and strips whitespace, so two
    payloads that are structurally equal hash identically regardless of
    construction order.
    """
    rendered = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=False
    )
    digest = hashlib.sha256()
    digest.update(rendered.encode("utf-8"))
    return digest.hexdigest()
