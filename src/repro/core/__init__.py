"""RENUVER core: the paper's Algorithms 1-4."""

from repro.core.candidates import Candidate, find_candidate_tuples
from repro.core.donor_scan import (
    ScalarEngine,
    VectorizedEngine,
    string_clamp_limits,
)
from repro.core.renuver import (
    ImputationResult,
    Renuver,
    RenuverConfig,
)
from repro.core.report import (
    BudgetEvent,
    CellOutcome,
    Degradation,
    ImputationReport,
    OutcomeStatus,
)
from repro.core.selection import (
    Cluster,
    build_cluster_plan,
    cluster_by_rhs_threshold,
    select_rfds_for_attribute,
)
from repro.core.verification import first_fault, is_faultless, relevant_rfds

__all__ = [
    "BudgetEvent",
    "Candidate",
    "CellOutcome",
    "Cluster",
    "Degradation",
    "ImputationReport",
    "ImputationResult",
    "OutcomeStatus",
    "Renuver",
    "RenuverConfig",
    "ScalarEngine",
    "VectorizedEngine",
    "build_cluster_plan",
    "cluster_by_rhs_threshold",
    "find_candidate_tuples",
    "first_fault",
    "is_faultless",
    "relevant_rfds",
    "select_rfds_for_attribute",
    "string_clamp_limits",
]
