"""RFD selection and RHS-threshold clustering (Algorithm 1, lines 7-10).

For a missing value ``t[A] = _`` RENUVER collects ``Sigma'_A`` — the
non-key RFDs with ``A`` on the RHS — and partitions it into clusters
``rho_A^i``, one per distinct RHS threshold ``i``.  The cluster sequence
fixes the order in which RFDs are tried during imputation.

The paper is self-contradictory about that order: Section 5 step (b)/(c)
and the worked example process clusters from the *lowest* threshold up
(``rho^0`` first), while Algorithm 2 line 1 says "descending order".  We
default to ascending (tightest constraint first — the behaviour the worked
example demonstrates) and let callers flip it; the repository ships an
ablation benchmark comparing both.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Iterable, Sequence

from repro.rfd.rfd import RFD
from repro.telemetry.logs import get_logger

logger = get_logger("core.selection")


@dataclass(frozen=True)
class Cluster:
    """``rho_A^i``: the RFDs imputing attribute ``A`` whose RHS threshold
    is exactly ``rhs_threshold``."""

    attribute: str
    rhs_threshold: float
    rfds: tuple[RFD, ...]

    def __post_init__(self) -> None:
        for rfd in self.rfds:
            if rfd.rhs_attribute != self.attribute:
                raise ValueError(
                    f"{rfd} does not impute attribute {self.attribute!r}"
                )
            if rfd.rhs_threshold != self.rhs_threshold:
                raise ValueError(
                    f"{rfd} has RHS threshold {rfd.rhs_threshold}, "
                    f"cluster expects {self.rhs_threshold}"
                )

    def __len__(self) -> int:
        return len(self.rfds)

    @cached_property
    def lhs_union(self) -> tuple[str, ...]:
        """Sorted union of the member RFDs' LHS attributes — the only
        attributes candidate generation needs distances for.  Computed
        once per cluster instead of on every donor scan."""
        return tuple(
            sorted({
                name for rfd in self.rfds for name in rfd.lhs_attributes
            })
        )

    def __str__(self) -> str:
        rendered = (
            f"{int(self.rhs_threshold)}"
            if float(self.rhs_threshold).is_integer()
            else f"{self.rhs_threshold}"
        )
        return f"rho_{self.attribute}^{rendered} ({len(self.rfds)} RFDs)"


def select_rfds_for_attribute(
    rfds: Iterable[RFD], attribute: str
) -> list[RFD]:
    """``Sigma'_A``: the RFDs usable to impute ``attribute`` (line 8)."""
    return [rfd for rfd in rfds if rfd.rhs_attribute == attribute]


def cluster_by_rhs_threshold(
    rfds: Sequence[RFD],
    attribute: str,
    *,
    order: str = "ascending",
) -> list[Cluster]:
    """``Lambda_{Sigma'_A}``: clusters of equal RHS threshold (line 9).

    ``order`` is ``"ascending"`` (default, tightest RHS threshold first —
    the worked example's behaviour) or ``"descending"`` (Algorithm 2's
    literal wording).
    """
    if order not in ("ascending", "descending"):
        raise ValueError(
            f"order must be 'ascending' or 'descending', got {order!r}"
        )
    grouped: dict[float, list[RFD]] = {}
    for rfd in rfds:
        if rfd.rhs_attribute != attribute:
            raise ValueError(
                f"{rfd} does not impute attribute {attribute!r}"
            )
        grouped.setdefault(rfd.rhs_threshold, []).append(rfd)
    thresholds = sorted(grouped, reverse=(order == "descending"))
    clusters = [
        Cluster(attribute, threshold, tuple(grouped[threshold]))
        for threshold in thresholds
    ]
    if logger.isEnabledFor(10):  # DEBUG; guard the threshold formatting
        logger.debug(
            "clustered %d RFDs for %s into %d thresholds: %s",
            len(rfds), attribute, len(clusters),
            [cluster.rhs_threshold for cluster in clusters],
        )
    return clusters


def build_cluster_plan(
    rfds: Iterable[RFD],
    attributes: Iterable[str],
    *,
    order: str = "ascending",
) -> dict[str, list[Cluster]]:
    """``Lambda_{Sigma'}``: the cluster sequence per target attribute."""
    rfds = list(rfds)
    return {
        attribute: cluster_by_rhs_threshold(
            select_rfds_for_attribute(rfds, attribute),
            attribute,
            order=order,
        )
        for attribute in attributes
    }
