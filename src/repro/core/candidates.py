"""Candidate tuple generation — FIND_CANDIDATE_TUPLES (Algorithm 3).

For a missing value ``t[A] = _`` and one RHS-threshold cluster, every
other tuple ``t_j`` with a present ``t_j[A]`` is scored: its distance
pattern against ``t`` is matched against the LHS of each RFD in the
cluster, the per-RFD distance value is the mean LHS distance (Equation 2),
and the candidate keeps the minimum over all matching RFDs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.dataset.missing import is_missing
from repro.distance.pattern import DistancePattern, PatternCalculator
from repro.core.selection import Cluster
from repro.rfd.rfd import RFD


@dataclass(frozen=True)
class Candidate:
    """One plausible candidate tuple with its distance value.

    ``row`` indexes the candidate tuple in the relation, ``value`` is the
    value it offers for the missing attribute, ``distance`` is the
    Equation-2 score (lower is better) and ``rfd`` is the dependency that
    achieved it — kept for provenance reporting.
    """

    row: int
    value: Any
    distance: float
    rfd: RFD

    def sort_key(self) -> tuple[float, int]:
        """Ascending distance, row index as a deterministic tie-break."""
        return (self.distance, self.row)


def find_candidate_tuples(
    calculator: PatternCalculator,
    target_row: int,
    attribute: str,
    cluster: Cluster,
    *,
    max_candidates: int | None = None,
    pattern_for: Callable[[int], DistancePattern] | None = None,
) -> list[Candidate]:
    """All plausible candidate tuples for ``t[A]`` under one cluster.

    Returns candidates sorted by ascending distance value (Algorithm 2,
    line 3).  ``max_candidates`` optionally truncates the sorted list —
    an efficiency knob (the paper's ``k``), disabled by default.

    ``pattern_for`` lets the caller supply (memoized) distance patterns
    covering at least this cluster's LHS attributes; the driver uses it
    to share one pattern per donor tuple across all clusters of a cell.
    """
    relation = calculator.relation
    if cluster.attribute != attribute:
        raise ValueError(
            f"cluster targets {cluster.attribute!r}, expected {attribute!r}"
        )
    # The pattern only ever needs the union of LHS attributes, which the
    # cluster precomputes once.
    needed = cluster.lhs_union
    candidates: list[Candidate] = []
    for row in range(relation.n_tuples):
        if row == target_row:
            continue
        value = relation.value(row, attribute)
        if is_missing(value):
            continue
        if pattern_for is not None:
            pattern = pattern_for(row)
        else:
            pattern = calculator.pattern(target_row, row, needed)
        best_distance: float | None = None
        best_rfd: RFD | None = None
        for rfd in cluster.rfds:
            if not rfd.lhs_satisfied(pattern):
                continue
            distance = pattern.mean_over(rfd.lhs_attributes)
            if best_distance is None or distance < best_distance:
                best_distance = distance
                best_rfd = rfd
        if best_distance is not None and best_rfd is not None:
            candidates.append(Candidate(row, value, best_distance, best_rfd))
    candidates.sort(key=Candidate.sort_key)
    if max_candidates is not None:
        candidates = candidates[:max_candidates]
    return candidates
