"""Imputation verification — IS_FAULTLESS (Algorithm 4).

After tentatively writing a candidate value into ``t[A]``, RENUVER checks
that the imputation does not invalidate any previously holding RFD.  Per
the paper, the check covers every RFD whose *LHS* contains the imputed
attribute: the new value can create fresh LHS matches between ``t`` and
other tuples whose RHS distances then have to stay within threshold
(Example 5.9).

``check_rhs_rfds`` extends the check to RFDs with ``A`` on the RHS as
well — strictly stronger than the paper's Algorithm 4 and available as an
ablation (the candidate was generated through one such RFD, but other
same-RHS RFDs could in principle be violated).
"""

from __future__ import annotations

from repro.distance.pattern import PatternCalculator
from repro.rfd.rfd import RFD
from repro.rfd.violations import Violation
from repro.telemetry.logs import get_logger

logger = get_logger("core.verification")


def relevant_rfds(
    rfds: list[RFD],
    attribute: str,
    *,
    check_rhs_rfds: bool = False,
) -> list[RFD]:
    """The RFDs Algorithm 4 must re-check after imputing ``attribute``.

    LHS-containing RFDs first (the paper's scope), then — under the
    stronger ablation — the RFDs with ``attribute`` on the RHS.  The two
    groups never overlap because an RFD cannot mention the same attribute
    on both sides.
    """
    relevant = [rfd for rfd in rfds if rfd.has_lhs_attribute(attribute)]
    if check_rhs_rfds:
        relevant.extend(
            rfd for rfd in rfds if rfd.rhs_attribute == attribute
        )
    return relevant


def is_faultless(
    calculator: PatternCalculator,
    target_row: int,
    attribute: str,
    rfds: list[RFD],
    *,
    check_rhs_rfds: bool = False,
) -> bool:
    """Whether the (already written) imputation of ``t[A]`` is consistent.

    Mirrors Algorithm 4: for every relevant RFD and every other tuple,
    a satisfied LHS with a comparable-but-exceeded RHS distance marks the
    imputation as faulty.
    """
    return first_fault(
        calculator,
        target_row,
        attribute,
        rfds,
        check_rhs_rfds=check_rhs_rfds,
    ) is None


def first_fault(
    calculator: PatternCalculator,
    target_row: int,
    attribute: str,
    rfds: list[RFD],
    *,
    check_rhs_rfds: bool = False,
) -> Violation | None:
    """The first violation introduced by the imputation, or ``None``.

    Returning the offending pair (rather than a bare boolean) lets
    reports explain *why* a candidate was rejected.
    """
    relation = calculator.relation
    relevant = relevant_rfds(
        rfds, attribute, check_rhs_rfds=check_rhs_rfds
    )
    if not relevant:
        return None
    # One pattern per partner tuple over the union of the relevant RFDs'
    # attributes: with |Sigma| in the hundreds this turns |Sigma| * n
    # pattern computations into n (the union is bounded by the schema
    # width m).
    union: tuple[str, ...] = tuple(
        sorted({name for rfd in relevant for name in rfd.attributes})
    )
    for row in range(relation.n_tuples):
        if row == target_row:
            continue
        pattern = calculator.pattern(target_row, row, union)
        for rfd in relevant:
            if rfd.violated_by(pattern):
                logger.debug(
                    "imputation of (%d, %s) violates %s against row %d",
                    target_row, attribute, rfd, row,
                )
                return Violation(rfd, min(target_row, row),
                                 max(target_row, row))
    return None
