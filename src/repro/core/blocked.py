"""The blocked donor-scan engine: vectorized semantics, indexed reach.

:class:`BlockedEngine` is a :class:`~repro.core.donor_scan.VectorizedEngine`
whose three inner loops — Algorithm 3's candidate scan, Algorithm 4's
violation masks and the keyness pair masks — first ask an
:class:`~repro.index.plan.IndexPlan` which rows can possibly satisfy
the RFD's LHS, then recompute the *exact* distances only on those rows
through :meth:`~repro.distance.kernels.DonorScanKernels.subset_vector`.

Bit-identity argument, mirrored by the equivalence suite in
``tests/index/``:

* a probe result is a superset of the rows whose every LHS distance is
  within threshold (the indexes only apply filters the thresholds
  already imply), so confirming the constraints on the subset selects
  exactly the rows the full masks would;
* each subset distance equals the corresponding full-vector entry bit
  for bit (same codecs, same clamps, same memo), and the Equation-2
  score sums them in the same attribute order and divides once — so
  scores, strict-minimum tie-breaks and the (distance, row) sort are
  unchanged;
* any probe the plan declines (hot value past ``max_group_size``,
  overridden distance, un-probeable attribute) falls back to the
  parent's full-vector path for that RFD: slower, never different.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.core.candidates import Candidate
from repro.core.donor_scan import VectorizedEngine
from repro.core.selection import Cluster
from repro.distance.pattern import PatternCalculator
from repro.index.plan import IndexPlan
from repro.rfd.rfd import RFD


class BlockedEngine(VectorizedEngine):
    """Vectorized donor-scan engine with blocking-index pre-filtering.

    Parameters
    ----------
    calculator / rfds / override_names:
        As for :class:`~repro.core.donor_scan.VectorizedEngine`.
    max_group_size:
        Anchor cap forwarded to an owned plan (ignored when a shared
        ``index_plan`` is supplied).
    index_plan:
        An externally-owned :class:`IndexPlan` to reuse (sessions and
        pipelines keep one across rounds).  It must shadow the same
        relation instance the calculator reads; the engine attaches it
        but leaves closing to the owner.
    """

    name = "blocked"

    def __init__(
        self,
        calculator: PatternCalculator,
        rfds: Iterable[RFD],
        *,
        override_names: Iterable[str] = (),
        max_group_size: int = 4096,
        index_plan: IndexPlan | None = None,
    ) -> None:
        override_names = set(override_names)
        super().__init__(
            calculator, rfds, override_names=override_names
        )
        if (
            index_plan is not None
            and index_plan.relation is calculator.relation
        ):
            self.plan = index_plan
            self._owns_plan = False
        else:
            self.plan = IndexPlan(
                calculator.relation,
                rfds,
                max_group_size=max_group_size,
                override_names=override_names,
            )
            self._owns_plan = True
        self.plan.attach()

    # ------------------------------------------------------------------
    def set_telemetry(self, telemetry: object) -> None:
        super().set_telemetry(telemetry)
        self.plan.set_telemetry(telemetry)

    def cell_scan(
        self,
        target_row: int,
        attribute: str,
        clusters: Sequence[Cluster],
    ) -> "_BlockedCellScan":
        self._fire("cell_scan", target_row, attribute)
        self.kernels.clear_target_vectors()
        return _BlockedCellScan(self, target_row, attribute)

    # ------------------------------------------------------------------
    # Algorithm 4 / keyness over probed subsets
    # ------------------------------------------------------------------
    def _violation_mask(
        self, target_row: int, rfd: RFD
    ) -> np.ndarray | None:
        probe = self.plan.candidate_rows(target_row, rfd.lhs)
        if probe is None:
            return super()._violation_mask(target_row, rfd)
        rows = self._confirm_lhs(target_row, rfd, probe)
        if rows is None:
            return None
        rhs = self.kernels.subset_vector(
            target_row, rfd.rhs_attribute, rows
        )
        violating = rows[(~np.isnan(rhs)) & (rhs > rfd.rhs_threshold)]
        if not violating.size:
            return None
        mask = np.zeros(
            self.calculator.relation.n_tuples, dtype=bool
        )
        mask[violating] = True
        return mask

    def _lhs_pair_mask(
        self,
        target_row: int,
        rfd: RFD,
        in_scope: np.ndarray | None,
    ) -> np.ndarray | None:
        probe = self.plan.candidate_rows(target_row, rfd.lhs)
        if probe is None:
            return super()._lhs_pair_mask(target_row, rfd, in_scope)
        rows = self._confirm_lhs(target_row, rfd, probe)
        if rows is None:
            return None
        mask = np.zeros(
            self.calculator.relation.n_tuples, dtype=bool
        )
        mask[rows] = True
        if in_scope is not None:
            mask &= in_scope
            if not mask.any():
                return None
        return mask

    def _confirm_lhs(
        self, target_row: int, rfd: RFD, rows: np.ndarray
    ) -> np.ndarray | None:
        """Probe candidates surviving the *exact* LHS check, or ``None``
        when none do (the parent's early-exit contract)."""
        if not rows.size:
            return None
        kernels = self.kernels
        keep = np.ones(rows.size, dtype=bool)
        for constraint in rfd.lhs:
            vector = kernels.subset_vector(
                target_row, constraint.attribute, rows[keep]
            )
            keep[keep] = vector <= constraint.threshold
            if not keep.any():
                return None
        return rows[keep]

    # ------------------------------------------------------------------
    # Reporting / lifecycle
    # ------------------------------------------------------------------
    def _engine_counters(self) -> dict[str, int]:
        merged = super()._engine_counters()
        merged.update(self.plan.counters)
        return merged

    def close(self) -> None:
        super().close()
        if self._owns_plan:
            self.plan.close()


class _BlockedCellScan:
    """Algorithm 3 over probed subsets (see the module docstring)."""

    __slots__ = ("_engine", "_target_row", "_attribute")

    def __init__(
        self, engine: BlockedEngine, target_row: int, attribute: str
    ) -> None:
        self._engine = engine
        self._target_row = target_row
        self._attribute = attribute

    def candidates(
        self, cluster: Cluster, *, max_candidates: int | None = None
    ) -> list[Candidate]:
        target_row = self._target_row
        attribute = self._attribute
        if cluster.attribute != attribute:
            raise ValueError(
                f"cluster targets {cluster.attribute!r}, "
                f"expected {attribute!r}"
            )
        engine = self._engine
        with engine._kernel_span(
            "candidates", target_row, attribute
        ) as span:
            found = self._scan(cluster, max_candidates)
            engine._record_candidates(cluster, found, span)
        return found

    def _scan(
        self, cluster: Cluster, max_candidates: int | None
    ) -> list[Candidate]:
        target_row = self._target_row
        attribute = self._attribute
        engine = self._engine
        kernels = engine.kernels
        plan = engine.plan
        relation = engine.calculator.relation
        donors = kernels.present_mask(attribute).copy()
        donors[target_row] = False
        if not donors.any():
            return []
        n = donors.shape[0]
        best = np.full(n, np.inf)
        best_rfd = np.full(n, -1, dtype=np.int64)
        with np.errstate(invalid="ignore"):
            for index, rfd in enumerate(cluster.rfds):
                probe = plan.candidate_rows(target_row, rfd.lhs)
                if probe is None:
                    self._scan_rfd_full(
                        rfd, index, donors, best, best_rfd
                    )
                    continue
                if not probe.size:
                    continue
                rows = probe[donors[probe]]
                if not rows.size:
                    continue
                keep = np.ones(rows.size, dtype=bool)
                for constraint in rfd.lhs:
                    vector = kernels.subset_vector(
                        target_row, constraint.attribute, rows
                    )
                    keep &= vector <= constraint.threshold
                    if not keep.any():
                        break
                else:
                    total: np.ndarray | None = None
                    for name in rfd.lhs_attributes:
                        vector = kernels.subset_vector(
                            target_row, name, rows
                        )
                        total = (
                            vector.copy() if total is None
                            else total + vector
                        )
                    score = np.where(
                        keep, total / len(rfd.lhs), np.inf
                    )
                    better = score < best[rows]
                    if better.any():
                        improved = rows[better]
                        best[improved] = score[better]
                        best_rfd[improved] = index
        found = np.nonzero(best_rfd >= 0)[0]
        candidates = [
            Candidate(
                int(row),
                relation.value(int(row), attribute),
                float(best[row]),
                cluster.rfds[int(best_rfd[row])],
            )
            for row in found
        ]
        candidates.sort(key=Candidate.sort_key)
        if max_candidates is not None:
            candidates = candidates[:max_candidates]
        return candidates

    def _scan_rfd_full(
        self,
        rfd: RFD,
        index: int,
        donors: np.ndarray,
        best: np.ndarray,
        best_rfd: np.ndarray,
    ) -> None:
        """One RFD on the parent's full-vector path (probe declined).

        The mask arithmetic is byte-for-byte the parent scan's per-RFD
        block, so a fallback RFD scores donors exactly as the unblocked
        engine would.
        """
        engine = self._engine
        kernels = engine.kernels
        target_row = self._target_row
        mask = donors
        for constraint in rfd.lhs:
            vector = kernels.vector(target_row, constraint.attribute)
            mask = mask & (vector <= constraint.threshold)
            if not mask.any():
                return
        total: np.ndarray | None = None
        for name in rfd.lhs_attributes:
            vector = kernels.vector(target_row, name)
            total = vector.copy() if total is None else total + vector
        score = np.where(mask, total / len(rfd.lhs), np.inf)
        better = score < best
        if better.any():
            np.copyto(best, score, where=better)
            np.copyto(best_rfd, index, where=better)
