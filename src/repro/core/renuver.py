"""The RENUVER driver (Algorithm 1 of the paper).

Pipeline per run:

(a) *Pre-processing*: split ``Sigma`` into key and non-key RFDs
    (Definition 3.4) and collect the incomplete tuples ``r-hat``.
(b) *RFD selection*: for each missing value ``t[A] = _``, gather
    ``Sigma'_A`` (non-key RFDs with RHS ``A``) and cluster it by RHS
    threshold.
(c) *Imputation*: per cluster, generate candidate tuples (Algorithm 3),
    try them in ascending distance order and keep the first whose
    imputation is faultless (Algorithm 4); otherwise leave the cell blank.

After every successful imputation the key/non-key split is re-evaluated
(line 14): a fresh value can create the first LHS-matching pair of a key
RFD, turning it usable (Example 5.1).  Only pairs involving the imputed
tuple can do that, so the re-check is incremental.

Fault-tolerant runtime
----------------------
The driver wraps steps (b)+(c) in a recovery layer (see
``docs/ROBUSTNESS.md``):

* **Budgets** — per-run wall-clock/memory limits (the paper's 48 h /
  30 GB stress contract) checked at every cell and, through the
  engines' kernel-call seam, inside the donor scans; plus an optional
  per-cell deadline.  Run-scope overruns either raise
  :class:`~repro.exceptions.BudgetExceededError` with the partial
  result attached, or (``on_budget="partial"``) settle the remaining
  cells as skipped and return normally.
* **Fault isolation + degradation ladder** — an exception escaping one
  cell's imputation never aborts the run: the cell's tentative write is
  rolled back and the cell retries on the scalar reference engine, then
  falls back to a mean/mode fill (``fallback="mean_mode"``) or is
  recorded as skipped.  Every downgrade lands in the report's
  ``degradations`` so results stay auditable.
* **Checkpoint/resume** — ``journal=`` appends a JSONL record per
  settled cell; ``resume_from=`` replays such a journal onto the same
  dirty relation and continues where the run died.
* **Chaos seam** — ``chaos=`` accepts a
  :class:`~repro.robustness.chaos.ChaosInjector` whose deterministic
  fault injectors exercise all of the above in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from time import perf_counter
from typing import Iterable, Mapping

from repro.dataset.attribute import AttributeType
from repro.dataset.missing import MISSING, is_missing
from repro.dataset.relation import Relation
from repro.distance.base import DistanceFunction
from repro.distance.pattern import PatternCalculator
from repro.exceptions import (
    BudgetExceededError,
    DataError,
    ImputationError,
)
from repro.core.candidates import Candidate
from repro.core.donor_scan import ScalarEngine, VectorizedEngine
from repro.core.report import (
    BudgetEvent,
    CellOutcome,
    Degradation,
    ImputationReport,
    OutcomeStatus,
)
from repro.core.selection import (
    Cluster,
    cluster_by_rhs_threshold,
    select_rfds_for_attribute,
)
from repro.rfd.rfd import RFD
from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.telemetry.logs import get_logger
from repro.utils.memory import MemoryTracker
from repro.utils.timer import Timer

logger = get_logger("core.renuver")


@dataclass(frozen=True)
class RenuverConfig:
    """Tuning knobs of a RENUVER run.

    Attributes
    ----------
    cluster_order:
        ``"ascending"`` (default; the worked example's tightest-first
        order) or ``"descending"`` (Algorithm 2's literal wording).
    engine:
        Donor-scan engine: ``"vectorized"`` (default; columnar one-vs-all
        distance kernels with length-blocked string DPs) or ``"scalar"``
        (the original pair-at-a-time reference path).  Both produce
        bit-identical imputation outcomes; the scalar engine is kept for
        equivalence testing and as executable documentation of
        Algorithms 3 and 4.
    blocking:
        Blocking-index pre-filtering for the vectorized engine
        (``repro.index``; see docs/INDEXING.md): ``"auto"`` (default)
        engages it when the relation has at least
        ``AUTO_BLOCKING_MIN_TUPLES`` tuples, ``"on"`` forces it at any
        size, ``"off"`` always runs the full scan.  Candidate sets and
        imputed values stay bit-identical either way — indexes only
        prune pairs the RFD thresholds already reject, and every
        surviving pair's distance is recomputed exactly.  Requires the
        vectorized engine (``"on"`` with ``engine="scalar"`` is a
        configuration error; ``"auto"`` simply never engages there).
    max_group_size:
        Anchor cap of the blocking indexes: any probe whose candidate
        group exceeds this many rows falls back to the full scan for
        that RFD (counted in
        ``renuver_index_fallbacks_total{reason="hot_group"}``, never a
        correctness risk).  Keeps pathological hot values — a constant
        column, say — from turning probes into scans with extra steps.
    verify:
        Run IS_FAULTLESS on every tentative imputation.  Disabling it is
        an ablation: faster, but consistency (Definition 4.3) is no
        longer guaranteed.
    check_rhs_rfds:
        Extend verification to RFDs with the imputed attribute on the
        RHS (stronger than the paper's Algorithm 4).
    recheck_keys:
        Re-evaluate key RFDs after each imputation (Algorithm 1 line 14).
    keyness_scope:
        Which tuple pairs count when testing Definition 3.4: ``"all"``
        (default; the literal definition) or ``"complete"`` (only pairs
        of complete tuples — closer to the paper's Example 5.2; see
        repro.rfd.keyness).
    max_candidates:
        Optional cap on candidates tried per cluster (the paper's ``k``).
    distance_cache:
        Memoize distances per value pair.
    track_memory:
        Measure peak allocation with :mod:`tracemalloc` (slows the run;
        used by the stress benchmarks).
    time_budget_seconds / memory_budget_bytes:
        Abort with :class:`~repro.exceptions.BudgetExceededError` when
        exceeded — the paper's 48 h / 30 GB stress-test limits.
    cell_time_budget_seconds:
        Per-cell deadline.  A cell that overruns it is downgraded to the
        last-resort tier (and the trip recorded in the report's
        ``budget_events``) instead of ending the run.
    fallback:
        Last rung of the degradation ladder when a cell's imputation
        fails: ``"skip"`` (default; record the cell as skipped),
        ``"mean_mode"`` (fill with the column mean/mode, recorded as a
        DEGRADED outcome), or ``"raise"`` (disable fault isolation —
        the pre-robustness behavior, useful when debugging kernels).
    on_budget:
        What a *run-scope* budget overrun does: ``"raise"`` (default;
        raise BudgetExceededError with the partial result attached) or
        ``"partial"`` (settle every remaining cell as skipped and
        return the partial result normally).
    workers:
        Worker subprocesses for the supervised parallel runtime
        (:mod:`repro.robustness.supervisor`).  ``1`` (default) is the
        sequential in-process path; ``N > 1`` partitions each round's
        cells into batches shipped to crash-isolated workers and merged
        at a deterministic round barrier — outcomes stay bit-identical
        to the sequential run.  Incompatible with ``fallback="raise"``
        (the supervisor *is* fault isolation).
    worker_timeout_seconds:
        Heartbeat staleness after which a worker is declared hung,
        killed and retried.
    max_retries:
        Re-dispatches of a failed batch before it is poisoned and
        recomputed in-process on the scalar engine (audited in the
        report's ``degradations``).
    worker_batch_size:
        Missing cells per worker batch; one round covers
        ``workers * worker_batch_size`` cells.
    worker_backoff_seconds:
        Base of the exponential retry backoff (doubled per attempt,
        plus deterministic jitter; affects timing only, never outcomes).
    """

    cluster_order: str = "ascending"
    engine: str = "vectorized"
    verify: bool = True
    check_rhs_rfds: bool = False
    recheck_keys: bool = True
    keyness_scope: str = "all"
    max_candidates: int | None = None
    distance_cache: bool = True
    track_memory: bool = False
    time_budget_seconds: float | None = None
    memory_budget_bytes: int | None = None
    cell_time_budget_seconds: float | None = None
    fallback: str = "skip"
    on_budget: str = "raise"
    workers: int = 1
    worker_timeout_seconds: float = 30.0
    max_retries: int = 2
    worker_batch_size: int = 8
    worker_backoff_seconds: float = 0.05
    blocking: str = "auto"
    max_group_size: int = 4096

    def __post_init__(self) -> None:
        if self.cluster_order not in ("ascending", "descending"):
            raise ImputationError(
                f"cluster_order must be 'ascending' or 'descending', "
                f"got {self.cluster_order!r}"
            )
        if self.engine not in ("scalar", "vectorized"):
            raise ImputationError(
                f"engine must be 'scalar' or 'vectorized', "
                f"got {self.engine!r}"
            )
        if self.blocking not in ("auto", "on", "off"):
            raise ImputationError(
                f"blocking must be 'auto', 'on' or 'off', "
                f"got {self.blocking!r}"
            )
        if self.blocking == "on" and self.engine == "scalar":
            raise ImputationError(
                "blocking='on' requires engine='vectorized': the scalar "
                "reference path has no index seam"
            )
        if self.max_group_size < 1:
            raise ImputationError(
                f"max_group_size must be >= 1, got {self.max_group_size!r}"
            )
        if self.keyness_scope not in ("complete", "all"):
            raise ImputationError(
                f"keyness_scope must be 'complete' or 'all', "
                f"got {self.keyness_scope!r}"
            )
        if self.max_candidates is not None and self.max_candidates < 1:
            raise ImputationError("max_candidates must be >= 1 when given")
        if self.fallback not in ("raise", "skip", "mean_mode"):
            raise ImputationError(
                f"fallback must be 'raise', 'skip' or 'mean_mode', "
                f"got {self.fallback!r}"
            )
        if self.on_budget not in ("raise", "partial"):
            raise ImputationError(
                f"on_budget must be 'raise' or 'partial', "
                f"got {self.on_budget!r}"
            )
        if (self.cell_time_budget_seconds is not None
                and self.cell_time_budget_seconds <= 0):
            raise ImputationError(
                "cell_time_budget_seconds must be positive when given"
            )
        if self.workers < 1:
            raise ImputationError(
                f"workers must be >= 1, got {self.workers!r}"
            )
        if self.workers > 1 and self.fallback == "raise":
            raise ImputationError(
                "workers > 1 is incompatible with fallback='raise': the "
                "supervised runtime exists to contain failures"
            )
        if self.worker_timeout_seconds <= 0:
            raise ImputationError(
                "worker_timeout_seconds must be positive"
            )
        if self.max_retries < 0:
            raise ImputationError("max_retries must be >= 0")
        if self.worker_batch_size < 1:
            raise ImputationError("worker_batch_size must be >= 1")
        if self.worker_backoff_seconds < 0:
            raise ImputationError("worker_backoff_seconds must be >= 0")


@dataclass
class ImputationResult:
    """What :meth:`Renuver.impute` returns: the instance plus provenance."""

    relation: Relation
    report: ImputationReport


@dataclass
class _RunState:
    """Mutable per-run state shared by the private helpers."""

    calculator: PatternCalculator
    engine: ScalarEngine | VectorizedEngine
    active_rfds: list[RFD]
    key_rfds: list[RFD]
    report: ImputationReport
    timer: Timer
    memory: MemoryTracker | None = None
    explanations: dict[tuple[int, str], list[Candidate]] = field(
        default_factory=dict
    )
    #: Journal writer, when the run is journaled.
    writer: object | None = None
    #: Cells already settled (by a replayed journal).
    done: set[tuple[int, str]] = field(default_factory=set)
    #: Chaos injector, when fault injection is active.
    chaos: object | None = None
    #: Lazily built scalar engine for the degradation ladder.
    scalar_retry: ScalarEngine | None = None


class Renuver:
    """RFD-based null value repairer.

    Parameters
    ----------
    rfds:
        The set ``Sigma`` of RFDs holding on the (complete) instance.
    config:
        Optional :class:`RenuverConfig`.
    distance_overrides:
        Optional per-attribute distance functions replacing the paper's
        defaults.

    Example
    -------
    >>> from repro import Renuver, make_rfd
    >>> engine = Renuver([make_rfd({"Zip": 0}, ("City", 2))])
    >>> result = engine.impute(relation)          # doctest: +SKIP
    >>> result.report.fill_rate                   # doctest: +SKIP
    """

    def __init__(
        self,
        rfds: Iterable[RFD],
        config: RenuverConfig | None = None,
        *,
        distance_overrides: Mapping[str, DistanceFunction] | None = None,
        telemetry: Telemetry | None = None,
        index_plan: object | None = None,
    ) -> None:
        self.rfds: tuple[RFD, ...] = tuple(rfds)
        if not self.rfds:
            raise ImputationError("Renuver needs at least one RFD")
        self.config = config or RenuverConfig()
        self._distance_overrides = dict(distance_overrides or {})
        #: Shared :class:`~repro.index.plan.IndexPlan` for blocked runs
        #: (sessions reuse one across rounds); ignored unless blocking
        #: engages and the plan shadows the imputed relation instance.
        self._index_plan = index_plan
        #: Observability spine (spans + metrics); the no-op default
        #: costs a method call per instrumentation site.  See
        #: docs/OBSERVABILITY.md.
        self.telemetry = telemetry or NULL_TELEMETRY

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def impute(
        self,
        relation: Relation,
        *,
        inplace: bool = False,
        journal: str | Path | None = None,
        resume_from: str | Path | None = None,
        chaos: object | None = None,
    ) -> ImputationResult:
        """Impute every missing value of ``relation`` (Algorithm 1).

        Returns an :class:`ImputationResult` whose relation is a copy
        unless ``inplace`` is true.  Cells for which no semantically
        consistent candidate exists are left missing, per Section 4.

        ``journal`` appends a JSONL record per settled cell so a killed
        run can be resumed; ``resume_from`` replays such a journal onto
        ``relation`` (which must be the same dirty instance the
        journaled run started from) and continues where it died —
        passing only ``resume_from`` keeps journaling into the same
        file.  ``chaos`` accepts a
        :class:`~repro.robustness.chaos.ChaosInjector` for deterministic
        fault injection.

        When a live :class:`~repro.telemetry.Telemetry` is attached,
        the run executes under an ``impute`` root span (with
        ``preprocess``, per-cell and kernel spans nested below it) and
        feeds the metrics registry; see docs/OBSERVABILITY.md for the
        span taxonomy and metric names.
        """
        self._validate_schema(relation)
        telemetry = self.telemetry
        with telemetry.tracer.span(
            "impute",
            engine=self.config.engine,
            relation=relation.name,
            n_tuples=relation.n_tuples,
            n_rfds=len(self.rfds),
        ) as span:
            try:
                result = self._run(
                    relation,
                    inplace=inplace,
                    journal=journal,
                    resume_from=resume_from,
                    chaos=chaos,
                )
            except BaseException as exc:
                telemetry.metrics.counter(
                    "renuver_runs_total",
                    "Imputation runs by final status.",
                    status="error",
                ).inc()
                logger.warning(
                    "imputation run failed: %s: %s",
                    type(exc).__name__, exc,
                )
                raise
            report = result.report
            span.set_attribute("missing_cells", report.missing_count)
            span.set_attribute("imputed_cells", report.imputed_count)
            span.set_attribute("fill_rate", round(report.fill_rate, 4))
            self._finish_run_telemetry(report)
        return result

    def _finish_run_telemetry(self, report: ImputationReport) -> None:
        """Run-level metrics + logs once a run settles normally."""
        metrics = self.telemetry.metrics
        metrics.counter(
            "renuver_runs_total",
            "Imputation runs by final status.",
            status="ok",
        ).inc()
        metrics.gauge(
            "renuver_run_elapsed_seconds",
            "Elapsed seconds of the most recent run.",
        ).set(report.elapsed_seconds)
        # Unified kernel counters: both engines' seam/vector statistics
        # land in the registry under one metric family.
        for name, value in report.kernel_counters.items():
            metrics.counter(
                "renuver_kernel_counter_total",
                "Engine kernel counters (seam ops and vector layer).",
                engine=self.config.engine,
                counter=name,
            ).inc(value)
        logger.info(
            "imputation run finished: %d/%d cells filled in %.3fs "
            "(%d degradations, %d budget events)",
            report.filled_count, report.missing_count,
            report.elapsed_seconds, len(report.degradations),
            len(report.budget_events),
        )

    def _run(
        self,
        relation: Relation,
        *,
        inplace: bool,
        journal: str | Path | None,
        resume_from: str | Path | None,
        chaos: object | None,
    ) -> ImputationResult:
        """Algorithm 1 proper, inside the root telemetry span."""
        working = relation if inplace else relation.copy()

        replayed: list[CellOutcome] = []
        if resume_from is not None:
            from repro.robustness.journal import replay_journal

            replayed = replay_journal(
                resume_from, working, telemetry=self.telemetry
            )
            if journal is None:
                journal = resume_from
            self.telemetry.tracer.event(
                "journal_replay", cells=len(replayed)
            )
            self.telemetry.metrics.counter(
                "renuver_journal_replayed_cells_total",
                "Cells restored from a checkpoint journal.",
            ).inc(len(replayed))
            logger.info(
                "replayed %d cells from journal %s",
                len(replayed), resume_from,
            )
        writer = None
        if journal is not None:
            from repro.robustness.journal import JournalWriter

            writer = JournalWriter(journal)
            writer.write_header(working, engine=self.config.engine)

        clock = getattr(chaos, "clock", None)
        timer = Timer(
            self.config.time_budget_seconds, scope="run", clock=clock
        )
        timer.start()

        if chaos is not None:
            chaos.corrupt(working)
            working.add_mutation_listener(chaos.listener)
        if self.config.track_memory:
            memory = MemoryTracker(self.config.memory_budget_bytes)
            memory.__enter__()
        else:
            memory = None
        state: _RunState | None = None
        try:
            state = self._preprocess(working, timer, memory, chaos)
            state.writer = writer
            state.chaos = chaos
            for outcome in replayed:
                state.done.add((outcome.row, outcome.attribute))
                state.report.add(outcome)
            state.report.replayed_count = len(replayed)
            self._impute_all(state)
            if writer is not None:
                writer.record_end()
        except BudgetExceededError as exc:
            partial = self._settle_budget_overrun(
                exc, working, timer, replayed, state, writer
            )
            if partial is not None:
                return partial
            raise
        finally:
            if state is not None:
                state.engine.close()
            if memory is not None:
                memory.__exit__(None, None, None)
            if chaos is not None:
                working.remove_mutation_listener(chaos.listener)
            if writer is not None:
                writer.close()
        state.report.elapsed_seconds = timer.stop()
        state.report.kernel_counters = state.engine.counters()
        if memory is not None:
            state.report.peak_bytes = memory.peak_bytes
        return ImputationResult(working, state.report)

    def explain(
        self, relation: Relation, row: int, attribute: str
    ) -> list[Candidate]:
        """Candidates RENUVER would consider for one missing cell.

        Diagnostic helper: runs selection + candidate generation for a
        single cell against a copy of ``relation`` without imputing
        anything.  Candidates from all clusters are concatenated in
        cluster order.  Uses the configured donor-scan engine — the same
        code path (and per-cell donor memoization) as the imputation
        driver.
        """
        self._validate_schema(relation)
        if not relation.is_missing_cell(row, attribute):
            raise ImputationError(
                f"cell ({row}, {attribute}) is not missing"
            )
        working = relation.copy()
        calculator = self._make_calculator(working)
        engine = self._make_engine(calculator)
        try:
            _, active = engine.partition_key_rfds(
                self.rfds, scope=self.config.keyness_scope
            )
            clusters = self._clusters_for(active, attribute)
            return [
                candidate
                for _, cluster_candidates in self._scan_clusters(
                    engine, row, attribute, clusters
                )
                for candidate in cluster_candidates
            ]
        finally:
            engine.close()

    # ------------------------------------------------------------------
    # Pipeline steps
    # ------------------------------------------------------------------
    def _preprocess(
        self,
        working: Relation,
        timer: Timer,
        memory: MemoryTracker | None,
        chaos: object | None = None,
    ) -> _RunState:
        """Step (a): split keys from usable RFDs, set up shared state."""
        with self.telemetry.tracer.span(
            "preprocess", n_rfds=len(self.rfds)
        ) as span:
            calculator = self._make_calculator(working)
            engine = self._make_engine(calculator)
            self._attach_runtime_hooks(engine, timer, chaos)
            # The keyness partition runs before any cell, so the per-cell
            # ladder cannot shield it; retry transient faults a few times
            # (injected or real) before giving up.
            attempts = 1 if self.config.fallback == "raise" else 5
            for attempt in range(1, attempts + 1):
                try:
                    key_rfds, active_rfds = engine.partition_key_rfds(
                        self.rfds, scope=self.config.keyness_scope
                    )
                    break
                except BudgetExceededError:
                    raise
                except Exception:  # noqa: BLE001 - bounded retry
                    if attempt == attempts:
                        raise
            span.set_attribute("key_rfds", len(key_rfds))
            span.set_attribute("active_rfds", len(active_rfds))
            logger.debug(
                "preprocess: %d key RFDs, %d active RFDs",
                len(key_rfds), len(active_rfds),
            )
        report = ImputationReport(key_rfds_initial=len(key_rfds))
        return _RunState(
            calculator=calculator,
            engine=engine,
            active_rfds=active_rfds,
            key_rfds=key_rfds,
            report=report,
            timer=timer,
            memory=memory,
        )

    def _attach_runtime_hooks(
        self,
        engine: ScalarEngine | VectorizedEngine,
        timer: Timer,
        chaos: object | None,
    ) -> None:
        """Budget watchdog + chaos injector on the kernel-call seam."""
        if timer.budget_seconds is not None:
            def check_run_budget(op: str, row: int, attribute: str) -> None:
                if timer.expired:  # format the context only when tripping
                    timer.check_budget(f"donor-scan {op}")

            engine.add_kernel_hook(check_run_budget)
        kernel_hook = getattr(chaos, "kernel_hook", None)
        if kernel_hook is not None:
            engine.add_kernel_hook(kernel_hook)

    def _impute_all(self, state: _RunState) -> None:
        """Steps (b) + (c) over every missing cell, in tuple order.

        Each cell runs under the fault-isolation ladder; run-scope
        budget overruns either settle the remaining cells as skipped
        (``on_budget="partial"``) or propagate after being recorded.
        """
        relation = state.calculator.relation
        cells = [
            (row, attribute)
            for row in relation.incomplete_rows()
            for attribute in relation.row(row).missing_attributes()
        ]
        if self.config.workers > 1:
            from repro.robustness.supervisor import Supervisor

            Supervisor(self, state).run([
                cell for cell in cells if cell not in state.done
            ])
            return
        tracer = self.telemetry.tracer
        metrics = self.telemetry.metrics
        for row, attribute in cells:
            if (row, attribute) in state.done:
                continue
            with tracer.span("cell", row=row, attribute=attribute) as span:
                started = perf_counter() if metrics.enabled else 0.0
                try:
                    state.timer.check_budget("RENUVER imputation")
                    if state.memory is not None:
                        state.memory.check_budget("RENUVER imputation")
                    if state.chaos is not None:
                        state.chaos.on_cell_start(row, attribute)
                    outcome = self._impute_cell_guarded(
                        state, row, attribute
                    )
                except BudgetExceededError as exc:
                    # Record with cell context, then let impute() settle
                    # the run (partial result or raise, per on_budget).
                    self._record_budget_event(state, exc, row, attribute)
                    raise
                span.set_attribute("status", outcome.status.value)
                span.set_attribute(
                    "candidates_tried", outcome.candidates_tried
                )
                if outcome.engine_tier is not None:
                    span.set_attribute("engine_tier", outcome.engine_tier)
                if metrics.enabled:
                    self._record_cell_metrics(
                        outcome, perf_counter() - started
                    )
            state.report.add(outcome)
            if state.writer is not None:
                state.writer.record_cell(outcome)
            if outcome.filled and self.config.recheck_keys:
                self._reactivate_keys(state, row, attribute)

    def _impute_cell_guarded(
        self,
        state: _RunState,
        row: int,
        attribute: str,
        *,
        tiers: list[tuple[str, ScalarEngine | VectorizedEngine]] | None = None,
    ) -> CellOutcome:
        """One cell under the degradation ladder.

        Tier 0 is the configured engine; a fault retries on the scalar
        reference engine (tier 1, when tier 0 was vectorized); whatever
        remains goes to the last resort (``fallback``).  Per-cell
        deadline overruns jump straight to the last resort — the scalar
        engine would only overrun again.  Run-scope budget errors and
        ``BaseException`` (kill switch, Ctrl-C) propagate.  The
        supervisor passes an explicit ``tiers`` when a poisoned batch
        must recompute on the scalar engine only.
        """
        config = self.config
        explicit_tiers = tiers is not None
        if tiers is None:
            tiers = [(config.engine, state.engine)]
            if config.fallback != "raise" and config.engine == "vectorized":
                tiers.append(("scalar", self._scalar_retry_engine(state)))
        last_reason = "degradation ladder exhausted"
        for tier_index, (tier_name, engine) in enumerate(tiers):
            cell_timer = None
            if config.cell_time_budget_seconds is not None:
                cell_timer = Timer(
                    config.cell_time_budget_seconds,
                    scope="cell",
                    clock=getattr(state.chaos, "clock", None),
                )
                cell_timer.start()
            try:
                outcome = self._impute_cell(
                    state, row, attribute,
                    engine=engine, cell_timer=cell_timer,
                )
            except BudgetExceededError as exc:
                self._restore_cell(state, row, attribute)
                if exc.scope != "cell" or config.fallback == "raise":
                    raise
                self._record_budget_event(state, exc, row, attribute)
                last_reason = f"cell deadline: {exc}"
                self._record_degradation(
                    state, row, attribute, tier_name,
                    self._last_tier_name(), last_reason,
                )
                break
            except Exception as exc:  # noqa: BLE001 - fault isolation
                self._restore_cell(state, row, attribute)
                if config.fallback == "raise":
                    raise
                last_reason = f"{type(exc).__name__}: {exc}"
                next_tier = (
                    tiers[tier_index + 1][0]
                    if tier_index + 1 < len(tiers)
                    else self._last_tier_name()
                )
                self._record_degradation(
                    state, row, attribute, tier_name, next_tier,
                    last_reason,
                )
                continue
            if tier_index > 0 or explicit_tiers:
                outcome = replace(outcome, engine_tier=tier_name)
            return outcome
        return self._last_resort(state, row, attribute, last_reason)

    def _impute_cell(
        self,
        state: _RunState,
        row: int,
        attribute: str,
        *,
        engine: ScalarEngine | VectorizedEngine | None = None,
        cell_timer: Timer | None = None,
    ) -> CellOutcome:
        """Algorithm 2 for one missing value."""
        engine = engine or state.engine
        selected = select_rfds_for_attribute(state.active_rfds, attribute)
        if not selected:
            return CellOutcome(row, attribute, OutcomeStatus.NO_RFDS)
        clusters = cluster_by_rhs_threshold(
            selected, attribute, order=self.config.cluster_order
        )
        tried_total = 0
        saw_candidates = False
        cell_context = (
            f"cell ({row}, {attribute})" if cell_timer is not None else ""
        )
        for cluster, candidates in self._scan_clusters(
            engine, row, attribute, clusters
        ):
            if not candidates:
                continue
            saw_candidates = True
            for candidate in candidates:
                if cell_timer is not None:
                    cell_timer.check_budget(cell_context)
                state.timer.check_budget("RENUVER imputation")
                tried_total += 1
                accepted = self._try_candidate(
                    state, row, attribute, candidate, engine=engine
                )
                if accepted:
                    return CellOutcome(
                        row,
                        attribute,
                        OutcomeStatus.IMPUTED,
                        value=candidate.value,
                        source_row=candidate.row,
                        rfd=candidate.rfd,
                        distance=candidate.distance,
                        cluster_threshold=cluster.rhs_threshold,
                        candidates_tried=tried_total,
                    )
        status = (
            OutcomeStatus.ALL_REJECTED
            if saw_candidates
            else OutcomeStatus.NO_CANDIDATES
        )
        return CellOutcome(
            row, attribute, status, candidates_tried=tried_total
        )

    def _try_candidate(
        self,
        state: _RunState,
        row: int,
        attribute: str,
        candidate: Candidate,
        *,
        engine: ScalarEngine | VectorizedEngine | None = None,
    ) -> bool:
        """Write the candidate value, verify, roll back on fault.

        Both the tentative write and the rollback go through
        ``Relation.set_value``, whose dirty-cell hook invalidates the
        engine's cached kernel vectors for ``attribute`` — verification
        always sees the written value, never a stale vector.
        """
        engine = engine or state.engine
        relation = state.calculator.relation
        relation.set_value(row, attribute, candidate.value)
        if not self.config.verify:
            return True
        if engine.is_faultless(
            row,
            attribute,
            state.active_rfds,
            check_rhs_rfds=self.config.check_rhs_rfds,
        ):
            return True
        relation.set_value(row, attribute, MISSING)
        return False

    def _record_cell_metrics(
        self, outcome: CellOutcome, seconds: float
    ) -> None:
        """Per-cell metrics; called only when the registry is live."""
        metrics = self.telemetry.metrics
        metrics.histogram(
            "renuver_cell_seconds",
            "Wall time spent settling one missing cell.",
        ).observe(seconds)
        metrics.counter(
            "renuver_cells_total",
            "Missing cells settled, by outcome status.",
            status=outcome.status.value,
        ).inc()
        metrics.counter(
            "renuver_candidates_tried_total",
            "Candidate values attempted across all cells.",
        ).inc(outcome.candidates_tried)

    # ------------------------------------------------------------------
    # Fault-tolerance helpers
    # ------------------------------------------------------------------
    def _record_degradation(
        self,
        state: _RunState,
        row: int,
        attribute: str,
        from_tier: str,
        to_tier: str,
        reason: str,
    ) -> None:
        """One degradation-ladder downgrade: report + span event +
        metric + warning, all from a single code path."""
        state.report.degradations.append(
            Degradation(row, attribute, from_tier, to_tier, reason)
        )
        self.telemetry.tracer.event(
            "degradation",
            row=row,
            attribute=attribute,
            from_tier=from_tier,
            to_tier=to_tier,
        )
        self.telemetry.metrics.counter(
            "renuver_degradations_total",
            "Degradation-ladder downgrades, by the tier degraded from.",
            stage=from_tier,
        ).inc()
        logger.warning(
            "cell (%d, %s) degraded %s -> %s: %s",
            row, attribute, from_tier, to_tier, reason,
        )

    def _restore_cell(
        self, state: _RunState, row: int, attribute: str
    ) -> None:
        """Re-blank a cell a failed tier may have left tentatively set.

        ``set_value`` applies the write and invalidates caches before
        surfacing listener failures, so a ``DataError`` here (e.g. an
        injected listener fault) still leaves the cell restored.
        """
        relation = state.calculator.relation
        if relation.is_missing_cell(row, attribute):
            return
        try:
            relation.set_value(row, attribute, MISSING)
        except DataError:
            pass

    def _scalar_retry_engine(self, state: _RunState) -> ScalarEngine:
        """The ladder's tier-1 engine, built once per run on demand.

        Shares the run's calculator (and therefore the relation), and
        carries the same kernel hooks as the primary engine so budget
        checks and chaos faults apply to the retry tier too.
        """
        if state.scalar_retry is None:
            engine = ScalarEngine(state.calculator)
            engine.set_telemetry(self.telemetry)
            self._attach_runtime_hooks(engine, state.timer, state.chaos)
            state.scalar_retry = engine
        return state.scalar_retry

    def _last_tier_name(self) -> str:
        return "mean_mode" if self.config.fallback == "mean_mode" else "skip"

    def _last_resort(
        self,
        state: _RunState,
        row: int,
        attribute: str,
        reason: str,
    ) -> CellOutcome:
        """Bottom of the ladder: mean/mode fill or an audited skip."""
        if self.config.fallback == "mean_mode":
            value = self._fallback_fill_value(
                state.calculator.relation, attribute
            )
            if value is not None:
                relation = state.calculator.relation
                try:
                    relation.set_value(row, attribute, value)
                except DataError:
                    pass  # write applied; listener failure already audited
                return CellOutcome(
                    row,
                    attribute,
                    OutcomeStatus.DEGRADED,
                    value=relation.value(row, attribute),
                    engine_tier="mean_mode",
                    reason=reason,
                )
            reason = f"{reason}; no present values for mean/mode fallback"
        return CellOutcome(
            row, attribute, OutcomeStatus.SKIPPED, reason=reason
        )

    @staticmethod
    def _fallback_fill_value(
        relation: Relation, attribute: str
    ) -> object | None:
        """Column mean (numeric) or mode (otherwise), as in
        :class:`~repro.baselines.mean_mode.MeanModeImputer`."""
        from repro.baselines.mean_mode import _mode

        values = [
            value
            for value in relation.column(attribute)
            if not is_missing(value)
        ]
        if not values:
            return None
        kind = relation.attribute(attribute).type
        if kind is AttributeType.FLOAT:
            return sum(values) / len(values)
        if kind is AttributeType.INTEGER:
            return round(sum(values) / len(values))
        return _mode(values)

    def _record_budget_event(
        self,
        state: _RunState,
        exc: BudgetExceededError,
        row: int,
        attribute: str,
    ) -> None:
        event = BudgetEvent(
            scope=exc.scope,
            kind=exc.kind,
            context=str(exc),
            elapsed_seconds=exc.elapsed_seconds,
            peak_bytes=exc.peak_bytes,
            row=row,
            attribute=attribute,
        )
        state.report.budget_events.append(event)
        if state.writer is not None:
            state.writer.record_budget(event)
        self.telemetry.tracer.event(
            "budget_exceeded",
            scope=event.scope,
            kind=event.kind,
            row=row,
            attribute=attribute,
        )
        self._count_budget_event(event)
        logger.warning(
            "budget exceeded at cell (%d, %s): %s", row, attribute, exc
        )

    def _count_budget_event(self, event: BudgetEvent) -> None:
        self.telemetry.metrics.counter(
            "renuver_budget_events_total",
            "Budget overruns, by scope and kind.",
            scope=event.scope,
            kind=event.kind,
        ).inc()

    def _settle_budget_overrun(
        self,
        exc: BudgetExceededError,
        working: Relation,
        timer: Timer,
        replayed: list[CellOutcome],
        state: _RunState | None,
        writer: object | None,
    ) -> ImputationResult | None:
        """Finalize a run a budget overrun is ending.

        Returns the partial result when ``on_budget="partial"`` applies
        (the caller returns it normally); otherwise attaches the partial
        result to ``exc`` and returns None (the caller re-raises).  The
        overrun may have hit before preprocessing finished (``state`` is
        None) — the partial report then holds only replayed outcomes.

        Cells settled here are *not* journaled: a resumed run should
        retry them, not inherit the exhausted budget's verdict.
        """
        if state is not None:
            report = state.report
            report.kernel_counters = state.engine.counters()
        else:
            report = ImputationReport()
            for outcome in replayed:
                report.add(outcome)
            report.replayed_count = len(replayed)
            event = BudgetEvent(
                scope=exc.scope,
                kind=exc.kind,
                context=str(exc),
                elapsed_seconds=exc.elapsed_seconds,
                peak_bytes=exc.peak_bytes,
            )
            report.budget_events.append(event)
            if writer is not None:
                writer.record_budget(event)
            self.telemetry.tracer.event(
                "budget_exceeded", scope=event.scope, kind=event.kind
            )
            self._count_budget_event(event)
            logger.warning("budget exceeded before first cell: %s", exc)
        report.elapsed_seconds = timer.elapsed
        if self.config.on_budget == "partial" and exc.scope == "run":
            settled = {(o.row, o.attribute) for o in report}
            reason = f"run budget exhausted ({exc.kind})"
            for row in working.incomplete_rows():
                for attribute in working.row(row).missing_attributes():
                    if (row, attribute) not in settled:
                        report.add(CellOutcome(
                            row, attribute, OutcomeStatus.SKIPPED,
                            reason=reason,
                        ))
            return ImputationResult(working, report)
        exc.partial_result = ImputationResult(working, report)
        return None

    def _reactivate_keys(
        self, state: _RunState, row: int, attribute: str
    ) -> None:
        """Incremental Algorithm 1 line 14.

        Only pairs involving the imputed tuple can create a fresh
        LHS match.  Under ``keyness_scope="all"`` the new value must
        moreover sit on the key RFD's LHS to matter; under
        ``"complete"`` any imputation that completes the tuple brings
        all its pairs into scope, so every key RFD is re-checked (but
        only when the tuple has just become complete).
        """
        scope = self.config.keyness_scope
        relation = state.calculator.relation
        if scope == "complete" and relation.row(row).is_incomplete():
            return  # pairs with this tuple are still out of scope
        still_key: list[RFD] = []
        for rfd in state.key_rfds:
            if scope == "all" and not rfd.has_lhs_attribute(attribute):
                still_key.append(rfd)
                continue
            try:
                reactivates = state.engine.pair_reactivates(
                    rfd, row, scope=scope
                )
            except BudgetExceededError:
                raise  # run is over; key_rfds left as-is is safe
            except Exception as exc:  # noqa: BLE001 - fault isolation
                if self.config.fallback == "raise":
                    raise
                # Conservative: keep the RFD keyed; the next imputation
                # re-checks it.  Auditable via the degradation trail.
                still_key.append(rfd)
                self._record_degradation(
                    state, row, attribute, "key-recheck", "deferred",
                    f"{type(exc).__name__}: {exc}",
                )
                continue
            if reactivates:
                state.active_rfds.append(rfd)
                state.report.key_rfds_reactivated += 1
                self.telemetry.metrics.counter(
                    "renuver_key_rfds_reactivated_total",
                    "Key RFDs re-activated (Algorithm 1 line 14).",
                ).inc()
                logger.debug(
                    "key RFD reactivated by cell (%d, %s): %s",
                    row, attribute, rfd,
                )
            else:
                still_key.append(rfd)
        state.key_rfds = still_key

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _make_calculator(self, relation: Relation) -> PatternCalculator:
        return PatternCalculator(
            relation,
            overrides=self._distance_overrides,
            cached=self.config.distance_cache,
        )

    def _make_engine(
        self, calculator: PatternCalculator
    ) -> ScalarEngine | VectorizedEngine:
        """The configured donor-scan engine, bound to one calculator."""
        engine: ScalarEngine | VectorizedEngine
        if self.config.engine == "scalar":
            engine = ScalarEngine(calculator)
        elif self._blocking_engages(calculator.relation):
            from repro.core.blocked import BlockedEngine

            plan = self._index_plan
            if (
                plan is not None
                and getattr(plan, "relation", None)
                is not calculator.relation
            ):
                plan = None  # foreign instance: the engine builds its own
            engine = BlockedEngine(
                calculator,
                self.rfds,
                override_names=set(self._distance_overrides),
                max_group_size=self.config.max_group_size,
                index_plan=plan,
            )
        else:
            engine = VectorizedEngine(
                calculator,
                self.rfds,
                override_names=set(self._distance_overrides),
            )
        engine.set_telemetry(self.telemetry)
        return engine

    def _blocking_engages(self, relation: Relation) -> bool:
        """Whether this (vectorized) run uses the blocking indexes."""
        if self.config.blocking == "on":
            return True
        if self.config.blocking == "off":
            return False
        from repro.index.plan import AUTO_BLOCKING_MIN_TUPLES

        return relation.n_tuples >= AUTO_BLOCKING_MIN_TUPLES

    def _scan_clusters(
        self,
        engine: ScalarEngine | VectorizedEngine,
        row: int,
        attribute: str,
        clusters: list[Cluster],
    ):
        """Yield ``(cluster, candidates)`` through one engine cell scan.

        The single shared donor-scan path of the driver and ``explain``:
        one scan context per missing cell, so per-donor work (distance
        patterns or kernel vectors) is shared across the cell's clusters.
        """
        if not clusters:
            return
        scan = engine.cell_scan(row, attribute, clusters)
        for cluster in clusters:
            yield cluster, scan.candidates(
                cluster, max_candidates=self.config.max_candidates
            )

    def _clusters_for(
        self, active: list[RFD], attribute: str
    ) -> list[Cluster]:
        return cluster_by_rhs_threshold(
            select_rfds_for_attribute(active, attribute),
            attribute,
            order=self.config.cluster_order,
        )

    def _validate_schema(self, relation: Relation) -> None:
        known = set(relation.attribute_names)
        for rfd in self.rfds:
            unknown = set(rfd.attributes) - known
            if unknown:
                raise ImputationError(
                    f"RFD {rfd} references attributes {sorted(unknown)} "
                    f"absent from relation {relation.name!r}"
                )

    def with_config(self, **changes: object) -> "Renuver":
        """A copy of this engine with some config fields replaced."""
        return Renuver(
            self.rfds,
            replace(self.config, **changes),  # type: ignore[arg-type]
            distance_overrides=self._distance_overrides,
            telemetry=self.telemetry,
            index_plan=self._index_plan,
        )
