"""The RENUVER driver (Algorithm 1 of the paper).

Pipeline per run:

(a) *Pre-processing*: split ``Sigma`` into key and non-key RFDs
    (Definition 3.4) and collect the incomplete tuples ``r-hat``.
(b) *RFD selection*: for each missing value ``t[A] = _``, gather
    ``Sigma'_A`` (non-key RFDs with RHS ``A``) and cluster it by RHS
    threshold.
(c) *Imputation*: per cluster, generate candidate tuples (Algorithm 3),
    try them in ascending distance order and keep the first whose
    imputation is faultless (Algorithm 4); otherwise leave the cell blank.

After every successful imputation the key/non-key split is re-evaluated
(line 14): a fresh value can create the first LHS-matching pair of a key
RFD, turning it usable (Example 5.1).  Only pairs involving the imputed
tuple can do that, so the re-check is incremental.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Mapping

from repro.dataset.missing import MISSING
from repro.dataset.relation import Relation
from repro.distance.base import DistanceFunction
from repro.distance.pattern import PatternCalculator
from repro.exceptions import ImputationError
from repro.core.candidates import Candidate
from repro.core.donor_scan import ScalarEngine, VectorizedEngine
from repro.core.report import CellOutcome, ImputationReport, OutcomeStatus
from repro.core.selection import (
    Cluster,
    cluster_by_rhs_threshold,
    select_rfds_for_attribute,
)
from repro.rfd.rfd import RFD
from repro.utils.memory import MemoryTracker
from repro.utils.timer import Timer


@dataclass(frozen=True)
class RenuverConfig:
    """Tuning knobs of a RENUVER run.

    Attributes
    ----------
    cluster_order:
        ``"ascending"`` (default; the worked example's tightest-first
        order) or ``"descending"`` (Algorithm 2's literal wording).
    engine:
        Donor-scan engine: ``"vectorized"`` (default; columnar one-vs-all
        distance kernels with length-blocked string DPs) or ``"scalar"``
        (the original pair-at-a-time reference path).  Both produce
        bit-identical imputation outcomes; the scalar engine is kept for
        equivalence testing and as executable documentation of
        Algorithms 3 and 4.
    verify:
        Run IS_FAULTLESS on every tentative imputation.  Disabling it is
        an ablation: faster, but consistency (Definition 4.3) is no
        longer guaranteed.
    check_rhs_rfds:
        Extend verification to RFDs with the imputed attribute on the
        RHS (stronger than the paper's Algorithm 4).
    recheck_keys:
        Re-evaluate key RFDs after each imputation (Algorithm 1 line 14).
    keyness_scope:
        Which tuple pairs count when testing Definition 3.4: ``"all"``
        (default; the literal definition) or ``"complete"`` (only pairs
        of complete tuples — closer to the paper's Example 5.2; see
        repro.rfd.keyness).
    max_candidates:
        Optional cap on candidates tried per cluster (the paper's ``k``).
    distance_cache:
        Memoize distances per value pair.
    track_memory:
        Measure peak allocation with :mod:`tracemalloc` (slows the run;
        used by the stress benchmarks).
    time_budget_seconds / memory_budget_bytes:
        Abort with :class:`~repro.exceptions.BudgetExceededError` when
        exceeded — the paper's 48 h / 30 GB stress-test limits.
    """

    cluster_order: str = "ascending"
    engine: str = "vectorized"
    verify: bool = True
    check_rhs_rfds: bool = False
    recheck_keys: bool = True
    keyness_scope: str = "all"
    max_candidates: int | None = None
    distance_cache: bool = True
    track_memory: bool = False
    time_budget_seconds: float | None = None
    memory_budget_bytes: int | None = None

    def __post_init__(self) -> None:
        if self.cluster_order not in ("ascending", "descending"):
            raise ImputationError(
                f"cluster_order must be 'ascending' or 'descending', "
                f"got {self.cluster_order!r}"
            )
        if self.engine not in ("scalar", "vectorized"):
            raise ImputationError(
                f"engine must be 'scalar' or 'vectorized', "
                f"got {self.engine!r}"
            )
        if self.keyness_scope not in ("complete", "all"):
            raise ImputationError(
                f"keyness_scope must be 'complete' or 'all', "
                f"got {self.keyness_scope!r}"
            )
        if self.max_candidates is not None and self.max_candidates < 1:
            raise ImputationError("max_candidates must be >= 1 when given")


@dataclass
class ImputationResult:
    """What :meth:`Renuver.impute` returns: the instance plus provenance."""

    relation: Relation
    report: ImputationReport


@dataclass
class _RunState:
    """Mutable per-run state shared by the private helpers."""

    calculator: PatternCalculator
    engine: ScalarEngine | VectorizedEngine
    active_rfds: list[RFD]
    key_rfds: list[RFD]
    report: ImputationReport
    timer: Timer
    memory: MemoryTracker | None = None
    explanations: dict[tuple[int, str], list[Candidate]] = field(
        default_factory=dict
    )


class Renuver:
    """RFD-based null value repairer.

    Parameters
    ----------
    rfds:
        The set ``Sigma`` of RFDs holding on the (complete) instance.
    config:
        Optional :class:`RenuverConfig`.
    distance_overrides:
        Optional per-attribute distance functions replacing the paper's
        defaults.

    Example
    -------
    >>> from repro import Renuver, make_rfd
    >>> engine = Renuver([make_rfd({"Zip": 0}, ("City", 2))])
    >>> result = engine.impute(relation)          # doctest: +SKIP
    >>> result.report.fill_rate                   # doctest: +SKIP
    """

    def __init__(
        self,
        rfds: Iterable[RFD],
        config: RenuverConfig | None = None,
        *,
        distance_overrides: Mapping[str, DistanceFunction] | None = None,
    ) -> None:
        self.rfds: tuple[RFD, ...] = tuple(rfds)
        if not self.rfds:
            raise ImputationError("Renuver needs at least one RFD")
        self.config = config or RenuverConfig()
        self._distance_overrides = dict(distance_overrides or {})

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def impute(
        self, relation: Relation, *, inplace: bool = False
    ) -> ImputationResult:
        """Impute every missing value of ``relation`` (Algorithm 1).

        Returns an :class:`ImputationResult` whose relation is a copy
        unless ``inplace`` is true.  Cells for which no semantically
        consistent candidate exists are left missing, per Section 4.
        """
        self._validate_schema(relation)
        working = relation if inplace else relation.copy()
        timer = Timer(self.config.time_budget_seconds)
        timer.start()

        if self.config.track_memory:
            memory = MemoryTracker(self.config.memory_budget_bytes)
            memory.__enter__()
        else:
            memory = None
        state: _RunState | None = None
        try:
            state = self._preprocess(working, timer, memory)
            self._impute_all(state)
        finally:
            if state is not None:
                state.engine.close()
            if memory is not None:
                memory.__exit__(None, None, None)
        state.report.elapsed_seconds = timer.stop()
        state.report.kernel_counters = state.engine.counters()
        if memory is not None:
            state.report.peak_bytes = memory.peak_bytes
        return ImputationResult(working, state.report)

    def explain(
        self, relation: Relation, row: int, attribute: str
    ) -> list[Candidate]:
        """Candidates RENUVER would consider for one missing cell.

        Diagnostic helper: runs selection + candidate generation for a
        single cell against a copy of ``relation`` without imputing
        anything.  Candidates from all clusters are concatenated in
        cluster order.  Uses the configured donor-scan engine — the same
        code path (and per-cell donor memoization) as the imputation
        driver.
        """
        self._validate_schema(relation)
        if not relation.is_missing_cell(row, attribute):
            raise ImputationError(
                f"cell ({row}, {attribute}) is not missing"
            )
        working = relation.copy()
        calculator = self._make_calculator(working)
        engine = self._make_engine(calculator)
        try:
            _, active = engine.partition_key_rfds(
                self.rfds, scope=self.config.keyness_scope
            )
            clusters = self._clusters_for(active, attribute)
            return [
                candidate
                for _, cluster_candidates in self._scan_clusters(
                    engine, row, attribute, clusters
                )
                for candidate in cluster_candidates
            ]
        finally:
            engine.close()

    # ------------------------------------------------------------------
    # Pipeline steps
    # ------------------------------------------------------------------
    def _preprocess(
        self,
        working: Relation,
        timer: Timer,
        memory: MemoryTracker | None,
    ) -> _RunState:
        """Step (a): split keys from usable RFDs, set up shared state."""
        calculator = self._make_calculator(working)
        engine = self._make_engine(calculator)
        key_rfds, active_rfds = engine.partition_key_rfds(
            self.rfds, scope=self.config.keyness_scope
        )
        report = ImputationReport(key_rfds_initial=len(key_rfds))
        return _RunState(
            calculator=calculator,
            engine=engine,
            active_rfds=active_rfds,
            key_rfds=key_rfds,
            report=report,
            timer=timer,
            memory=memory,
        )

    def _impute_all(self, state: _RunState) -> None:
        """Steps (b) + (c) over every missing cell, in tuple order."""
        relation = state.calculator.relation
        for row in relation.incomplete_rows():
            for attribute in relation.row(row).missing_attributes():
                state.timer.check_budget("RENUVER imputation")
                if state.memory is not None:
                    state.memory.check_budget("RENUVER imputation")
                outcome = self._impute_cell(state, row, attribute)
                state.report.add(outcome)
                if outcome.imputed and self.config.recheck_keys:
                    self._reactivate_keys(state, row, attribute)

    def _impute_cell(
        self, state: _RunState, row: int, attribute: str
    ) -> CellOutcome:
        """Algorithm 2 for one missing value."""
        selected = select_rfds_for_attribute(state.active_rfds, attribute)
        if not selected:
            return CellOutcome(row, attribute, OutcomeStatus.NO_RFDS)
        clusters = cluster_by_rhs_threshold(
            selected, attribute, order=self.config.cluster_order
        )
        tried_total = 0
        saw_candidates = False
        for cluster, candidates in self._scan_clusters(
            state.engine, row, attribute, clusters
        ):
            if not candidates:
                continue
            saw_candidates = True
            for candidate in candidates:
                tried_total += 1
                accepted = self._try_candidate(
                    state, row, attribute, candidate
                )
                if accepted:
                    return CellOutcome(
                        row,
                        attribute,
                        OutcomeStatus.IMPUTED,
                        value=candidate.value,
                        source_row=candidate.row,
                        rfd=candidate.rfd,
                        distance=candidate.distance,
                        cluster_threshold=cluster.rhs_threshold,
                        candidates_tried=tried_total,
                    )
        status = (
            OutcomeStatus.ALL_REJECTED
            if saw_candidates
            else OutcomeStatus.NO_CANDIDATES
        )
        return CellOutcome(
            row, attribute, status, candidates_tried=tried_total
        )

    def _try_candidate(
        self,
        state: _RunState,
        row: int,
        attribute: str,
        candidate: Candidate,
    ) -> bool:
        """Write the candidate value, verify, roll back on fault.

        Both the tentative write and the rollback go through
        ``Relation.set_value``, whose dirty-cell hook invalidates the
        engine's cached kernel vectors for ``attribute`` — verification
        always sees the written value, never a stale vector.
        """
        relation = state.calculator.relation
        relation.set_value(row, attribute, candidate.value)
        if not self.config.verify:
            return True
        if state.engine.is_faultless(
            row,
            attribute,
            state.active_rfds,
            check_rhs_rfds=self.config.check_rhs_rfds,
        ):
            return True
        relation.set_value(row, attribute, MISSING)
        return False

    def _reactivate_keys(
        self, state: _RunState, row: int, attribute: str
    ) -> None:
        """Incremental Algorithm 1 line 14.

        Only pairs involving the imputed tuple can create a fresh
        LHS match.  Under ``keyness_scope="all"`` the new value must
        moreover sit on the key RFD's LHS to matter; under
        ``"complete"`` any imputation that completes the tuple brings
        all its pairs into scope, so every key RFD is re-checked (but
        only when the tuple has just become complete).
        """
        scope = self.config.keyness_scope
        relation = state.calculator.relation
        if scope == "complete" and relation.row(row).is_incomplete():
            return  # pairs with this tuple are still out of scope
        still_key: list[RFD] = []
        for rfd in state.key_rfds:
            if scope == "all" and not rfd.has_lhs_attribute(attribute):
                still_key.append(rfd)
                continue
            if state.engine.pair_reactivates(rfd, row, scope=scope):
                state.active_rfds.append(rfd)
                state.report.key_rfds_reactivated += 1
            else:
                still_key.append(rfd)
        state.key_rfds = still_key

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _make_calculator(self, relation: Relation) -> PatternCalculator:
        return PatternCalculator(
            relation,
            overrides=self._distance_overrides,
            cached=self.config.distance_cache,
        )

    def _make_engine(
        self, calculator: PatternCalculator
    ) -> ScalarEngine | VectorizedEngine:
        """The configured donor-scan engine, bound to one calculator."""
        if self.config.engine == "scalar":
            return ScalarEngine(calculator)
        return VectorizedEngine(
            calculator,
            self.rfds,
            override_names=set(self._distance_overrides),
        )

    def _scan_clusters(
        self,
        engine: ScalarEngine | VectorizedEngine,
        row: int,
        attribute: str,
        clusters: list[Cluster],
    ):
        """Yield ``(cluster, candidates)`` through one engine cell scan.

        The single shared donor-scan path of the driver and ``explain``:
        one scan context per missing cell, so per-donor work (distance
        patterns or kernel vectors) is shared across the cell's clusters.
        """
        if not clusters:
            return
        scan = engine.cell_scan(row, attribute, clusters)
        for cluster in clusters:
            yield cluster, scan.candidates(
                cluster, max_candidates=self.config.max_candidates
            )

    def _clusters_for(
        self, active: list[RFD], attribute: str
    ) -> list[Cluster]:
        return cluster_by_rhs_threshold(
            select_rfds_for_attribute(active, attribute),
            attribute,
            order=self.config.cluster_order,
        )

    def _validate_schema(self, relation: Relation) -> None:
        known = set(relation.attribute_names)
        for rfd in self.rfds:
            unknown = set(rfd.attributes) - known
            if unknown:
                raise ImputationError(
                    f"RFD {rfd} references attributes {sorted(unknown)} "
                    f"absent from relation {relation.name!r}"
                )

    def with_config(self, **changes: object) -> "Renuver":
        """A copy of this engine with some config fields replaced."""
        return Renuver(
            self.rfds,
            replace(self.config, **changes),  # type: ignore[arg-type]
            distance_overrides=self._distance_overrides,
        )
