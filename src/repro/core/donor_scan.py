"""Donor-scan engines: the vectorized hot path and the scalar reference.

RENUVER's cost is dominated by two per-missing-cell donor scans:
candidate generation (Algorithm 3) and verification (Algorithm 4).  Both
boil down to "compare the target tuple against every other tuple on a
handful of attributes".  The engines here expose that scan behind one
interface so the driver — and the ``explain`` diagnostics — run the same
code path:

* :class:`ScalarEngine` wraps the original pair-at-a-time functions
  (``find_candidate_tuples`` / ``is_faultless``) with the per-cell donor
  memo the driver used to build inline.  It is the reference
  implementation for equivalence testing.
* :class:`VectorizedEngine` evaluates both algorithms with mask
  arithmetic over the one-vs-all vectors of
  :class:`~repro.distance.kernels.DonorScanKernels`: LHS satisfaction is
  the AND of per-attribute within-threshold masks, the Equation-2 score
  is the sum of the LHS distance vectors over ``|X|``, and the per-donor
  best RFD is an element-wise running minimum.  Verification orders the
  relevant RFDs by measured selectivity (how often each one produced a
  violation so far) and exits on the first violating mask.

Both engines produce bit-identical :class:`~repro.core.candidates.Candidate`
lists and accept/reject decisions: the float operations run in the same
order (IEEE-754 addition is deterministic) and the clamped string
distances only differ beyond every threshold in play.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

from repro.core.candidates import Candidate, find_candidate_tuples
from repro.core.selection import Cluster
from repro.core.verification import (
    first_fault as _scalar_first_fault,
    is_faultless as _scalar_is_faultless,
    relevant_rfds,
)
from repro.distance.kernels import DonorScanKernels
from repro.distance.levenshtein import BOUNDED_STATS
from repro.distance.pattern import DistancePattern, PatternCalculator
from repro.rfd.keyness import (
    _check_scope,  # noqa: SLF001 - shared scope validation
    pair_reactivates as _scalar_pair_reactivates,
    partition_key_rfds as _scalar_partition_key_rfds,
)
from repro.rfd.rfd import RFD
from repro.rfd.violations import Violation
from repro.telemetry import NULL_TELEMETRY
from repro.telemetry.trace import NULL_SPAN


def string_clamp_limits(rfds: Iterable[RFD]) -> dict[str, float]:
    """Per-attribute clamp for the kernels: the largest threshold any
    constraint (LHS or RHS) of ``rfds`` applies to the attribute.

    Distances above the clamp never influence an engine decision — every
    satisfaction test compares against a threshold at or below it — so
    the kernels may stop the string DP there and length-block donors
    beyond it.
    """
    limits: dict[str, float] = {}
    for rfd in rfds:
        for constraint in rfd.lhs + (rfd.rhs,):
            current = limits.get(constraint.attribute)
            if current is None or constraint.threshold > current:
                limits[constraint.attribute] = constraint.threshold
    return limits


class KernelCallSeam:
    """Observable entry points of a donor-scan engine.

    Both engines announce every top-level kernel operation
    (``cell_scan``, ``candidates``, ``is_faultless``, ``first_fault``,
    ``partition_key_rfds``, ``pair_reactivates``) to a list of hooks.
    The fault-tolerant runtime registers a budget watchdog here, and the
    chaos harness registers deterministic fault injectors — the seam
    that lets recovery paths be *tested* instead of trusted.

    A hook receives ``(op, target_row, attribute)`` and may raise; the
    exception propagates to the driver exactly like a kernel failure
    would.

    The seam is also the telemetry attachment point: every entry is
    counted per operation (the unified half of :meth:`counters`), and
    when a live :class:`~repro.telemetry.Telemetry` is attached via
    :meth:`set_telemetry`, each entry increments
    ``renuver_kernel_calls_total{engine=,op=}`` and runs under a
    ``kernel.<op>`` span nested inside the driver's cell span.
    """

    def __init__(self) -> None:
        self._kernel_hooks: list[Callable[[str, int, str], None]] = []
        self._telemetry = NULL_TELEMETRY
        #: Seam entries per operation since construction.
        self.op_counts: dict[str, int] = {}
        self._op_counters: dict[str, object] = {}
        # Baseline for the bounded-Levenshtein deltas of counters().
        # The totals are process-wide, so concurrent engines in one
        # process each see the sum of everyone's calls since their own
        # construction — exact for the sequential runs that read them.
        self._bounded_baseline = BOUNDED_STATS.snapshot()

    def add_kernel_hook(
        self, hook: Callable[[str, int, str], None]
    ) -> None:
        """Register a hook fired at every kernel-call entry."""
        self._kernel_hooks.append(hook)

    def set_telemetry(self, telemetry: object) -> None:
        """Attach the run's telemetry (tracer + metrics registry)."""
        self._telemetry = telemetry or NULL_TELEMETRY
        self._op_counters.clear()

    def _fire(self, op: str, target_row: int, attribute: str) -> None:
        counts = self.op_counts
        counts[op] = counts.get(op, 0) + 1
        counter = self._op_counters.get(op)
        if counter is None:
            counter = self._telemetry.metrics.counter(
                "renuver_kernel_calls_total",
                "Kernel-call seam entries by engine and operation.",
                engine=self.name,
                op=op,
            )
            self._op_counters[op] = counter
        counter.inc()  # type: ignore[attr-defined]
        for hook in self._kernel_hooks:
            hook(op, target_row, attribute)

    def _kernel_span(self, op: str, target_row: int, attribute: str):
        """Fire the seam, then open a ``kernel.<op>`` span.

        Hook exceptions (budget watchdog, chaos faults) raise *before*
        the span opens, exactly as the bare seam behaved.  With tracing
        disabled this costs one attribute read past :meth:`_fire`.
        """
        self._fire(op, target_row, attribute)
        tracer = self._telemetry.tracer
        if not tracer.enabled:
            return NULL_SPAN
        return tracer.span(
            f"kernel.{op}",
            engine=self.name,
            row=target_row,
            attribute=attribute,
        )

    # ------------------------------------------------------------------
    # Unified counters
    # ------------------------------------------------------------------
    def counters(self) -> dict[str, int]:
        """Kernel statistics for the imputation report.

        One code path for both engines: the seam's per-operation call
        counts (``calls_<op>``) merged with whatever engine-specific
        counters :meth:`_engine_counters` contributes (vector builds,
        cache hits, DP-blocking stats for the vectorized engine), plus
        the bounded-Levenshtein deltas since this seam was built —
        ``levenshtein_bounded_calls`` and ``levenshtein_length_filtered``
        (calls the length filter settled before any DP row allocation).
        """
        merged = {
            f"calls_{op}": count
            for op, count in sorted(self.op_counts.items())
        }
        calls, filtered = BOUNDED_STATS.snapshot()
        base_calls, base_filtered = self._bounded_baseline
        merged["levenshtein_bounded_calls"] = calls - base_calls
        merged["levenshtein_length_filtered"] = filtered - base_filtered
        merged.update(self._engine_counters())
        return merged

    def _engine_counters(self) -> dict[str, int]:
        """Engine-specific counters merged into :meth:`counters`."""
        return {}

    def _record_candidates(
        self, cluster: Cluster, found: list, span: object
    ) -> None:
        """Telemetry for one cluster's candidate generation."""
        self._telemetry.metrics.counter(
            "renuver_candidates_generated_total",
            "Candidate donor tuples produced by Algorithm 3.",
            engine=self.name,
        ).inc(len(found))
        if span is not NULL_SPAN:
            span.set_attribute(  # type: ignore[attr-defined]
                "cluster_threshold", cluster.rhs_threshold
            )
            span.set_attribute(  # type: ignore[attr-defined]
                "candidates", len(found)
            )


class ScalarEngine(KernelCallSeam):
    """Reference donor-scan engine: the paper's pair-at-a-time loops."""

    name = "scalar"

    def __init__(self, calculator: PatternCalculator) -> None:
        super().__init__()
        self.calculator = calculator

    def cell_scan(
        self,
        target_row: int,
        attribute: str,
        clusters: Sequence[Cluster],
    ) -> "_ScalarCellScan":
        """One scan context per missing cell.

        Shares one distance pattern per donor tuple across all clusters
        of the cell: tentative writes only touch ``attribute``, which by
        construction never appears in these LHS attribute sets, so the
        memo stays valid for the whole cell.
        """
        self._fire("cell_scan", target_row, attribute)
        union: tuple[str, ...] = tuple(
            sorted({
                name for cluster in clusters for name in cluster.lhs_union
            })
        )
        memo: dict[int, DistancePattern] = {}
        calculator = self.calculator

        def pattern_for(donor: int) -> DistancePattern:
            pattern = memo.get(donor)
            if pattern is None:
                pattern = calculator.pattern(target_row, donor, union)
                memo[donor] = pattern
            return pattern

        return _ScalarCellScan(self, target_row, attribute, pattern_for)

    def is_faultless(
        self,
        target_row: int,
        attribute: str,
        rfds: list[RFD],
        *,
        check_rhs_rfds: bool = False,
    ) -> bool:
        with self._kernel_span("is_faultless", target_row, attribute):
            return _scalar_is_faultless(
                self.calculator,
                target_row,
                attribute,
                rfds,
                check_rhs_rfds=check_rhs_rfds,
            )

    def first_fault(
        self,
        target_row: int,
        attribute: str,
        rfds: list[RFD],
        *,
        check_rhs_rfds: bool = False,
    ) -> Violation | None:
        with self._kernel_span("first_fault", target_row, attribute):
            return _scalar_first_fault(
                self.calculator,
                target_row,
                attribute,
                rfds,
                check_rhs_rfds=check_rhs_rfds,
            )

    def partition_key_rfds(
        self, rfds: Iterable[RFD], *, scope: str = "all"
    ) -> tuple[list[RFD], list[RFD]]:
        """Definition 3.4 split, via the scalar all-pairs scan."""
        with self._kernel_span("partition_key_rfds", -1, ""):
            return _scalar_partition_key_rfds(
                rfds, self.calculator, scope=scope
            )

    def pair_reactivates(
        self, rfd: RFD, target_row: int, *, scope: str = "all"
    ) -> bool:
        """Algorithm 1 line 14's incremental re-check, pair-at-a-time."""
        with self._kernel_span(
            "pair_reactivates", target_row, rfd.rhs_attribute
        ):
            return _scalar_pair_reactivates(
                rfd, self.calculator, target_row, scope=scope
            )

    def cache_report(self) -> dict[str, tuple[int, int, int]]:
        """Value-pair memo statistics of the underlying calculator."""
        return self.calculator.cache_report()

    def close(self) -> None:
        """Nothing to detach."""


class _ScalarCellScan:
    __slots__ = ("_engine", "_target_row", "_attribute", "_pattern_for")

    def __init__(
        self,
        engine: ScalarEngine,
        target_row: int,
        attribute: str,
        pattern_for: Callable[[int], DistancePattern],
    ) -> None:
        self._engine = engine
        self._target_row = target_row
        self._attribute = attribute
        self._pattern_for = pattern_for

    def candidates(
        self, cluster: Cluster, *, max_candidates: int | None = None
    ) -> list[Candidate]:
        engine = self._engine
        with engine._kernel_span(
            "candidates", self._target_row, self._attribute
        ) as span:
            found = find_candidate_tuples(
                engine.calculator,
                self._target_row,
                self._attribute,
                cluster,
                max_candidates=max_candidates,
                pattern_for=self._pattern_for,
            )
            engine._record_candidates(cluster, found, span)
        return found


class VectorizedEngine(KernelCallSeam):
    """Columnar donor-scan engine over one-vs-all distance vectors."""

    name = "vectorized"

    def __init__(
        self,
        calculator: PatternCalculator,
        rfds: Iterable[RFD],
        *,
        override_names: Iterable[str] = (),
    ) -> None:
        super().__init__()
        self.calculator = calculator
        overrides = {
            name: calculator.function_for(name)
            for name in override_names
        }
        self.kernels = DonorScanKernels(
            calculator.relation,
            string_limits=string_clamp_limits(rfds),
            overrides=overrides,
        )
        self.kernels.attach()
        # Violations observed per RFD so far: verification tries the
        # historically most violating RFDs first and stops at the first
        # hit.
        self._fault_hits: dict[RFD, int] = {}

    def cell_scan(
        self,
        target_row: int,
        attribute: str,
        clusters: Sequence[Cluster],
    ) -> "_VectorizedCellScan":
        """One scan context per missing cell.

        Vectors are cached per (target row, attribute) for the lifetime
        of the cell's imputation; the cache is cleared here so memory
        stays bounded by one target row's vectors.
        """
        self._fire("cell_scan", target_row, attribute)
        self.kernels.clear_target_vectors()
        return _VectorizedCellScan(self, target_row, attribute)

    # ------------------------------------------------------------------
    # Algorithm 4 over masks
    # ------------------------------------------------------------------
    def is_faultless(
        self,
        target_row: int,
        attribute: str,
        rfds: list[RFD],
        *,
        check_rhs_rfds: bool = False,
    ) -> bool:
        with self._kernel_span("is_faultless", target_row, attribute):
            relevant = relevant_rfds(
                rfds, attribute, check_rhs_rfds=check_rhs_rfds
            )
            if not relevant:
                return True
            hits = self._fault_hits
            ordered = sorted(
                relevant, key=lambda rfd: -hits.get(rfd, 0)
            )
            with np.errstate(invalid="ignore"):
                for rfd in ordered:
                    mask = self._violation_mask(target_row, rfd)
                    if mask is not None and mask.any():
                        hits[rfd] = hits.get(rfd, 0) + 1
                        return False
            return True

    def first_fault(
        self,
        target_row: int,
        attribute: str,
        rfds: list[RFD],
        *,
        check_rhs_rfds: bool = False,
    ) -> Violation | None:
        """Exact Algorithm 4 semantics: the violation with the smallest
        partner row, ties broken by relevant-RFD order."""
        with self._kernel_span("first_fault", target_row, attribute):
            relevant = relevant_rfds(
                rfds, attribute, check_rhs_rfds=check_rhs_rfds
            )
            best_row: int | None = None
            best_rfd: RFD | None = None
            with np.errstate(invalid="ignore"):
                for rfd in relevant:
                    mask = self._violation_mask(target_row, rfd)
                    if mask is None:
                        continue
                    rows = np.nonzero(mask)[0]
                    if rows.size and (
                        best_row is None or rows[0] < best_row
                    ):
                        best_row = int(rows[0])
                        best_rfd = rfd
            if best_row is None or best_rfd is None:
                return None
            return Violation(
                best_rfd,
                min(target_row, best_row),
                max(target_row, best_row),
            )

    def _violation_mask(
        self, target_row: int, rfd: RFD
    ) -> np.ndarray | None:
        """Rows violating ``rfd`` against the target, or ``None`` once
        the LHS mask empties (early exit)."""
        kernels = self.kernels
        mask: np.ndarray | None = None
        for constraint in rfd.lhs:
            vector = kernels.vector(target_row, constraint.attribute)
            satisfied = vector <= constraint.threshold
            mask = satisfied if mask is None else mask & satisfied
            mask[target_row] = False
            if not mask.any():
                return None
        rhs_vector = kernels.vector(target_row, rfd.rhs_attribute)
        assert mask is not None  # RFDs have a non-empty LHS
        mask &= ~np.isnan(rhs_vector)
        mask &= rhs_vector > rfd.rhs_threshold
        return mask

    # ------------------------------------------------------------------
    # Keyness (Definition 3.4) over masks
    # ------------------------------------------------------------------
    def partition_key_rfds(
        self, rfds: Iterable[RFD], *, scope: str = "all"
    ) -> tuple[list[RFD], list[RFD]]:
        """Definition 3.4 split with one-vs-all vectors.

        Row-major sweep: for each row the per-attribute distance vectors
        are built once and shared by every still-undecided RFD; an RFD
        leaves the undecided set as soon as some later row satisfies its
        whole LHS (the same pair predicate as the scalar scan, so the
        partition is identical).
        """
        with self._kernel_span("partition_key_rfds", -1, ""):
            return self._partition_key_rfds(rfds, scope)

    def _partition_key_rfds(
        self, rfds: Iterable[RFD], scope: str
    ) -> tuple[list[RFD], list[RFD]]:
        _check_scope(scope)
        rfds = list(rfds)
        kernels = self.kernels
        n = self.calculator.relation.n_tuples
        in_scope = self._scope_mask(scope)
        undecided = list(range(len(rfds)))
        non_key = [False] * len(rfds)
        with np.errstate(invalid="ignore"):
            for row in range(n - 1):
                if not undecided:
                    break
                if in_scope is not None and not in_scope[row]:
                    continue
                remaining: list[int] = []
                for index in undecided:
                    mask = self._lhs_pair_mask(row, rfds[index], in_scope)
                    if mask is not None and mask[row + 1:].any():
                        non_key[index] = True
                    else:
                        remaining.append(index)
                undecided = remaining
                kernels.clear_target_vectors()
        keys = [rfd for rfd, usable in zip(rfds, non_key) if not usable]
        non_keys = [rfd for rfd, usable in zip(rfds, non_key) if usable]
        return keys, non_keys

    def pair_reactivates(
        self, rfd: RFD, target_row: int, *, scope: str = "all"
    ) -> bool:
        """Algorithm 1 line 14's incremental re-check over one mask."""
        with self._kernel_span(
            "pair_reactivates", target_row, rfd.rhs_attribute
        ):
            _check_scope(scope)
            in_scope = self._scope_mask(scope)
            if in_scope is not None and not in_scope[target_row]:
                return False
            with np.errstate(invalid="ignore"):
                mask = self._lhs_pair_mask(target_row, rfd, in_scope)
            return mask is not None and bool(mask.any())

    def _lhs_pair_mask(
        self,
        target_row: int,
        rfd: RFD,
        in_scope: np.ndarray | None,
    ) -> np.ndarray | None:
        """Rows forming an LHS-satisfying pair with ``target_row``, or
        ``None`` once the mask empties (early exit)."""
        kernels = self.kernels
        mask: np.ndarray | None = None
        for constraint in rfd.lhs:
            vector = kernels.vector(target_row, constraint.attribute)
            satisfied = vector <= constraint.threshold
            mask = satisfied if mask is None else mask & satisfied
            mask[target_row] = False
            if in_scope is not None:
                mask &= in_scope
            if not mask.any():
                return None
        return mask

    def _scope_mask(self, scope: str) -> np.ndarray | None:
        """Rows eligible for keyness pairs: all of them, or (under
        ``scope="complete"``) the rows present on every attribute."""
        if scope != "complete":
            return None
        mask: np.ndarray | None = None
        for name in self.calculator.relation.attribute_names:
            present = self.kernels.present_mask(name)
            mask = present.copy() if mask is None else mask & present
        return mask

    # ------------------------------------------------------------------
    # Reporting / lifecycle
    # ------------------------------------------------------------------
    def _engine_counters(self) -> dict[str, int]:
        """Vector-layer counters (builds, cache hits, DP blocking)."""
        return dict(self.kernels.counters)

    def cache_report(self) -> dict[str, tuple[int, int, int]]:
        """String-memo statistics of the kernel layer."""
        return self.kernels.cache_report()

    def close(self) -> None:
        """Detach the dirty-cell hook from the relation."""
        self.kernels.close()


class _VectorizedCellScan:
    __slots__ = ("_engine", "_target_row", "_attribute")

    def __init__(
        self, engine: VectorizedEngine, target_row: int, attribute: str
    ) -> None:
        self._engine = engine
        self._target_row = target_row
        self._attribute = attribute

    def candidates(
        self, cluster: Cluster, *, max_candidates: int | None = None
    ) -> list[Candidate]:
        """Algorithm 3 over mask arithmetic.

        Mirrors the scalar scan exactly: LHS satisfaction per RFD, mean
        LHS distance (summed in sorted-attribute order, the same float
        operation order as ``DistancePattern.mean_over``), per-donor
        minimum across the cluster's RFDs with first-RFD tie-breaks, and
        an ascending (distance, row) sort.
        """
        target_row = self._target_row
        attribute = self._attribute
        if cluster.attribute != attribute:
            raise ValueError(
                f"cluster targets {cluster.attribute!r}, "
                f"expected {attribute!r}"
            )
        engine = self._engine
        with engine._kernel_span(
            "candidates", target_row, attribute
        ) as span:
            found = self._scan(cluster, max_candidates)
            engine._record_candidates(cluster, found, span)
        return found

    def _scan(
        self, cluster: Cluster, max_candidates: int | None
    ) -> list[Candidate]:
        target_row = self._target_row
        attribute = self._attribute
        engine = self._engine
        kernels = engine.kernels
        relation = engine.calculator.relation
        donors = kernels.present_mask(attribute).copy()
        donors[target_row] = False
        if not donors.any():
            return []
        n = donors.shape[0]
        best = np.full(n, np.inf)
        best_rfd = np.full(n, -1, dtype=np.int64)
        with np.errstate(invalid="ignore"):
            for index, rfd in enumerate(cluster.rfds):
                mask = donors
                for constraint in rfd.lhs:
                    vector = kernels.vector(
                        target_row, constraint.attribute
                    )
                    mask = mask & (vector <= constraint.threshold)
                    if not mask.any():
                        break
                else:
                    total: np.ndarray | None = None
                    for name in rfd.lhs_attributes:
                        vector = kernels.vector(target_row, name)
                        total = (
                            vector.copy() if total is None
                            else total + vector
                        )
                    score = np.where(
                        mask, total / len(rfd.lhs), np.inf
                    )
                    better = score < best
                    if better.any():
                        best = np.where(better, score, best)
                        best_rfd = np.where(better, index, best_rfd)
        rows = np.nonzero(best_rfd >= 0)[0]
        candidates = [
            Candidate(
                int(row),
                relation.value(int(row), attribute),
                float(best[row]),
                cluster.rfds[int(best_rfd[row])],
            )
            for row in rows
        ]
        candidates.sort(key=Candidate.sort_key)
        if max_candidates is not None:
            candidates = candidates[:max_candidates]
        return candidates
