"""Imputation provenance: what was filled, from where, and why.

Every missing cell RENUVER touches produces a :class:`CellOutcome` —
either the imputed value plus its source tuple, RFD and distance, or the
reason the cell was left blank.  The :class:`ImputationReport` aggregates
outcomes and the run's resource usage; the evaluation harness and the
examples both read it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.rfd.rfd import RFD


class OutcomeStatus(enum.Enum):
    """Terminal state of one missing cell after a run."""

    IMPUTED = "imputed"
    NO_CANDIDATES = "no_candidates"
    ALL_REJECTED = "all_rejected"
    NO_RFDS = "no_rfds"
    #: Filled by a fallback tier of the degradation ladder (not by the
    #: verified RENUVER path) — auditable via the report's degradations.
    DEGRADED = "degraded"
    #: Abandoned by the fault-tolerant runtime (fault, per-cell deadline
    #: or exhausted run budget); the cell is left missing but recorded.
    SKIPPED = "skipped"


@dataclass(frozen=True)
class CellOutcome:
    """The outcome for one missing cell ``(row, attribute)``."""

    row: int
    attribute: str
    status: OutcomeStatus
    value: Any = None
    source_row: int | None = None
    rfd: RFD | None = None
    distance: float | None = None
    cluster_threshold: float | None = None
    candidates_tried: int = 0
    #: Engine tier that produced the outcome when the degradation ladder
    #: stepped in ("scalar", "mean_mode"); ``None`` on the normal path.
    engine_tier: str | None = None
    #: Why a SKIPPED / DEGRADED cell left the normal path.
    reason: str | None = None

    @property
    def imputed(self) -> bool:
        """Whether the cell was filled by the verified RENUVER path."""
        return self.status is OutcomeStatus.IMPUTED

    @property
    def filled(self) -> bool:
        """Whether the cell holds a value (imputed or degraded fill)."""
        return self.status in (OutcomeStatus.IMPUTED, OutcomeStatus.DEGRADED)

    def __str__(self) -> str:
        if self.imputed:
            return (
                f"({self.row}, {self.attribute}) <- {self.value!r} "
                f"from tuple {self.source_row} via {self.rfd} "
                f"(dist={self.distance})"
            )
        if self.status is OutcomeStatus.DEGRADED:
            return (
                f"({self.row}, {self.attribute}) <- {self.value!r} "
                f"via fallback {self.engine_tier} ({self.reason})"
            )
        suffix = f" ({self.reason})" if self.reason else ""
        return (
            f"({self.row}, {self.attribute}) left missing: "
            f"{self.status.value}{suffix}"
        )


@dataclass(frozen=True)
class Degradation:
    """One step down the fault-tolerance ladder for one cell."""

    row: int
    attribute: str
    from_tier: str
    to_tier: str
    reason: str


@dataclass(frozen=True)
class BudgetEvent:
    """A time or memory budget tripping during a run."""

    scope: str  # "run" | "cell"
    kind: str   # "time" | "memory"
    context: str
    elapsed_seconds: float | None = None
    peak_bytes: int | None = None
    row: int | None = None
    attribute: str | None = None


@dataclass
class ImputationReport:
    """Aggregate result of one imputation run."""

    outcomes: list[CellOutcome] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    peak_bytes: int = 0
    key_rfds_initial: int = 0
    key_rfds_reactivated: int = 0
    #: Donor-scan kernel statistics (vector builds, invalidations,
    #: Levenshtein DPs avoided by length blocking, ...); empty for the
    #: scalar engine.
    kernel_counters: dict[str, int] = field(default_factory=dict)
    #: Ladder steps taken by the fault-tolerant runtime, in run order.
    degradations: list[Degradation] = field(default_factory=list)
    #: Budget trips (run- and cell-scope), in run order.
    budget_events: list[BudgetEvent] = field(default_factory=list)
    #: Cells restored from a journal instead of re-imputed.
    replayed_count: int = 0
    #: Supervised runtime statistics (``RenuverConfig.workers > 1``);
    #: all zero on the sequential path.
    supervisor_rounds: int = 0
    worker_batches: int = 0
    worker_retries: int = 0
    worker_crashes: int = 0
    #: Worker-computed outcomes admitted unchanged at the round barrier.
    worker_cells_accepted: int = 0
    #: Cells recomputed in-process at the barrier (stale snapshot,
    #: batch divergence or a poisoned batch).
    worker_cells_recomputed: int = 0

    def add(self, outcome: CellOutcome) -> None:
        """Record one cell outcome."""
        self.outcomes.append(outcome)

    @property
    def cell_outcomes(self) -> dict[tuple[int, str], str]:
        """Ledger mapping ``(row, attribute)`` to its final status value.

        The fault-tolerant runtime guarantees this covers *every*
        missing cell of the run — imputed, degraded or skipped, never
        silently dropped.
        """
        return {
            (outcome.row, outcome.attribute): outcome.status.value
            for outcome in self.outcomes
        }

    def __iter__(self) -> Iterator[CellOutcome]:
        return iter(self.outcomes)

    def __len__(self) -> int:
        return len(self.outcomes)

    @property
    def missing_count(self) -> int:
        """Number of missing cells the run attempted."""
        return len(self.outcomes)

    @property
    def imputed_count(self) -> int:
        """Number of cells filled by the verified RENUVER path."""
        return sum(1 for outcome in self.outcomes if outcome.imputed)

    @property
    def degraded_count(self) -> int:
        """Number of cells filled by a fallback tier."""
        return sum(
            1 for outcome in self.outcomes
            if outcome.status is OutcomeStatus.DEGRADED
        )

    @property
    def filled_count(self) -> int:
        """Number of cells holding a value (imputed + degraded)."""
        return sum(1 for outcome in self.outcomes if outcome.filled)

    @property
    def unimputed_count(self) -> int:
        """Number of cells left missing."""
        return self.missing_count - self.filled_count

    @property
    def fill_rate(self) -> float:
        """Fraction of attempted cells that hold a value, in [0, 1].

        Degraded fills count: the cell is no longer missing, and the
        degradations list records that it bypassed verification.
        """
        if not self.outcomes:
            return 0.0
        return self.filled_count / self.missing_count

    def imputed_cells(self) -> list[CellOutcome]:
        """Outcomes that filled a value, in processing order."""
        return [outcome for outcome in self.outcomes if outcome.filled]

    def outcome_for(self, row: int, attribute: str) -> CellOutcome | None:
        """The outcome recorded for one cell, if any."""
        for outcome in self.outcomes:
            if outcome.row == row and outcome.attribute == attribute:
                return outcome
        return None

    def status_counts(self) -> dict[str, int]:
        """Histogram of outcome statuses."""
        counts: dict[str, int] = {}
        for outcome in self.outcomes:
            counts[outcome.status.value] = (
                counts.get(outcome.status.value, 0) + 1
            )
        return counts

    def summary(self) -> str:
        """A one-paragraph human-readable digest."""
        lines = [
            f"missing cells : {self.missing_count}",
            f"imputed       : {self.imputed_count} "
            f"(fill rate {self.fill_rate:.1%})",
            f"left missing  : {self.unimputed_count}",
        ]
        for status, count in sorted(self.status_counts().items()):
            if status != OutcomeStatus.IMPUTED.value:
                lines.append(f"  - {status}: {count}")
        if self.degradations:
            lines.append(f"degradations  : {len(self.degradations)}")
        if self.budget_events:
            rendered = ", ".join(
                f"{event.scope}/{event.kind}" for event in self.budget_events
            )
            lines.append(f"budget events : {rendered}")
        if self.replayed_count:
            lines.append(f"replayed      : {self.replayed_count} from journal")
        if self.worker_batches:
            lines.append(
                f"supervisor    : {self.supervisor_rounds} rounds, "
                f"{self.worker_batches} batches "
                f"({self.worker_cells_accepted} accepted, "
                f"{self.worker_cells_recomputed} recomputed, "
                f"{self.worker_retries} retries, "
                f"{self.worker_crashes} crashes)"
            )
        if self.elapsed_seconds:
            lines.append(f"elapsed       : {self.elapsed_seconds:.3f}s")
        if self.kernel_counters:
            rendered = ", ".join(
                f"{name}={count}"
                for name, count in sorted(self.kernel_counters.items())
            )
            lines.append(f"kernels       : {rendered}")
        return "\n".join(lines)
