"""Imputation provenance: what was filled, from where, and why.

Every missing cell RENUVER touches produces a :class:`CellOutcome` —
either the imputed value plus its source tuple, RFD and distance, or the
reason the cell was left blank.  The :class:`ImputationReport` aggregates
outcomes and the run's resource usage; the evaluation harness and the
examples both read it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.rfd.rfd import RFD


class OutcomeStatus(enum.Enum):
    """Terminal state of one missing cell after a run."""

    IMPUTED = "imputed"
    NO_CANDIDATES = "no_candidates"
    ALL_REJECTED = "all_rejected"
    NO_RFDS = "no_rfds"


@dataclass(frozen=True)
class CellOutcome:
    """The outcome for one missing cell ``(row, attribute)``."""

    row: int
    attribute: str
    status: OutcomeStatus
    value: Any = None
    source_row: int | None = None
    rfd: RFD | None = None
    distance: float | None = None
    cluster_threshold: float | None = None
    candidates_tried: int = 0

    @property
    def imputed(self) -> bool:
        """Whether the cell ended up filled."""
        return self.status is OutcomeStatus.IMPUTED

    def __str__(self) -> str:
        if self.imputed:
            return (
                f"({self.row}, {self.attribute}) <- {self.value!r} "
                f"from tuple {self.source_row} via {self.rfd} "
                f"(dist={self.distance})"
            )
        return f"({self.row}, {self.attribute}) left missing: {self.status.value}"


@dataclass
class ImputationReport:
    """Aggregate result of one imputation run."""

    outcomes: list[CellOutcome] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    peak_bytes: int = 0
    key_rfds_initial: int = 0
    key_rfds_reactivated: int = 0
    #: Donor-scan kernel statistics (vector builds, invalidations,
    #: Levenshtein DPs avoided by length blocking, ...); empty for the
    #: scalar engine.
    kernel_counters: dict[str, int] = field(default_factory=dict)

    def add(self, outcome: CellOutcome) -> None:
        """Record one cell outcome."""
        self.outcomes.append(outcome)

    def __iter__(self) -> Iterator[CellOutcome]:
        return iter(self.outcomes)

    def __len__(self) -> int:
        return len(self.outcomes)

    @property
    def missing_count(self) -> int:
        """Number of missing cells the run attempted."""
        return len(self.outcomes)

    @property
    def imputed_count(self) -> int:
        """Number of cells successfully filled."""
        return sum(1 for outcome in self.outcomes if outcome.imputed)

    @property
    def unimputed_count(self) -> int:
        """Number of cells left missing."""
        return self.missing_count - self.imputed_count

    @property
    def fill_rate(self) -> float:
        """Fraction of attempted cells that were filled, in [0, 1]."""
        if not self.outcomes:
            return 0.0
        return self.imputed_count / self.missing_count

    def imputed_cells(self) -> list[CellOutcome]:
        """Outcomes that filled a value, in processing order."""
        return [outcome for outcome in self.outcomes if outcome.imputed]

    def outcome_for(self, row: int, attribute: str) -> CellOutcome | None:
        """The outcome recorded for one cell, if any."""
        for outcome in self.outcomes:
            if outcome.row == row and outcome.attribute == attribute:
                return outcome
        return None

    def status_counts(self) -> dict[str, int]:
        """Histogram of outcome statuses."""
        counts: dict[str, int] = {}
        for outcome in self.outcomes:
            counts[outcome.status.value] = (
                counts.get(outcome.status.value, 0) + 1
            )
        return counts

    def summary(self) -> str:
        """A one-paragraph human-readable digest."""
        lines = [
            f"missing cells : {self.missing_count}",
            f"imputed       : {self.imputed_count} "
            f"(fill rate {self.fill_rate:.1%})",
            f"left missing  : {self.unimputed_count}",
        ]
        for status, count in sorted(self.status_counts().items()):
            if status != OutcomeStatus.IMPUTED.value:
                lines.append(f"  - {status}: {count}")
        if self.elapsed_seconds:
            lines.append(f"elapsed       : {self.elapsed_seconds:.3f}s")
        if self.kernel_counters:
            rendered = ", ".join(
                f"{name}={count}"
                for name, count in sorted(self.kernel_counters.items())
            )
            lines.append(f"kernels       : {rendered}")
        return "\n".join(lines)
