"""Warm-start session registry for the imputation service.

A *session* is a long-lived, append-only imputation workload: the
client uploads an initial instance, streams new tuples in, and asks for
imputation rounds whenever it likes — the whole accumulated instance
keeps serving as the donor pool (paper Section 7, incremental
scenarios).  Each :class:`ServiceSession` wraps an
:class:`~repro.extensions.incremental.ImputationSession` plus an
optional :class:`~repro.discovery.incremental.IncrementalDiscovery`
that maintains the RFD set as tuples arrive.

Concurrency model: one :class:`threading.Lock` per session serializes
its mutations, so overlapping requests against the same session stay
consistent (they observe some serial order); requests against
different sessions run in parallel.  The registry itself is bounded —
creation beyond ``max_sessions`` is refused so a leaky client cannot
grow the process without limit.
"""

from __future__ import annotations

import itertools
import threading
from typing import Any, Sequence

from repro.core.renuver import ImputationResult
from repro.discovery.incremental import IncrementalDiscovery
from repro.extensions.incremental import ImputationSession
from repro.telemetry.logs import get_logger

logger = get_logger("service.sessions")


class ServiceSession:
    """One client session: accumulated relation + maintained RFDs."""

    def __init__(
        self,
        session_id: str,
        imputation: ImputationSession,
        discovery: IncrementalDiscovery | None = None,
        *,
        rfd_source: str = "provided",
    ) -> None:
        self.id = session_id
        self.imputation = imputation
        self.discovery = discovery
        self.rfd_source = rfd_source
        self.lock = threading.Lock()
        self.rounds = 0
        self.appended_tuples = 0

    # ------------------------------------------------------------------
    def append(self, rows: Sequence[Sequence[Any]]) -> dict[str, Any]:
        """Append tuples; returns row indices and maintenance info."""
        with self.lock:
            indices = self.imputation.append(rows)
            self.appended_tuples += len(indices)
            maintenance: str | None = None
            if self.discovery is not None and indices:
                report = self.discovery.insert(rows)
                maintenance = report.summary()
                maintained = self.discovery.all_rfds
                if maintained:
                    self.imputation.update_rfds(maintained)
                else:
                    # Never leave the session without a dependency set:
                    # an empty maintained set keeps the previous RFDs
                    # (the engine needs at least one to run).
                    logger.warning(
                        "session %s: maintenance dropped every RFD; "
                        "keeping the previous set", self.id,
                    )
            return {
                "rows": list(indices),
                "pending": len(self.imputation.pending_cells),
                "maintenance": maintenance,
            }

    def impute(self) -> ImputationResult:
        """Run one imputation round over the queued cells."""
        with self.lock:
            self.rounds += 1
            return self.imputation.impute_pending()

    def snapshot(self) -> dict[str, Any]:
        """Cheap stats for ``/healthz`` and session responses."""
        with self.lock:
            return {
                "id": self.id,
                "n_tuples": self.imputation.relation.n_tuples,
                "pending": len(self.imputation.pending_cells),
                "rounds": self.rounds,
                "appended_tuples": self.appended_tuples,
                "rfd_source": self.rfd_source,
            }


class SessionManager:
    """Bounded, thread-safe registry of live sessions."""

    def __init__(self, max_sessions: int = 64) -> None:
        self.max_sessions = max_sessions
        self._lock = threading.Lock()
        self._sessions: dict[str, ServiceSession] = {}
        self._ids = itertools.count(1)

    def create(
        self,
        imputation: ImputationSession,
        discovery: IncrementalDiscovery | None = None,
        *,
        rfd_source: str = "provided",
    ) -> ServiceSession | None:
        """Register a new session, or ``None`` when the registry is
        full (the HTTP layer answers 429; the client should delete a
        session it no longer needs)."""
        with self._lock:
            if len(self._sessions) >= self.max_sessions:
                return None
            session_id = f"s{next(self._ids):06d}"
            session = ServiceSession(
                session_id, imputation, discovery, rfd_source=rfd_source
            )
            self._sessions[session_id] = session
            logger.info("opened session %s", session_id)
            return session

    def get(self, session_id: str) -> ServiceSession | None:
        """The live session for ``session_id``, if any."""
        with self._lock:
            return self._sessions.get(session_id)

    def delete(self, session_id: str) -> bool:
        """Drop a session; returns whether it existed."""
        with self._lock:
            existed = self._sessions.pop(session_id, None) is not None
        if existed:
            logger.info("closed session %s", session_id)
        return existed

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)
