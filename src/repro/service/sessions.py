"""Warm-start session registry for the imputation service.

A *session* is a long-lived, append-only imputation workload: the
client uploads an initial instance, streams new tuples in, and asks for
imputation rounds whenever it likes — the whole accumulated instance
keeps serving as the donor pool (paper Section 7, incremental
scenarios).  Each :class:`ServiceSession` wraps an
:class:`~repro.extensions.incremental.ImputationSession` plus an
optional :class:`~repro.discovery.incremental.IncrementalDiscovery`
that maintains the RFD set as tuples arrive.

Durability: when the registry holds a
:class:`~repro.service.durability.SessionStore`, every acknowledged
mutation (creation, tuple append, imputation round) is journaled to a
checksummed per-session envelope *before* the response goes out, and
:meth:`SessionManager.recover` rebuilds all warm sessions on boot by
replaying each journal through these same methods — so a ``kill -9``
followed by a restart answers the session's next request bit-identical
to an uninterrupted server.  Persistence failures degrade (counted,
logged, session keeps serving from memory); they never fail the
request.

Concurrency model: one :class:`threading.Lock` per session serializes
its mutations, so overlapping requests against the same session stay
consistent (they observe some serial order); requests against
different sessions run in parallel.  The registry itself is bounded —
creation beyond ``max_sessions`` is refused so a leaky client cannot
grow the process without limit.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any, Sequence

from repro.core.renuver import ImputationResult
from repro.discovery.incremental import IncrementalDiscovery
from repro.extensions.incremental import ImputationSession
from repro.service.durability import (
    SessionRecoveryError,
    SessionStore,
    rebuild_components,
)
from repro.telemetry.logs import get_logger

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.engine import PreparedEngine

logger = get_logger("service.sessions")


class ServiceSession:
    """One client session: accumulated relation + maintained RFDs."""

    def __init__(
        self,
        session_id: str,
        imputation: ImputationSession,
        discovery: IncrementalDiscovery | None = None,
        *,
        rfd_source: str = "provided",
        record: dict[str, Any] | None = None,
        store: SessionStore | None = None,
    ) -> None:
        self.id = session_id
        self.imputation = imputation
        self.discovery = discovery
        self.rfd_source = rfd_source
        self.lock = threading.Lock()
        self.rounds = 0
        self.appended_tuples = 0
        #: Journal: the creation record plus the ordered event list.
        #: ``store=None`` (no durability, or mid-replay) journals
        #: nothing.
        self.record = record
        self.events: list[dict[str, Any]] = []
        self.store = store

    # ------------------------------------------------------------------
    def append(self, rows: Sequence[Sequence[Any]]) -> dict[str, Any]:
        """Append tuples; returns row indices and maintenance info."""
        with self.lock:
            indices = self.imputation.append(rows)
            self.appended_tuples += len(indices)
            maintenance: str | None = None
            if self.discovery is not None and indices:
                report = self.discovery.insert(rows)
                maintenance = report.summary()
                maintained = self.discovery.all_rfds
                if maintained:
                    self.imputation.update_rfds(maintained)
                else:
                    # Never leave the session without a dependency set:
                    # an empty maintained set keeps the previous RFDs
                    # (the engine needs at least one to run).
                    logger.warning(
                        "session %s: maintenance dropped every RFD; "
                        "keeping the previous set", self.id,
                    )
            self._journal({
                "type": "append",
                "rows": [list(row) for row in rows],
            })
            return {
                "rows": list(indices),
                "pending": len(self.imputation.pending_cells),
                "maintenance": maintenance,
            }

    def impute(self) -> ImputationResult:
        """Run one imputation round over the queued cells."""
        with self.lock:
            self.rounds += 1
            result = self.imputation.impute_pending()
            self._journal({"type": "impute"})
            return result

    def snapshot(self) -> dict[str, Any]:
        """Cheap stats for ``/healthz`` and session responses."""
        with self.lock:
            return {
                "id": self.id,
                "n_tuples": self.imputation.relation.n_tuples,
                "pending": len(self.imputation.pending_cells),
                "rounds": self.rounds,
                "appended_tuples": self.appended_tuples,
                "rfd_source": self.rfd_source,
                "durable": self.store is not None,
            }

    # ------------------------------------------------------------------
    def _journal(self, event: dict[str, Any]) -> None:
        """Append one event and persist the envelope (under the session
        lock, so the journal order is the serialization order)."""
        if self.store is None or self.record is None:
            return
        self.events.append(event)
        self.persist()

    def persist(self) -> bool:
        """Write the current journal; best effort (see SessionStore)."""
        if self.store is None or self.record is None:
            return False
        return self.store.save(self.id, {
            "created": self.record,
            "events": self.events,
        })


class SessionManager:
    """Bounded, thread-safe registry of live sessions."""

    def __init__(
        self,
        max_sessions: int = 64,
        *,
        store: SessionStore | None = None,
    ) -> None:
        self.max_sessions = max_sessions
        self.store = store
        self._lock = threading.Lock()
        self._sessions: dict[str, ServiceSession] = {}
        self._next_id = 1
        #: Sessions rebuilt by :meth:`recover` (readiness endpoint).
        self.recovered = 0
        #: Persisted sessions recovery had to drop (ditto).
        self.dropped = 0

    def create(
        self,
        imputation: ImputationSession,
        discovery: IncrementalDiscovery | None = None,
        *,
        rfd_source: str = "provided",
        record: dict[str, Any] | None = None,
    ) -> ServiceSession | None:
        """Register a new session, or ``None`` when the registry is
        full (the HTTP layer answers 429; the client should delete a
        session it no longer needs).  ``record`` is the creation record
        journaled for crash recovery (no record = not durable)."""
        with self._lock:
            if len(self._sessions) >= self.max_sessions:
                return None
            session_id = f"s{self._next_id:06d}"
            self._next_id += 1
            session = ServiceSession(
                session_id,
                imputation,
                discovery,
                rfd_source=rfd_source,
                record=record,
                store=self.store if record is not None else None,
            )
            self._sessions[session_id] = session
        session.persist()
        logger.info("opened session %s", session_id)
        return session

    def get(self, session_id: str) -> ServiceSession | None:
        """The live session for ``session_id``, if any."""
        with self._lock:
            return self._sessions.get(session_id)

    def delete(self, session_id: str) -> bool:
        """Drop a session; returns whether it existed."""
        with self._lock:
            existed = self._sessions.pop(session_id, None) is not None
        if existed:
            if self.store is not None:
                self.store.delete(session_id)
            logger.info("closed session %s", session_id)
        return existed

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    # ------------------------------------------------------------------
    def recover(self, engine: "PreparedEngine") -> dict[str, int]:
        """Rebuild every persisted session by replaying its journal.

        Called once at boot, before the server accepts traffic.  Each
        envelope's creation record re-seeds the imputation components
        (discovery comes from the artifact cache or the inline journal
        copy — never recomputed), then the event list replays through
        the live :meth:`ServiceSession.append` / :meth:`impute` paths
        with journaling suspended.  A session whose journal cannot be
        replayed is dropped and counted; recovery never refuses to boot.
        """
        if self.store is None:
            return {"recovered": 0, "dropped": 0}
        for session_id in self.store.session_ids():
            payload = self.store.load(session_id)
            if payload is None:
                self.dropped += 1
                continue
            created = payload.get("created")
            events = payload.get("events")
            if not isinstance(created, dict) or not isinstance(events, list):
                logger.error(
                    "session %s: journal has no created/events shape; "
                    "dropping", session_id,
                )
                self.dropped += 1
                continue
            try:
                imputation, maintainer = rebuild_components(engine, created)
                session = ServiceSession(
                    session_id,
                    imputation,
                    maintainer,
                    rfd_source=str(created.get("rfd_source", "provided")),
                    record=created,
                    store=None,  # journaling suspended during replay
                )
                for event in events:
                    self._replay(session, event)
            except SessionRecoveryError as exc:
                logger.error(
                    "session %s: recovery failed (%s); dropping",
                    session_id, exc,
                )
                self.dropped += 1
                continue
            except Exception:  # noqa: BLE001 - drop one, keep booting
                logger.exception(
                    "session %s: replay crashed; dropping", session_id
                )
                self.dropped += 1
                continue
            # Re-arm journaling with the replayed event list so the
            # next live mutation extends — not restarts — the journal.
            session.events = list(events)
            session.store = self.store
            with self._lock:
                self._sessions[session_id] = session
                numeric = int(session_id.lstrip("s"))
                self._next_id = max(self._next_id, numeric + 1)
            self.recovered += 1
            logger.info(
                "recovered session %s (%d journaled events)",
                session_id, len(events),
            )
        return {"recovered": self.recovered, "dropped": self.dropped}

    @staticmethod
    def _replay(session: ServiceSession, event: dict[str, Any]) -> None:
        kind = event.get("type")
        if kind == "append":
            rows = event.get("rows")
            if not isinstance(rows, list):
                raise SessionRecoveryError("append event without rows")
            session.append(rows)
        elif kind == "impute":
            session.impute()
        else:
            raise SessionRecoveryError(f"unknown journal event {kind!r}")
