"""repro.service — the long-running imputation service.

Turns the batch reproduction into a servable engine (the ROADMAP's
"heavy traffic" north star).  The pieces:

* :mod:`repro.service.artifacts` — a fingerprint-keyed on-disk store
  for discovery results and pattern matrices, so a warm engine skips
  RFD discovery entirely on repeated instances.
* :mod:`repro.service.engine` — :class:`PreparedEngine`: one-shot
  imputation (bit-identical to the CLI) plus warm-start sessions over
  :class:`~repro.extensions.incremental.ImputationSession` and
  :class:`~repro.discovery.incremental.IncrementalDiscovery`, with
  per-request deadlines riding the budget/degradation machinery.
* :mod:`repro.service.sessions` — the bounded, thread-safe session
  registry behind the ``/v1/sessions`` API.
* :mod:`repro.service.durability` — journaled, checksummed session
  envelopes (PR 6 ``.prev`` discipline) and the replay recovery that
  makes warm sessions survive ``kill -9``.
* :mod:`repro.service.admission` — the bounded deadline-aware
  admission queue and the overload brownout ladder
  (vectorized → scalar → cache-only).
* :mod:`repro.service.http` — the stdlib ``ThreadingHTTPServer`` JSON
  API with liveness/readiness probes, per-request ``service.request``
  spans, Prometheus ``/metrics`` and a graceful drain for the CLI
  ``serve`` subcommand.
* :mod:`repro.service.client` — the hardened retrying client
  (capped exponential backoff + jitter, honors ``Retry-After``,
  retries transport errors only for idempotent requests).

See ``docs/SERVICE.md`` for the API reference and operational story.
"""

from repro.service.admission import (
    BROWNOUT_TIERS,
    AdmissionQueue,
    BrownoutController,
    ShedRequest,
)
from repro.service.artifacts import ARTIFACT_VERSION, ArtifactStore
from repro.service.client import ServiceClient
from repro.service.durability import (
    SESSION_VERSION,
    SessionRecoveryError,
    SessionStore,
)
from repro.service.engine import PreparedEngine, ServiceConfig
from repro.service.http import ImputationHTTPServer, build_server
from repro.service.sessions import ServiceSession, SessionManager

__all__ = [
    "ARTIFACT_VERSION",
    "AdmissionQueue",
    "ArtifactStore",
    "BROWNOUT_TIERS",
    "BrownoutController",
    "ImputationHTTPServer",
    "PreparedEngine",
    "SESSION_VERSION",
    "ServiceClient",
    "ServiceConfig",
    "ServiceSession",
    "SessionManager",
    "SessionRecoveryError",
    "SessionStore",
    "ShedRequest",
    "build_server",
]
