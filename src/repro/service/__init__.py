"""repro.service — the long-running imputation service.

Turns the batch reproduction into a servable engine (the ROADMAP's
"heavy traffic" north star).  Four pieces:

* :mod:`repro.service.artifacts` — a fingerprint-keyed on-disk store
  for discovery results and pattern matrices, so a warm engine skips
  RFD discovery entirely on repeated instances.
* :mod:`repro.service.engine` — :class:`PreparedEngine`: one-shot
  imputation (bit-identical to the CLI) plus warm-start sessions over
  :class:`~repro.extensions.incremental.ImputationSession` and
  :class:`~repro.discovery.incremental.IncrementalDiscovery`, with
  per-request deadlines riding the budget/degradation machinery.
* :mod:`repro.service.sessions` — the bounded, thread-safe session
  registry behind the ``/v1/sessions`` API.
* :mod:`repro.service.http` — the stdlib ``ThreadingHTTPServer`` JSON
  API with admission control (429 backpressure), per-request
  ``service.request`` spans, Prometheus ``/metrics`` and a graceful
  drain for the CLI ``serve`` subcommand.

See ``docs/SERVICE.md`` for the API reference and operational story.
"""

from repro.service.artifacts import ARTIFACT_VERSION, ArtifactStore
from repro.service.engine import PreparedEngine, ServiceConfig
from repro.service.http import ImputationHTTPServer, build_server
from repro.service.sessions import ServiceSession, SessionManager

__all__ = [
    "ARTIFACT_VERSION",
    "ArtifactStore",
    "ImputationHTTPServer",
    "PreparedEngine",
    "ServiceConfig",
    "ServiceSession",
    "SessionManager",
    "build_server",
]
