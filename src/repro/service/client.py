"""Hardened stdlib client for the imputation service.

The chaos suite throws connection resets, slow-loris stalls,
mid-response kills and handler crashes at the server; this client is
the piece that turns those into at-most-a-retry instead of a stack
trace in the caller's lap.  Policy:

* **429/503 are always retried** (never executed, only refused), and a
  ``Retry-After`` header — the server derives it from its actual
  backlog — overrides the local backoff for that attempt.
* **Transport errors** (reset, short body, timeout) and **5xx** are
  retried only for *idempotent* requests: GETs, one-shot
  ``/v1/impute`` (pure — the same body computes the same answer) and
  session *reads*.  A session **mutation** (tuple append, imputation
  round) that dies mid-response may or may not have been applied, so
  it is surfaced to the caller instead of blindly repeated.
* Backoff is capped exponential with **seeded jitter** (so tests are
  deterministic), and the whole retry loop honors an overall
  ``deadline_seconds`` — a client with a 2 s budget never sleeps past
  it.

Everything terminal raises
:class:`~repro.exceptions.ServiceClientError` with the last status
attached.  ``examples/service_client.py`` is a thin demo wrapper over
this module.
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.error
import urllib.request
from typing import Any, Callable

from repro.exceptions import ServiceClientError
from repro.telemetry.logs import get_logger
from repro.utils.rng import spawn_rng

logger = get_logger("service.client")

#: HTTP statuses that mean "refused, try again" (request not executed).
RETRYABLE_STATUSES = frozenset({429, 503})


class ServiceClient:
    """A retrying JSON client for one service base URL.

    Parameters
    ----------
    base_url:
        E.g. ``http://127.0.0.1:8080``.
    max_retries:
        Retry attempts *after* the first try.
    backoff_seconds:
        First backoff; doubles per retry, capped at ``backoff_cap``.
    backoff_cap:
        Upper bound for one sleep (Retry-After may exceed it — the
        server knows its backlog better than our curve does).
    deadline_seconds:
        Overall wall-clock budget for one logical request including
        retries and sleeps (``None`` = unbounded).
    timeout_seconds:
        Per-attempt socket timeout.
    seed:
        Seeds the jitter stream, making retry timing deterministic for
        tests (timing only — never outcomes).
    """

    def __init__(
        self,
        base_url: str,
        *,
        max_retries: int = 4,
        backoff_seconds: float = 0.1,
        backoff_cap: float = 5.0,
        deadline_seconds: float | None = None,
        timeout_seconds: float = 30.0,
        seed: int = 0,
        sleep: Callable[[float], None] | None = None,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.max_retries = max_retries
        self.backoff_seconds = backoff_seconds
        self.backoff_cap = backoff_cap
        self.deadline_seconds = deadline_seconds
        self.timeout_seconds = timeout_seconds
        self._jitter = spawn_rng(seed, "service-client", "backoff")
        self._sleep = sleep or time.sleep
        self.retries = 0

    # ------------------------------------------------------------------
    # API surface
    # ------------------------------------------------------------------
    def impute(self, body: dict[str, Any]) -> dict[str, Any]:
        """One-shot imputation (idempotent: safe to retry on resets)."""
        return self.request("POST", "/v1/impute", body, idempotent=True)

    def open_session(self, body: dict[str, Any]) -> dict[str, Any]:
        """Open a warm-start session (idempotence left to the caller:
        a retried create may open a duplicate session, which is safe
        but worth deleting)."""
        return self.request("POST", "/v1/sessions", body, idempotent=False)

    def session(self, session_id: str) -> dict[str, Any]:
        return self.request(
            "GET", f"/v1/sessions/{session_id}", idempotent=True
        )

    def append_tuples(
        self, session_id: str, rows: list[list[Any]]
    ) -> dict[str, Any]:
        """Append tuples — a mutation: transport errors are NOT retried
        (the append may have landed; re-sending would duplicate rows).
        429/503 are still retried: a refused request never executed."""
        return self.request(
            "POST", f"/v1/sessions/{session_id}/tuples",
            {"rows": rows}, idempotent=False,
        )

    def impute_session(self, session_id: str) -> dict[str, Any]:
        """Run one session imputation round (a mutation; see above)."""
        return self.request(
            "POST", f"/v1/sessions/{session_id}/impute", idempotent=False
        )

    def delete_session(self, session_id: str) -> dict[str, Any]:
        return self.request(
            "DELETE", f"/v1/sessions/{session_id}", idempotent=True
        )

    def health(self) -> dict[str, Any]:
        return self.request("GET", "/healthz/live", idempotent=True)

    def readiness(self) -> dict[str, Any]:
        return self.request("GET", "/healthz/ready", idempotent=True)

    def metrics_text(self) -> str:
        """The raw Prometheus exposition (not JSON)."""
        status, raw, _ = self._attempt("GET", "/metrics", None)
        if status != 200:
            raise ServiceClientError(
                f"GET /metrics answered {status}", status=status
            )
        return raw.decode("utf-8")

    # ------------------------------------------------------------------
    # The retry loop
    # ------------------------------------------------------------------
    def request(
        self,
        method: str,
        path: str,
        body: dict[str, Any] | None = None,
        *,
        idempotent: bool = False,
    ) -> dict[str, Any]:
        """One logical JSON request with the retry policy applied."""
        deadline = (
            time.perf_counter() + self.deadline_seconds
            if self.deadline_seconds is not None else None
        )
        last_error = "no attempt made"
        last_status: int | None = None
        for attempt in range(self.max_retries + 1):
            try:
                status, raw, retry_after = self._attempt(
                    method, path, body
                )
            except (urllib.error.URLError, ConnectionError, OSError,
                    TimeoutError, http.client.HTTPException) as exc:
                # HTTPException covers IncompleteRead/RemoteDisconnected
                # — a response cut off mid-body (chaos mid-kill).
                # Transport-level failure: response never completed.
                last_error = f"transport error: {exc}"
                last_status = None
                if not idempotent:
                    raise ServiceClientError(
                        f"{method} {path} died in transit and is not "
                        f"idempotent; not retrying: {exc}"
                    ) from exc
                retry_after = None
            else:
                last_status = status
                if status < 400:
                    try:
                        return json.loads(raw.decode("utf-8"))
                    except (UnicodeDecodeError,
                            json.JSONDecodeError) as exc:
                        # Truncated/garbled body (mid-response kill):
                        # same policy as a transport error.
                        last_error = f"unreadable response body: {exc}"
                        if not idempotent:
                            raise ServiceClientError(
                                f"{method} {path} returned an unreadable "
                                f"body and is not idempotent",
                                status=status,
                            ) from exc
                        retry_after = None
                elif status in RETRYABLE_STATUSES:
                    # Refused, not executed: always retryable.
                    last_error = f"server answered {status}"
                elif status >= 500 and idempotent:
                    # A crashed handler (chaos ``crash`` fault, or a
                    # genuine bug) answered 5xx; an idempotent request
                    # is safe to repeat against a server that keeps
                    # serving.
                    last_error = f"server answered {status}"
                    retry_after = None
                else:
                    raise ServiceClientError(
                        f"{method} {path} answered {status}: "
                        f"{_error_text(raw)}",
                        status=status,
                    )
            if attempt >= self.max_retries:
                break
            pause = self._pause(attempt, retry_after)
            if deadline is not None:
                remaining = deadline - time.perf_counter()
                if remaining <= pause:
                    raise ServiceClientError(
                        f"{method} {path}: deadline of "
                        f"{self.deadline_seconds}s would expire during "
                        f"backoff ({last_error})",
                        status=last_status,
                    )
            self.retries += 1
            logger.debug(
                "%s %s attempt %d failed (%s); retrying in %.3fs",
                method, path, attempt + 1, last_error, pause,
            )
            self._sleep(pause)
        raise ServiceClientError(
            f"{method} {path} failed after "
            f"{self.max_retries + 1} attempts: {last_error}",
            status=last_status,
        )

    # ------------------------------------------------------------------
    def _attempt(
        self, method: str, path: str, body: dict[str, Any] | None
    ) -> tuple[int, bytes, float | None]:
        """One wire round trip: (status, raw body, Retry-After)."""
        data = (
            json.dumps(body).encode("utf-8") if body is not None else None
        )
        request = urllib.request.Request(
            self.base_url + path, data=data, method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout_seconds
            ) as response:
                return response.status, response.read(), None
        except urllib.error.HTTPError as error:
            retry_after = _parse_retry_after(
                error.headers.get("Retry-After")
            )
            try:
                raw = error.read()
            except OSError:
                raw = b""
            return error.code, raw, retry_after

    def _pause(self, attempt: int, retry_after: float | None) -> float:
        """Backoff for one retry: server hint, else capped exponential
        with jitter."""
        if retry_after is not None:
            return max(0.0, retry_after)
        base = min(self.backoff_cap, self.backoff_seconds * (2 ** attempt))
        return base * (1.0 + 0.25 * self._jitter.random())


def _parse_retry_after(value: str | None) -> float | None:
    if value is None:
        return None
    try:
        return float(value)
    except ValueError:
        return None


def _error_text(raw: bytes) -> str:
    try:
        payload = json.loads(raw.decode("utf-8"))
        return str(payload.get("error", payload))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return raw[:200].decode("utf-8", errors="replace")


__all__ = ["RETRYABLE_STATUSES", "ServiceClient"]
