"""Fingerprint-keyed on-disk artifact store for the imputation service.

RFD discovery dominates a cold run's wall clock, yet its output depends
only on the exact relation instance and the discovery configuration.
The store persists two artifact kinds under a cache directory:

``discovery``
    A serialized :class:`~repro.discovery.dime.DiscoveryResult`
    (textual RFDs plus run metadata) keyed by the relation fingerprint
    and the full discovery config.  A hit makes a warm engine skip
    discovery entirely — provable from telemetry: the counter
    ``renuver_artifact_cache_hits_total`` increments and no ``discover``
    span is emitted.
``matrix``
    A serialized :class:`~repro.discovery.pattern_matrix
    .PairDistanceMatrix` keyed by the relation fingerprint and the
    matrix parameters (string limit, pair sampling).  On a discovery
    *config* miss for an already-seen relation, the matrix — the
    quadratic part of discovery — is still reused.

Layout (``docs/SERVICE.md``)::

    <root>/<kind>/<fingerprint[:2]>/<fingerprint>-<confighash>.json

Every file is a versioned envelope written via
:func:`repro.utils.atomic.atomic_write_text`: readers see the previous
complete artifact or the new complete artifact, never a torn file.

Loads are corruption-tolerant by contract: a missing file, malformed
JSON, wrong envelope version, mismatched key or a payload the
deserializer rejects all count as a cache *miss* (logged, counted in
``renuver_artifact_cache_misses_total{kind,reason}``) — the caller
recomputes and overwrites.  *Saves* are tolerant the same way: a write
that fails at the OS level (full disk, permissions) is logged and
counted as a miss (reason ``write_error``) instead of raising — the
cache is an optimization, and a disk problem must never fail the
request that was merely trying to warm it.  The store never lets a bad
artifact, or a bad disk, crash a request.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.dataset.relation import Relation
from repro.discovery.config import DiscoveryConfig
from repro.discovery.dime import DiscoveryResult
from repro.discovery.pattern_matrix import PairDistanceMatrix
from repro.exceptions import ServiceError
from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.telemetry.logs import get_logger
from repro.utils.atomic import atomic_write_text
from repro.utils.fingerprint import payload_fingerprint, relation_fingerprint

logger = get_logger("service.artifacts")

#: Envelope schema version; bumped on incompatible layout changes.
#: Readers treat any other version as a cache miss, so old caches are
#: silently recomputed rather than crashing a newer server.
ARTIFACT_VERSION = 1

_HITS = "renuver_artifact_cache_hits_total"
_MISSES = "renuver_artifact_cache_misses_total"
_HELP_HITS = "Artifact-cache hits by artifact kind."
_HELP_MISSES = "Artifact-cache misses by artifact kind and reason."


class ArtifactStore:
    """Fingerprint-keyed, corruption-tolerant artifact cache.

    Parameters
    ----------
    root:
        Cache directory (created on first save).
    telemetry:
        Optional telemetry spine; hit/miss counters land in its metrics
        registry.
    """

    def __init__(
        self,
        root: str | Path,
        *,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.root = Path(root)
        if self.root.exists() and not self.root.is_dir():
            raise ServiceError(
                f"artifact directory {self.root} exists and is not a "
                f"directory"
            )
        self.telemetry = telemetry or NULL_TELEMETRY
        #: Process-local tallies (mirrored into the metrics registry).
        self.hits = 0
        self.misses = 0
        #: Misses caused by damaged on-disk state (torn/garbled files,
        #: wrong versions, undeserializable payloads) as opposed to
        #: plain absence — surfaced on ``GET /healthz/ready`` so an
        #: operator sees disk rot before it becomes a latency problem.
        self.corruptions = 0

    # ------------------------------------------------------------------
    # Discovery results
    # ------------------------------------------------------------------
    def load_discovery(
        self, relation: Relation, config: DiscoveryConfig
    ) -> DiscoveryResult | None:
        """The cached discovery result for ``(relation, config)``.

        Returns ``None`` on any miss — including a corrupt or
        incompatible artifact — so the caller simply recomputes.
        """
        payload = self._load("discovery", *self._discovery_key(
            relation, config
        ))
        if payload is None:
            return None
        try:
            result = DiscoveryResult.from_json(payload)
        except Exception as exc:  # noqa: BLE001 - miss, never crash
            self._miss("discovery", "undeserializable", detail=str(exc))
            return None
        self._hit("discovery")
        return result

    def save_discovery(
        self,
        relation: Relation,
        config: DiscoveryConfig,
        result: DiscoveryResult,
    ) -> Path | None:
        """Persist a discovery result; returns the artifact path, or
        ``None`` when the write failed (counted as a miss)."""
        return self._save(
            "discovery",
            *self._discovery_key(relation, config),
            result.to_json(),
        )

    def discovery_ref(
        self, relation: Relation, config: DiscoveryConfig
    ) -> dict[str, str]:
        """The stable ``(fingerprint, config_key)`` reference under
        which :meth:`save_discovery` files this pair — what a durable
        session journals so recovery can re-load the artifact."""
        fingerprint, key = self._discovery_key(relation, config)
        return {"fingerprint": fingerprint, "config_key": key}

    def load_discovery_by_ref(
        self, fingerprint: str, config_key: str
    ) -> DiscoveryResult | None:
        """A cached discovery result by journaled reference (session
        recovery path); ``None`` on any miss, same tolerance as
        :meth:`load_discovery`."""
        payload = self._load("discovery", fingerprint, config_key)
        if payload is None:
            return None
        try:
            result = DiscoveryResult.from_json(payload)
        except Exception as exc:  # noqa: BLE001 - miss, never crash
            self._miss("discovery", "undeserializable", detail=str(exc))
            return None
        self._hit("discovery")
        return result

    # ------------------------------------------------------------------
    # Pattern matrices
    # ------------------------------------------------------------------
    def load_matrix(
        self, relation: Relation, config: DiscoveryConfig
    ) -> PairDistanceMatrix | None:
        """The cached pair-distance matrix for ``relation`` under the
        matrix-relevant parameters of ``config`` (string limit, pair
        sampling), or ``None`` on any miss."""
        payload = self._load("matrix", *self._matrix_key(relation, config))
        if payload is None:
            return None
        try:
            matrix = PairDistanceMatrix.from_json(payload, relation)
        except Exception as exc:  # noqa: BLE001 - miss, never crash
            self._miss("matrix", "undeserializable", detail=str(exc))
            return None
        self._hit("matrix")
        return matrix

    def save_matrix(
        self,
        relation: Relation,
        config: DiscoveryConfig,
        matrix: PairDistanceMatrix,
    ) -> Path | None:
        """Persist a pattern matrix; returns the artifact path, or
        ``None`` when the write failed (counted as a miss)."""
        return self._save(
            "matrix",
            *self._matrix_key(relation, config),
            matrix.to_json(),
        )

    # ------------------------------------------------------------------
    # Keys and the envelope
    # ------------------------------------------------------------------
    @staticmethod
    def _discovery_key(
        relation: Relation, config: DiscoveryConfig
    ) -> tuple[str, str]:
        from dataclasses import asdict

        payload = asdict(config)
        if payload.get("attribute_limits") is not None:
            payload["attribute_limits"] = dict(payload["attribute_limits"])
        return relation_fingerprint(relation), payload_fingerprint(payload)

    @staticmethod
    def _matrix_key(
        relation: Relation, config: DiscoveryConfig
    ) -> tuple[str, str]:
        # Only the parameters that shape the matrix: reuse must be
        # bit-identical to a fresh build, so the string clamp and the
        # (seeded) pair sample have to match exactly.
        string_limit = max(
            config.threshold_limit, config.effective_lhs_limit
        )
        return relation_fingerprint(relation), payload_fingerprint({
            "string_limit": string_limit,
            "max_pairs": config.max_pairs,
            "seed": config.seed,
        })

    def path_for(self, kind: str, fingerprint: str, key: str) -> Path:
        """Where the artifact for ``(kind, fingerprint, key)`` lives."""
        return (
            self.root / kind / fingerprint[:2]
            / f"{fingerprint}-{key[:16]}.json"
        )

    def _save(
        self, kind: str, fingerprint: str, key: str, payload: dict
    ) -> Path | None:
        path = self.path_for(kind, fingerprint, key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            atomic_write_text(path, json.dumps({
                "artifact_version": ARTIFACT_VERSION,
                "kind": kind,
                "fingerprint": fingerprint,
                "config_key": key,
                "payload": payload,
            }, ensure_ascii=False))
        except OSError as exc:
            # A failed save (ENOSPC, permissions) degrades to a miss:
            # the next load recomputes.  The artifact cache must never
            # fail the request that was merely trying to warm it.
            self._miss(kind, "write_error", detail=f"{path}: {exc}")
            return None
        logger.info("saved %s artifact to %s", kind, path)
        return path

    def _load(
        self, kind: str, fingerprint: str, key: str
    ) -> dict[str, Any] | None:
        """The envelope's payload, or ``None`` on any kind of miss."""
        path = self.path_for(kind, fingerprint, key)
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            self._miss(kind, "absent")
            return None
        except OSError as exc:
            self._miss(kind, "unreadable", detail=str(exc))
            return None
        try:
            envelope = json.loads(text)
        except json.JSONDecodeError as exc:
            self._miss(kind, "corrupt", detail=f"{path}: {exc}")
            return None
        if not isinstance(envelope, dict):
            self._miss(kind, "corrupt", detail=f"{path}: not an object")
            return None
        if envelope.get("artifact_version") != ARTIFACT_VERSION:
            self._miss(
                kind, "version",
                detail=f"{path}: version "
                       f"{envelope.get('artifact_version')!r}",
            )
            return None
        if (
            envelope.get("kind") != kind
            or envelope.get("fingerprint") != fingerprint
            or envelope.get("config_key") != key
        ):
            self._miss(kind, "key_mismatch", detail=str(path))
            return None
        payload = envelope.get("payload")
        if not isinstance(payload, dict):
            self._miss(kind, "corrupt", detail=f"{path}: no payload")
            return None
        return payload

    # ------------------------------------------------------------------
    def _hit(self, kind: str) -> None:
        self.hits += 1
        self.telemetry.metrics.counter(_HITS, _HELP_HITS, kind=kind).inc()

    def _miss(self, kind: str, reason: str, *, detail: str = "") -> None:
        self.misses += 1
        if reason in {"unreadable", "corrupt", "version", "undeserializable"}:
            self.corruptions += 1
        self.telemetry.metrics.counter(
            _MISSES, _HELP_MISSES, kind=kind, reason=reason
        ).inc()
        if reason == "absent":
            logger.debug("artifact cache miss (%s): absent", kind)
        else:
            logger.warning(
                "artifact cache miss (%s, %s): %s — recomputing",
                kind, reason, detail,
            )
