"""The prepared imputation engine behind the HTTP service.

:class:`PreparedEngine` is the service's amortization layer: it owns a
process-wide telemetry registry, an optional
:class:`~repro.service.artifacts.ArtifactStore`, and the default
discovery / RENUVER configurations — so that

* a **one-shot** request (:meth:`impute_once`) with an explicit RFD set
  is bit-identical to ``python -m repro impute`` on the same input, and
  one *without* an RFD set reuses cached discovery artifacts: a warm
  engine performs zero discovery work on a cache hit (no ``discover``
  span, ``renuver_artifact_cache_hits_total`` increments);
* a **session** (:meth:`open_session`) wraps an
  :class:`~repro.extensions.incremental.ImputationSession` — and, when
  no RFD set is pinned, an
  :class:`~repro.discovery.incremental.IncrementalDiscovery` that
  maintains the dependency set as tuples arrive — for append-and-impute
  workloads where the accumulated instance keeps serving as donor pool.

Per-request deadlines reuse the budget/degradation machinery: a request
budget maps to ``RenuverConfig(time_budget_seconds=...,
on_budget="partial")``, so an overrunning request degrades to a partial
result (HTTP 200 with ``budget_exhausted: true``) instead of failing.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Sequence

from repro.core.renuver import ImputationResult, Renuver, RenuverConfig
from repro.dataset.relation import Relation
from repro.discovery.config import DiscoveryConfig
from repro.discovery.dime import DiscoveryResult, discover_rfds
from repro.discovery.incremental import IncrementalDiscovery
from repro.discovery.pattern_matrix import PairDistanceMatrix
from repro.exceptions import ImputationError, ServiceError
from repro.extensions.incremental import ImputationSession
from repro.rfd.rfd import RFD
from repro.service.artifacts import ArtifactStore
from repro.telemetry import NULL_TELEMETRY, Telemetry, Tracer
from repro.telemetry.logs import get_logger

logger = get_logger("service.engine")


@dataclass(frozen=True)
class ServiceConfig:
    """Service-level knobs shared by the engine and the HTTP layer.

    Attributes
    ----------
    discovery:
        Default discovery configuration for requests that do not pin an
        RFD set (requests may override individual fields).
    renuver:
        Default RENUVER configuration; matches the CLI ``impute``
        defaults so one-shot responses stay bit-identical to it.
    request_budget_seconds:
        Default per-request deadline (``None`` = unbounded).  Overruns
        return partial results, never 500s.
    max_inflight:
        Imputation requests admitted concurrently; excess requests get
        an immediate ``429`` (``/healthz`` and ``/metrics`` are exempt).
    max_sessions:
        Live sessions the registry holds before ``POST /v1/sessions``
        answers ``429``.
    max_body_bytes:
        Request bodies larger than this are refused with ``413``.
    max_queue_depth:
        Requests allowed to *wait* for an admission permit (beyond the
        ``max_inflight`` running ones) before shedding starts; ``0``
        restores the PR 5 immediate-bounce behaviour.
    max_queue_wait_seconds:
        Queue-wait cap for requests without a deadline of their own.
    brownout_enabled:
        Whether sustained shedding steps the service down the brownout
        ladder (vectorized → scalar → cache-only; ``docs/SERVICE.md``).
    brownout_step_up_sheds / brownout_window_seconds:
        Sheds within the sliding window that climb one ladder rung.
    brownout_cooldown_seconds:
        Shed-free time required to step back down one rung.
    durable_sessions:
        Whether sessions are journaled to the artifact directory and
        recovered on restart (needs an artifact dir to take effect).
    """

    discovery: DiscoveryConfig = field(default_factory=DiscoveryConfig)
    renuver: RenuverConfig = field(default_factory=RenuverConfig)
    request_budget_seconds: float | None = None
    max_inflight: int = 8
    max_sessions: int = 64
    max_body_bytes: int = 16 * 1024 * 1024
    max_queue_depth: int = 16
    max_queue_wait_seconds: float = 1.0
    brownout_enabled: bool = True
    brownout_step_up_sheds: int = 4
    brownout_window_seconds: float = 5.0
    brownout_cooldown_seconds: float = 10.0
    durable_sessions: bool = True

    def __post_init__(self) -> None:
        if (
            self.request_budget_seconds is not None
            and self.request_budget_seconds <= 0
        ):
            raise ServiceError(
                "request_budget_seconds must be positive when given"
            )
        if self.max_inflight < 1:
            raise ServiceError("max_inflight must be >= 1")
        if self.max_sessions < 1:
            raise ServiceError("max_sessions must be >= 1")
        if self.max_body_bytes < 1024:
            raise ServiceError("max_body_bytes must be >= 1024")
        if self.max_queue_depth < 0:
            raise ServiceError("max_queue_depth must be >= 0")
        if self.max_queue_wait_seconds <= 0:
            raise ServiceError("max_queue_wait_seconds must be positive")
        if self.brownout_step_up_sheds < 1:
            raise ServiceError("brownout_step_up_sheds must be >= 1")
        if self.brownout_window_seconds <= 0:
            raise ServiceError("brownout_window_seconds must be positive")
        if self.brownout_cooldown_seconds <= 0:
            raise ServiceError(
                "brownout_cooldown_seconds must be positive"
            )


class PreparedEngine:
    """A warm, long-lived imputation engine for repeated requests.

    Parameters
    ----------
    config:
        Optional :class:`ServiceConfig`.
    store:
        Optional artifact cache; without one every discovery request
        recomputes (sessions and one-shots still work).
    telemetry:
        Process-wide telemetry.  Per-request work runs under a *fresh
        tracer* sharing this registry (:meth:`request_telemetry`) —
        the span tracer is single-run by design.
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        *,
        store: ArtifactStore | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.telemetry = telemetry or NULL_TELEMETRY
        self.store = store
        if store is not None and store.telemetry is NULL_TELEMETRY:
            store.telemetry = self.telemetry

    # ------------------------------------------------------------------
    def request_telemetry(self) -> Telemetry:
        """A fresh tracer sharing the engine's metrics registry.

        The no-op engine default stays no-op (zero overhead per
        request); a live engine hands each request its own span tree.
        """
        if not self.telemetry.enabled:
            return NULL_TELEMETRY
        return Telemetry(tracer=Tracer(), metrics=self.telemetry.metrics)

    # ------------------------------------------------------------------
    def prepare_rfds(
        self,
        relation: Relation,
        rfds: Iterable[RFD] | None = None,
        *,
        discovery: DiscoveryConfig | None = None,
        telemetry: Telemetry | None = None,
    ) -> tuple[DiscoveryResult | None, list[RFD], str]:
        """The RFD set for ``relation``: provided, cached or discovered.

        Returns ``(discovery_result, rfds, source)`` where ``source``
        is ``"provided"`` (caller pinned a set — no discovery result),
        ``"cache"`` (artifact hit: zero discovery work) or
        ``"discovered"`` (computed now and, when a store is attached,
        persisted for the next request).
        """
        if rfds is not None:
            return None, list(rfds), "provided"
        config = discovery or self.config.discovery
        telemetry = telemetry or self.telemetry
        if self.store is not None:
            cached = self.store.load_discovery(relation, config)
            if cached is not None:
                return cached, cached.all_rfds, "cache"
        matrix: PairDistanceMatrix | None = None
        matrix_built = False
        if self.store is not None:
            matrix = self.store.load_matrix(relation, config)
            if matrix is None:
                string_limit = max(
                    config.threshold_limit, config.effective_lhs_limit
                )
                matrix = PairDistanceMatrix(
                    relation,
                    string_limit=string_limit,
                    max_pairs=config.max_pairs,
                    seed=config.seed,
                )
                matrix_built = True
        result = discover_rfds(
            relation, config, telemetry=telemetry, matrix=matrix
        )
        if self.store is not None:
            self.store.save_discovery(relation, config, result)
            if matrix_built:
                self.store.save_matrix(relation, config, matrix)
        return result, result.all_rfds, "discovered"

    # ------------------------------------------------------------------
    def impute_once(
        self,
        relation: Relation,
        rfds: Iterable[RFD] | None = None,
        *,
        discovery: DiscoveryConfig | None = None,
        overrides: dict | None = None,
        budget_seconds: float | None = None,
        telemetry: Telemetry | None = None,
    ) -> tuple[ImputationResult, str]:
        """One-shot imputation; returns ``(result, rfd_source)``.

        With an explicit ``rfds`` set and no overrides/budget this is
        bit-identical to the CLI ``impute`` path (same defaults, same
        engine).  ``overrides`` patches individual
        :class:`~repro.core.renuver.RenuverConfig` fields per request;
        ``budget_seconds`` (or the service default) adds a deadline
        that degrades to a partial result instead of raising.
        """
        _, prepared, source = self.prepare_rfds(
            relation, rfds, discovery=discovery, telemetry=telemetry
        )
        config = self._request_config(overrides, budget_seconds)
        engine = Renuver(
            prepared, config, telemetry=telemetry or self.telemetry
        )
        return engine.impute(relation), source

    # ------------------------------------------------------------------
    def open_session(
        self,
        relation: Relation,
        rfds: Iterable[RFD] | None = None,
        *,
        discovery: DiscoveryConfig | None = None,
        overrides: dict | None = None,
        budget_seconds: float | None = None,
        incremental_discovery: bool = True,
        telemetry: Telemetry | None = None,
    ) -> tuple[
        ImputationSession,
        IncrementalDiscovery | None,
        str,
        DiscoveryResult | None,
    ]:
        """Components of a warm-start session over ``relation``.

        Returns ``(imputation_session, incremental_discovery,
        rfd_source, discovery_result)``.  With a pinned ``rfds`` set the
        dependency set is static (no maintenance, no discovery result);
        otherwise the initial set comes from the artifact cache when
        possible and an :class:`IncrementalDiscovery` maintains it as
        tuples arrive (``incremental_discovery=False`` freezes it
        instead).  The discovery result is handed back so a durable
        session can journal it inline (crash recovery must not depend
        on the artifact cache surviving).
        """
        result, prepared, source = self.prepare_rfds(
            relation, rfds, discovery=discovery, telemetry=telemetry
        )
        config = self._request_config(overrides, budget_seconds)
        session = ImputationSession(relation, prepared, config)
        maintainer: IncrementalDiscovery | None = None
        if rfds is None and incremental_discovery:
            maintainer = IncrementalDiscovery(
                relation,
                discovery or self.config.discovery,
                initial=result,
            )
        return session, maintainer, source, result

    # ------------------------------------------------------------------
    def _request_config(
        self, overrides: dict | None, budget_seconds: float | None
    ) -> RenuverConfig:
        """The run config for one request: defaults + overrides +
        deadline.  Bad override fields raise
        :class:`~repro.exceptions.ImputationError` (the HTTP layer maps
        that to 400)."""
        config = self.config.renuver
        if overrides:
            try:
                config = replace(config, **overrides)
            except TypeError as exc:
                raise ImputationError(
                    f"unknown config override: {exc}"
                ) from exc
        budget = (
            budget_seconds
            if budget_seconds is not None
            else self.config.request_budget_seconds
        )
        if budget is not None:
            # Deadline semantics: degrade to a partial result rather
            # than failing the request (PR 2 budget machinery).
            config = replace(
                config,
                time_budget_seconds=budget,
                on_budget="partial",
            )
        return config


def session_rows(rows: object) -> list[Sequence]:
    """Validate a JSON ``rows`` payload into a list of row sequences."""
    if not isinstance(rows, list) or not all(
        isinstance(row, list) for row in rows
    ):
        raise ImputationError("'rows' must be a list of lists")
    return rows
