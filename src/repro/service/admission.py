"""Deadline-aware admission control and overload brownout.

PR 5 guarded the imputation routes with a bare counting semaphore: a
request either got a permit immediately or was bounced with a constant
``Retry-After: 1``.  That sheds load but wastes headroom (a request
that could have waited 50 ms for a permit is refused) and tells a
saturated fleet of clients to all come back at the same instant.

:class:`AdmissionQueue` replaces the semaphore with a *bounded,
deadline-aware* queue:

* up to ``max_inflight`` requests run concurrently;
* up to ``max_queue_depth`` more may *wait* for a permit — but only as
  long as their deadline still permits (a request that would time out
  in the queue is shed immediately, never parked to die);
* everything beyond that is shed with a **load-derived** ``Retry-After``:
  the estimated time for the current backlog to drain through the
  permit pool, from an EWMA of observed service times — so clients
  back off proportionally to how overloaded the server actually is.

:class:`BrownoutController` watches the shed stream and, under
*sustained* saturation, steps the service down a documented ladder —
the service-level analogue of the per-cell degradation ladder of the
fault-tolerant runtime (``docs/ROBUSTNESS.md``):

====  ===========  ====================================================
lvl   tier         behaviour
====  ===========  ====================================================
0     ``normal``      requests run as configured
1     ``scalar``      donor scans forced onto the constant-memory
                      scalar engine (smaller allocation bursts; the
                      same bit-identical results)
2     ``cache_only``  only requests answerable from warm artifacts are
                      admitted: pinned RFD sets and artifact-cache hits
                      run (scalar); anything needing fresh discovery is
                      shed with 429 + Retry-After
====  ===========  ====================================================

Every transition is recorded as a :class:`~repro.core.report
.Degradation` audit record (``row=-1, attribute="<service>"`` marks the
service scope) and counted in ``renuver_service_brownout_total{level}``;
the current level is exported as the ``renuver_service_brownout_level``
gauge and on ``GET /healthz/ready``.  Stepping *down* the ladder needs a
full ``cooldown_seconds`` without a single shed, so the level does not
flap at the saturation boundary.
"""

from __future__ import annotations

import collections
import math
import threading
import time
from typing import Any, Callable, Deque

from repro.core.report import Degradation
from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.telemetry.logs import get_logger

logger = get_logger("service.admission")

#: Brownout ladder tier names, by level.
BROWNOUT_TIERS = ("normal", "scalar", "cache_only")

#: Audit-record coordinates marking a *service-scope* degradation (the
#: per-cell ladder uses real cell coordinates).
SERVICE_SCOPE = (-1, "<service>")

_SHED = "renuver_service_shed_total"
_HELP_SHED = "Requests shed by admission control, by reason."
_BROWNOUT = "renuver_service_brownout_total"
_HELP_BROWNOUT = "Brownout ladder transitions, by level stepped to."
_LEVEL = "renuver_service_brownout_level"
_HELP_LEVEL = "Current brownout ladder level (0 = normal)."
_DEPTH = "renuver_service_queue_depth"
_HELP_DEPTH = "Requests waiting for an admission permit."
_WAIT = "renuver_service_queue_wait_seconds"
_HELP_WAIT = "Time admitted requests spent queued for a permit."


class ShedRequest(Exception):
    """Admission refused this request; answer 429 with ``retry_after``."""

    def __init__(self, reason: str, retry_after: float) -> None:
        super().__init__(reason)
        self.reason = reason
        self.retry_after = retry_after


class AdmissionQueue:
    """Bounded, deadline-aware permit pool for the imputation routes.

    Parameters
    ----------
    max_inflight:
        Permits (requests running concurrently).
    max_queue_depth:
        Requests allowed to *wait* for a permit.
    max_queue_wait_seconds:
        Queue-wait cap for requests without a deadline.
    telemetry:
        Metrics registry for the shed/queue instruments.
    clock:
        Injectable monotonic clock (tests).
    """

    def __init__(
        self,
        max_inflight: int,
        *,
        max_queue_depth: int = 16,
        max_queue_wait_seconds: float = 1.0,
        telemetry: Telemetry | None = None,
        clock: Callable[[], float] | None = None,
    ) -> None:
        self.max_inflight = max_inflight
        self.max_queue_depth = max_queue_depth
        self.max_queue_wait_seconds = max_queue_wait_seconds
        self.telemetry = telemetry or NULL_TELEMETRY
        self._clock = clock or time.perf_counter
        self._lock = threading.Lock()
        self._permits = threading.Semaphore(max_inflight)
        self._inflight = 0
        self._waiting = 0
        #: EWMA of observed service seconds (None until the first
        #: completion; the Retry-After fallback is 1 s before that).
        self._service_ewma: float | None = None
        self.shed_counts: dict[str, int] = collections.Counter()
        self.admitted = 0

    # ------------------------------------------------------------------
    def acquire(self, deadline: float | None = None) -> None:
        """Take a permit, queueing while the deadline allows.

        ``deadline`` is an absolute reading of this queue's clock (the
        request's arrival time plus its budget).  Raises
        :class:`ShedRequest` when the queue is full, when the deadline
        cannot be met, or when it expires while queued.
        """
        now = self._clock()
        # Fast path: a free permit admits immediately, so a depth-0
        # queue still serves up to ``max_inflight`` — it only forbids
        # *waiting*.  This also admits an already-expired deadline when
        # capacity is free: the engine answers it with whatever partial
        # result zero remaining budget buys, which beats refusing work
        # the server had room for.
        if self._permits.acquire(blocking=False):
            self._admit(now)
            return
        wait_cap = self.max_queue_wait_seconds
        if deadline is not None:
            remaining = deadline - now
            if remaining <= 0.0:
                self._shed("deadline")
            wait_cap = min(wait_cap, remaining)
        with self._lock:
            queue_full = self._waiting >= self.max_queue_depth
            if not queue_full:
                self._waiting += 1
                self._gauge_depth()
        if queue_full:
            self._shed("queue_full")
        try:
            admitted = self._permits.acquire(timeout=wait_cap)
        finally:
            with self._lock:
                self._waiting -= 1
                self._gauge_depth()
        if not admitted:
            reason = (
                "deadline" if deadline is not None
                and wait_cap < self.max_queue_wait_seconds
                else "queue_timeout"
            )
            self._shed(reason)
        self._admit(now)

    def _admit(self, arrived: float) -> None:
        with self._lock:
            self._inflight += 1
            self.admitted += 1
        waited = self._clock() - arrived
        self.telemetry.metrics.histogram(_WAIT, _HELP_WAIT).observe(waited)

    def release(self, service_seconds: float | None = None) -> None:
        """Return a permit; feed the service-time EWMA."""
        with self._lock:
            self._inflight = max(0, self._inflight - 1)
            if service_seconds is not None and service_seconds >= 0.0:
                if self._service_ewma is None:
                    self._service_ewma = service_seconds
                else:
                    self._service_ewma = (
                        0.8 * self._service_ewma + 0.2 * service_seconds
                    )
        self._permits.release()

    def shed(self, reason: str) -> None:
        """Count and raise an out-of-band shed (e.g. the brownout
        ladder's cache-only gate) with the same load-derived
        Retry-After an admission shed carries."""
        self._shed(reason)

    # ------------------------------------------------------------------
    def retry_after_seconds(self) -> float:
        """How long the current backlog takes to drain, roughly.

        ``(inflight + waiting) * ewma_service / max_inflight`` rounded
        up to a whole second and clamped to [1, 30] — load-derived, so a
        lightly loaded server says "1" and a deeply backed-up one
        spreads its retries out.
        """
        with self._lock:
            backlog = self._inflight + self._waiting
            ewma = self._service_ewma
        if ewma is None or backlog <= 0:
            return 1.0
        estimate = backlog * ewma / max(1, self.max_inflight)
        return float(min(30.0, max(1.0, math.ceil(estimate))))

    def snapshot(self) -> dict[str, Any]:
        """Cheap stats for the readiness endpoint."""
        with self._lock:
            return {
                "inflight": self._inflight,
                "waiting": self._waiting,
                "max_inflight": self.max_inflight,
                "max_queue_depth": self.max_queue_depth,
                "admitted": self.admitted,
                "shed": dict(self.shed_counts),
            }

    # ------------------------------------------------------------------
    def _shed(self, reason: str) -> None:
        self.shed_counts[reason] += 1
        self.telemetry.metrics.counter(
            _SHED, _HELP_SHED, reason=reason
        ).inc()
        raise ShedRequest(reason, self.retry_after_seconds())

    def _gauge_depth(self) -> None:
        self.telemetry.metrics.gauge(_DEPTH, _HELP_DEPTH).set(
            float(self._waiting)
        )


class BrownoutController:
    """Steps the service down (and back up) the brownout ladder.

    Saturation signal: sheds within a sliding ``window_seconds``.  When
    they reach ``step_up_sheds`` the level increments (one rung at a
    time) and the window resets, so sustained — not momentary —
    overload is what climbs the ladder.  A full ``cooldown_seconds``
    without any shed steps back down one rung.
    """

    def __init__(
        self,
        *,
        enabled: bool = True,
        step_up_sheds: int = 4,
        window_seconds: float = 5.0,
        cooldown_seconds: float = 10.0,
        telemetry: Telemetry | None = None,
        clock: Callable[[], float] | None = None,
        max_audit: int = 64,
    ) -> None:
        self.enabled = enabled
        self.step_up_sheds = step_up_sheds
        self.window_seconds = window_seconds
        self.cooldown_seconds = cooldown_seconds
        self.telemetry = telemetry or NULL_TELEMETRY
        self._clock = clock or time.perf_counter
        self._lock = threading.Lock()
        self._level = 0
        self._shed_times: Deque[float] = collections.deque()
        self._last_shed: float | None = None
        #: Service-scope :class:`Degradation` audit trail (bounded).
        self.audit: Deque[Degradation] = collections.deque(maxlen=max_audit)
        self.transitions = 0

    # ------------------------------------------------------------------
    @property
    def level(self) -> int:
        with self._lock:
            return self._level

    @property
    def tier(self) -> str:
        return BROWNOUT_TIERS[self.level]

    def overrides(self) -> dict[str, Any]:
        """RenuverConfig overrides the current level imposes."""
        return {"engine": "scalar"} if self.level >= 1 else {}

    @property
    def cache_only(self) -> bool:
        """Whether discovery-requiring requests must be shed."""
        return self.level >= 2

    # ------------------------------------------------------------------
    def record_shed(self) -> None:
        """One shed request: maybe climb the ladder."""
        if not self.enabled:
            return
        now = self._clock()
        with self._lock:
            self._last_shed = now
            self._shed_times.append(now)
            floor = now - self.window_seconds
            while self._shed_times and self._shed_times[0] < floor:
                self._shed_times.popleft()
            if (
                len(self._shed_times) >= self.step_up_sheds
                and self._level < len(BROWNOUT_TIERS) - 1
            ):
                self._transition(self._level + 1, (
                    f"{len(self._shed_times)} sheds in "
                    f"{self.window_seconds:.0f}s"
                ))
                self._shed_times.clear()

    def observe(self) -> int:
        """Housekeeping tick: step down after a quiet cooldown.

        Called on every admission decision (and cheap enough for
        that); returns the current level.
        """
        if not self.enabled:
            return 0
        now = self._clock()
        with self._lock:
            if (
                self._level > 0
                and (self._last_shed is None
                     or now - self._last_shed >= self.cooldown_seconds)
            ):
                self._transition(self._level - 1, (
                    f"no sheds for {self.cooldown_seconds:.0f}s"
                ))
                self._last_shed = now  # one rung per cooldown period
            return self._level

    # ------------------------------------------------------------------
    def _transition(self, level: int, reason: str) -> None:
        """Locked by the caller.  Audits + counts one ladder move."""
        row, attribute = SERVICE_SCOPE
        record = Degradation(
            row=row,
            attribute=attribute,
            from_tier=BROWNOUT_TIERS[self._level],
            to_tier=BROWNOUT_TIERS[level],
            reason=reason,
        )
        self.audit.append(record)
        self.transitions += 1
        self._level = level
        metrics = self.telemetry.metrics
        metrics.counter(
            _BROWNOUT, _HELP_BROWNOUT, level=str(level)
        ).inc()
        metrics.gauge(_LEVEL, _HELP_LEVEL).set(float(level))
        logger.warning(
            "brownout: %s -> %s (%s)",
            record.from_tier, record.to_tier, reason,
        )

    def snapshot(self) -> dict[str, Any]:
        """Readiness payload fragment."""
        with self._lock:
            level = self._level
            audit = [
                {
                    "from": record.from_tier,
                    "to": record.to_tier,
                    "reason": record.reason,
                }
                for record in list(self.audit)[-5:]
            ]
        return {
            "enabled": self.enabled,
            "level": level,
            "tier": BROWNOUT_TIERS[level],
            "transitions": self.transitions,
            "recent": audit,
        }


__all__ = [
    "AdmissionQueue",
    "BROWNOUT_TIERS",
    "BrownoutController",
    "ShedRequest",
    "SERVICE_SCOPE",
]
