"""Durable warm-start sessions: journaled envelopes + replay recovery.

PR 5's sessions lived only in process memory: a crash lost every warm
session, and clients had to rebuild them from scratch.  This module
makes a session survive ``kill -9``:

:class:`SessionStore`
    One checksummed, versioned envelope per session under
    ``<root>/<id>.json`` (the artifact directory's ``sessions/`` area),
    written via :func:`repro.utils.atomic.atomic_write_text` with the
    PR 6 ``.prev`` staging discipline: the previous envelope is staged
    to ``<id>.json.prev`` before the current file is replaced, so at
    every instant at least one complete envelope exists on disk.  A
    torn current envelope degrades to a *counted* one-event rollback
    (``renuver_session_envelope_recoveries_total``); only both copies
    unreadable drops the session (counted, never a crash).

The envelope payload is a **journal**, not a snapshot: the session's
creation record (initial CSV, RFD source, config) plus the ordered
event list (``append`` rows, ``impute`` rounds).  Recovery *replays*
the journal through the same code paths the live requests used —
RENUVER is deterministic, so the recovered session's relation, pending
set and maintained RFD set are bit-identical to the moment of the last
acknowledged request, and the next request answers exactly as it would
have on an uninterrupted server (asserted byte-for-byte in
``tests/service/test_chaos_http.py``).

The creation record carries the session's discovery result twice: as a
*reference* into the artifact cache (fingerprint + config key — the
normal path) and *inline* (the serialized result), so recovery
survives an evicted or corrupted artifact cache without recomputing
discovery.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.dataset.csv_io import read_csv_text
from repro.discovery.config import DiscoveryConfig
from repro.discovery.dime import DiscoveryResult
from repro.discovery.incremental import IncrementalDiscovery
from repro.exceptions import ServiceError
from repro.extensions.incremental import ImputationSession
from repro.rfd.parser import parse_rfd
from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.telemetry.logs import get_logger
from repro.utils.atomic import atomic_write_text
from repro.utils.fingerprint import payload_fingerprint

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.engine import PreparedEngine

logger = get_logger("service.durability")

#: Envelope schema version; any other version is treated as corruption
#: (fall back to ``.prev``, then drop the session), never reinterpreted.
SESSION_VERSION = 1

_RECOVERIES = "renuver_session_envelope_recoveries_total"
_HELP_RECOVERIES = (
    "Session envelope loads that fell back to the .prev copy."
)
_CORRUPT = "renuver_session_envelope_corrupt_total"
_HELP_CORRUPT = (
    "Session envelopes dropped because both copies were unreadable."
)
_PERSIST_FAILURES = "renuver_session_persist_failures_total"
_HELP_PERSIST = (
    "Session envelope saves that failed at the OS level."
)

_ID_PATTERN = re.compile(r"^s\d{6}$")


class SessionRecoveryError(ServiceError):
    """One session's journal could not be replayed (that session is
    dropped; the server keeps booting)."""


class SessionStore:
    """Checksummed per-session envelopes with ``.prev`` staging.

    Persistence is *best effort by contract*: a failed save is logged
    and counted (``renuver_session_persist_failures_total``), and the
    session keeps serving from memory — a full disk degrades
    durability, it must never fail the request that was trying to be
    durable.  Loads are corruption-tolerant the same way the artifact
    cache is.
    """

    def __init__(
        self,
        root: str | Path,
        *,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.root = Path(root)
        self.telemetry = telemetry or NULL_TELEMETRY
        self._seqs: dict[str, int] = {}
        self.saves = 0
        self.persist_failures = 0
        self.envelope_recoveries = 0
        self.corrupt_envelopes = 0

    # ------------------------------------------------------------------
    def path_for(self, session_id: str) -> Path:
        return self.root / f"{session_id}.json"

    def session_ids(self) -> list[str]:
        """Persisted session ids, in id order."""
        if not self.root.is_dir():
            return []
        ids = {
            path.stem
            for path in self.root.glob("s*.json")
            if _ID_PATTERN.match(path.stem)
        }
        return sorted(ids)

    # ------------------------------------------------------------------
    def save(self, session_id: str, payload: dict[str, Any]) -> bool:
        """Persist one session's journal; ``False`` on a failed write."""
        path = self.path_for(session_id)
        previous = path.with_name(path.name + ".prev")
        seq = self._seqs.get(session_id, 0) + 1
        envelope = {
            "session_version": SESSION_VERSION,
            "session_id": session_id,
            "envelope_seq": seq,
            "checksum": payload_fingerprint(payload),
            "payload": payload,
        }
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            if path.exists():
                atomic_write_text(
                    previous, path.read_text(encoding="utf-8")
                )
            atomic_write_text(
                path, json.dumps(envelope, ensure_ascii=False)
            )
        except OSError as exc:
            self.persist_failures += 1
            self.telemetry.metrics.counter(
                _PERSIST_FAILURES, _HELP_PERSIST
            ).inc()
            logger.warning(
                "session %s: envelope save failed (%s); serving from "
                "memory only", session_id, exc,
            )
            return False
        self._seqs[session_id] = seq
        self.saves += 1
        return True

    def load(self, session_id: str) -> dict[str, Any] | None:
        """One session's journal payload, or ``None`` when unreadable.

        A torn current envelope falls back to ``.prev`` (counted); both
        unreadable counts as a corrupt envelope and returns ``None``.
        """
        path = self.path_for(session_id)
        current = self._read(session_id, path)
        if current is not None:
            return current
        previous = self._read(
            session_id, path.with_name(path.name + ".prev")
        )
        if previous is not None:
            self.envelope_recoveries += 1
            self.telemetry.metrics.counter(
                _RECOVERIES, _HELP_RECOVERIES
            ).inc()
            logger.warning(
                "session %s: envelope is unreadable; recovered the "
                ".prev copy (one acknowledged event may be lost)",
                session_id,
            )
            return previous
        self.corrupt_envelopes += 1
        self.telemetry.metrics.counter(_CORRUPT, _HELP_CORRUPT).inc()
        logger.error(
            "session %s: envelope and .prev are both unreadable; "
            "dropping the session", session_id,
        )
        return None

    def delete(self, session_id: str) -> None:
        """Remove a closed session's envelope (and its ``.prev``)."""
        path = self.path_for(session_id)
        for target in (path, path.with_name(path.name + ".prev")):
            try:
                target.unlink()
            except OSError:
                pass
        self._seqs.pop(session_id, None)

    # ------------------------------------------------------------------
    def _read(self, session_id: str, path: Path) -> dict[str, Any] | None:
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return None
        try:
            envelope = json.loads(text)
        except json.JSONDecodeError:
            return None
        if not isinstance(envelope, dict):
            return None
        if envelope.get("session_version") != SESSION_VERSION:
            return None
        if envelope.get("session_id") != session_id:
            return None
        payload = envelope.get("payload")
        if not isinstance(payload, dict):
            return None
        if payload_fingerprint(payload) != envelope.get("checksum"):
            return None
        seq = envelope.get("envelope_seq")
        if isinstance(seq, int) and seq > self._seqs.get(session_id, 0):
            self._seqs[session_id] = seq
        return payload


# ----------------------------------------------------------------------
# Journal replay
# ----------------------------------------------------------------------
def creation_record(
    *,
    csv_text: str,
    name: str,
    rfd_texts: list[str] | None,
    discovery_options: dict[str, Any] | None,
    overrides: dict[str, Any] | None,
    budget_seconds: float | None,
    incremental_discovery: bool,
    rfd_source: str,
    discovery_ref: dict[str, str] | None,
    discovery_inline: dict[str, Any] | None,
) -> dict[str, Any]:
    """The envelope's ``created`` record (one place for its shape)."""
    return {
        "csv": csv_text,
        "name": name,
        "rfd_texts": rfd_texts,
        "discovery_options": discovery_options,
        "overrides": overrides,
        "budget_seconds": budget_seconds,
        "incremental_discovery": incremental_discovery,
        "rfd_source": rfd_source,
        "discovery_ref": discovery_ref,
        "discovery_inline": discovery_inline,
    }


def rebuild_components(
    engine: "PreparedEngine", created: dict[str, Any]
) -> tuple[ImputationSession, IncrementalDiscovery | None]:
    """A fresh (imputation session, maintainer) pair from a creation
    record — the replay analogue of ``PreparedEngine.open_session``,
    with discovery resolved from the journal instead of recomputed.
    """
    try:
        relation = read_csv_text(
            created["csv"], name=str(created.get("name", "request"))
        )
    except Exception as exc:  # noqa: BLE001 - surfaced as recovery failure
        raise SessionRecoveryError(
            f"cannot rebuild the session relation: {exc}"
        ) from exc
    config = engine._request_config(
        created.get("overrides"), created.get("budget_seconds")
    )
    rfd_texts = created.get("rfd_texts")
    if rfd_texts is not None:
        try:
            rfds = [parse_rfd(text) for text in rfd_texts]
        except Exception as exc:  # noqa: BLE001
            raise SessionRecoveryError(
                f"cannot re-parse the pinned RFD set: {exc}"
            ) from exc
        return ImputationSession(relation, rfds, config), None

    options = created.get("discovery_options")
    try:
        discovery_config = (
            DiscoveryConfig(**options) if options
            else engine.config.discovery
        )
    except TypeError as exc:
        raise SessionRecoveryError(
            f"cannot rebuild the discovery config: {exc}"
        ) from exc
    result = _resolve_discovery(engine, created)
    session = ImputationSession(relation, result.all_rfds, config)
    maintainer: IncrementalDiscovery | None = None
    if created.get("incremental_discovery", True):
        maintainer = IncrementalDiscovery(
            relation, discovery_config, initial=result
        )
    return session, maintainer


def _resolve_discovery(
    engine: "PreparedEngine", created: dict[str, Any]
) -> DiscoveryResult:
    """The session's discovery result: artifact-cache ref first, the
    inline journal copy second."""
    ref = created.get("discovery_ref")
    if engine.store is not None and isinstance(ref, dict):
        fingerprint = ref.get("fingerprint")
        key = ref.get("config_key")
        if isinstance(fingerprint, str) and isinstance(key, str):
            result = engine.store.load_discovery_by_ref(fingerprint, key)
            if result is not None:
                return result
    inline = created.get("discovery_inline")
    if isinstance(inline, dict):
        try:
            return DiscoveryResult.from_json(inline)
        except Exception as exc:  # noqa: BLE001
            raise SessionRecoveryError(
                f"inline discovery result is unreadable: {exc}"
            ) from exc
    raise SessionRecoveryError(
        "no resolvable discovery result (artifact evicted and no "
        "inline copy)"
    )


__all__ = [
    "SESSION_VERSION",
    "SessionRecoveryError",
    "SessionStore",
    "creation_record",
    "rebuild_components",
]
