"""Stdlib HTTP JSON API for the imputation service.

Endpoints (full reference with curl examples in ``docs/SERVICE.md``):

===========================================  ===============================
``POST /v1/impute``                          one-shot imputation — with an
                                             explicit ``rfds`` list the
                                             response CSV is bit-identical
                                             to the CLI ``impute`` command
``POST /v1/sessions``                        open a warm-start session
``GET /v1/sessions/{id}``                    session statistics
``POST /v1/sessions/{id}/tuples``            append tuples to a session
``POST /v1/sessions/{id}/impute``            run one imputation round
``DELETE /v1/sessions/{id}``                 close a session
``GET /healthz``                             liveness (alias of ``/live``)
``GET /healthz/live``                        liveness: the process serves
``GET /healthz/ready``                       readiness: sessions, brownout
                                             level, queue + corruption stats
``GET /metrics``                             Prometheus text exposition
===========================================  ===============================

Built on :class:`http.server.ThreadingHTTPServer` (one thread per
connection, non-daemon so a drain can join them).  Admission control is
an :class:`~repro.service.admission.AdmissionQueue`: up to
``max_inflight`` imputation requests run, up to ``max_queue_depth``
more wait — but only while their deadline still permits — and
everything else is shed with ``429`` and a *load-derived*
``Retry-After``.  Sustained shedding engages the
:class:`~repro.service.admission.BrownoutController` ladder
(vectorized → scalar → cache-only).  ``/healthz*`` and ``/metrics``
bypass admission so operators can always see in.

Deadlines propagate end to end: the request's budget (body or service
default) fixes an absolute deadline at arrival; queueing consumes it,
the engine receives only the *remaining* budget (which the supervised
runtime ships into its workers), and the response reports what was
left as ``X-Budget-Remaining-Seconds``.

Every request runs under a fresh ``service.request`` span (the tracer
is per-request; the metrics registry is process-wide) and lands in
``renuver_http_requests_total{route,code}`` and
``renuver_http_request_seconds{route}``.

Graceful drain (modeled on the supervised runtime's shutdown path):
:meth:`ImputationHTTPServer.drain` stops the accept loop, waits for
in-flight handler threads, and leaves settled state behind — the CLI
``serve`` subcommand maps SIGTERM/SIGINT onto it and exits 0.  With a
durable session store the drain loses nothing anyway: every
acknowledged session mutation is already journaled, and the next boot
replays it (``docs/SERVICE.md``).
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import fields as dataclass_fields
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from socket import SO_LINGER, SOL_SOCKET
from struct import pack
from time import perf_counter
from typing import Any

from repro.core.report import ImputationReport
from repro.dataset.csv_io import read_csv_text, to_csv_text
from repro.dataset.missing import is_missing
from repro.discovery.config import DiscoveryConfig
from repro.exceptions import InjectedFaultError, ReproError, ServiceError
from repro.rfd.parser import parse_rfd
from repro.robustness.chaos import ChaosInjector
from repro.service.admission import (
    AdmissionQueue,
    BrownoutController,
    ShedRequest,
)
from repro.service.artifacts import ArtifactStore
from repro.service.durability import SessionStore, creation_record
from repro.service.engine import PreparedEngine, ServiceConfig, session_rows
from repro.service.sessions import SessionManager
from repro.telemetry import Telemetry, prometheus_text
from repro.telemetry.logs import get_logger

logger = get_logger("service.http")

#: RenuverConfig fields a request may override per call.  Everything
#: else (budgets, workers, journals) is owned by the operator.
_CONFIG_OVERRIDES = frozenset(
    {"engine", "verify", "fallback", "max_candidates", "cluster_order"}
)

_DISCOVERY_ALIASES = {"limit": "threshold_limit", "max_lhs": "max_lhs_size"}
_DISCOVERY_FIELDS = frozenset(
    f.name for f in dataclass_fields(DiscoveryConfig)
)

_DEGRADED = "renuver_service_degraded_requests_total"
_HELP_DEGRADED = (
    "Requests that ran under a brownout tier below normal, by tier."
)
_CHAOS = "renuver_http_chaos_faults_total"
_HELP_CHAOS = "Injected HTTP faults applied to requests, by kind."


class _HTTPError(Exception):
    """An error with a status code; rendered as a JSON body."""

    def __init__(self, status: int, message: str, **extra: Any) -> None:
        super().__init__(message)
        self.status = status
        self.payload = {"error": message, **extra}


class ImputationHTTPServer(ThreadingHTTPServer):
    """The service's threading HTTP server (one engine, many requests)."""

    #: Non-daemon handler threads: ``server_close`` joins them, which is
    #: exactly the drain semantics the SIGTERM path needs.
    daemon_threads = False
    block_on_close = True

    def __init__(
        self,
        address: tuple[str, int],
        *,
        engine: PreparedEngine,
        telemetry: Telemetry,
        chaos: ChaosInjector | None = None,
    ) -> None:
        self.engine = engine
        self.telemetry = telemetry
        self.chaos = chaos
        config = engine.config
        session_store: SessionStore | None = None
        if config.durable_sessions and engine.store is not None:
            session_store = SessionStore(
                engine.store.root / "sessions", telemetry=telemetry
            )
        self.sessions = SessionManager(
            config.max_sessions, store=session_store
        )
        #: Boot-time session recovery happens before the socket binds,
        #: so the first accepted request already sees the warm state.
        self.recovery = self.sessions.recover(engine)
        self.admission = AdmissionQueue(
            config.max_inflight,
            max_queue_depth=config.max_queue_depth,
            max_queue_wait_seconds=config.max_queue_wait_seconds,
            telemetry=telemetry,
        )
        self.brownout = BrownoutController(
            enabled=config.brownout_enabled,
            step_up_sheds=config.brownout_step_up_sheds,
            window_seconds=config.brownout_window_seconds,
            cooldown_seconds=config.brownout_cooldown_seconds,
            telemetry=telemetry,
        )
        self.draining = threading.Event()
        try:
            super().__init__(address, _Handler)
        except OSError as exc:
            raise ServiceError(
                f"cannot bind {address[0]}:{address[1]}: {exc}"
            ) from exc

    @property
    def port(self) -> int:
        """The bound port (useful with ``--port 0``)."""
        return self.server_address[1]

    def drain(self) -> None:
        """Stop accepting, finish in-flight requests, release the socket.

        Idempotent; safe to call from a signal-driven thread while
        ``serve_forever`` runs in another.
        """
        if self.draining.is_set():
            return
        self.draining.set()
        logger.info("draining: refusing new work, finishing in-flight")
        self.shutdown()       # stop the accept loop
        self.server_close()   # join handler threads (block_on_close)
        logger.info("drain complete")


def build_server(
    host: str = "127.0.0.1",
    port: int = 8080,
    *,
    config: ServiceConfig | None = None,
    artifact_dir: str | None = None,
    telemetry: Telemetry | None = None,
    chaos: ChaosInjector | None = None,
) -> ImputationHTTPServer:
    """Assemble a ready-to-serve engine + HTTP server.

    The server always runs with a live process-wide metrics registry
    (``/metrics`` must have something to expose); pass ``telemetry`` to
    share one.  ``artifact_dir`` enables the fingerprint-keyed artifact
    cache that lets warm requests skip discovery — and, with
    ``durable_sessions`` (the default), the journaled session envelopes
    that survive a ``kill -9``.  ``chaos`` arms the HTTP fault channel
    of :class:`~repro.robustness.chaos.ChaosInjector` (tests only).
    """
    telemetry = telemetry if telemetry is not None else Telemetry()
    store = (
        ArtifactStore(artifact_dir, telemetry=telemetry)
        if artifact_dir
        else None
    )
    engine = PreparedEngine(config, store=store, telemetry=telemetry)
    return ImputationHTTPServer(
        (host, port), engine=engine, telemetry=telemetry, chaos=chaos
    )


class _Handler(BaseHTTPRequestHandler):
    """Routes requests; all real work happens on the shared engine.

    One handler instance serves one request (``Connection: close``), so
    per-request state (body, deadline, fault plan) lives on ``self``.
    """

    protocol_version = "HTTP/1.1"
    server: ImputationHTTPServer  # narrowed for type checkers

    # -- entry points ----------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("DELETE")

    def log_message(self, format: str, *args: Any) -> None:
        """Route the stdlib access log into the repro logger tree."""
        logger.debug("%s %s", self.address_string(), format % args)

    # -- dispatch --------------------------------------------------------
    def _dispatch(self, method: str) -> None:
        route, handler, needs_admission = self._route(method)
        started = perf_counter()
        self._deadline: float | None = None
        self._body: dict[str, Any] = {}
        self._mid_kill = False
        status = 500
        admitted = False
        telemetry = self.server.engine.request_telemetry()
        try:
            fault = (
                self.server.chaos.http_fault()
                if self.server.chaos is not None else None
            )
            if fault is not None:
                kind = fault["kind"]
                self.server.telemetry.metrics.counter(
                    _CHAOS, _HELP_CHAOS, kind=kind
                ).inc()
                if kind == "reset":
                    status = 0
                    self._abort_connection()
                    return
                if kind == "slow_read":
                    time.sleep(fault["seconds"])
                elif kind == "mid_kill":
                    self._mid_kill = True
                elif kind == "crash":
                    raise InjectedFaultError("injected handler crash")
            if handler is None:
                raise _HTTPError(404, f"no route {method} {self.path}")
            if self.server.draining.is_set() and route not in (
                "/healthz", "/healthz/live", "/metrics"
            ):
                raise _HTTPError(503, "server is draining")
            if needs_admission:
                # The body is read *before* admission: the deadline it
                # carries decides how long this request may queue.
                self._body = self._read_json()
                budget = self._budget_from(self._body)
                if budget is None:
                    budget = self.server.engine.config.request_budget_seconds
                if budget is not None:
                    self._deadline = started + budget
                self.server.brownout.observe()
                self.server.admission.acquire(self._deadline)
                admitted = True
            try:
                with telemetry.tracer.span(
                    "service.request", route=route, method=method
                ) as span:
                    status, payload, content_type = handler(telemetry)
                    span.set_attribute("status", status)
            finally:
                if admitted:
                    self.server.admission.release(
                        perf_counter() - started
                    )
            self._respond(
                status, payload, content_type, self._budget_headers()
            )
        except ShedRequest as exc:
            # Overload (or brownout cache-only): counted, audited, and
            # answered 429 with a load-derived Retry-After — never 5xx.
            self.server.brownout.record_shed()
            status = 429
            retry_after = max(1, int(exc.retry_after))
            self._respond(
                429,
                json.dumps({
                    "error": f"request shed ({exc.reason}); retry after "
                             f"{retry_after}s",
                    "reason": exc.reason,
                    "brownout_tier": self.server.brownout.tier,
                }).encode("utf-8"),
                "application/json",
                {"Retry-After": str(retry_after)},
            )
        except _HTTPError as exc:
            status = exc.status
            headers = (
                {"Retry-After": str(max(
                    1, int(self.server.admission.retry_after_seconds())
                ))}
                if exc.status == 429 else None
            )
            self._respond(
                exc.status,
                json.dumps(exc.payload).encode("utf-8"),
                "application/json",
                headers,
            )
        except InjectedFaultError as exc:
            # A chaos handler crash is a *server* failure (it must not
            # masquerade as the 400 its ReproError parentage would get).
            status = 500
            self._respond(500, json.dumps({
                "error": f"internal error: {type(exc).__name__}",
            }).encode("utf-8"), "application/json")
        except ReproError as exc:
            # Client-data failures (bad CSV, bad RFD text, bad config)
            # are the request's fault, not the server's.
            status = 400
            self._respond(400, json.dumps({
                "error": str(exc), "type": type(exc).__name__,
            }).encode("utf-8"), "application/json")
        except BrokenPipeError:  # pragma: no cover - client went away
            status = 499
        except Exception as exc:  # noqa: BLE001 - keep the server alive
            status = 500
            logger.exception("unhandled error on %s %s", method, route)
            self._respond(500, json.dumps({
                "error": f"internal error: {type(exc).__name__}",
            }).encode("utf-8"), "application/json")
        finally:
            self._observe(route, status, perf_counter() - started)

    def _route(self, method: str):
        """(route template, bound handler, needs admission)."""
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/healthz" and method == "GET":
            return "/healthz", self._handle_live, False
        if path == "/healthz/live" and method == "GET":
            return "/healthz/live", self._handle_live, False
        if path == "/healthz/ready" and method == "GET":
            return "/healthz/ready", self._handle_ready, False
        if path == "/metrics" and method == "GET":
            return "/metrics", self._handle_metrics, False
        if path == "/v1/impute" and method == "POST":
            return "/v1/impute", self._handle_impute, True
        if path == "/v1/sessions" and method == "POST":
            return "/v1/sessions", self._handle_session_create, True
        parts = path.split("/")
        if len(parts) >= 4 and parts[1] == "v1" and parts[2] == "sessions":
            session_id = parts[3]
            if len(parts) == 4 and method == "GET":
                return (
                    "/v1/sessions/{id}",
                    lambda t: self._handle_session_get(t, session_id),
                    False,
                )
            if len(parts) == 4 and method == "DELETE":
                return (
                    "/v1/sessions/{id}",
                    lambda t: self._handle_session_delete(t, session_id),
                    False,
                )
            if len(parts) == 5 and parts[4] == "tuples" and method == "POST":
                return (
                    "/v1/sessions/{id}/tuples",
                    lambda t: self._handle_session_tuples(t, session_id),
                    True,
                )
            if len(parts) == 5 and parts[4] == "impute" and method == "POST":
                return (
                    "/v1/sessions/{id}/impute",
                    lambda t: self._handle_session_impute(t, session_id),
                    True,
                )
        return self.path, None, False

    # -- handlers --------------------------------------------------------
    def _handle_live(self, telemetry: Telemetry):
        """Liveness: the process is up and the handler pool answers.

        Deliberately unconditional (even while draining): liveness
        gates *restarts*, and a draining server must not be killed
        mid-drain.  Readiness is the gate for *traffic*.
        """
        body = json.dumps({
            "status": "ok",
            "sessions": len(self.server.sessions),
            "max_inflight": self.server.engine.config.max_inflight,
            "artifact_cache": self.server.engine.store is not None,
        }).encode("utf-8")
        return 200, body, "application/json"

    def _handle_ready(self, telemetry: Telemetry):
        """Readiness: whether this instance should receive traffic."""
        server = self.server
        store = server.engine.store
        session_store = server.sessions.store
        payload = {
            "status": "ready",
            "sessions": len(server.sessions),
            "recovered_sessions": server.sessions.recovered,
            "dropped_sessions": server.sessions.dropped,
            "durable_sessions": session_store is not None,
            "session_persist_failures": (
                session_store.persist_failures
                if session_store is not None else 0
            ),
            "artifact_corruptions": (
                store.corruptions if store is not None else 0
            ),
            "brownout": server.brownout.snapshot(),
            "admission": server.admission.snapshot(),
        }
        status = 200
        return status, json.dumps(payload).encode("utf-8"), (
            "application/json"
        )

    def _handle_metrics(self, telemetry: Telemetry):
        text = prometheus_text(self.server.telemetry.metrics)
        return 200, text.encode("utf-8"), (
            "text/plain; version=0.0.4; charset=utf-8"
        )

    def _handle_impute(self, telemetry: Telemetry):
        body = self._body
        relation = self._relation_from(body)
        discovery = self._discovery_from(body)[0]
        rfds = self._rfds_from(body)
        if rfds is None:
            self._enforce_cache_only(relation, discovery)
        result, source = self.server.engine.impute_once(
            relation,
            rfds,
            discovery=discovery,
            overrides=self._effective_overrides(body),
            budget_seconds=self._remaining_budget(),
            telemetry=telemetry,
        )
        payload = {
            "csv": to_csv_text(result.relation),
            "report": _report_payload(result.report),
            "rfd_source": source,
            "budget_remaining_seconds": self._remaining_budget(),
            "brownout_tier": self.server.brownout.tier,
        }
        return 200, json.dumps(payload).encode("utf-8"), "application/json"

    def _handle_session_create(self, telemetry: Telemetry):
        body = self._body
        relation = self._relation_from(body)
        incremental = body.get("incremental_discovery", True)
        if not isinstance(incremental, bool):
            raise _HTTPError(400, "'incremental_discovery' must be a bool")
        discovery, discovery_options = self._discovery_from(body)
        rfds = self._rfds_from(body)
        if rfds is None:
            self._enforce_cache_only(relation, discovery)
        overrides = self._effective_overrides(body)
        budget = self._budget_from(body)
        imputation, maintainer, source, result = (
            self.server.engine.open_session(
                relation,
                rfds,
                discovery=discovery,
                overrides=overrides,
                budget_seconds=budget,
                incremental_discovery=incremental,
                telemetry=telemetry,
            )
        )
        record = None
        if self.server.sessions.store is not None:
            engine = self.server.engine
            ref = None
            if engine.store is not None and rfds is None:
                ref = engine.store.discovery_ref(
                    relation, discovery or engine.config.discovery
                )
            record = creation_record(
                csv_text=body["csv"],
                name=str(body.get("name", "request")),
                rfd_texts=body.get("rfds"),
                discovery_options=discovery_options,
                overrides=overrides,
                budget_seconds=budget,
                incremental_discovery=incremental,
                rfd_source=source,
                discovery_ref=ref,
                discovery_inline=(
                    result.to_json() if result is not None else None
                ),
            )
        session = self.server.sessions.create(
            imputation, maintainer, rfd_source=source, record=record
        )
        if session is None:
            raise _HTTPError(
                429,
                f"session registry is full "
                f"(max_sessions="
                f"{self.server.engine.config.max_sessions}); "
                f"DELETE a session you no longer need",
            )
        self._session_gauge()
        return 201, json.dumps(session.snapshot()).encode("utf-8"), (
            "application/json"
        )

    def _handle_session_get(self, telemetry: Telemetry, session_id: str):
        session = self._session(session_id)
        return 200, json.dumps(session.snapshot()).encode("utf-8"), (
            "application/json"
        )

    def _handle_session_delete(self, telemetry: Telemetry, session_id: str):
        if not self.server.sessions.delete(session_id):
            raise _HTTPError(404, f"no session {session_id!r}")
        self._session_gauge()
        return 200, json.dumps({"deleted": session_id}).encode("utf-8"), (
            "application/json"
        )

    def _handle_session_tuples(self, telemetry: Telemetry, session_id: str):
        session = self._session(session_id)
        body = self._body
        if "rows" not in body:
            raise _HTTPError(400, "body needs a 'rows' list")
        outcome = session.append(session_rows(body["rows"]))
        outcome["budget_remaining_seconds"] = self._remaining_budget()
        return 200, json.dumps(outcome).encode("utf-8"), "application/json"

    def _handle_session_impute(self, telemetry: Telemetry, session_id: str):
        session = self._session(session_id)
        result = session.impute()
        payload = {
            "report": _report_payload(result.report),
            "outcomes": [_outcome_payload(o) for o in result.report],
            "csv": to_csv_text(result.relation),
            "budget_remaining_seconds": self._remaining_budget(),
        }
        return 200, json.dumps(payload).encode("utf-8"), "application/json"

    # -- deadline and brownout plumbing ----------------------------------
    def _remaining_budget(self) -> float | None:
        """Seconds left on this request's deadline (``None`` if none).

        What queueing and earlier work did not consume is all the
        engine gets — the deadline is absolute, fixed at arrival.  An
        expired deadline maps to an epsilon budget, not zero: the
        engine then runs its budget machinery (partial result,
        ``budget_exhausted`` report) instead of treating the request as
        unbudgeted.
        """
        if self._deadline is None:
            return None
        return max(1e-9, self._deadline - perf_counter())

    def _budget_headers(self) -> dict[str, str] | None:
        if self._deadline is None:
            return None
        remaining = max(0.0, self._deadline - perf_counter())
        return {"X-Budget-Remaining-Seconds": f"{remaining:.3f}"}

    def _effective_overrides(
        self, body: dict[str, Any]
    ) -> dict[str, Any] | None:
        """Request overrides with the brownout tier's forced fields on
        top (the ladder's engine downgrade is result-identical — the
        scalar engine is the vectorized engine's reference)."""
        overrides = self._overrides_from(body)
        forced = self.server.brownout.overrides()
        if forced:
            self.server.telemetry.metrics.counter(
                _DEGRADED, _HELP_DEGRADED,
                tier=self.server.brownout.tier,
            ).inc()
            overrides = {**(overrides or {}), **forced}
        return overrides

    def _enforce_cache_only(
        self, relation: Any, discovery: DiscoveryConfig | None
    ) -> None:
        """At brownout level 2, shed discovery-requiring requests.

        A request with a pinned RFD set never discovers; one without is
        admitted only when the artifact cache already holds the
        discovery result for its exact (relation, config) key.
        """
        if not self.server.brownout.cache_only:
            return
        store = self.server.engine.store
        if store is not None:
            ref = store.discovery_ref(
                relation, discovery or self.server.engine.config.discovery
            )
            if store.path_for(
                "discovery", ref["fingerprint"], ref["config_key"]
            ).exists():
                return  # answerable from the warm artifact
        self.server.admission.shed("cache_only")

    # -- request parsing -------------------------------------------------
    def _read_json(self) -> dict[str, Any]:
        limit = self.server.engine.config.max_body_bytes
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            raise _HTTPError(400, "bad Content-Length") from None
        if length > limit:
            raise _HTTPError(
                413, f"body of {length} bytes exceeds {limit}"
            )
        if length <= 0:
            return {}
        raw = self.rfile.read(length)
        try:
            body = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _HTTPError(400, f"body is not JSON: {exc}") from None
        if not isinstance(body, dict):
            raise _HTTPError(400, "body must be a JSON object")
        return body

    def _relation_from(self, body: dict[str, Any]):
        csv_text = body.get("csv")
        if not isinstance(csv_text, str) or not csv_text.strip():
            raise _HTTPError(400, "body needs a non-empty 'csv' string")
        return read_csv_text(csv_text, name=str(body.get("name", "request")))

    @staticmethod
    def _rfds_from(body: dict[str, Any]):
        texts = body.get("rfds")
        if texts is None:
            return None
        if not isinstance(texts, list) or not all(
            isinstance(text, str) for text in texts
        ):
            raise _HTTPError(400, "'rfds' must be a list of RFD strings")
        if not texts:
            raise _HTTPError(400, "'rfds' must not be empty when given")
        return [parse_rfd(text) for text in texts]

    @staticmethod
    def _discovery_from(
        body: dict[str, Any]
    ) -> tuple[DiscoveryConfig | None, dict[str, Any] | None]:
        """(config, normalized options) — the options are what a durable
        session journals, so recovery rebuilds the same config."""
        spec = body.get("discovery")
        if spec is None:
            return None, None
        if not isinstance(spec, dict):
            raise _HTTPError(400, "'discovery' must be an object")
        normalized: dict[str, Any] = {}
        for key, value in spec.items():
            name = _DISCOVERY_ALIASES.get(key, key)
            if name not in _DISCOVERY_FIELDS:
                raise _HTTPError(
                    400, f"unknown discovery option {key!r}"
                )
            normalized[name] = value
        try:
            return DiscoveryConfig(**normalized), normalized
        except TypeError as exc:
            raise _HTTPError(400, f"bad discovery options: {exc}") from None

    @staticmethod
    def _overrides_from(body: dict[str, Any]) -> dict[str, Any] | None:
        spec = body.get("config")
        if spec is None:
            return None
        if not isinstance(spec, dict):
            raise _HTTPError(400, "'config' must be an object")
        unknown = set(spec) - _CONFIG_OVERRIDES
        if unknown:
            raise _HTTPError(
                400,
                f"unknown config option(s) {sorted(unknown)}; "
                f"allowed: {sorted(_CONFIG_OVERRIDES)}",
            )
        return dict(spec)

    @staticmethod
    def _budget_from(body: dict[str, Any]) -> float | None:
        budget = body.get("budget_seconds")
        if budget is None:
            return None
        if not isinstance(budget, (int, float)) or budget <= 0:
            raise _HTTPError(
                400, "'budget_seconds' must be a positive number"
            )
        return float(budget)

    def _session(self, session_id: str):
        session = self.server.sessions.get(session_id)
        if session is None:
            raise _HTTPError(404, f"no session {session_id!r}")
        return session

    # -- response plumbing -----------------------------------------------
    def _respond(
        self,
        status: int,
        body: bytes,
        content_type: str,
        headers: dict[str, str] | None = None,
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        # One request per connection keeps the drain's thread-join
        # bounded: no idle keep-alive thread can stall shutdown.
        self.send_header("Connection", "close")
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        if self._mid_kill:
            # Chaos mid-response kill: half the body, then an RST.
            self.wfile.write(body[: len(body) // 2])
            self.wfile.flush()
            self._abort_connection()
            return
        self.wfile.write(body)
        self.close_connection = True

    def _abort_connection(self) -> None:
        """Tear the TCP connection down with an RST (chaos faults)."""
        try:
            # SO_LINGER with zero timeout turns close() into a reset,
            # which is what a crashed or power-cycled peer looks like.
            self.connection.setsockopt(
                SOL_SOCKET, SO_LINGER, pack("ii", 1, 0)
            )
        except OSError:  # pragma: no cover - already torn down
            pass
        self.close_connection = True
        try:
            self.connection.close()
        except OSError:  # pragma: no cover - already torn down
            pass

    def _observe(self, route: str, status: int, seconds: float) -> None:
        metrics = self.server.telemetry.metrics
        metrics.counter(
            "renuver_http_requests_total",
            "HTTP requests served, by route template and status code.",
            route=route, code=str(status),
        ).inc()
        metrics.histogram(
            "renuver_http_request_seconds",
            "HTTP request latency by route template.",
            route=route,
        ).observe(seconds)

    def _session_gauge(self) -> None:
        self.server.telemetry.metrics.gauge(
            "renuver_http_sessions",
            "Live warm-start sessions.",
        ).set(len(self.server.sessions))


# ----------------------------------------------------------------------
# Payload rendering
# ----------------------------------------------------------------------
def _report_payload(report: ImputationReport) -> dict[str, Any]:
    return {
        "missing_cells": report.missing_count,
        "imputed_cells": report.imputed_count,
        "degraded_cells": report.degraded_count,
        "unimputed_cells": report.unimputed_count,
        "fill_rate": report.fill_rate,
        "status_counts": report.status_counts(),
        "elapsed_seconds": report.elapsed_seconds,
        "degradations": len(report.degradations),
        "budget_exhausted": any(
            event.scope == "run" for event in report.budget_events
        ),
        "replayed_cells": report.replayed_count,
    }


def _outcome_payload(outcome: Any) -> dict[str, Any]:
    return {
        "row": outcome.row,
        "attribute": outcome.attribute,
        "status": outcome.status.value,
        "value": None if is_missing(outcome.value) else outcome.value,
        "source_row": outcome.source_row,
        "rfd": str(outcome.rfd) if outcome.rfd is not None else None,
        "distance": outcome.distance,
    }
