"""Stdlib HTTP JSON API for the imputation service.

Endpoints (full reference with curl examples in ``docs/SERVICE.md``):

===========================================  ===============================
``POST /v1/impute``                          one-shot imputation — with an
                                             explicit ``rfds`` list the
                                             response CSV is bit-identical
                                             to the CLI ``impute`` command
``POST /v1/sessions``                        open a warm-start session
``GET /v1/sessions/{id}``                    session statistics
``POST /v1/sessions/{id}/tuples``            append tuples to a session
``POST /v1/sessions/{id}/impute``            run one imputation round
``DELETE /v1/sessions/{id}``                 close a session
``GET /healthz``                             liveness + basic stats
``GET /metrics``                             Prometheus text exposition
===========================================  ===============================

Built on :class:`http.server.ThreadingHTTPServer` (one thread per
connection, non-daemon so a drain can join them).  Admission control is
a counting semaphore of ``max_inflight`` permits over the imputation
routes: a request that cannot get a permit immediately is answered
``429`` with a ``Retry-After`` hint — bounded queueing, never an
unbounded pile-up, never a crash.  ``/healthz`` and ``/metrics`` bypass
admission so operators can always see in.

Every request runs under a fresh ``service.request`` span (the tracer
is per-request; the metrics registry is process-wide) and lands in
``renuver_http_requests_total{route,code}`` and
``renuver_http_request_seconds{route}``.

Graceful drain (modeled on the supervised runtime's shutdown path):
:meth:`ImputationHTTPServer.drain` stops the accept loop, waits for
in-flight handler threads, and leaves settled state behind — the CLI
``serve`` subcommand maps SIGTERM/SIGINT onto it and exits 0.
"""

from __future__ import annotations

import json
import threading
from dataclasses import fields as dataclass_fields
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from time import perf_counter
from typing import Any

from repro.core.report import ImputationReport
from repro.dataset.csv_io import read_csv_text, to_csv_text
from repro.dataset.missing import is_missing
from repro.discovery.config import DiscoveryConfig
from repro.exceptions import ReproError, ServiceError
from repro.rfd.parser import parse_rfd
from repro.service.artifacts import ArtifactStore
from repro.service.engine import PreparedEngine, ServiceConfig, session_rows
from repro.service.sessions import SessionManager
from repro.telemetry import Telemetry, prometheus_text
from repro.telemetry.logs import get_logger

logger = get_logger("service.http")

#: RenuverConfig fields a request may override per call.  Everything
#: else (budgets, workers, journals) is owned by the operator.
_CONFIG_OVERRIDES = frozenset(
    {"engine", "verify", "fallback", "max_candidates", "cluster_order"}
)

_DISCOVERY_ALIASES = {"limit": "threshold_limit", "max_lhs": "max_lhs_size"}
_DISCOVERY_FIELDS = frozenset(
    f.name for f in dataclass_fields(DiscoveryConfig)
)


class _HTTPError(Exception):
    """An error with a status code; rendered as a JSON body."""

    def __init__(self, status: int, message: str, **extra: Any) -> None:
        super().__init__(message)
        self.status = status
        self.payload = {"error": message, **extra}


class ImputationHTTPServer(ThreadingHTTPServer):
    """The service's threading HTTP server (one engine, many requests)."""

    #: Non-daemon handler threads: ``server_close`` joins them, which is
    #: exactly the drain semantics the SIGTERM path needs.
    daemon_threads = False
    block_on_close = True

    def __init__(
        self,
        address: tuple[str, int],
        *,
        engine: PreparedEngine,
        telemetry: Telemetry,
    ) -> None:
        self.engine = engine
        self.telemetry = telemetry
        self.sessions = SessionManager(engine.config.max_sessions)
        self.admission = threading.Semaphore(engine.config.max_inflight)
        self.draining = threading.Event()
        try:
            super().__init__(address, _Handler)
        except OSError as exc:
            raise ServiceError(
                f"cannot bind {address[0]}:{address[1]}: {exc}"
            ) from exc

    @property
    def port(self) -> int:
        """The bound port (useful with ``--port 0``)."""
        return self.server_address[1]

    def drain(self) -> None:
        """Stop accepting, finish in-flight requests, release the socket.

        Idempotent; safe to call from a signal-driven thread while
        ``serve_forever`` runs in another.
        """
        if self.draining.is_set():
            return
        self.draining.set()
        logger.info("draining: refusing new work, finishing in-flight")
        self.shutdown()       # stop the accept loop
        self.server_close()   # join handler threads (block_on_close)
        logger.info("drain complete")


def build_server(
    host: str = "127.0.0.1",
    port: int = 8080,
    *,
    config: ServiceConfig | None = None,
    artifact_dir: str | None = None,
    telemetry: Telemetry | None = None,
) -> ImputationHTTPServer:
    """Assemble a ready-to-serve engine + HTTP server.

    The server always runs with a live process-wide metrics registry
    (``/metrics`` must have something to expose); pass ``telemetry`` to
    share one.  ``artifact_dir`` enables the fingerprint-keyed artifact
    cache that lets warm requests skip discovery.
    """
    telemetry = telemetry if telemetry is not None else Telemetry()
    store = (
        ArtifactStore(artifact_dir, telemetry=telemetry)
        if artifact_dir
        else None
    )
    engine = PreparedEngine(config, store=store, telemetry=telemetry)
    return ImputationHTTPServer(
        (host, port), engine=engine, telemetry=telemetry
    )


class _Handler(BaseHTTPRequestHandler):
    """Routes requests; all real work happens on the shared engine."""

    protocol_version = "HTTP/1.1"
    server: ImputationHTTPServer  # narrowed for type checkers

    # -- entry points ----------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("DELETE")

    def log_message(self, format: str, *args: Any) -> None:
        """Route the stdlib access log into the repro logger tree."""
        logger.debug("%s %s", self.address_string(), format % args)

    # -- dispatch --------------------------------------------------------
    def _dispatch(self, method: str) -> None:
        route, handler, needs_admission = self._route(method)
        started = perf_counter()
        status = 500
        telemetry = self.server.engine.request_telemetry()
        try:
            if handler is None:
                raise _HTTPError(404, f"no route {method} {self.path}")
            if self.server.draining.is_set():
                raise _HTTPError(503, "server is draining")
            if needs_admission and not self.server.admission.acquire(
                blocking=False
            ):
                raise _HTTPError(
                    429,
                    "too many in-flight requests "
                    f"(max_inflight="
                    f"{self.server.engine.config.max_inflight})",
                )
            try:
                with telemetry.tracer.span(
                    "service.request", route=route, method=method
                ) as span:
                    status, payload, content_type = handler(telemetry)
                    span.set_attribute("status", status)
            finally:
                if needs_admission:
                    self.server.admission.release()
            self._respond(status, payload, content_type)
        except _HTTPError as exc:
            status = exc.status
            headers = (
                {"Retry-After": "1"} if exc.status == 429 else None
            )
            self._respond(
                exc.status,
                json.dumps(exc.payload).encode("utf-8"),
                "application/json",
                headers,
            )
        except ReproError as exc:
            # Client-data failures (bad CSV, bad RFD text, bad config)
            # are the request's fault, not the server's.
            status = 400
            self._respond(400, json.dumps({
                "error": str(exc), "type": type(exc).__name__,
            }).encode("utf-8"), "application/json")
        except BrokenPipeError:  # pragma: no cover - client went away
            status = 499
        except Exception as exc:  # noqa: BLE001 - keep the server alive
            status = 500
            logger.exception("unhandled error on %s %s", method, route)
            self._respond(500, json.dumps({
                "error": f"internal error: {type(exc).__name__}",
            }).encode("utf-8"), "application/json")
        finally:
            self._observe(route, status, perf_counter() - started)

    def _route(self, method: str):
        """(route template, bound handler, needs admission)."""
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/healthz" and method == "GET":
            return "/healthz", self._handle_healthz, False
        if path == "/metrics" and method == "GET":
            return "/metrics", self._handle_metrics, False
        if path == "/v1/impute" and method == "POST":
            return "/v1/impute", self._handle_impute, True
        if path == "/v1/sessions" and method == "POST":
            return "/v1/sessions", self._handle_session_create, True
        parts = path.split("/")
        if len(parts) >= 4 and parts[1] == "v1" and parts[2] == "sessions":
            session_id = parts[3]
            if len(parts) == 4 and method == "GET":
                return (
                    "/v1/sessions/{id}",
                    lambda t: self._handle_session_get(t, session_id),
                    False,
                )
            if len(parts) == 4 and method == "DELETE":
                return (
                    "/v1/sessions/{id}",
                    lambda t: self._handle_session_delete(t, session_id),
                    False,
                )
            if len(parts) == 5 and parts[4] == "tuples" and method == "POST":
                return (
                    "/v1/sessions/{id}/tuples",
                    lambda t: self._handle_session_tuples(t, session_id),
                    True,
                )
            if len(parts) == 5 and parts[4] == "impute" and method == "POST":
                return (
                    "/v1/sessions/{id}/impute",
                    lambda t: self._handle_session_impute(t, session_id),
                    True,
                )
        return self.path, None, False

    # -- handlers --------------------------------------------------------
    def _handle_healthz(self, telemetry: Telemetry):
        body = json.dumps({
            "status": "ok",
            "sessions": len(self.server.sessions),
            "max_inflight": self.server.engine.config.max_inflight,
            "artifact_cache": self.server.engine.store is not None,
        }).encode("utf-8")
        return 200, body, "application/json"

    def _handle_metrics(self, telemetry: Telemetry):
        text = prometheus_text(self.server.telemetry.metrics)
        return 200, text.encode("utf-8"), (
            "text/plain; version=0.0.4; charset=utf-8"
        )

    def _handle_impute(self, telemetry: Telemetry):
        body = self._read_json()
        relation = self._relation_from(body)
        result, source = self.server.engine.impute_once(
            relation,
            self._rfds_from(body),
            discovery=self._discovery_from(body),
            overrides=self._overrides_from(body),
            budget_seconds=self._budget_from(body),
            telemetry=telemetry,
        )
        payload = {
            "csv": to_csv_text(result.relation),
            "report": _report_payload(result.report),
            "rfd_source": source,
        }
        return 200, json.dumps(payload).encode("utf-8"), "application/json"

    def _handle_session_create(self, telemetry: Telemetry):
        body = self._read_json()
        relation = self._relation_from(body)
        incremental = body.get("incremental_discovery", True)
        if not isinstance(incremental, bool):
            raise _HTTPError(400, "'incremental_discovery' must be a bool")
        imputation, discovery, source = self.server.engine.open_session(
            relation,
            self._rfds_from(body),
            discovery=self._discovery_from(body),
            overrides=self._overrides_from(body),
            budget_seconds=self._budget_from(body),
            incremental_discovery=incremental,
            telemetry=telemetry,
        )
        session = self.server.sessions.create(
            imputation, discovery, rfd_source=source
        )
        if session is None:
            raise _HTTPError(
                429,
                f"session registry is full "
                f"(max_sessions="
                f"{self.server.engine.config.max_sessions}); "
                f"DELETE a session you no longer need",
            )
        self._session_gauge()
        return 201, json.dumps(session.snapshot()).encode("utf-8"), (
            "application/json"
        )

    def _handle_session_get(self, telemetry: Telemetry, session_id: str):
        session = self._session(session_id)
        return 200, json.dumps(session.snapshot()).encode("utf-8"), (
            "application/json"
        )

    def _handle_session_delete(self, telemetry: Telemetry, session_id: str):
        if not self.server.sessions.delete(session_id):
            raise _HTTPError(404, f"no session {session_id!r}")
        self._session_gauge()
        return 200, json.dumps({"deleted": session_id}).encode("utf-8"), (
            "application/json"
        )

    def _handle_session_tuples(self, telemetry: Telemetry, session_id: str):
        session = self._session(session_id)
        body = self._read_json()
        if "rows" not in body:
            raise _HTTPError(400, "body needs a 'rows' list")
        outcome = session.append(session_rows(body["rows"]))
        return 200, json.dumps(outcome).encode("utf-8"), "application/json"

    def _handle_session_impute(self, telemetry: Telemetry, session_id: str):
        session = self._session(session_id)
        result = session.impute()
        payload = {
            "report": _report_payload(result.report),
            "outcomes": [_outcome_payload(o) for o in result.report],
            "csv": to_csv_text(result.relation),
        }
        return 200, json.dumps(payload).encode("utf-8"), "application/json"

    # -- request parsing -------------------------------------------------
    def _read_json(self) -> dict[str, Any]:
        limit = self.server.engine.config.max_body_bytes
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            raise _HTTPError(400, "bad Content-Length") from None
        if length > limit:
            raise _HTTPError(
                413, f"body of {length} bytes exceeds {limit}"
            )
        if length <= 0:
            return {}
        raw = self.rfile.read(length)
        try:
            body = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _HTTPError(400, f"body is not JSON: {exc}") from None
        if not isinstance(body, dict):
            raise _HTTPError(400, "body must be a JSON object")
        return body

    def _relation_from(self, body: dict[str, Any]):
        csv_text = body.get("csv")
        if not isinstance(csv_text, str) or not csv_text.strip():
            raise _HTTPError(400, "body needs a non-empty 'csv' string")
        return read_csv_text(csv_text, name=str(body.get("name", "request")))

    @staticmethod
    def _rfds_from(body: dict[str, Any]):
        texts = body.get("rfds")
        if texts is None:
            return None
        if not isinstance(texts, list) or not all(
            isinstance(text, str) for text in texts
        ):
            raise _HTTPError(400, "'rfds' must be a list of RFD strings")
        if not texts:
            raise _HTTPError(400, "'rfds' must not be empty when given")
        return [parse_rfd(text) for text in texts]

    @staticmethod
    def _discovery_from(body: dict[str, Any]) -> DiscoveryConfig | None:
        spec = body.get("discovery")
        if spec is None:
            return None
        if not isinstance(spec, dict):
            raise _HTTPError(400, "'discovery' must be an object")
        normalized: dict[str, Any] = {}
        for key, value in spec.items():
            name = _DISCOVERY_ALIASES.get(key, key)
            if name not in _DISCOVERY_FIELDS:
                raise _HTTPError(
                    400, f"unknown discovery option {key!r}"
                )
            normalized[name] = value
        try:
            return DiscoveryConfig(**normalized)
        except TypeError as exc:
            raise _HTTPError(400, f"bad discovery options: {exc}") from None

    @staticmethod
    def _overrides_from(body: dict[str, Any]) -> dict[str, Any] | None:
        spec = body.get("config")
        if spec is None:
            return None
        if not isinstance(spec, dict):
            raise _HTTPError(400, "'config' must be an object")
        unknown = set(spec) - _CONFIG_OVERRIDES
        if unknown:
            raise _HTTPError(
                400,
                f"unknown config option(s) {sorted(unknown)}; "
                f"allowed: {sorted(_CONFIG_OVERRIDES)}",
            )
        return dict(spec)

    @staticmethod
    def _budget_from(body: dict[str, Any]) -> float | None:
        budget = body.get("budget_seconds")
        if budget is None:
            return None
        if not isinstance(budget, (int, float)) or budget <= 0:
            raise _HTTPError(
                400, "'budget_seconds' must be a positive number"
            )
        return float(budget)

    def _session(self, session_id: str):
        session = self.server.sessions.get(session_id)
        if session is None:
            raise _HTTPError(404, f"no session {session_id!r}")
        return session

    # -- response plumbing -----------------------------------------------
    def _respond(
        self,
        status: int,
        body: bytes,
        content_type: str,
        headers: dict[str, str] | None = None,
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        # One request per connection keeps the drain's thread-join
        # bounded: no idle keep-alive thread can stall shutdown.
        self.send_header("Connection", "close")
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)
        self.close_connection = True

    def _observe(self, route: str, status: int, seconds: float) -> None:
        metrics = self.server.telemetry.metrics
        metrics.counter(
            "renuver_http_requests_total",
            "HTTP requests served, by route template and status code.",
            route=route, code=str(status),
        ).inc()
        metrics.histogram(
            "renuver_http_request_seconds",
            "HTTP request latency by route template.",
            route=route,
        ).observe(seconds)

    def _session_gauge(self) -> None:
        self.server.telemetry.metrics.gauge(
            "renuver_http_sessions",
            "Live warm-start sessions.",
        ).set(len(self.server.sessions))


# ----------------------------------------------------------------------
# Payload rendering
# ----------------------------------------------------------------------
def _report_payload(report: ImputationReport) -> dict[str, Any]:
    return {
        "missing_cells": report.missing_count,
        "imputed_cells": report.imputed_count,
        "degraded_cells": report.degraded_count,
        "unimputed_cells": report.unimputed_count,
        "fill_rate": report.fill_rate,
        "status_counts": report.status_counts(),
        "elapsed_seconds": report.elapsed_seconds,
        "degradations": len(report.degradations),
        "budget_exhausted": any(
            event.scope == "run" for event in report.budget_events
        ),
        "replayed_cells": report.replayed_count,
    }


def _outcome_payload(outcome: Any) -> dict[str, Any]:
    return {
        "row": outcome.row,
        "attribute": outcome.attribute,
        "status": outcome.status.value,
        "value": None if is_missing(outcome.value) else outcome.value,
        "source_row": outcome.source_row,
        "rfd": str(outcome.rfd) if outcome.rfd is not None else None,
        "distance": outcome.distance,
    }

