"""Textual (de)serialization of RFDs.

Grammar (whitespace-insensitive)::

    rfd        := lhs "->" constraint
    lhs        := constraint ("," constraint)*
    constraint := NAME "(" "<=" NUMBER ")"

Example: ``Name(<=8), Phone(<=0) -> City(<=9)`` — the notation used in the
paper's figures.  :func:`format_rfd`/:func:`parse_rfd` round-trip, and
:func:`load_rfds`/:func:`save_rfds` handle one-RFD-per-line files with
``#`` comments.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Iterable

from repro.exceptions import RFDParseError
from repro.rfd.constraint import Constraint
from repro.rfd.rfd import RFD

_CONSTRAINT_RE = re.compile(
    r"^\s*(?P<name>[^(),]+?)\s*\(\s*<=\s*(?P<threshold>[0-9]+(?:\.[0-9]+)?)"
    r"\s*\)\s*$"
)


def parse_constraint(text: str) -> Constraint:
    """Parse one ``Name(<=4)`` constraint."""
    match = _CONSTRAINT_RE.match(text)
    if not match:
        raise RFDParseError(
            f"cannot parse constraint {text!r}; expected 'Attr(<=threshold)'"
        )
    return Constraint(
        match.group("name").strip(), float(match.group("threshold"))
    )


def parse_rfd(text: str) -> RFD:
    """Parse one textual RFD like ``Name(<=4), City(<=2) -> Phone(<=1)``."""
    if "->" not in text:
        raise RFDParseError(f"missing '->' in RFD {text!r}")
    lhs_text, _, rhs_text = text.partition("->")
    rhs_text = rhs_text.strip()
    if "->" in rhs_text:
        raise RFDParseError(f"multiple '->' in RFD {text!r}")
    lhs_parts = _split_constraints(lhs_text)
    if not lhs_parts:
        raise RFDParseError(f"empty LHS in RFD {text!r}")
    rhs_parts = _split_constraints(rhs_text)
    if len(rhs_parts) != 1:
        raise RFDParseError(
            f"RHS of {text!r} must contain exactly one constraint"
        )
    lhs = tuple(parse_constraint(part) for part in lhs_parts)
    rhs = parse_constraint(rhs_parts[0])
    return RFD(lhs, rhs)


def format_rfd(rfd: RFD) -> str:
    """Render an RFD in the paper's notation (inverse of
    :func:`parse_rfd`)."""
    return str(rfd)


def load_rfds(path: str | Path) -> list[RFD]:
    """Load RFDs from a text file: one per line, ``#`` starts a comment."""
    path = Path(path)
    rfds: list[RFD] = []
    with path.open("r", encoding="utf-8") as handle:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            try:
                rfds.append(parse_rfd(line))
            except RFDParseError as exc:
                raise RFDParseError(
                    f"{path}:{line_number}: {exc}"
                ) from exc
    return rfds


def save_rfds(rfds: Iterable[RFD], path: str | Path) -> None:
    """Save RFDs to a text file, one per line."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        for rfd in rfds:
            handle.write(format_rfd(rfd))
            handle.write("\n")


def _split_constraints(text: str) -> list[str]:
    """Split ``A(<=1), B(<=2)`` on commas outside parentheses."""
    parts: list[str] = []
    depth = 0
    current: list[str] = []
    for char in text:
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
            if depth < 0:
                raise RFDParseError(f"unbalanced parentheses in {text!r}")
        if char == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(char)
    if depth != 0:
        raise RFDParseError(f"unbalanced parentheses in {text!r}")
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return [part for part in (p.strip() for p in parts) if part]
