"""Per-attribute similarity constraints of an RFDc.

Definition 3.2: each attribute of an RFDc carries a constraint made of a
distance function, an operator and a threshold.  Following the paper's
restriction (Section 3), we fix the operator to ``<=`` over a distance
value; the distance function itself is bound per attribute by the
:class:`~repro.distance.pattern.PatternCalculator`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dataset.missing import MissingType, is_missing
from repro.exceptions import RFDValidationError


@dataclass(frozen=True, order=True)
class Constraint:
    """``attribute(<= threshold)``: a distance bound on one attribute."""

    attribute: str
    threshold: float

    def __post_init__(self) -> None:
        if not self.attribute:
            raise RFDValidationError("constraint attribute must be non-empty")
        try:
            threshold = float(self.threshold)
        except (TypeError, ValueError):
            raise RFDValidationError(
                f"constraint threshold {self.threshold!r} is not numeric"
            ) from None
        if threshold < 0:
            raise RFDValidationError(
                f"constraint threshold must be >= 0, got {threshold}"
            )
        object.__setattr__(self, "threshold", threshold)

    def is_satisfied_by(self, distance: float | MissingType) -> bool:
        """Whether a pair distance satisfies this constraint.

        A missing distance (one side of the pair has no value) never
        satisfies a constraint — the convention the paper uses both for
        candidate generation and verification.
        """
        if is_missing(distance):
            return False
        return float(distance) <= self.threshold

    def __str__(self) -> str:
        threshold = self.threshold
        rendered = (
            f"{int(threshold)}" if float(threshold).is_integer()
            else f"{threshold}"
        )
        return f"{self.attribute}(<={rendered})"
