"""The RFDc object: ``X_Phi1 -> A_phi2``.

Per the paper's simplification (Section 3), every RFD here has a single
attribute on the RHS, all constraints use ``<=`` over a distance value, and
the LHS is a non-empty set of per-attribute constraints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.distance.pattern import DistancePattern
from repro.exceptions import RFDValidationError
from repro.rfd.constraint import Constraint


@dataclass(frozen=True)
class RFD:
    """A relaxed functional dependency with distance constraints.

    ``lhs`` is stored sorted by attribute name so two RFDs with the same
    constraints compare and hash equal regardless of declaration order.
    """

    lhs: tuple[Constraint, ...]
    rhs: Constraint
    _lhs_index: dict[str, Constraint] = field(
        init=False, repr=False, compare=False, hash=False, default=None  # type: ignore[assignment]
    )

    def __post_init__(self) -> None:
        if not self.lhs:
            raise RFDValidationError("an RFD needs at least one LHS constraint")
        ordered = tuple(sorted(self.lhs, key=lambda c: c.attribute))
        names = [constraint.attribute for constraint in ordered]
        if len(set(names)) != len(names):
            raise RFDValidationError(f"duplicate LHS attributes in {names}")
        if self.rhs.attribute in names:
            raise RFDValidationError(
                f"RHS attribute {self.rhs.attribute!r} also appears on the LHS"
            )
        object.__setattr__(self, "lhs", ordered)
        object.__setattr__(
            self,
            "_lhs_index",
            {constraint.attribute: constraint for constraint in ordered},
        )

    # ------------------------------------------------------------------
    # Accessors mirroring the paper's LHS(.), RHS(.), RHS_th(.)
    # ------------------------------------------------------------------
    @property
    def lhs_attributes(self) -> tuple[str, ...]:
        """``LHS(phi)`` — the LHS attribute names, sorted."""
        return tuple(constraint.attribute for constraint in self.lhs)

    @property
    def rhs_attribute(self) -> str:
        """``RHS(phi)`` — the single RHS attribute name."""
        return self.rhs.attribute

    @property
    def rhs_threshold(self) -> float:
        """``RHS_th(phi)`` — the RHS distance threshold."""
        return self.rhs.threshold

    @property
    def attributes(self) -> tuple[str, ...]:
        """All attributes mentioned by the RFD (LHS then RHS)."""
        return self.lhs_attributes + (self.rhs_attribute,)

    def lhs_constraint(self, attribute: str) -> Constraint:
        """The LHS constraint on ``attribute``."""
        try:
            return self._lhs_index[attribute]
        except KeyError:
            raise RFDValidationError(
                f"{attribute!r} is not an LHS attribute of {self}"
            ) from None

    def has_lhs_attribute(self, attribute: str) -> bool:
        """Whether ``attribute`` appears on the LHS."""
        return attribute in self._lhs_index

    # ------------------------------------------------------------------
    # Satisfaction over distance patterns
    # ------------------------------------------------------------------
    def lhs_satisfied(self, pattern: DistancePattern) -> bool:
        """Whether a pair's distance pattern satisfies every LHS
        constraint (missing entries never satisfy)."""
        return all(
            constraint.is_satisfied_by(pattern[constraint.attribute])
            for constraint in self.lhs
        )

    def rhs_satisfied(self, pattern: DistancePattern) -> bool:
        """Whether the pattern satisfies the RHS constraint."""
        return self.rhs.is_satisfied_by(pattern[self.rhs_attribute])

    def rhs_comparable(self, pattern: DistancePattern) -> bool:
        """Whether the RHS distance is defined (neither side missing)."""
        return not pattern.is_missing_on(self.rhs_attribute)

    def violated_by(self, pattern: DistancePattern) -> bool:
        """Whether a pair violates this RFD.

        A violation needs a satisfied LHS and a *comparable but exceeded*
        RHS; pairs whose RHS distance is undefined (a missing value) are
        not counted as violations, matching how the paper treats
        incomplete tuples during verification.
        """
        if not self.lhs_satisfied(pattern):
            return False
        if not self.rhs_comparable(pattern):
            return False
        return not self.rhs_satisfied(pattern)

    def __str__(self) -> str:
        lhs = ", ".join(str(constraint) for constraint in self.lhs)
        return f"{lhs} -> {self.rhs}"


def make_rfd(
    lhs: Iterable[tuple[str, float]] | dict[str, float],
    rhs: tuple[str, float],
) -> RFD:
    """Convenience constructor from plain pairs.

    ``make_rfd({"Name": 4}, ("Phone", 1))`` builds
    ``Name(<=4) -> Phone(<=1)``.
    """
    if isinstance(lhs, dict):
        lhs_pairs = list(lhs.items())
    else:
        lhs_pairs = list(lhs)
    constraints = tuple(
        Constraint(attribute, threshold) for attribute, threshold in lhs_pairs
    )
    return RFD(constraints, Constraint(rhs[0], rhs[1]))
