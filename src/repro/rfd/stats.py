"""Per-RFD statistics over an instance.

The RFD survey the paper builds on (Caruccio et al., TKDE 2016) defines
*coverage measures* quantifying how much of an instance a dependency
actually constrains.  These numbers drive practical decisions the
RENUVER pipeline needs: which RFDs are near-keys (useless donors), which
carry real evidence, which are on the edge of violation.

For an RFD ``X -> A`` over ``n`` tuples:

* ``lhs_matches``   — pairs satisfying every LHS constraint,
* ``witnesses``     — LHS-matching pairs with a defined RHS distance,
* ``violations``    — witnesses exceeding the RHS threshold,
* ``support``       — witnesses / total pairs (the dependency's
  evidence density),
* ``confidence``    — (witnesses - violations) / witnesses (1.0 for a
  dependency that holds),
* ``rhs_margin``    — threshold minus the largest witnessed RHS
  distance: how much slack remains before the next violation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.distance.pattern import PatternCalculator
from repro.rfd.rfd import RFD


@dataclass(frozen=True)
class RFDStatistics:
    """Evidence counts of one RFD on one instance."""

    rfd: RFD
    total_pairs: int
    lhs_matches: int
    witnesses: int
    violations: int
    max_witnessed_rhs: float | None

    @property
    def support(self) -> float:
        """Witness pairs / total pairs, in [0, 1]."""
        if self.total_pairs == 0:
            return 0.0
        return self.witnesses / self.total_pairs

    @property
    def confidence(self) -> float:
        """Fraction of witnesses that satisfy the RHS (1.0 = holds)."""
        if self.witnesses == 0:
            return 1.0
        return (self.witnesses - self.violations) / self.witnesses

    @property
    def holds(self) -> bool:
        """Whether the instance satisfies the RFD (no violations)."""
        return self.violations == 0

    @property
    def is_key(self) -> bool:
        """Definition 3.4: no pair satisfies the LHS."""
        return self.lhs_matches == 0

    @property
    def rhs_margin(self) -> float | None:
        """Threshold slack: ``RHS_th - max witnessed distance``.

        ``None`` when no witness exists; negative when violated.
        """
        if self.max_witnessed_rhs is None:
            return None
        return self.rfd.rhs_threshold - self.max_witnessed_rhs

    def __str__(self) -> str:
        return (
            f"{self.rfd}: support={self.support:.4f} "
            f"confidence={self.confidence:.3f} "
            f"witnesses={self.witnesses} violations={self.violations}"
        )


def rfd_statistics(
    rfd: RFD, calculator: PatternCalculator
) -> RFDStatistics:
    """Compute :class:`RFDStatistics` by scanning all tuple pairs."""
    relation = calculator.relation
    n = relation.n_tuples
    attributes = rfd.attributes
    total = n * (n - 1) // 2
    lhs_matches = 0
    witnesses = 0
    violations = 0
    max_rhs: float | None = None
    for row_a in range(n):
        for row_b in range(row_a + 1, n):
            pattern = calculator.pattern(row_a, row_b, attributes)
            if not rfd.lhs_satisfied(pattern):
                continue
            lhs_matches += 1
            if not rfd.rhs_comparable(pattern):
                continue
            witnesses += 1
            distance = float(pattern[rfd.rhs_attribute])
            if max_rhs is None or distance > max_rhs:
                max_rhs = distance
            if not rfd.rhs.is_satisfied_by(distance):
                violations += 1
    return RFDStatistics(
        rfd=rfd,
        total_pairs=total,
        lhs_matches=lhs_matches,
        witnesses=witnesses,
        violations=violations,
        max_witnessed_rhs=max_rhs,
    )


def rank_by_support(
    rfds: Iterable[RFD],
    calculator: PatternCalculator,
    *,
    holding_only: bool = False,
) -> list[RFDStatistics]:
    """Statistics for a whole set, strongest evidence first.

    ``holding_only`` drops violated dependencies — useful to audit a
    discovered set against a (possibly imputed) instance.
    """
    stats = [rfd_statistics(rfd, calculator) for rfd in rfds]
    if holding_only:
        stats = [entry for entry in stats if entry.holds]
    stats.sort(key=lambda entry: (-entry.support, str(entry.rfd)))
    return stats
