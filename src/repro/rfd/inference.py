"""Logical reasoning over RFDc sets: implication and minimal covers.

Differential/relaxed dependencies admit sound inference rules analogous
to Armstrong's axioms (Song & Chen, TODS 2011 — the DD formalism the
paper's Derand baseline builds on).  Implemented here for the paper's
RFDc fragment (single-attribute RHS, ``<=`` thresholds):

* **Dominance** (reflexivity generalized): ``X(alpha) -> A(beta)``
  implies ``X'(alpha') -> A(beta')`` whenever ``X subseteq X'``, every
  shared LHS threshold only shrinks (``alpha' <= alpha``) and the RHS
  threshold only grows (``beta' >= beta``).
* **Transitivity** (threshold-aware): from
  ``X(alpha) -> B(beta)`` and ``B(beta_b) -> A(gamma)`` with
  ``beta <= beta_b`` infer ``X(alpha) -> A(gamma)``... *only* when the
  middle distance is a metric obeying the triangle inequality; distances
  compose as ``d_A(t1,t2) <= gamma'`` with ``gamma' = 2*gamma`` in
  general.  We implement the conservative variant that requires
  ``beta <= beta_b`` and widens the conclusion threshold to
  ``2 * gamma`` (sound for metric distances; see
  :func:`transitive_consequence`).

These rules give a practical *semantic subsumption* check used by
:func:`minimal_cover` to shrink discovered sets before imputation: every
removed dependency is implied by one kept, so RENUVER's behaviour is
preserved while its |Sigma| loops shrink.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.discovery.pruning import dominates
from repro.exceptions import RFDValidationError
from repro.rfd.constraint import Constraint
from repro.rfd.rfd import RFD


def implies(premise: RFD, conclusion: RFD) -> bool:
    """Whether ``premise`` logically implies ``conclusion`` (dominance).

    Sound for arbitrary distance functions: if every pair within the
    conclusion's (tighter) LHS thresholds is within the premise's, the
    premise's RHS bound applies and is at most the conclusion's.
    """
    return dominates(premise, conclusion)


def implied_by_set(rfds: Sequence[RFD], conclusion: RFD) -> bool:
    """Whether any single dependency in ``rfds`` implies ``conclusion``.

    (Single-premise implication; combining premises requires attribute
    union reasoning that the RFDc fragment does not need for covers.)
    """
    return any(
        implies(premise, conclusion)
        for premise in rfds
        if premise != conclusion
    )


def transitive_consequence(
    first: RFD, second: RFD, *, metric: bool = True
) -> RFD | None:
    """The transitive composition of two RFDs, or ``None``.

    From ``X(alpha) -> B(beta)`` and ``B(beta_b) -> A(gamma)``: for a
    pair within ``alpha`` on ``X``, the ``B`` distance is at most
    ``beta``; if ``beta <= beta_b`` the second dependency applies...
    almost.  Its LHS compares *tuple values on B*, and the pair at hand
    is (t1, t2) directly — so the composition is exact:
    ``X(alpha) -> A(gamma)``.

    When ``X`` contains ``A`` the result would be trivial; ``None`` is
    returned.  ``metric`` is kept for API compatibility with widened
    non-metric composition (currently the exact pairwise composition is
    returned in both cases because RFDc constraints compare the same
    tuple pair throughout — no triangle step is involved).
    """
    if first.rhs_attribute not in {
        constraint.attribute for constraint in second.lhs
    }:
        return None
    middle = second.lhs_constraint(first.rhs_attribute)
    if first.rhs_threshold > middle.threshold:
        return None  # the guaranteed B-distance is not tight enough
    if second.rhs_attribute in first.lhs_attributes:
        return None
    # Conclusion LHS: X plus the remaining LHS attributes of `second`.
    constraints: dict[str, Constraint] = {
        constraint.attribute: constraint for constraint in first.lhs
    }
    for constraint in second.lhs:
        if constraint.attribute == first.rhs_attribute:
            continue
        existing = constraints.get(constraint.attribute)
        if existing is None or constraint.threshold < existing.threshold:
            constraints[constraint.attribute] = constraint
    if second.rhs_attribute in constraints:
        return None
    try:
        return RFD(tuple(constraints.values()), second.rhs)
    except RFDValidationError:
        return None


def closure(
    rfds: Iterable[RFD], *, max_new: int = 1000
) -> list[RFD]:
    """Dependencies derivable by repeated transitive composition.

    Returns the input plus derived dependencies (dominance-pruned),
    stopping after ``max_new`` derivations as a safety valve.
    """
    known: list[RFD] = list(dict.fromkeys(rfds))
    seen = set(known)
    frontier = list(known)
    derived = 0
    while frontier and derived < max_new:
        next_frontier: list[RFD] = []
        for first in frontier:
            for second in known:
                consequence = transitive_consequence(first, second)
                if consequence is None or consequence in seen:
                    continue
                if implied_by_set(known, consequence):
                    continue
                seen.add(consequence)
                next_frontier.append(consequence)
                derived += 1
                if derived >= max_new:
                    break
            if derived >= max_new:
                break
        known.extend(next_frontier)
        frontier = next_frontier
    return known


def minimal_cover(rfds: Iterable[RFD]) -> list[RFD]:
    """A subset implying every input dependency (dominance-based).

    Deterministic: keeps the first of equivalent dependencies in input
    order.  Every removed RFD is implied by a kept one, so candidate
    generation and verification outcomes are unchanged.
    """
    ordered = list(dict.fromkeys(rfds))
    kept: list[RFD] = []
    for candidate in ordered:
        if implied_by_set(ordered, candidate):
            # Skip only if an eventual keeper implies it; the simple
            # two-pass scheme below resolves mutual implication.
            continue
        kept.append(candidate)
    # Second pass: re-add anything not implied by the kept set (handles
    # equivalence cycles where both directions were skipped).
    for candidate in ordered:
        if candidate in kept:
            continue
        if not implied_by_set(kept, candidate):
            kept.append(candidate)
    return kept
