"""RFD model: constraints, dependencies, parsing, keyness, violations."""

from repro.rfd.constraint import Constraint
from repro.rfd.inference import (
    closure,
    implied_by_set,
    implies,
    minimal_cover,
    transitive_consequence,
)
from repro.rfd.keyness import is_key_rfd, non_key_rfds, partition_key_rfds
from repro.rfd.parser import (
    format_rfd,
    load_rfds,
    parse_constraint,
    parse_rfd,
    save_rfds,
)
from repro.rfd.rfd import RFD, make_rfd
from repro.rfd.stats import RFDStatistics, rank_by_support, rfd_statistics
from repro.rfd.violations import (
    Violation,
    count_violations,
    find_violations,
    holds,
    holds_all,
    iter_violations,
)

__all__ = [
    "RFD",
    "RFDStatistics",
    "Constraint",
    "closure",
    "Violation",
    "count_violations",
    "find_violations",
    "format_rfd",
    "holds",
    "holds_all",
    "implied_by_set",
    "implies",
    "is_key_rfd",
    "iter_violations",
    "load_rfds",
    "make_rfd",
    "minimal_cover",
    "non_key_rfds",
    "parse_constraint",
    "parse_rfd",
    "partition_key_rfds",
    "rank_by_support",
    "rfd_statistics",
    "save_rfds",
    "transitive_consequence",
]
