"""RFD satisfaction and violation checking over whole instances.

``holds`` implements Definition 3.2 ("r |= phi"); ``find_violations``
enumerates offending tuple pairs, which the evaluation harness and tests
use to assert the semantic-consistency invariant of Definition 4.3:
an imputation result r' is consistent iff r' |= Sigma.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.distance.pattern import PatternCalculator
from repro.rfd.rfd import RFD


@dataclass(frozen=True)
class Violation:
    """One tuple pair violating one RFD."""

    rfd: RFD
    row_a: int
    row_b: int

    def __str__(self) -> str:
        return f"({self.row_a}, {self.row_b}) violates {self.rfd}"


def iter_violations(
    rfd: RFD, calculator: PatternCalculator
) -> Iterator[Violation]:
    """Yield every tuple pair violating ``rfd`` on the relation.

    Pairs with a missing value on any LHS attribute cannot satisfy the
    LHS, and pairs with a missing RHS distance are not comparable — both
    are skipped, matching the paper's treatment of incomplete tuples.
    """
    relation = calculator.relation
    attributes = rfd.attributes
    n = relation.n_tuples
    for row_a in range(n):
        for row_b in range(row_a + 1, n):
            pattern = calculator.pattern(row_a, row_b, attributes)
            if rfd.violated_by(pattern):
                yield Violation(rfd, row_a, row_b)


def find_violations(
    rfd: RFD,
    calculator: PatternCalculator,
    *,
    limit: int | None = None,
) -> list[Violation]:
    """Collect up to ``limit`` violations of ``rfd`` (all when ``None``)."""
    violations: list[Violation] = []
    for violation in iter_violations(rfd, calculator):
        violations.append(violation)
        if limit is not None and len(violations) >= limit:
            break
    return violations


def holds(rfd: RFD, calculator: PatternCalculator) -> bool:
    """Whether ``r |= rfd`` (no violating pair exists)."""
    for _ in iter_violations(rfd, calculator):
        return False
    return True


def holds_all(rfds: Iterable[RFD], calculator: PatternCalculator) -> bool:
    """Whether ``r |= Sigma`` — the semantic-consistency test of
    Definition 4.3."""
    return all(holds(rfd, calculator) for rfd in rfds)


def count_violations(rfd: RFD, calculator: PatternCalculator) -> int:
    """Number of violating tuple pairs for ``rfd``."""
    return sum(1 for _ in iter_violations(rfd, calculator))
