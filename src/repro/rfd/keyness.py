"""Key-RFD detection (Definition 3.4).

An RFDc ``X -> A`` is a *key* on an instance when no pair of distinct
tuples satisfies all its LHS constraints: it holds vacuously and can never
produce a candidate tuple, so RENUVER filters keys out during
pre-processing — and re-checks after every imputation, because a freshly
imputed value can turn a key RFD into a usable one (Example 5.1).

Scope of the pair check
-----------------------
Definition 3.4 quantifies over all tuple pairs; that is the default
(``scope="all"``).  The paper's worked example is not fully consistent
with it: on Table 2 the incomplete pair (t5, t6) satisfies phi_1's LHS
(Name distance 7 <= 8, equal phones, equal classes), yet Example 5.2
declares phi_1 a key.  Excluding pairs of incomplete tuples
(``scope="complete"``) recovers that verdict — but would also make
phi_3/phi_4/phi_5 keys, which Figure 1 keeps in Sigma'.  No scope makes
every example line up; we implement both and default to the literal
definition, which reproduces all of Figure 1's final imputations
(t7[Phone] from t2, t6[City] = "Hollywood", t4[Phone] from t3, and the
Example-5.1 reactivation imputing t5[Type]).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.dataset.missing import is_missing
from repro.distance.pattern import PatternCalculator
from repro.exceptions import RFDValidationError
from repro.rfd.rfd import RFD

_SCOPES = ("complete", "all")


def is_key_rfd(
    rfd: RFD,
    calculator: PatternCalculator,
    *,
    scope: str = "all",
) -> bool:
    """Whether ``rfd`` is a key RFD on the calculator's relation.

    Scans tuple pairs with an early exit on the first pair that satisfies
    the whole LHS; constraints are checked attribute-by-attribute so a
    far-apart first attribute skips the remaining comparisons.  With
    ``scope="complete"`` only pairs of complete tuples count (see the
    module docstring); the default ``"all"`` is the literal definition.
    """
    _check_scope(scope)
    relation = calculator.relation
    if scope == "complete":
        rows = [
            row for row in range(relation.n_tuples)
            if not _row_incomplete(relation, row)
        ]
    else:
        rows = list(range(relation.n_tuples))
    constraints = rfd.lhs
    for position, row_a in enumerate(rows):
        for row_b in rows[position + 1:]:
            if _pair_satisfies_lhs(calculator, row_a, row_b, constraints):
                return False
    return True


def pair_reactivates(
    rfd: RFD,
    calculator: PatternCalculator,
    target_row: int,
    *,
    scope: str = "all",
) -> bool:
    """Whether some pair involving ``target_row`` satisfies the LHS.

    The incremental check behind Algorithm 1 line 14: after imputing a
    cell of ``target_row``, only pairs involving that tuple can turn a
    key RFD non-key.
    """
    _check_scope(scope)
    relation = calculator.relation
    if scope == "complete" and _row_incomplete(relation, target_row):
        return False
    constraints = rfd.lhs
    for other in range(relation.n_tuples):
        if other == target_row:
            continue
        if scope == "complete" and _row_incomplete(relation, other):
            continue
        if _pair_satisfies_lhs(calculator, target_row, other, constraints):
            return True
    return False


def partition_key_rfds(
    rfds: Iterable[RFD],
    calculator: PatternCalculator,
    *,
    scope: str = "all",
) -> tuple[list[RFD], list[RFD]]:
    """Split RFDs into ``(key, non_key)`` lists — the paper's
    ``Sigma - Sigma'`` and ``Sigma'``."""
    keys: list[RFD] = []
    non_keys: list[RFD] = []
    for rfd in rfds:
        if is_key_rfd(rfd, calculator, scope=scope):
            keys.append(rfd)
        else:
            non_keys.append(rfd)
    return keys, non_keys


def non_key_rfds(
    rfds: Iterable[RFD],
    calculator: PatternCalculator,
    *,
    scope: str = "all",
) -> list[RFD]:
    """The usable subset ``Sigma'`` (Algorithm 1, line 1)."""
    return partition_key_rfds(rfds, calculator, scope=scope)[1]


def _pair_satisfies_lhs(
    calculator: PatternCalculator,
    row_a: int,
    row_b: int,
    constraints: Sequence,
) -> bool:
    for constraint in constraints:
        distance = calculator.distance(row_a, row_b, constraint.attribute)
        if not constraint.is_satisfied_by(distance):
            return False
    return True


def _row_incomplete(relation, row: int) -> bool:
    return any(
        is_missing(relation.value(row, name))
        for name in relation.attribute_names
    )


def _check_scope(scope: str) -> None:
    if scope not in _SCOPES:
        raise RFDValidationError(
            f"keyness scope must be one of {_SCOPES}, got {scope!r}"
        )
