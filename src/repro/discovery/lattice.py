"""Attribute-set lattice enumeration for discovery.

Candidate LHS sets are enumerated level by level (size 1, then 2, ...)
for each RHS attribute.  The search is bounded by
:attr:`~repro.discovery.config.DiscoveryConfig.max_lhs_size`; dominance
pruning afterwards removes LHS supersets that buy nothing.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Sequence


def iter_lhs_sets(
    attributes: Sequence[str],
    rhs: str,
    max_size: int,
) -> Iterator[tuple[str, ...]]:
    """Yield candidate LHS attribute sets for the given RHS attribute.

    Sets are produced in increasing size, each in sorted attribute
    order, never containing the RHS attribute.
    """
    pool = sorted(name for name in attributes if name != rhs)
    top = min(max_size, len(pool))
    for size in range(1, top + 1):
        yield from itertools.combinations(pool, size)


def count_lhs_sets(n_attributes: int, max_size: int) -> int:
    """Number of LHS sets per RHS attribute (sanity/cost estimation)."""
    pool = n_attributes - 1
    top = min(max_size, pool)
    return sum(_comb(pool, size) for size in range(1, top + 1))


def _comb(n: int, k: int) -> int:
    import math

    return math.comb(n, k)
