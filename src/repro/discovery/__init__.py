"""RFD discovery: distance-based lattice search with threshold inference."""

from repro.discovery.config import DiscoveryConfig
from repro.discovery.dime import DiscoveryResult, discover_rfds
from repro.discovery.incremental import (
    IncrementalDiscovery,
    MaintenanceReport,
)
from repro.discovery.lattice import count_lhs_sets, iter_lhs_sets
from repro.discovery.pattern_matrix import PairDistanceMatrix
from repro.discovery.pruning import dominates, remove_dominated

__all__ = [
    "DiscoveryConfig",
    "DiscoveryResult",
    "IncrementalDiscovery",
    "MaintenanceReport",
    "PairDistanceMatrix",
    "count_lhs_sets",
    "discover_rfds",
    "dominates",
    "iter_lhs_sets",
    "remove_dominated",
]
