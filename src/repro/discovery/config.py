"""Configuration of the RFD discovery step.

The paper extracts its RFD sets with the dominance-based discovery
algorithm of Caruccio et al. (TKDE 2021), varying a *threshold limit* for
attribute comparisons over {3, 6, 9, 12, 15} (Section 6.1).  Our
re-implementation exposes the same limit plus the knobs that keep a
lattice search tractable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.exceptions import DiscoveryError


@dataclass(frozen=True)
class DiscoveryConfig:
    """Parameters of :func:`repro.discovery.discover_rfds`.

    Attributes
    ----------
    threshold_limit:
        Maximum admissible RHS threshold — the paper's per-run limit
        (3/6/9/12/15).  Dependencies needing a looser RHS bound are not
        emitted.
    lhs_threshold_limit:
        Maximum LHS threshold; defaults to ``threshold_limit``.
    max_lhs_size:
        Largest LHS attribute-set size explored in the lattice.
    grid_size:
        Maximum number of candidate LHS thresholds per attribute
        (quantile-spaced over observed pair distances).
    include_keys:
        Also emit key RFDs (vacuously holding dependencies).  RENUVER
        filters them during pre-processing, but real discovery output
        contains them, so they default to on.
    max_pairs:
        Optional cap on the number of tuple pairs inspected; above it
        pairs are sampled (seeded), making discovery approximate.  Use
        for the large Physician instances.
    seed:
        Seed for pair sampling.
    min_support_pairs:
        Minimum number of LHS-matching pairs for a dependency to count
        as *supported* (non-key).  Dependencies with fewer matching
        pairs are treated as keys.
    max_per_rhs:
        Optional cap on the emitted non-key RFDs per RHS attribute,
        keeping the tightest (smallest RHS threshold, then smallest
        LHS) ones.  Pure efficiency knob for the Python benchmarks —
        the paper's Java implementation digests thousands of RFDs.
    attribute_limits:
        Optional per-attribute threshold caps overriding the global
        limits where tighter.  This realizes the paper's future-work
        item of "thresholds with an upper bound dependent on attribute
        domains and value distributions"; see
        :func:`repro.extensions.suggest_threshold_limits` for a
        data-driven way to obtain them.
    """

    threshold_limit: float = 3.0
    lhs_threshold_limit: float | None = None
    max_lhs_size: int = 2
    grid_size: int = 5
    include_keys: bool = True
    max_pairs: int | None = None
    seed: int = 0
    min_support_pairs: int = 1
    max_per_rhs: int | None = None
    attribute_limits: Mapping[str, float] | None = field(default=None)

    def __post_init__(self) -> None:
        if self.threshold_limit < 0:
            raise DiscoveryError("threshold_limit must be >= 0")
        if (
            self.lhs_threshold_limit is not None
            and self.lhs_threshold_limit < 0
        ):
            raise DiscoveryError("lhs_threshold_limit must be >= 0")
        if self.max_lhs_size < 1:
            raise DiscoveryError("max_lhs_size must be >= 1")
        if self.grid_size < 1:
            raise DiscoveryError("grid_size must be >= 1")
        if self.max_pairs is not None and self.max_pairs < 1:
            raise DiscoveryError("max_pairs must be >= 1 when given")
        if self.min_support_pairs < 1:
            raise DiscoveryError("min_support_pairs must be >= 1")
        if self.max_per_rhs is not None and self.max_per_rhs < 1:
            raise DiscoveryError("max_per_rhs must be >= 1 when given")
        if self.attribute_limits is not None:
            normalized = dict(self.attribute_limits)
            for attribute, limit in normalized.items():
                if limit < 0:
                    raise DiscoveryError(
                        f"attribute limit for {attribute!r} must be >= 0"
                    )
            object.__setattr__(self, "attribute_limits", normalized)

    @property
    def effective_lhs_limit(self) -> float:
        """The global LHS threshold cap."""
        if self.lhs_threshold_limit is None:
            return self.threshold_limit
        return self.lhs_threshold_limit

    def lhs_limit_for(self, attribute: str) -> float:
        """LHS threshold cap for one attribute (per-attribute aware)."""
        limit = self.effective_lhs_limit
        if self.attribute_limits and attribute in self.attribute_limits:
            return min(limit, self.attribute_limits[attribute])
        return limit

    def rhs_limit_for(self, attribute: str) -> float:
        """RHS threshold cap for one attribute (per-attribute aware)."""
        limit = self.threshold_limit
        if self.attribute_limits and attribute in self.attribute_limits:
            return min(limit, self.attribute_limits[attribute])
        return limit
