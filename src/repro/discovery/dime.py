"""Distance-based RFD discovery.

The paper sources its RFD sets from the dominance-based discovery
algorithm of Caruccio, Deufemia, Naumann and Polese (TKDE 2021), which is
not publicly available; this module provides a faithful-in-interface
substitute (see DESIGN.md, substitution 2).

Method, per RHS attribute ``A`` and candidate LHS set ``X``:

1. materialize all-pairs distances (:class:`PairDistanceMatrix`),
2. pick a small grid of candidate thresholds per LHS attribute
   (quantiles of the observed pair distances, capped at the LHS limit),
3. for every grid combination ``alpha``, collect the pairs whose LHS
   distances all fall within ``alpha`` and compute the minimal RHS
   threshold ``beta = max d_A`` over them,
4. emit ``X(alpha) -> A(beta)`` when ``beta`` is within the run's
   threshold limit; when *no* pair matches the LHS at its loosest grid,
   emit a key RFD (Definition 3.4) so downstream pre-processing sees
   realistic input,
5. prune dominated dependencies.

All emitted non-key RFDs *hold* on the instance by construction (exactly
when pairs are exhaustive; approximately under ``max_pairs`` sampling).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.dataset.relation import Relation
from repro.discovery.config import DiscoveryConfig
from repro.discovery.lattice import iter_lhs_sets
from repro.discovery.pattern_matrix import PairDistanceMatrix
from repro.discovery.pruning import remove_dominated
from repro.exceptions import DiscoveryError
from repro.rfd.constraint import Constraint
from repro.rfd.rfd import RFD
from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.telemetry.logs import get_logger
from repro.utils.timer import Timer

logger = get_logger("discovery.dime")


@dataclass
class DiscoveryResult:
    """Outcome of one discovery run."""

    rfds: list[RFD]
    key_rfds: list[RFD]
    config: DiscoveryConfig
    n_pairs: int
    exact: bool
    elapsed_seconds: float = 0.0
    per_rhs_counts: dict[str, int] = field(default_factory=dict)

    @property
    def all_rfds(self) -> list[RFD]:
        """Non-key and key RFDs together — the paper's ``Sigma``."""
        return list(self.rfds) + list(self.key_rfds)

    def __len__(self) -> int:
        return len(self.rfds) + len(self.key_rfds)

    def summary(self) -> str:
        """Human-readable digest of the run."""
        lines = [
            f"discovered {len(self.rfds)} RFDs "
            f"(+{len(self.key_rfds)} keys) over {self.n_pairs} pairs"
            f"{'' if self.exact else ' (sampled)'}",
            f"threshold limit {self.config.threshold_limit}, "
            f"max LHS size {self.config.max_lhs_size}",
        ]
        for rhs, count in sorted(self.per_rhs_counts.items()):
            lines.append(f"  RHS {rhs}: {count}")
        return "\n".join(lines)

    def to_json(self) -> dict:
        """A JSON-serializable payload round-tripping the result.

        RFDs render in the paper's textual notation (the same grammar
        :func:`repro.rfd.parser.parse_rfd` reads back), so persisted
        artifacts stay human-inspectable and versionable.
        """
        from dataclasses import asdict

        config = asdict(self.config)
        if config.get("attribute_limits") is not None:
            config["attribute_limits"] = dict(config["attribute_limits"])
        return {
            "rfds": [str(rfd) for rfd in self.rfds],
            "key_rfds": [str(rfd) for rfd in self.key_rfds],
            "config": config,
            "n_pairs": self.n_pairs,
            "exact": self.exact,
            "elapsed_seconds": self.elapsed_seconds,
            "per_rhs_counts": dict(self.per_rhs_counts),
        }

    @classmethod
    def from_json(cls, payload: dict) -> "DiscoveryResult":
        """Restore a result persisted with :meth:`to_json`.

        Textual RFDs are re-parsed with the standard parser; a malformed
        payload raises the parser's / config's own validation errors
        (the artifact cache treats any of them as a cache miss).
        """
        from repro.rfd.parser import parse_rfd

        return cls(
            rfds=[parse_rfd(text) for text in payload["rfds"]],
            key_rfds=[parse_rfd(text) for text in payload["key_rfds"]],
            config=DiscoveryConfig(**payload["config"]),
            n_pairs=int(payload["n_pairs"]),
            exact=bool(payload["exact"]),
            elapsed_seconds=float(payload.get("elapsed_seconds", 0.0)),
            per_rhs_counts=dict(payload.get("per_rhs_counts", {})),
        )


def discover_rfds(
    relation: Relation,
    config: DiscoveryConfig | None = None,
    *,
    telemetry: Telemetry | None = None,
    matrix: PairDistanceMatrix | None = None,
) -> DiscoveryResult:
    """Discover RFDc dependencies holding on ``relation``.

    See the module docstring for the method.  Returns non-key RFDs in
    :attr:`DiscoveryResult.rfds` and key RFDs separately.  A live
    ``telemetry`` wraps the run in a ``discover`` span with one child
    span per RHS attribute's lattice walk (docs/OBSERVABILITY.md).

    ``matrix`` reuses a pre-materialized :class:`PairDistanceMatrix`
    (the service's artifact cache persists them): it must cover
    ``relation`` with a ``string_limit`` at least the run's and, when
    ``config.max_pairs`` samples, the same pair sample — the caller is
    responsible for keying cached matrices by those parameters.
    """
    config = config or DiscoveryConfig()
    telemetry = telemetry or NULL_TELEMETRY
    timer = Timer()
    timer.start()

    with telemetry.tracer.span(
        "discover",
        relation=relation.name,
        n_tuples=relation.n_tuples,
        max_lhs_size=config.max_lhs_size,
    ) as span:
        string_limit = max(
            config.threshold_limit, config.effective_lhs_limit
        )
        if matrix is not None:
            if matrix.string_limit < string_limit:
                raise DiscoveryError(
                    f"supplied pattern matrix clamps strings at "
                    f"{matrix.string_limit}, run needs {string_limit}"
                )
            if matrix.relation.n_tuples != relation.n_tuples:
                raise DiscoveryError(
                    "supplied pattern matrix was built for a different "
                    "relation"
                )
            span.set_attribute("matrix_reused", True)
        else:
            matrix = PairDistanceMatrix(
                relation,
                string_limit=string_limit,
                max_pairs=config.max_pairs,
                seed=config.seed,
            )
        span.set_attribute("n_pairs", matrix.n_pairs)
        names = list(relation.attribute_names)
        grids = {
            name: _threshold_grid(
                matrix.distances(name),
                config.lhs_limit_for(name),
                config.grid_size,
            )
            for name in names
        }
        match_masks = {
            name: _grid_masks(matrix.distances(name), grids[name])
            for name in names
        }

        emitted: list[RFD] = []
        keys: list[RFD] = []
        for rhs in names:
            with telemetry.tracer.span("discover_rhs", rhs=rhs) as child:
                d_rhs = matrix.distances(rhs)
                rhs_defined = ~np.isnan(d_rhs)
                before = len(emitted)
                lhs_sets = 0
                for lhs_set in iter_lhs_sets(
                    names, rhs, config.max_lhs_size
                ):
                    lhs_sets += 1
                    _discover_for_lhs(
                        lhs_set,
                        rhs,
                        d_rhs,
                        rhs_defined,
                        grids,
                        match_masks,
                        config,
                        emitted,
                        keys,
                    )
                child.set_attribute("lhs_sets", lhs_sets)
                child.set_attribute("emitted", len(emitted) - before)
            telemetry.metrics.counter(
                "renuver_discovery_lhs_sets_total",
                "Candidate LHS sets walked by RFD discovery.",
            ).inc(lhs_sets)

        rfds = remove_dominated(emitted)
        keys = remove_dominated(keys)
        if config.max_per_rhs is not None:
            rfds = _cap_per_rhs(rfds, config.max_per_rhs)
        per_rhs: dict[str, int] = {}
        for rfd in rfds:
            per_rhs[rfd.rhs_attribute] = (
                per_rhs.get(rfd.rhs_attribute, 0) + 1
            )
        result = DiscoveryResult(
            rfds=rfds,
            key_rfds=keys if config.include_keys else [],
            config=config,
            n_pairs=matrix.n_pairs,
            exact=matrix.exact,
            per_rhs_counts=per_rhs,
        )
        result.elapsed_seconds = timer.stop()
        span.set_attribute("rfds", len(result.rfds))
        span.set_attribute("key_rfds", len(result.key_rfds))
    metrics = telemetry.metrics
    metrics.counter(
        "renuver_discovery_rfds_total",
        "RFDs emitted by discovery runs (after pruning).",
    ).inc(len(result.rfds))
    metrics.gauge(
        "renuver_discovery_elapsed_seconds",
        "Elapsed seconds of the most recent discovery run.",
    ).set(result.elapsed_seconds)
    logger.info(
        "discovered %d RFDs (+%d keys) over %d pairs in %.3fs",
        len(result.rfds), len(result.key_rfds),
        result.n_pairs, result.elapsed_seconds,
    )
    return result


# ----------------------------------------------------------------------
# Internals
# ----------------------------------------------------------------------
def _discover_for_lhs(
    lhs_set: tuple[str, ...],
    rhs: str,
    d_rhs: np.ndarray,
    rhs_defined: np.ndarray,
    grids: dict[str, np.ndarray],
    match_masks: dict[str, list[np.ndarray]],
    config: DiscoveryConfig,
    emitted: list[RFD],
    keys: list[RFD],
) -> None:
    grid_lists = [grids[name] for name in lhs_set]
    if any(grid.size == 0 for grid in grid_lists):
        # An empty grid means no pair comes within the LHS limit on that
        # attribute, so every threshold choice yields a key RFD
        # (Definition 3.4): emit one at the loosest admissible LHS.
        if config.include_keys:
            constraints = tuple(
                Constraint(
                    name,
                    float(grid_lists[position][-1])
                    if grid_lists[position].size
                    else float(config.lhs_limit_for(name)),
                )
                for position, name in enumerate(lhs_set)
            )
            keys.append(RFD(constraints, Constraint(rhs, 0.0)))
        return
    index_ranges = [range(grid.size) for grid in grid_lists]
    saw_supported = False
    for combo in itertools.product(*index_ranges):
        mask = match_masks[lhs_set[0]][combo[0]]
        for position in range(1, len(lhs_set)):
            mask = mask & match_masks[lhs_set[position]][combo[position]]
        if not mask.any():
            continue
        saw_supported = True
        witnesses = mask & rhs_defined
        support = int(witnesses.sum())
        if support < config.min_support_pairs:
            continue
        beta = float(np.max(d_rhs[witnesses]))
        if beta > config.rhs_limit_for(rhs):
            continue
        constraints = tuple(
            Constraint(name, float(grid_lists[position][combo[position]]))
            for position, name in enumerate(lhs_set)
        )
        emitted.append(RFD(constraints, Constraint(rhs, beta)))
    if not saw_supported and config.include_keys:
        # Even the loosest grid matches no pair: the dependency is a key
        # (Definition 3.4) for every grid choice; emit it at the loosest
        # LHS with the tightest RHS.
        constraints = tuple(
            Constraint(name, float(grid_lists[position][-1]))
            for position, name in enumerate(lhs_set)
        )
        keys.append(RFD(constraints, Constraint(rhs, 0.0)))


def _cap_per_rhs(rfds: list[RFD], cap: int) -> list[RFD]:
    """Keep at most ``cap`` RFDs per RHS attribute: tightest RHS
    threshold first, smaller LHS preferred, deterministic order."""
    by_rhs: dict[str, list[RFD]] = {}
    for rfd in rfds:
        by_rhs.setdefault(rfd.rhs_attribute, []).append(rfd)
    kept: list[RFD] = []
    for group in by_rhs.values():
        group.sort(
            key=lambda rfd: (
                rfd.rhs_threshold,
                len(rfd.lhs),
                sum(c.threshold for c in rfd.lhs),
                str(rfd),
            )
        )
        kept.extend(group[:cap])
    return kept


def _threshold_grid(
    distances: np.ndarray, limit: float, grid_size: int
) -> np.ndarray:
    """Candidate LHS thresholds: quantiles of observed distances <= limit.

    Always includes the minimum and maximum observed distance within the
    limit; rounds to 6 decimals to merge float noise.
    """
    defined = distances[~np.isnan(distances)]
    within = defined[defined <= limit]
    if within.size == 0:
        return np.empty(0, dtype=np.float64)
    unique = np.unique(np.round(within, 6))
    if unique.size <= grid_size:
        return unique
    positions = np.linspace(0, unique.size - 1, grid_size)
    indices = np.unique(positions.round().astype(int))
    return unique[indices]


def _grid_masks(
    distances: np.ndarray, grid: np.ndarray
) -> list[np.ndarray]:
    """Per grid value, the mask of pairs within it (NaN never matches)."""
    defined = ~np.isnan(distances)
    masks: list[np.ndarray] = []
    for threshold in grid:
        masks.append(defined & (distances <= threshold))
    return masks
