"""Incremental RFD maintenance under tuple insertions.

The paper's incremental future-work item (Section 7) presumes "the usage
of incremental RFDc discovery algorithms" (it cites the authors' own
incremental discovery line of work).  This module provides that
substrate: an :class:`IncrementalDiscovery` wraps a discovery result and
*maintains* it as tuples arrive, without recomputing all pairs.

Insertion-only maintenance is enough for the imputation session use
case, and it decomposes cleanly because every RFD property involved is
pairwise:

* a previously holding RFD can only be *broken* by a pair involving a
  new tuple — check new x all pairs only;
* a key RFD can only *stop being key* the same way;
* broken RFDs are **repaired** instead of dropped when possible: the
  minimal RHS threshold over the new witnessing pairs is computed and,
  if it stays within the configured limit, the dependency is re-emitted
  with the loosened bound (the natural incremental analogue of the
  batch algorithm's threshold inference).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

import math

from repro.dataset.missing import MISSING, is_missing
from repro.dataset.relation import Relation
from repro.discovery.config import DiscoveryConfig
from repro.discovery.dime import DiscoveryResult, discover_rfds
from repro.discovery.pruning import remove_dominated
from repro.distance.levenshtein import levenshtein_bounded
from repro.distance.pattern import PatternCalculator
from repro.exceptions import DiscoveryError
from repro.rfd.constraint import Constraint
from repro.rfd.rfd import RFD


@dataclass
class MaintenanceReport:
    """What one insertion batch did to the dependency set."""

    inserted_tuples: int = 0
    unchanged: int = 0
    loosened: list[tuple[RFD, RFD]] = field(default_factory=list)
    dropped: list[RFD] = field(default_factory=list)
    dekeyed: list[RFD] = field(default_factory=list)

    def summary(self) -> str:
        """One-line digest."""
        return (
            f"+{self.inserted_tuples} tuples: {self.unchanged} unchanged, "
            f"{len(self.loosened)} loosened, {len(self.dropped)} dropped, "
            f"{len(self.dekeyed)} keys became usable"
        )


class IncrementalDiscovery:
    """Maintain a discovered RFD set as tuples are appended.

    Parameters
    ----------
    relation:
        The initial instance (copied; later insertions go through
        :meth:`insert`).
    config:
        Discovery configuration; the initial set is computed with the
        batch algorithm.
    initial:
        Optional precomputed :class:`DiscoveryResult` for ``relation``
        under ``config`` — the service's warm-start path passes a
        cached result here so opening a session performs no discovery
        work.  The caller vouches that it matches; no re-check is done.
    """

    def __init__(
        self,
        relation: Relation,
        config: DiscoveryConfig | None = None,
        *,
        initial: DiscoveryResult | None = None,
    ) -> None:
        self.config = config or DiscoveryConfig()
        self._relation = relation.copy(name=f"{relation.name}@inc")
        if initial is None:
            initial = discover_rfds(self._relation, self.config)
        self._rfds: list[RFD] = list(initial.rfds)
        self._keys: list[RFD] = list(initial.key_rfds)
        self._calculator = PatternCalculator(self._relation)
        self._pair_cache: dict[tuple, Any] = {}
        self._string_caps: dict[str, int] = {}

    # ------------------------------------------------------------------
    @property
    def relation(self) -> Relation:
        """The maintained instance (live; mutate via :meth:`insert`)."""
        return self._relation

    @property
    def rfds(self) -> list[RFD]:
        """The currently holding non-key dependencies."""
        return list(self._rfds)

    @property
    def key_rfds(self) -> list[RFD]:
        """The currently vacuous (key) dependencies."""
        return list(self._keys)

    @property
    def all_rfds(self) -> list[RFD]:
        """Keys and non-keys together."""
        return self._rfds + self._keys

    def insert(self, rows: Sequence[Sequence[Any]]) -> MaintenanceReport:
        """Append tuples and repair the dependency set incrementally."""
        names = self._relation.attribute_names
        width = len(names)
        for offset, row in enumerate(rows):
            if len(row) != width:
                raise DiscoveryError(
                    f"inserted row {offset} has {len(row)} values, "
                    f"schema needs {width}"
                )
        start = self._relation.n_tuples
        _grow(self._relation, names, rows)
        new_rows = list(range(start, start + len(rows)))

        report = MaintenanceReport(inserted_tuples=len(rows))
        # One distance cache for the whole batch: maintained RFDs share
        # attributes, so the same (pair, attribute) distance is needed
        # by many of them — compute it once.
        self._pair_cache: dict[tuple, Any] = {}
        self._string_caps = self._attribute_caps()
        try:
            self._maintain_non_keys(new_rows, report)
            self._maintain_keys(new_rows, report)
        finally:
            self._pair_cache = {}
            self._string_caps = {}
        self._rfds = remove_dominated(self._rfds)
        return report

    # ------------------------------------------------------------------
    def _maintain_non_keys(
        self, new_rows: list[int], report: MaintenanceReport
    ) -> None:
        survivors: list[RFD] = []
        for rfd in self._rfds:
            worst = self._max_new_rhs_distance(rfd, new_rows)
            if worst is None or worst <= rfd.rhs_threshold:
                survivors.append(rfd)
                report.unchanged += 1
                continue
            if worst <= self.config.rhs_limit_for(rfd.rhs_attribute):
                loosened = RFD(
                    rfd.lhs, Constraint(rfd.rhs_attribute, worst)
                )
                survivors.append(loosened)
                report.loosened.append((rfd, loosened))
            else:
                report.dropped.append(rfd)
        self._rfds = survivors

    def _maintain_keys(
        self, new_rows: list[int], report: MaintenanceReport
    ) -> None:
        still_keys: list[RFD] = []
        for rfd in self._keys:
            if not self._new_pair_matches_lhs(rfd, new_rows):
                still_keys.append(rfd)
                continue
            # The key gained witnessing pairs; derive its RHS threshold
            # from them and keep it if admissible.
            worst = self._max_new_rhs_distance(rfd, new_rows)
            report.dekeyed.append(rfd)
            if worst is not None and worst <= self.config.rhs_limit_for(
                rfd.rhs_attribute
            ):
                self._rfds.append(
                    RFD(rfd.lhs, Constraint(rfd.rhs_attribute, worst))
                )
            elif worst is None:
                # LHS matches exist but no comparable RHS: holds with
                # its original (tight) threshold.
                self._rfds.append(rfd)
            else:
                report.dropped.append(rfd)
        self._keys = still_keys

    def _attribute_caps(self) -> dict[str, int]:
        """Per *string* attribute: the loosest threshold any maintained
        constraint can ask about.

        Maintenance only ever needs a distance up to the tightest bound
        that still matters — an LHS constraint's threshold, or the
        configured RHS limit when deciding loosening — so edit
        distances can run banded (``levenshtein_bounded``) instead of
        exact, exactly as the batch pattern matrix does.  A distance
        reported as ``cap + 1`` fails every constraint in play.
        """
        caps: dict[str, float] = {}
        for rfd in self._rfds + self._keys:
            for constraint in rfd.lhs:
                name = constraint.attribute
                caps[name] = max(
                    caps.get(name, 0.0), constraint.threshold
                )
            rhs = rfd.rhs_attribute
            caps[rhs] = max(
                caps.get(rhs, 0.0), self.config.rhs_limit_for(rhs)
            )
        return {
            name: int(math.ceil(cap))
            for name, cap in caps.items()
            if self._calculator.function_for(name).name
            == "edit_distance"
        }

    def _pair_distance(self, row_a: int, row_b: int, name: str) -> Any:
        """One attribute distance of one pair, cached for the batch.

        String distances are memoized by *value* pair (columns repeat
        values heavily, as the donor-scan kernels exploit) behind a
        length pre-filter, so the banded DP only runs once per distinct
        nearby pair of strings.
        """
        cap = self._string_caps.get(name)
        if cap is None:
            key = (row_a, row_b, name)
            cache = self._pair_cache
            try:
                return cache[key]
            except KeyError:
                value = self._calculator.distance(row_a, row_b, name)
                cache[key] = value
                return value
        column = self._relation._columns[name]  # noqa: SLF001
        value_a = column[row_a]
        value_b = column[row_b]
        if value_a is MISSING or value_b is MISSING:
            return MISSING
        a, b = str(value_a), str(value_b)
        key = (name, a, b) if a <= b else (name, b, a)
        cache = self._pair_cache
        try:
            return cache[key]
        except KeyError:
            if abs(len(a) - len(b)) > cap:
                value = float(cap + 1)
            else:
                value = float(levenshtein_bounded(a, b, cap))
            cache[key] = value
            return value

    def _max_new_rhs_distance(
        self, rfd: RFD, new_rows: list[int]
    ) -> float | None:
        """Largest RHS distance over new LHS-matching pairs (or None).

        LHS constraints are evaluated first, one attribute at a time
        with an early exit, so the (typically expensive, string-typed)
        RHS distance is only computed for the few pairs whose LHS
        actually matches.
        """
        worst: float | None = None
        n = self._relation.n_tuples
        new_set = set(new_rows)
        lhs = rfd.lhs
        rhs_attribute = rfd.rhs_attribute
        for new_row in new_rows:
            for other in range(n):
                if other == new_row:
                    continue
                if other in new_set and other > new_row:
                    continue  # new-new pairs once
                for constraint in lhs:
                    if not constraint.is_satisfied_by(self._pair_distance(
                        new_row, other, constraint.attribute
                    )):
                        break
                else:
                    distance = self._pair_distance(
                        new_row, other, rhs_attribute
                    )
                    if is_missing(distance):
                        continue
                    distance = float(distance)
                    if worst is None or distance > worst:
                        worst = distance
        return worst

    def _new_pair_matches_lhs(
        self, rfd: RFD, new_rows: list[int]
    ) -> bool:
        n = self._relation.n_tuples
        new_set = set(new_rows)
        for new_row in new_rows:
            for other in range(n):
                if other == new_row:
                    continue
                if other in new_set and other > new_row:
                    continue
                for constraint in rfd.lhs:
                    if not constraint.is_satisfied_by(self._pair_distance(
                        new_row, other, constraint.attribute
                    )):
                        break
                else:
                    return True
        return False


def _grow(
    relation: Relation,
    names: tuple[str, ...],
    rows: Sequence[Sequence[Any]],
) -> None:
    from repro.dataset.missing import MISSING

    start = relation.n_tuples
    for name in names:
        relation._columns[name].extend(  # noqa: SLF001 - same package
            [MISSING] * len(rows)
        )
    for offset, row in enumerate(rows):
        for name, value in zip(names, row):
            relation.set_value(start + offset, name, value)
