"""Dominance pruning of discovered RFD sets.

An RFD ``phi1`` *dominates* ``phi2`` (same RHS attribute) when it is at
least as useful everywhere:

* ``LHS(phi1) subseteq LHS(phi2)`` — it needs fewer attributes,
* every shared LHS threshold of ``phi1`` is >= the one in ``phi2`` —
  its LHS is easier to satisfy (matches at least the same pairs),
* ``RHS_th(phi1) <= RHS_th(phi2)`` — its conclusion is at least as tight.

A dominated RFD can never produce a candidate (or detect a violation)
that its dominator would not, so dropping it shrinks ``Sigma`` without
changing RENUVER's behaviour.  This mirrors the minimality notion of the
dominance-based discovery algorithm the paper relies on.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.rfd.rfd import RFD


def dominates(first: RFD, second: RFD) -> bool:
    """Whether ``first`` dominates ``second`` (see module docstring).

    Equal RFDs dominate each other; callers handle deduplication.
    """
    if first.rhs_attribute != second.rhs_attribute:
        return False
    if first.rhs_threshold > second.rhs_threshold:
        return False
    first_attrs = set(first.lhs_attributes)
    second_attrs = set(second.lhs_attributes)
    if not first_attrs <= second_attrs:
        return False
    return all(
        first.lhs_constraint(name).threshold
        >= second.lhs_constraint(name).threshold
        for name in first_attrs
    )


def remove_dominated(rfds: Iterable[RFD]) -> list[RFD]:
    """Deduplicate and drop every RFD dominated by another one.

    Quadratic in the set size per RHS attribute, which is fine for the
    set sizes discovery produces after per-level pruning.
    """
    by_rhs: dict[str, list[RFD]] = {}
    for rfd in dict.fromkeys(rfds):  # dedupe, keep order
        by_rhs.setdefault(rfd.rhs_attribute, []).append(rfd)
    kept: list[RFD] = []
    for group in by_rhs.values():
        for candidate in group:
            if _is_dominated(candidate, group):
                continue
            kept.append(candidate)
    return kept


def _is_dominated(candidate: RFD, group: Sequence[RFD]) -> bool:
    for other in group:
        if other is candidate:
            continue
        if dominates(other, candidate):
            # Symmetric dominance (equivalent RFDs): keep the one that
            # appears first in the group to stay deterministic.
            if dominates(candidate, other):
                if group.index(other) > group.index(candidate):
                    continue
            return True
    return False
