"""All-pairs distance matrices for discovery.

Discovery evaluates threshold candidates over *every* tuple pair, so the
pair distances are materialized once per attribute as numpy arrays
(``NaN`` marks pairs where either side is missing).  String distances use
the banded Levenshtein clamped at ``limit + 1``: discovery never needs to
distinguish distances beyond the threshold limit, and the band makes the
quadratic pair scan affordable.
"""

from __future__ import annotations

import math
from typing import Iterator

import numpy as np

from repro.dataset.attribute import AttributeType
from repro.dataset.missing import is_missing
from repro.dataset.relation import Relation
from repro.distance.levenshtein import levenshtein_bounded
from repro.exceptions import DiscoveryError
from repro.utils.rng import spawn_rng


class PairDistanceMatrix:
    """Distances of (sampled) tuple pairs, one numpy array per attribute.

    Parameters
    ----------
    relation:
        The instance to analyze.
    string_limit:
        Clamp for string distances: values above it are stored as
        ``string_limit + 1``.  Must be at least the largest threshold the
        caller will test.
    max_pairs / seed:
        Optional reservoir cap on the number of pairs; beyond it a seeded
        random subset is used and :attr:`exact` turns false.
    """

    def __init__(
        self,
        relation: Relation,
        *,
        string_limit: float = 15.0,
        max_pairs: int | None = None,
        seed: int = 0,
    ) -> None:
        if string_limit < 0:
            raise DiscoveryError("string_limit must be >= 0")
        self.relation = relation
        self.string_limit = float(string_limit)
        n = relation.n_tuples
        total_pairs = n * (n - 1) // 2
        pair_list = list(_iter_pairs(n))
        self.exact = True
        if max_pairs is not None and total_pairs > max_pairs:
            rng = spawn_rng(seed, "pair-sample", n, max_pairs)
            pair_list = rng.sample(pair_list, max_pairs)
            pair_list.sort()
            self.exact = False
        self.pairs: np.ndarray = (
            np.array(pair_list, dtype=np.int64)
            if pair_list
            else np.empty((0, 2), dtype=np.int64)
        )
        self._distances: dict[str, np.ndarray] = {}
        for attribute in relation.attributes:
            self._distances[attribute.name] = self._column_distances(
                attribute.name, attribute.type
            )

    @property
    def n_pairs(self) -> int:
        """Number of pairs represented (sampled or exhaustive)."""
        return int(self.pairs.shape[0])

    def distances(self, attribute: str) -> np.ndarray:
        """Pair distances on one attribute (``NaN`` where undefined)."""
        try:
            return self._distances[attribute]
        except KeyError:
            raise DiscoveryError(f"unknown attribute {attribute!r}") from None

    def defined_mask(self, attribute: str) -> np.ndarray:
        """Boolean mask of pairs with both values present."""
        return ~np.isnan(self._distances[attribute])

    # ------------------------------------------------------------------
    # Serialization (service artifact cache)
    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        """A JSON-serializable payload round-tripping the matrix.

        ``NaN`` distances (pairs with a missing side) render as ``None``
        so the payload is strict JSON.  :meth:`from_json` restores the
        matrix without recomputing any distance.
        """
        return {
            "string_limit": self.string_limit,
            "exact": self.exact,
            "n_tuples": self.relation.n_tuples,
            "attributes": list(self.relation.attribute_names),
            "pairs": self.pairs.tolist(),
            "distances": {
                name: [
                    None if math.isnan(value) else value
                    for value in array.tolist()
                ]
                for name, array in self._distances.items()
            },
        }

    @classmethod
    def from_json(
        cls, payload: dict, relation: Relation
    ) -> "PairDistanceMatrix":
        """Restore a matrix persisted with :meth:`to_json`.

        ``relation`` must be the instance the payload was computed from;
        schema mismatches raise :class:`~repro.exceptions.DiscoveryError`
        (the artifact cache keys payloads by relation fingerprint, so a
        mismatch means the caller mixed artifacts up).
        """
        if payload.get("n_tuples") != relation.n_tuples or list(
            payload.get("attributes", ())
        ) != list(relation.attribute_names):
            raise DiscoveryError(
                "pattern-matrix payload does not match the relation "
                f"{relation.name!r} (schema or tuple count differs)"
            )
        matrix = cls.__new__(cls)
        matrix.relation = relation
        matrix.string_limit = float(payload["string_limit"])
        matrix.exact = bool(payload["exact"])
        pairs = payload.get("pairs", [])
        matrix.pairs = (
            np.array(pairs, dtype=np.int64)
            if pairs
            else np.empty((0, 2), dtype=np.int64)
        )
        matrix._distances = {
            name: np.array(
                [math.nan if value is None else value for value in column],
                dtype=np.float64,
            )
            for name, column in payload["distances"].items()
        }
        for name, column in matrix._distances.items():
            if column.shape[0] != matrix.n_pairs:
                raise DiscoveryError(
                    f"pattern-matrix payload is inconsistent: attribute "
                    f"{name!r} has {column.shape[0]} distances for "
                    f"{matrix.n_pairs} pairs"
                )
        return matrix

    # ------------------------------------------------------------------
    def _column_distances(
        self, name: str, attr_type: AttributeType
    ) -> np.ndarray:
        column = self.relation.column(name)
        out = np.full(self.n_pairs, np.nan, dtype=np.float64)
        if attr_type.is_numeric:
            self._fill_numeric(column, out)
        elif attr_type is AttributeType.BOOLEAN:
            self._fill_boolean(column, out)
        else:
            self._fill_string(column, out)
        return out

    def _fill_numeric(self, column: tuple, out: np.ndarray) -> None:
        values = np.array(
            [math.nan if is_missing(v) else float(v) for v in column],
            dtype=np.float64,
        )
        left = values[self.pairs[:, 0]] if self.n_pairs else values[:0]
        right = values[self.pairs[:, 1]] if self.n_pairs else values[:0]
        np.abs(left - right, out=out)

    def _fill_boolean(self, column: tuple, out: np.ndarray) -> None:
        for index in range(self.n_pairs):
            a = column[self.pairs[index, 0]]
            b = column[self.pairs[index, 1]]
            if is_missing(a) or is_missing(b):
                continue
            out[index] = 0.0 if bool(a) == bool(b) else 1.0

    def _fill_string(self, column: tuple, out: np.ndarray) -> None:
        limit = int(math.ceil(self.string_limit))
        cache: dict[tuple[str, str], float] = {}
        for index in range(self.n_pairs):
            a = column[self.pairs[index, 0]]
            b = column[self.pairs[index, 1]]
            if is_missing(a) or is_missing(b):
                continue
            text_a, text_b = str(a), str(b)
            key = (text_a, text_b) if text_a <= text_b else (text_b, text_a)
            distance = cache.get(key)
            if distance is None:
                distance = float(levenshtein_bounded(text_a, text_b, limit))
                cache[key] = distance
            out[index] = distance


def _iter_pairs(n: int) -> Iterator[tuple[int, int]]:
    for row_a in range(n):
        for row_b in range(row_a + 1, n):
            yield (row_a, row_b)
