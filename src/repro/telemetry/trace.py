"""Zero-dependency span tracer for the imputation pipeline.

A :class:`Span` is one timed operation — an ``impute`` run, one cell's
imputation, one kernel call — with a name, attributes, point-in-time
events and monotonic start/end timestamps.  Spans nest: entering a span
while another is open records the parent, so a trace reconstructs the
phase -> cell -> kernel tree of a run.

The tracer shares the :class:`~repro.utils.timer.Timer` clock family
(:func:`time.perf_counter`): span durations and budget bookkeeping read
the same monotonic source, never the wall clock (see
``Timer.elapsed_ns``).  Wall-clock timestamps belong to the structured
logs, not to spans.

Disabled tracing must cost nothing measurable: :class:`NullTracer` (the
default everywhere) hands out one shared :data:`NULL_SPAN` whose every
method is a no-op, so instrumentation sites pay a single method call and
no allocation beyond the keyword dict.  ``benchmarks/bench_telemetry.py``
guards the aggregate cost at under 2% of a run.

Usage::

    tracer = Tracer()
    with tracer.span("impute", engine="vectorized"):
        with tracer.span("cell", row=3, attribute="City") as cell:
            cell.event("degradation", reason="kernel fault")

    for span in tracer.spans:         # completed spans, end order
        print(span.name, span.duration_seconds)
"""

from __future__ import annotations

import time
from typing import Any, Callable, Iterator

__all__ = ["Span", "Tracer", "NullTracer", "NULL_SPAN", "NULL_TRACER"]

_NS_PER_SECOND = 1_000_000_000


class Span:
    """One timed, attributed operation inside a trace.

    Spans are context managers: timing runs from ``__enter__`` to
    ``__exit__``; an exception escaping the block lands in
    :attr:`error` (and the span still closes).  Attributes are plain
    key/value pairs; events are timestamped markers attached to the
    span (budget trips, degradations, chaos faults).
    """

    __slots__ = (
        "name", "span_id", "parent_id", "attributes", "events",
        "error", "_tracer", "_start", "_end",
    )

    def __init__(
        self, tracer: "Tracer", name: str, span_id: int,
        attributes: dict[str, Any],
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id: int | None = None
        self.attributes = attributes
        self.events: list[dict[str, Any]] = []
        self.error: str | None = None
        self._tracer = tracer
        self._start: float | None = None
        self._end: float | None = None

    # -- context manager -------------------------------------------------
    def __enter__(self) -> "Span":
        self._tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc is not None and self.error is None:
            self.error = f"{type(exc).__name__}: {exc}"
        self._tracer._pop(self)

    # -- recording -------------------------------------------------------
    def set_attribute(self, key: str, value: Any) -> None:
        """Attach or overwrite one attribute."""
        self.attributes[key] = value

    def event(self, name: str, **attributes: Any) -> None:
        """Record a timestamped point event on this span."""
        offset = None
        if self._start is not None:
            offset = self._tracer._clock() - self._start
        self.events.append({
            "name": name,
            "offset_seconds": offset,
            "attributes": attributes,
        })

    # -- reading ---------------------------------------------------------
    @property
    def start_seconds(self) -> float | None:
        """Monotonic start timestamp (tracer clock), if entered."""
        return self._start

    @property
    def duration_seconds(self) -> float:
        """Elapsed seconds: final once closed, live while open, 0 before."""
        if self._start is None:
            return 0.0
        end = self._end if self._end is not None else self._tracer._clock()
        return end - self._start

    @property
    def duration_ns(self) -> int:
        """:attr:`duration_seconds` as integer nanoseconds."""
        return int(self.duration_seconds * _NS_PER_SECOND)

    @property
    def closed(self) -> bool:
        return self._end is not None

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready rendering (one trace line of the JSONL exporter)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_seconds": self._start,
            "duration_seconds": self.duration_seconds,
            "attributes": dict(self.attributes),
            "events": list(self.events),
            "error": self.error,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, id={self.span_id}, "
            f"parent={self.parent_id}, "
            f"duration={self.duration_seconds:.6f}s)"
        )


class Tracer:
    """Collects spans for one process-local trace.

    Not thread-safe by design: one tracer belongs to one run, like the
    run's :class:`~repro.utils.timer.Timer`.  ``clock`` replaces
    :func:`time.perf_counter` (tests inject deterministic clocks the
    same way the chaos harness does for budgets).
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] | None = None) -> None:
        self._clock = clock or time.perf_counter
        #: Completed spans, in close order (children close before parents).
        self.spans: list[Span] = []
        self._stack: list[Span] = []
        self._next_id = 1

    def span(self, name: str, **attributes: Any) -> Span:
        """A new span; use as ``with tracer.span("verify") as span:``."""
        span = Span(self, name, self._next_id, attributes)
        self._next_id += 1
        return span

    def event(self, name: str, **attributes: Any) -> None:
        """Record an event on the innermost open span (dropped if none)."""
        if self._stack:
            self._stack[-1].event(name, **attributes)

    @property
    def current(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def ordered_spans(self) -> list[Span]:
        """Completed spans in trace order (start time, then span id)."""
        return sorted(
            self.spans,
            key=lambda span: (span.start_seconds or 0.0, span.span_id),
        )

    def clear(self) -> None:
        """Drop all completed spans (open spans are unaffected)."""
        self.spans.clear()

    def __iter__(self) -> Iterator[Span]:
        return iter(self.spans)

    def __len__(self) -> int:
        return len(self.spans)

    # -- span lifecycle (called by Span) ---------------------------------
    def _push(self, span: Span) -> None:
        if self._stack:
            span.parent_id = self._stack[-1].span_id
        span._start = self._clock()
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        span._end = self._clock()
        # Closing out of order (an exception tore through several
        # levels) settles every inner span too, innermost first.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
            top._end = span._end
            self.spans.append(top)
        self.spans.append(span)


class _NullSpan:
    """Shared do-nothing span handed out by :class:`NullTracer`."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def set_attribute(self, key: str, value: Any) -> None:
        return None

    def event(self, name: str, **attributes: Any) -> None:
        return None

    @property
    def duration_seconds(self) -> float:
        return 0.0

    @property
    def duration_ns(self) -> int:
        return 0


NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracer: every span is the shared no-op :data:`NULL_SPAN`.

    Instrumentation sites never need to test for it — the API matches
    :class:`Tracer` — but hot paths may check :attr:`enabled` to skip
    building expensive attributes.
    """

    enabled = False
    spans: tuple = ()

    def span(self, name: str, **attributes: Any) -> _NullSpan:
        return NULL_SPAN

    def event(self, name: str, **attributes: Any) -> None:
        return None

    @property
    def current(self) -> None:
        return None

    def ordered_spans(self) -> list:
        return []

    def clear(self) -> None:
        return None

    def __iter__(self) -> Iterator:
        return iter(())

    def __len__(self) -> int:
        return 0


NULL_TRACER = NullTracer()
