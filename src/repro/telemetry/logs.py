"""Structured logging for the ``repro`` logger hierarchy.

Every module logs through ``repro.<subsystem>`` loggers obtained from
:func:`get_logger`; the library itself never configures handlers beyond
a :class:`logging.NullHandler` on the root ``repro`` logger (standard
library etiquette), so embedding applications stay in control.

The CLI (and tests) call :func:`configure_logging` to attach one
stream handler — plain single-line text by default, JSON Lines with
:class:`JsonLogFormatter` under ``--log-json``.  JSON records carry the
wall-clock timestamp, level, logger name, message, and any ``extra``
fields passed to the logging call; exception info is rendered into an
``exc_info`` string field.

Hot paths must guard expensive message building with
``logger.isEnabledFor(logging.DEBUG)`` — the donor-scan inner loops run
millions of times on the stress datasets.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import Any, TextIO

__all__ = [
    "get_logger",
    "configure_logging",
    "reset_logging",
    "JsonLogFormatter",
    "LOG_LEVELS",
]

ROOT_LOGGER_NAME = "repro"

#: CLI-facing level names, in increasing severity.
LOG_LEVELS: tuple[str, ...] = ("debug", "info", "warning", "error")

#: LogRecord attributes that are structure, not user-supplied extras.
_RESERVED = frozenset(
    logging.LogRecord(
        "x", logging.INFO, "x", 0, "x", None, None
    ).__dict__
) | {"message", "asctime", "taskName"}


def get_logger(name: str | None = None) -> logging.Logger:
    """The ``repro`` logger, or a ``repro.<name>`` child.

    ``get_logger("core.renuver")`` is the conventional call from module
    level: ``logger = get_logger(__name__.removeprefix("repro."))``.
    """
    if not name:
        return logging.getLogger(ROOT_LOGGER_NAME)
    if name.startswith(ROOT_LOGGER_NAME + ".") or name == ROOT_LOGGER_NAME:
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


class JsonLogFormatter(logging.Formatter):
    """One JSON object per record: timestamp, level, logger, message,
    user extras, and rendered exception info."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict[str, Any] = {
            "timestamp": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key not in _RESERVED and not key.startswith("_"):
                payload[key] = value
        if record.exc_info and record.exc_info[0] is not None:
            payload["exc_info"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True, default=str)


class _TextFormatter(logging.Formatter):
    """Terse single-line text: ``HH:MM:SS level logger: message``."""

    default_format = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"

    def __init__(self) -> None:
        super().__init__(self.default_format, datefmt="%H:%M:%S")
        self.converter = time.localtime


def configure_logging(
    level: str = "warning",
    *,
    json_format: bool = False,
    stream: TextIO | None = None,
) -> logging.Logger:
    """Attach one managed handler to the ``repro`` logger.

    Idempotent: a handler installed by a previous call is replaced, so
    repeated CLI invocations in one process (tests) do not stack
    handlers.  Returns the configured root ``repro`` logger.
    """
    if level not in LOG_LEVELS:
        raise ValueError(
            f"level must be one of {LOG_LEVELS}, got {level!r}"
        )
    logger = get_logger()
    reset_logging()
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(
        JsonLogFormatter() if json_format else _TextFormatter()
    )
    handler._repro_managed = True  # type: ignore[attr-defined]
    logger.addHandler(handler)
    logger.setLevel(getattr(logging, level.upper()))
    return logger


def reset_logging() -> None:
    """Remove handlers previously installed by :func:`configure_logging`."""
    logger = get_logger()
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_managed", False):
            logger.removeHandler(handler)
            handler.close()


# Library etiquette: silence "No handlers could be found" warnings for
# embedders that never configure logging.
get_logger().addHandler(logging.NullHandler())
