"""Metrics registry: counters, gauges and fixed-bucket histograms.

One :class:`MetricsRegistry` per run (or per process) absorbs every
quantitative signal of the pipeline — kernel calls, candidates
generated, per-cell latencies, degradations — under Prometheus-style
names and labels::

    registry = MetricsRegistry()
    registry.counter(
        "renuver_kernel_calls_total", engine="vectorized", op="cell_scan"
    ).inc()
    registry.histogram("renuver_cell_seconds").observe(0.0042)

Instruments are get-or-create: asking for the same (name, labels) pair
returns the same object, so hot paths can cache the handle and skip the
lookup.  Names and labels follow the Prometheus data model (metric and
label name charset, one type per metric name); the exposition renderer
lives in :mod:`repro.telemetry.export`.

:class:`NullMetrics` is the disabled twin: the same factory API handing
out shared no-op instruments, for the default telemetry-off path.
"""

from __future__ import annotations

import re
import threading
from typing import Any, Iterator

from repro.exceptions import TelemetryError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "DEFAULT_SECONDS_BUCKETS",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default latency buckets (seconds): sub-millisecond cells through the
#: paper's minutes-long stress runs.
DEFAULT_SECONDS_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 300.0,
)


class Counter:
    """Monotonically increasing value."""

    kind = "counter"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...]):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise TelemetryError(
                f"counter {self.name} cannot decrease (inc({amount}))"
            )
        self.value += amount


class Gauge:
    """Value that can go up and down."""

    kind = "gauge"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...]):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-boundary histogram (Prometheus classic histogram).

    ``buckets`` are inclusive upper bounds in strictly increasing
    order; the implicit ``+Inf`` bucket is always present.  Per-bucket
    counts are kept non-cumulative internally and cumulated at
    exposition time.
    """

    kind = "histogram"
    __slots__ = ("name", "labels", "buckets", "counts", "sum", "count")

    def __init__(
        self,
        name: str,
        labels: tuple[tuple[str, str], ...],
        buckets: tuple[float, ...],
    ):
        self.name = name
        self.labels = labels
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)  # last = overflow (+Inf)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.sum += value
        self.count += 1
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    def cumulative_counts(self) -> list[int]:
        """Per-bucket cumulative counts, ending with the +Inf bucket."""
        out: list[int] = []
        running = 0
        for count in self.counts:
            running += count
            out.append(running)
        return out


class _Family:
    """All instruments sharing one metric name (and therefore one type)."""

    __slots__ = ("name", "kind", "help", "buckets", "instruments")

    def __init__(
        self, name: str, kind: str, help_text: str,
        buckets: tuple[float, ...] | None,
    ):
        self.name = name
        self.kind = kind
        self.help = help_text
        self.buckets = buckets
        self.instruments: dict[tuple[tuple[str, str], ...], Any] = {}


class MetricsRegistry:
    """Process- or run-local collection of metric instruments.

    Instrument *creation* is serialized by a lock so a registry can be
    shared across threads (the HTTP service shares one process-wide
    registry with a fresh tracer per request).  Updates on an existing
    instrument are plain attribute arithmetic — safe under CPython for
    the crash-freedom the service needs.
    """

    enabled = True

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}
        self._create_lock = threading.Lock()

    # -- factories -------------------------------------------------------
    def counter(
        self, name: str, help_text: str = "", **labels: str
    ) -> Counter:
        """Get or create the counter for ``(name, labels)``."""
        return self._instrument(Counter, name, help_text, None, labels)

    def gauge(self, name: str, help_text: str = "", **labels: str) -> Gauge:
        """Get or create the gauge for ``(name, labels)``."""
        return self._instrument(Gauge, name, help_text, None, labels)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        *,
        buckets: tuple[float, ...] | None = None,
        **labels: str,
    ) -> Histogram:
        """Get or create the histogram for ``(name, labels)``.

        ``buckets`` defaults to :data:`DEFAULT_SECONDS_BUCKETS` and must
        match the family's boundaries on every later call.
        """
        chosen = tuple(buckets) if buckets else DEFAULT_SECONDS_BUCKETS
        if list(chosen) != sorted(set(chosen)):
            raise TelemetryError(
                f"histogram {name} buckets must be strictly increasing, "
                f"got {chosen}"
            )
        return self._instrument(Histogram, name, help_text, chosen, labels)

    # -- reading ---------------------------------------------------------
    def families(self) -> Iterator[_Family]:
        """Metric families, sorted by name (exposition order)."""
        for name in sorted(self._families):
            yield self._families[name]

    def get(self, name: str, **labels: str) -> Any | None:
        """The existing instrument for ``(name, labels)``, or ``None``."""
        family = self._families.get(name)
        if family is None:
            return None
        return family.instruments.get(_label_key(labels))

    def value(self, name: str, **labels: str) -> float | None:
        """Shortcut: the current value of a counter/gauge, or ``None``."""
        instrument = self.get(name, **labels)
        return None if instrument is None else instrument.value

    def __len__(self) -> int:
        return sum(
            len(family.instruments)
            for family in self._families.values()
        )

    # -- internals -------------------------------------------------------
    def _instrument(
        self,
        cls: type,
        name: str,
        help_text: str,
        buckets: tuple[float, ...] | None,
        labels: dict[str, str],
    ) -> Any:
        # Fast path: the instrument exists — no lock, no validation
        # (both already happened when it was created).
        family = self._families.get(name)
        if family is not None and family.kind == cls.kind and (
            not help_text or family.help
        ):
            existing = family.instruments.get(_label_key(labels))
            if existing is not None and (
                buckets is None or family.buckets == buckets
            ):
                return existing
        with self._create_lock:
            return self._create_instrument(
                cls, name, help_text, buckets, labels
            )

    def _create_instrument(
        self,
        cls: type,
        name: str,
        help_text: str,
        buckets: tuple[float, ...] | None,
        labels: dict[str, str],
    ) -> Any:
        family = self._families.get(name)
        if family is None:
            if not _NAME_RE.match(name):
                raise TelemetryError(f"invalid metric name {name!r}")
            for label in labels:
                if not _LABEL_RE.match(label):
                    raise TelemetryError(
                        f"invalid label name {label!r} on metric {name}"
                    )
            family = _Family(name, cls.kind, help_text, buckets)
            self._families[name] = family
        else:
            if family.kind != cls.kind:
                raise TelemetryError(
                    f"metric {name} is a {family.kind}, "
                    f"requested as {cls.kind}"
                )
            if buckets is not None and family.buckets != buckets:
                raise TelemetryError(
                    f"histogram {name} re-declared with different "
                    f"buckets ({family.buckets} vs {buckets})"
                )
            if help_text and not family.help:
                family.help = help_text
        key = _label_key(labels)
        instrument = family.instruments.get(key)
        if instrument is None:
            if cls is Histogram:
                instrument = Histogram(name, key, family.buckets or ())
            else:
                instrument = cls(name, key)
            family.instruments[key] = instrument
        return instrument


def _label_key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class _NullInstrument:
    """Shared no-op counter/gauge/histogram for disabled telemetry."""

    __slots__ = ()
    value = 0.0
    sum = 0.0
    count = 0

    def inc(self, amount: float = 1.0) -> None:
        return None

    def dec(self, amount: float = 1.0) -> None:
        return None

    def set(self, value: float) -> None:
        return None

    def observe(self, value: float) -> None:
        return None


_NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """Disabled registry: same factory API, shared no-op instruments."""

    enabled = False

    def counter(
        self, name: str, help_text: str = "", **labels: str
    ) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(
        self, name: str, help_text: str = "", **labels: str
    ) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(
        self, name: str, help_text: str = "", *,
        buckets: tuple[float, ...] | None = None, **labels: str,
    ) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def families(self) -> Iterator:
        return iter(())

    def get(self, name: str, **labels: str) -> None:
        return None

    def value(self, name: str, **labels: str) -> None:
        return None

    def __len__(self) -> int:
        return 0


NULL_METRICS = NullMetrics()
