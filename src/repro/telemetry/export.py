"""Telemetry exporters: JSONL traces, Prometheus text, profile tables.

Three renderings of one run's telemetry:

* :func:`write_trace` — the tracer's spans as JSON Lines, one span per
  line in trace order (start time, then span id), written atomically so
  a killed run never leaves a torn trace file.  :func:`read_trace`
  round-trips the file for tests and offline analysis.
* :func:`prometheus_text` / :func:`write_metrics` — the registry in the
  Prometheus text exposition format (``# HELP`` / ``# TYPE`` preamble,
  cumulative ``_bucket{le=...}`` histogram series).
* :func:`profile_table` — the human ``--profile`` phase breakdown:
  span counts, total/mean duration and share of the run, aggregated by
  span name.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Iterable

from repro.exceptions import TelemetryError
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.trace import Span, Tracer
from repro.utils.atomic import atomic_write_text
from repro.utils.timer import format_duration

__all__ = [
    "trace_to_jsonl",
    "write_trace",
    "read_trace",
    "prometheus_text",
    "write_metrics",
    "profile_table",
]


# ----------------------------------------------------------------------
# JSONL traces
# ----------------------------------------------------------------------
def trace_to_jsonl(tracer: Tracer) -> str:
    """The tracer's completed spans as JSON Lines, in trace order."""
    lines = [
        json.dumps(span.to_dict(), sort_keys=True, default=str)
        for span in tracer.ordered_spans()
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def write_trace(tracer: Tracer, path: str | Path) -> int:
    """Write the trace atomically; returns the number of spans written."""
    text = trace_to_jsonl(tracer)
    atomic_write_text(path, text)
    return len(tracer.spans)


def read_trace(path: str | Path) -> list[dict[str, Any]]:
    """Parse a JSONL trace file back into span dicts (trace order)."""
    spans: list[dict[str, Any]] = []
    text = Path(path).read_text(encoding="utf-8")
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TelemetryError(
                f"{path}:{lineno}: malformed trace line: {exc}"
            ) from exc
        if not isinstance(record, dict) or "name" not in record:
            raise TelemetryError(
                f"{path}:{lineno}: trace line is not a span object"
            )
        spans.append(record)
    return spans


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def prometheus_text(registry: MetricsRegistry) -> str:
    """Render ``registry`` in the Prometheus text exposition format."""
    lines: list[str] = []
    for family in registry.families():
        if family.help:
            lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for key in sorted(family.instruments):
            instrument = family.instruments[key]
            if family.kind == "histogram":
                _render_histogram(lines, instrument)
            else:
                lines.append(
                    f"{family.name}{_render_labels(key)} "
                    f"{_format_value(instrument.value)}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def write_metrics(registry: MetricsRegistry, path: str | Path) -> None:
    """Write the exposition text atomically."""
    atomic_write_text(path, prometheus_text(registry))


def _render_histogram(lines: list[str], histogram: Any) -> None:
    base = list(histogram.labels)
    cumulative = histogram.cumulative_counts()
    bounds = [*histogram.buckets, math.inf]
    for bound, count in zip(bounds, cumulative):
        le = "+Inf" if math.isinf(bound) else _format_value(bound)
        labels = _render_labels((*base, ("le", le)))
        lines.append(f"{histogram.name}_bucket{labels} {count}")
    labels = _render_labels(tuple(base))
    lines.append(
        f"{histogram.name}_sum{labels} {_format_value(histogram.sum)}"
    )
    lines.append(f"{histogram.name}_count{labels} {histogram.count}")


def _render_labels(items: Iterable[tuple[str, str]]) -> str:
    rendered = ",".join(
        f'{name}="{_escape_label(value)}"' for name, value in items
    )
    return f"{{{rendered}}}" if rendered else ""


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", r"\\")
        .replace('"', r"\"")
        .replace("\n", r"\n")
    )


def _escape_help(text: str) -> str:
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _format_value(value: float) -> str:
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


# ----------------------------------------------------------------------
# Profile table
# ----------------------------------------------------------------------
def profile_table(tracer: Tracer, *, top: int | None = None) -> str:
    """Aggregate spans by name into a phase-breakdown table.

    Shares are computed against the longest root span (usually the
    ``impute`` phase span); nested spans can sum past 100% since a
    parent's time contains its children's.
    """
    spans = list(tracer.spans)
    if not spans:
        return "profile: no spans recorded"
    totals: dict[str, list[float]] = {}
    order: list[str] = []
    for span in tracer.ordered_spans():
        entry = totals.get(span.name)
        if entry is None:
            totals[span.name] = [1, span.duration_seconds]
            order.append(span.name)
        else:
            entry[0] += 1
            entry[1] += span.duration_seconds
    roots = [span for span in spans if span.parent_id is None]
    wall = max(
        (span.duration_seconds for span in roots),
        default=max(entry[1] for entry in totals.values()),
    )
    wall = wall or 1e-12
    rows = order[:top] if top else order
    width = max(4, max(len(name) for name in rows))
    lines = [
        f"{'span':<{width}}  {'count':>7}  {'total':>9}  "
        f"{'mean':>9}  {'share':>6}"
    ]
    for name in rows:
        count, total = totals[name]
        count = int(count)
        lines.append(
            f"{name:<{width}}  {count:>7}  "
            f"{format_duration(total):>9}  "
            f"{format_duration(total / count):>9}  "
            f"{total / wall:>6.1%}"
        )
    return "\n".join(lines)
