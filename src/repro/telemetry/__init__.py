"""repro.telemetry — the observability spine of the pipeline.

One :class:`Telemetry` object bundles the three signals of a run:

* **spans** (:mod:`repro.telemetry.trace`) — nested, attributed timings
  for every phase, cell and kernel call;
* **metrics** (:mod:`repro.telemetry.metrics`) — counters, gauges and
  fixed-bucket histograms under Prometheus-style names;
* **logs** (:mod:`repro.telemetry.logs`) — the stdlib ``repro.*``
  logger hierarchy with an optional JSON formatter.

Everything accepts a ``telemetry=`` keyword and defaults to
:data:`NULL_TELEMETRY`, whose tracer and registry are shared no-op
singletons — the disabled path costs a method call per site and is
guarded under 2% of a run by ``benchmarks/bench_telemetry.py``.

Usage::

    from repro import Renuver, Telemetry
    from repro.telemetry import write_trace, write_metrics, profile_table

    telemetry = Telemetry()
    result = Renuver(rfds, telemetry=telemetry).impute(dirty)
    write_trace(telemetry.tracer, "trace.jsonl")
    write_metrics(telemetry.metrics, "metrics.prom")
    print(profile_table(telemetry.tracer))

Span taxonomy, metric names and exporter formats are documented in
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

from repro.telemetry.export import (
    prometheus_text,
    profile_table,
    read_trace,
    trace_to_jsonl,
    write_metrics,
    write_trace,
)
from repro.telemetry.logs import (
    JsonLogFormatter,
    configure_logging,
    get_logger,
    reset_logging,
)
from repro.telemetry.metrics import (
    DEFAULT_SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRICS,
    NullMetrics,
)
from repro.telemetry.trace import (
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
)

__all__ = [
    "Counter",
    "DEFAULT_SECONDS_BUCKETS",
    "Gauge",
    "Histogram",
    "JsonLogFormatter",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_SPAN",
    "NULL_TELEMETRY",
    "NULL_TRACER",
    "NullMetrics",
    "NullTracer",
    "Span",
    "Telemetry",
    "Tracer",
    "configure_logging",
    "get_logger",
    "prometheus_text",
    "profile_table",
    "read_trace",
    "reset_logging",
    "trace_to_jsonl",
    "write_metrics",
    "write_trace",
]


class Telemetry:
    """A tracer plus a metrics registry, handed through the pipeline.

    ``Telemetry()`` builds live instances of both; pass ``tracer=`` /
    ``metrics=`` to share or replace either (e.g. a process-wide
    registry across many runs with a fresh tracer per run).
    """

    __slots__ = ("tracer", "metrics")

    def __init__(
        self,
        tracer: Tracer | NullTracer | None = None,
        metrics: MetricsRegistry | NullMetrics | None = None,
    ) -> None:
        self.tracer = Tracer() if tracer is None else tracer
        self.metrics = MetricsRegistry() if metrics is None else metrics

    @property
    def enabled(self) -> bool:
        """Whether any signal is live (tracer or metrics)."""
        return bool(self.tracer.enabled or self.metrics.enabled)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Telemetry(tracer={type(self.tracer).__name__}, "
            f"metrics={type(self.metrics).__name__}, "
            f"enabled={self.enabled})"
        )


#: The disabled default: shared no-op tracer and registry.
NULL_TELEMETRY = Telemetry(NULL_TRACER, NULL_METRICS)
